"""Moving-query nearest neighbour along a walking route.

The paper's future-work section asks about obstacle queries for moving
entities.  This example uses :func:`repro.path_nearest` to compute the
full NN handover profile of a walk across town: which cafe is closest
(by walking distance) during which stretch of the route.

Run with::

    python examples/moving_query.py [seed]
"""

import sys

from repro import Point, path_nearest
from repro.core.source import build_obstacle_index
from repro.datasets import entities_following_obstacles, street_grid_obstacles
from repro.geometry import Rect
from repro.index import RStarTree, str_pack


def main(seed: int = 9) -> None:
    print(f"Generating town (seed={seed}) ...")
    obstacles = street_grid_obstacles(150, seed=seed)
    cafes = entities_following_obstacles(40, obstacles, seed=seed + 1)

    tree = RStarTree(max_entries=32, min_entries=12)
    str_pack(tree, [(p, Rect.from_point(p)) for p in cafes])
    idx = build_obstacle_index(obstacles, max_entries=32, min_entries=12)

    route = [
        Point(500, 500),
        Point(5000, 1500),
        Point(6000, 6000),
        Point(9500, 9000),
    ]
    print("Route:", " -> ".join(str(p) for p in route))

    intervals = path_nearest(tree, idx, route, tolerance=5e-3)
    print(f"\nNN handover profile ({len(intervals)} stretches):")
    for iv in intervals:
        print(
            f"  s in [{iv.start:6.3f}, {iv.end:6.3f}]  nearest cafe "
            f"{iv.neighbor}  (d_O: {iv.start_distance:8.1f} -> "
            f"{iv.end_distance:8.1f})"
        )
    print(
        f"\nThe walker passes through {len({iv.neighbor for iv in intervals})}"
        " distinct nearest-cafe zones."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 9)
