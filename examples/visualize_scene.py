"""Render an obstructed query to SVG.

Generates a small city, runs an obstacle range query and an ONN query,
and writes ``scene.svg`` showing the obstacles, all entities, the query
point with its range disk, the result entities highlighted, and the
walking route to the nearest neighbour.

Run with::

    python examples/visualize_scene.py [seed] [out.svg]
"""

import sys

from repro import ObstacleDatabase
from repro.datasets import (
    entities_following_obstacles,
    query_points,
    street_grid_obstacles,
)
from repro.render import save_svg, scene_to_svg


def main(seed: int = 11, out: str = "scene.svg") -> None:
    obstacles = street_grid_obstacles(120, seed=seed)
    entities = entities_following_obstacles(150, obstacles, seed=seed + 1)
    q = query_points(1, obstacles, seed=seed + 2)[0]

    db = ObstacleDatabase(obstacles, max_entries=32, min_entries=12)
    db.add_entity_set("pois", entities)

    e = 1200.0
    in_range = db.range("pois", q, e)
    (nn, d_nn), *__ = db.nearest("pois", q, k=1)

    __, route = db.shortest_path(q, nn)

    svg = scene_to_svg(
        obstacles,
        entities=entities,
        highlights=[p for p, __ in in_range],
        query=q,
        paths=[route],
        ranges=[(q, e)],
    )
    save_svg(out, svg)
    print(f"{len(in_range)} entities within obstructed range {e:g}; "
          f"nearest at {d_nn:.1f}")
    print(f"wrote {out}")


if __name__ == "__main__":
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 11
    out = sys.argv[2] if len(sys.argv) > 2 else "scene.svg"
    main(seed, out)
