"""Quickstart: every obstructed query type on a hand-made scene.

Run with::

    python examples/quickstart.py

The scene mirrors the paper's running example (Fig. 1 / Fig. 4): a
pedestrian at ``q`` looking for points of interest, with buildings
(shaded rectangles) blocking the direct lines of sight.
"""

from repro import ObstacleDatabase, Point, Rect


def banner(title: str) -> None:
    print()
    print(f"== {title} ==")


def main() -> None:
    # Three buildings.
    obstacles = [
        Rect(4, 2, 6, 8),      # long building left of center
        Rect(8, 5, 14, 7),     # wide building on the right
        Rect(3, 11, 9, 13),    # building to the north
    ]
    # Restaurants around the block.
    restaurants = [
        Point(2, 5),    # a: west, fully visible
        Point(7, 3),    # b: tucked between the buildings
        Point(7, 9.5),  # c: north corridor
        Point(10, 4),   # d: south of the wide building
        Point(12, 8),   # e: behind the wide building
        Point(5, 14),   # f: north of everything
        Point(16, 6),   # g: far east
    ]
    q = Point(1.0, 9.0)  # the pedestrian

    db = ObstacleDatabase(obstacles, max_entries=8, min_entries=3)
    db.add_entity_set("restaurants", restaurants)

    banner("Obstructed vs Euclidean distance")
    for p in restaurants[:3]:
        d_e = q.distance(p)
        d_o = db.obstructed_distance(q, p)
        marker = "  <- detour!" if d_o > d_e + 1e-9 else ""
        print(f"  {p}: Euclidean {d_e:6.3f}   obstructed {d_o:6.3f}{marker}")

    banner("Obstacle range query (OR): restaurants within walking distance 7")
    for p, d in db.range("restaurants", q, 7.0):
        print(f"  {p}  at obstructed distance {d:.3f}")

    banner("Obstacle 3-NN (ONN)")
    for rank, (p, d) in enumerate(db.nearest("restaurants", q, k=3), start=1):
        print(f"  #{rank}: {p}  d_O = {d:.3f}")

    banner("Incremental ONN: browse until past distance 9")
    for p, d in db.inearest("restaurants", q):
        if d > 9.0:
            break
        print(f"  {p}  d_O = {d:.3f}")

    banner("Obstacle e-distance join (ODJ): cafe-hotel pairs within 4")
    db.add_entity_set("hotels", [Point(2, 2), Point(10, 9), Point(15, 3)])
    for s, t, d in db.distance_join("restaurants", "hotels", 4.0):
        print(f"  restaurant {s} <-> hotel {t}: d_O = {d:.3f}")

    banner("Obstacle closest pairs (OCP): top-2")
    for s, t, d in db.closest_pairs("restaurants", "hotels", k=2):
        print(f"  {s} <-> {t}: d_O = {d:.3f}")

    banner("Page accesses of the last query")
    for tree, counters in sorted(db.stats().items()):
        print(f"  {tree}: {counters}")


if __name__ == "__main__":
    main()
