"""Facility planning with obstacle e-distance joins.

Scenario: a city authority checks pharmacy coverage — every household
should have a pharmacy within 400 m *walking* distance.  A Euclidean
join overestimates coverage because straight-line proximity ignores
buildings; the obstacle join (ODJ, paper Fig. 10) gives the true
answer.

Run with::

    python examples/facility_planning.py [seed]
"""

import sys
from collections import defaultdict

from repro import ObstacleDatabase
from repro.datasets import entities_following_obstacles, street_grid_obstacles
from repro.euclidean import distance_join


def main(seed: int = 7) -> None:
    print(f"Generating district (seed={seed}) ...")
    obstacles = street_grid_obstacles(250, seed=seed)
    homes = entities_following_obstacles(300, obstacles, seed=seed + 1)
    pharmacies = entities_following_obstacles(12, obstacles, seed=seed + 2)

    db = ObstacleDatabase(obstacles, max_entries=32, min_entries=12)
    db.add_entity_set("homes", homes)
    db.add_entity_set("pharmacies", pharmacies)

    walking_limit = 400.0

    euclid_pairs = distance_join(
        db.entity_tree("homes"), db.entity_tree("pharmacies"), walking_limit
    )
    obstructed_pairs = db.distance_join("homes", "pharmacies", walking_limit)

    euclid_covered = {s for s, __, __ in euclid_pairs}
    truly_covered = {s for s, __, __ in obstructed_pairs}
    overestimated = euclid_covered - truly_covered

    print(f"\nHouseholds: {len(homes)}, pharmacies: {len(pharmacies)}")
    print(f"Euclidean coverage (straight line <= {walking_limit:g}): "
          f"{len(euclid_covered)} households")
    print(f"True walking coverage (obstructed)        : "
          f"{len(truly_covered)} households")
    print(f"Overestimated by the Euclidean join        : {len(overestimated)}")

    # Which pharmacy serves the most households (by walking distance)?
    load = defaultdict(int)
    for __, pharmacy, __d in obstructed_pairs:
        load[pharmacy] += 1
    print("\nPharmacy load (served households within walking limit):")
    for pharmacy, count in sorted(load.items(), key=lambda kv: -kv[1])[:5]:
        print(f"  {pharmacy}: {count}")

    if overestimated:
        example = next(iter(overestimated))
        partners = [t for s, t, __ in euclid_pairs if s == example]
        d_o = min(db.obstructed_distance(example, t) for t in partners)
        print(
            f"\nExample: household {example} looks covered on the map "
            f"(straight line), but its closest pharmacy is "
            f"{d_o:.0f} units away on foot."
        )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 7)
