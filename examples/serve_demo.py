"""The serving tier end to end: pool, async front-end, subscriptions.

A small town is indexed once, then served three ways:

1. a **persistent worker pool** answers batch queries from warm-started
   workers (snapshot boot, mutation deltas replayed in place);
2. an asyncio **QueryServer** coalesces concurrent requests into
   microbatches and reports p50/p99 latency per query kind;
3. a **ContinuousQueryHub** keeps a moving client's nearest-cafes
   subscription live through movement and a road closure.

Run with::

    python examples/serve_demo.py [seed]
"""

import asyncio
import sys

from repro import ContinuousQueryHub, ObstacleDatabase, Point, QueryServer, Rect
from repro.datasets import (
    entities_following_obstacles,
    query_points,
    street_grid_obstacles,
)


def build_town(seed: int):
    """An ObstacleDatabase over a street grid with cafes as entities,
    plus 8 free-space client positions."""
    obstacles = street_grid_obstacles(150, seed=seed)
    cafes = entities_following_obstacles(40, obstacles, seed=seed + 1)
    db = ObstacleDatabase(obstacles, max_entries=32, min_entries=12)
    db.add_entity_set("cafes", cafes)
    return db, query_points(8, obstacles, seed=seed + 2)


def demo_pool(db: ObstacleDatabase, queries) -> None:
    """Batch queries through the warm-started persistent pool."""
    print("\n-- persistent pool " + "-" * 40)
    sequential = db.batch_nearest("cafes", queries, 2)
    pooled = db.batch_nearest("cafes", queries, 2, workers=2, pool="persistent")
    print(f"pool answers identical to sequential: {pooled == sequential}")
    record = db.insert_obstacle(Rect(4800, 4800, 5200, 5200))
    after = db.batch_nearest("cafes", queries, 2, workers=2, pool="persistent")
    print(
        "mutation replayed as a delta (no respawn): "
        f"{after == db.batch_nearest('cafes', queries, 2)}, "
        f"{db._serving_pool!r}"
    )
    db.delete_obstacle(record)


async def demo_server(db: ObstacleDatabase, queries) -> None:
    """Concurrent clients coalesced into microbatches."""
    print("\n-- async front-end " + "-" * 40)
    async with QueryServer(db, coalesce_window=0.01) as server:
        answers = await asyncio.gather(
            *[server.nearest("cafes", q, 1) for q in queries]
        )
    snap = server.stats.snapshot()
    latency = snap["latency"]["nearest"]
    print(
        f"{snap['requests']:.0f} concurrent requests -> "
        f"{snap['batches']:.0f} batch(es), {snap['coalesced']:.0f} coalesced; "
        f"p50 {latency['p50_s'] * 1000:.1f} ms, "
        f"p99 {latency['p99_s'] * 1000:.1f} ms"
    )
    print(f"first client's nearest cafe: {answers[0][0][0]}")


def demo_continuous(db: ObstacleDatabase, start) -> None:
    """A moving client's standing query, through a road closure."""
    print("\n-- continuous subscription " + "-" * 32)
    hub = ContinuousQueryHub(db)
    sub = hub.nearest("cafes", start, 3)
    print(f"initial top-3: {[p for p, __ in hub.poll(sub).added]}")
    step = db.universe().width * 0.02
    delta = hub.move(sub, Point(start.x + step, start.y))
    print(
        f"after moving: +{len(delta.added)} -{len(delta.removed)} "
        f"~{len(delta.changed)} cafes"
    )
    q = sub.position
    nearest, __ = sub.current[0]
    mx, my = (q.x + nearest.x) / 2, (q.y + nearest.y) / 2
    if abs(nearest.x - q.x) >= abs(nearest.y - q.y):
        wall = Rect(mx - 5, my - 400, mx + 5, my + 400)
    else:
        wall = Rect(mx - 400, my - 5, mx + 400, my + 5)
    record = db.insert_obstacle(wall)
    delta = hub.poll(sub)
    print(
        f"road closure across the walk re-evaluated the subscription "
        f"(reeval #{sub.reevaluations}): {len(delta.changed)} distance(s) "
        "changed"
    )
    db.delete_obstacle(record)


def main(seed: int = 9) -> None:
    print(f"Generating town (seed={seed}) ...")
    db, queries = build_town(seed)
    with db:
        demo_pool(db, queries)
        asyncio.run(demo_server(db, queries))
        demo_continuous(db, queries[0])
    print(f"\npool shut down with the database: {db._serving_pool is None}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 9)
