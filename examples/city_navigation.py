"""City navigation: a pedestrian's nearest restaurants, with obstacles.

The paper's motivating scenario (Fig. 1): the Euclidean nearest
neighbour can sit behind a building, while the true — obstructed —
nearest neighbour is a slightly farther point reachable without
detours.  This example generates a synthetic city (street-grid
obstacles, restaurants hugging the streets), runs ONN, and contrasts
the Euclidean and obstructed rankings, then prints the actual shortest
path to the winner.

Run with::

    python examples/city_navigation.py [seed]
"""

import sys

from repro import ObstacleDatabase, Point
from repro.datasets import (
    entities_following_obstacles,
    query_points,
    street_grid_obstacles,
)
from repro.euclidean import k_nearest


def main(seed: int = 42) -> None:
    print(f"Generating city (seed={seed}) ...")
    obstacles = street_grid_obstacles(300, seed=seed)
    restaurants = entities_following_obstacles(500, obstacles, seed=seed + 1)
    pedestrian = query_points(1, obstacles, seed=seed + 2)[0]

    db = ObstacleDatabase(obstacles, max_entries=32, min_entries=12)
    db.add_entity_set("restaurants", restaurants)

    k = 5
    euclidean = k_nearest(db.entity_tree("restaurants"), pedestrian, k)
    obstructed = db.nearest("restaurants", pedestrian, k)

    print(f"\nPedestrian at {pedestrian}")
    print(f"\n{'rank':>4}  {'Euclidean k-NN':>32}  {'obstructed k-NN':>32}")
    for i in range(k):
        ep, ed = euclidean[i]
        op, od = obstructed[i]
        print(
            f"{i + 1:>4}  {str(ep):>22} {ed:8.2f}  {str(op):>22} {od:8.2f}"
        )

    euclid_set = {p for p, __ in euclidean}
    obstr_set = {p for p, __ in obstructed}
    false_hits = euclid_set - obstr_set
    print(f"\nFalse hits (Euclidean k-NN not in obstructed k-NN): {len(false_hits)}")
    for p in false_hits:
        print(f"  {p} — blocked or detoured by buildings")

    # Show the actual walking route to the obstructed 1-NN.
    winner, d_o = obstructed[0]
    dist, path = db.shortest_path(pedestrian, winner)
    print(f"\nWalking route to the nearest restaurant ({dist:.2f} units):")
    for hop in path:
        print(f"  -> {hop}")
    detour = dist / pedestrian.distance(winner)
    print(f"Detour factor over straight line: {detour:.3f}x")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 42)
