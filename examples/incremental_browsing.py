"""Incremental browsing with iOCP / incremental ONN.

The paper motivates the incremental algorithms (Fig. 12) with complex
queries whose stopping condition is not known in advance, e.g. "find
the city with more than 1M residents which is closest to a nuclear
factory".  Here: match ambulances to incidents in ascending *driving
detour* order, but only accept an ambulance that is not already busy —
a predicate the query processor cannot know about.

Run with::

    python examples/incremental_browsing.py [seed]
"""

import random
import sys

from repro import ObstacleDatabase
from repro.datasets import entities_following_obstacles, street_grid_obstacles


def main(seed: int = 3) -> None:
    print(f"Generating city (seed={seed}) ...")
    obstacles = street_grid_obstacles(200, seed=seed)
    ambulances = entities_following_obstacles(25, obstacles, seed=seed + 1)
    incidents = entities_following_obstacles(8, obstacles, seed=seed + 2)

    db = ObstacleDatabase(obstacles, max_entries=32, min_entries=12)
    db.add_entity_set("ambulances", ambulances)
    db.add_entity_set("incidents", incidents)

    # A third of the fleet is busy — the query engine cannot know which.
    rng = random.Random(seed)
    busy = set(rng.sample(ambulances, k=len(ambulances) // 3))
    print(f"{len(ambulances)} ambulances ({len(busy)} busy), "
          f"{len(incidents)} incidents\n")

    # Browse obstructed closest (ambulance, incident) pairs in ascending
    # distance, dispatching greedily; stop once every incident is served.
    assigned: dict = {}
    dispatched: set = set()
    examined = 0
    for amb, inc, d in db.iclosest_pairs("ambulances", "incidents"):
        examined += 1
        if inc in assigned or amb in busy or amb in dispatched:
            continue
        assigned[inc] = (amb, d)
        dispatched.add(amb)
        print(f"dispatch {amb}  ->  incident {inc}   (drive {d:8.2f})")
        if len(assigned) == len(incidents):
            break

    print(f"\nExamined {examined} candidate pairs to serve "
          f"{len(assigned)}/{len(incidents)} incidents.")

    # Incremental ONN flavour: nearest *available* ambulance to one
    # incident, skipping busy units on the fly.
    target = incidents[0]
    print(f"\nNearest available ambulance to {target}:")
    for amb, d in db.inearest("ambulances", target):
        status = "busy" if amb in busy else "available"
        print(f"  {amb}  d_O = {d:8.2f}  [{status}]")
        if amb not in busy:
            break


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3)
