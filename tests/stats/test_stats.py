"""Tests for counters, timers and experiment series."""

import time

import pytest

from repro.obs.experiment import ExperimentSeries, format_table
from repro.obs.timing import Timer
from repro.stats import PageAccessCounter


class TestPageAccessCounter:
    def test_initial_zero(self):
        c = PageAccessCounter()
        assert c.reads == c.misses == c.writes == 0

    def test_record_read_hit_miss(self):
        c = PageAccessCounter()
        c.record_read(hit=True)
        c.record_read(hit=False)
        assert c.reads == 2
        assert c.misses == 1

    def test_record_write(self):
        c = PageAccessCounter()
        c.record_write()
        assert c.writes == 1

    def test_reset(self):
        c = PageAccessCounter()
        c.record_read(hit=False)
        c.record_write()
        c.reset()
        assert c.snapshot() == {"reads": 0, "misses": 0, "writes": 0}

    def test_snapshot(self):
        c = PageAccessCounter()
        c.record_read(hit=False)
        assert c.snapshot() == {"reads": 1, "misses": 1, "writes": 0}


class TestTimer:
    def test_accumulates(self):
        t = Timer()
        with t:
            time.sleep(0.01)
        first = t.elapsed
        with t:
            time.sleep(0.01)
        assert t.elapsed > first
        assert t.elapsed_ms == pytest.approx(t.elapsed * 1000)

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.elapsed == 0.0


class TestExperimentSeries:
    def test_add_and_rows(self):
        s = ExperimentSeries("cpu")
        s.add(1, 10.0)
        s.add(2, 20.0)
        assert s.as_rows() == [(1, 10.0), (2, 20.0)]

    def test_format_table(self):
        a = ExperimentSeries("data R-tree", xs=[0.1, 1.0], ys=[2, 4])
        b = ExperimentSeries("obstacle R-tree", xs=[0.1, 1.0], ys=[7, 7])
        text = format_table("Fig. 13a", "|P|/|O|", [a, b])
        assert "Fig. 13a" in text
        assert "data R-tree" in text
        assert "obstacle R-tree" in text
        assert "0.1" in text

    def test_format_table_mismatched_x_rejected(self):
        a = ExperimentSeries("x", xs=[1], ys=[1])
        b = ExperimentSeries("y", xs=[2], ys=[1])
        with pytest.raises(ValueError):
            format_table("t", "x", [a, b])

    def test_format_table_empty(self):
        assert "(no data)" in format_table("t", "x", [])
