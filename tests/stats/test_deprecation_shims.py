"""The ``repro.stats`` deprecation shims must warn — and only them.

PR 7 folded the timing/experiment helpers into ``repro.obs``; the
compatibility paths (``repro.stats.timing``, ``repro.stats.experiment``
and the package-level re-exports) must emit ``DeprecationWarning`` so
callers migrate before the scheduled removal, while the canonical
``repro.stats.PageAccessCounter`` stays silent (the CI tier-1 leg runs
with ``-W error::DeprecationWarning``, so an accidental warning on the
canonical path — or a shim that regresses to silence — both fail).
"""

import importlib
import subprocess
import sys
import warnings

import pytest


def _fresh_import(module: str) -> list[warnings.WarningMessage]:
    """Import ``module`` from scratch, collecting warnings."""
    for name in list(sys.modules):
        if name == module or name.startswith(module + "."):
            del sys.modules[name]
    with warnings.catch_warnings(record=True) as record:
        warnings.simplefilter("always")
        importlib.import_module(module)
    return [w for w in record if issubclass(w.category, DeprecationWarning)]


class TestModuleShims:
    def test_timing_module_warns(self):
        assert _fresh_import("repro.stats.timing")

    def test_experiment_module_warns(self):
        assert _fresh_import("repro.stats.experiment")


class TestPackageReexports:
    @pytest.mark.parametrize(
        "name", ["Timer", "ExperimentSeries", "format_table"]
    )
    def test_reexport_warns_and_resolves(self, name):
        import repro.stats

        with pytest.warns(DeprecationWarning, match=f"repro.stats.{name}"):
            moved = getattr(repro.stats, name)
        source = importlib.import_module(
            "repro.obs.timing" if name == "Timer" else "repro.obs.experiment"
        )
        assert moved is getattr(source, name)

    def test_unknown_attribute_raises(self):
        import repro.stats

        with pytest.raises(AttributeError):
            repro.stats.no_such_helper

    def test_canonical_counter_import_is_silent(self):
        # Run in a clean interpreter with DeprecationWarning fatal: the
        # non-deprecated import path must not trip it.
        proc = subprocess.run(
            [
                sys.executable,
                "-W",
                "error::DeprecationWarning",
                "-c",
                "from repro.stats import PageAccessCounter",
            ],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr
