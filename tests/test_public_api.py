"""Public API integrity checks.

Locks in the package contract: everything in ``__all__`` is importable,
public objects are documented, and the version is sane.
"""

import ast
import pathlib

import repro

SRC = pathlib.Path(repro.__file__).parent


class TestAllExports:
    def test_every_name_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_no_duplicate_exports(self):
        assert len(repro.__all__) == len(set(repro.__all__))

    def test_version_present(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)

    def test_key_queries_exported(self):
        for name in (
            "ObstacleDatabase",
            "obstacle_range",
            "obstacle_nearest",
            "obstacle_distance_join",
            "obstacle_closest_pairs",
            "obstacle_semijoin",
            "compute_obstructed_distance",
            "RStarTree",
            "VisibilityGraph",
        ):
            assert name in repro.__all__, name

    def test_persistence_exported(self):
        for name in ("save_database", "load_database", "snapshot_info"):
            assert name in repro.__all__, name


class TestPersistenceSurface:
    """Pins the snapshot-store API added with the persist subsystem."""

    def test_database_save_load_methods(self):
        from repro import ObstacleDatabase

        assert callable(ObstacleDatabase.save)
        assert callable(ObstacleDatabase.load)
        assert ObstacleDatabase.save.__doc__
        assert ObstacleDatabase.load.__doc__
        assert isinstance(ObstacleDatabase.__dict__["load"], classmethod)

    def test_persist_package_surface(self):
        import repro.persist as persist

        for name in persist.__all__:
            assert hasattr(persist, name), name
        assert persist.FORMAT_VERSION >= 1
        assert len(persist.MAGIC) == 8

    def test_cli_entry_point(self):
        from repro.persist import cli

        assert callable(cli.main)
        # The console-script hook must stay wired in the project metadata.
        pyproject = (SRC.parent.parent / "pyproject.toml").read_text()
        assert 'repro-snapshot = "repro.persist.cli:main"' in pyproject

    def test_restore_hooks_documented(self):
        from repro.index.pagestore import LRUBuffer, PageStore
        from repro.index.rstar import RStarTree
        from repro.visibility.graph import VisibilityGraph

        for hook in (
            PageStore.restore,
            LRUBuffer.load_pages,
            RStarTree.install_pages,
            VisibilityGraph.restore,
            VisibilityGraph.snapshot_parts,
        ):
            assert hook.__doc__

    def test_content_hash_exported_from_datasets(self):
        from repro.datasets.io import content_hash

        assert callable(content_hash)


class TestServingSurface:
    """Pins the serving-tier API added with the persistent pool."""

    def test_serve_exports(self):
        for name in (
            "PersistentWorkerPool",
            "QueryServer",
            "ContinuousQueryHub",
            "Subscription",
            "ResultDelta",
            "ServeStats",
            "LatencyHistogram",
        ):
            assert name in repro.__all__, name

    def test_serve_package_surface(self):
        import repro.serve as serve

        for name in serve.__all__:
            assert hasattr(serve, name), name

    def test_database_serving_methods(self):
        from repro import ObstacleDatabase

        for method in (
            ObstacleDatabase.serving_pool,
            ObstacleDatabase.batch_distance,
            ObstacleDatabase.path_nearest,
            ObstacleDatabase.close,
        ):
            assert callable(method)
            assert method.__doc__

    def test_pool_env_knob_documented(self):
        from repro.runtime import executor

        assert executor.POOL_ENV == "REPRO_BATCH_POOL"
        assert "REPRO_BATCH_POOL" in (executor.__doc__ or "")


class TestDocumentation:
    def test_all_modules_have_docstrings(self):
        for path in SRC.rglob("*.py"):
            tree = ast.parse(path.read_text())
            assert ast.get_docstring(tree), f"{path} lacks a module docstring"

    def test_public_classes_and_functions_documented(self):
        undocumented = []
        for path in SRC.rglob("*.py"):
            tree = ast.parse(path.read_text())
            for node in tree.body:  # top-level only
                if isinstance(node, (ast.FunctionDef, ast.ClassDef)):
                    if node.name.startswith("_"):
                        continue
                    if not ast.get_docstring(node):
                        undocumented.append(f"{path.name}:{node.name}")
                if isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
                    for member in node.body:
                        if isinstance(member, ast.FunctionDef):
                            if member.name.startswith("_"):
                                continue
                            if not ast.get_docstring(member):
                                undocumented.append(
                                    f"{path.name}:{node.name}.{member.name}"
                                )
        assert undocumented == []

    def test_exported_objects_have_docstrings(self):
        for name in repro.__all__:
            if name == "__version__":
                continue
            obj = getattr(repro, name)
            if isinstance(obj, type) or callable(obj):
                assert obj.__doc__, f"{name} lacks a docstring"


class TestPackagingMetadata:
    def test_py_typed_marker_shipped(self):
        assert (SRC / "py.typed").exists()

    def test_no_top_level_side_effects(self):
        # importing repro must not create files or mutate cwd state;
        # (a re-import exercising the module cache is a cheap proxy)
        import importlib

        importlib.reload(repro)
