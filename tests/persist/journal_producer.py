"""Deterministic journal producer for the crash-recovery tests.

Builds a fixed, seeded *durable* database, anchors a base snapshot,
then applies an endless deterministic mutation stream — run as
``python -m tests.persist.journal_producer BASE.snap DB.journal`` from
the repo root.  The consumer test SIGKILLs it mid-stream and recovers
with ``ObstacleDatabase.load(BASE, durable=JOURNAL)``; because the
stream is fully deterministic, the recovered database must equal an
in-process twin that applied exactly the first *n* mutations, where
*n* is whatever record count survived in the journal.

One mutation == one journal record, so the twin knows precisely which
prefix to replay.
"""

from __future__ import annotations

import random
import sys
from typing import Iterator

from repro.core.engine import ObstacleDatabase
from repro.geometry.point import Point
from repro.geometry.rect import Rect

from tests.conftest import random_disjoint_rects, random_free_points

SEED = 20040920
SET_NAME = "P"

#: A mutation is ``(kind, payload)``; :func:`apply_mutation` turns it
#: into exactly one journaled database call.
Mutation = tuple


def build_db(journal_path=None) -> ObstacleDatabase:
    """The canonical deterministic database (durable when a journal
    path is given)."""
    rng = random.Random(SEED)
    obstacles = random_disjoint_rects(rng, 14)
    entities = random_free_points(random.Random(SEED + 1), 20, obstacles)
    db = ObstacleDatabase(
        [o.polygon for o in obstacles],
        max_entries=16,
        min_entries=4,
        durable=journal_path,
    )
    db.add_entity_set(SET_NAME, entities)
    return db


def probe_points() -> list[Point]:
    rng = random.Random(SEED + 2)
    obstacles = random_disjoint_rects(random.Random(SEED), 14)
    return random_free_points(rng, 5, obstacles)


def expected_answers(db: ObstacleDatabase) -> list[object]:
    answers: list[object] = []
    for q in probe_points():
        answers.append(db.nearest(SET_NAME, q, 3))
        answers.append(db.range(SET_NAME, q, 18.0))
    return answers


def mutation_stream() -> Iterator[Mutation]:
    """An endless deterministic mix of all four mutation kinds.

    Self-contained bookkeeping (points inserted so far, live obstacle
    ids in insertion order) keeps deletes aimed at things that exist,
    so every mutation journals exactly one record and the stream
    replays identically on any database built by :func:`build_db`.
    """
    rng = random.Random(SEED + 3)
    inserted_points: list[Point] = []
    # Obstacles are deleted by insertion order, not oid: the database
    # assigns ids, and both the producer and the twin see the same
    # sequence, so positions are portable where raw ids need not be.
    live_obstacles = 0
    deleted_obstacles = 0
    while True:
        roll = rng.random()
        if roll < 0.55 or not inserted_points:
            p = Point(rng.uniform(90.0, 120.0), rng.uniform(90.0, 120.0))
            inserted_points.append(p)
            yield ("entity-insert", p)
        elif roll < 0.75:
            yield ("entity-delete", inserted_points.pop(0))
        elif roll < 0.92 or not live_obstacles:
            x = rng.uniform(90.0, 118.0)
            y = rng.uniform(90.0, 118.0)
            live_obstacles += 1
            yield ("obstacle-insert", Rect(x, y, x + 1.5, y + 1.5))
        else:
            live_obstacles -= 1
            yield ("obstacle-delete", deleted_obstacles)
            deleted_obstacles += 1


def apply_mutation(
    db: ObstacleDatabase, mutation: Mutation, obstacle_log: list
) -> None:
    """Apply one stream element; ``obstacle_log`` records inserted
    obstacles so positional deletes resolve to the same obstacle on
    every replica."""
    kind, payload = mutation
    if kind == "entity-insert":
        db.insert_entity(SET_NAME, payload)
    elif kind == "entity-delete":
        db.delete_entity(SET_NAME, payload)
    elif kind == "obstacle-insert":
        obstacle_log.append(db.insert_obstacle(payload))
    else:
        db.delete_obstacle(obstacle_log[payload])


def replay_prefix(db: ObstacleDatabase, count: int) -> None:
    """Apply the first ``count`` stream mutations to ``db``."""
    obstacle_log: list = []
    stream = mutation_stream()
    for __ in range(count):
        apply_mutation(db, next(stream), obstacle_log)


def main(argv: list[str]) -> int:
    """Build the durable database, anchor the base, mutate forever."""
    if len(argv) != 2:
        print(
            "usage: python -m tests.persist.journal_producer "
            "BASE.snap DB.journal"
        )
        return 2
    base, journal = argv
    db = build_db(journal)
    db.save(base)
    obstacle_log: list = []
    for mutation in mutation_stream():
        apply_mutation(db, mutation, obstacle_log)
    return 0  # pragma: no cover - the stream never ends


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
