"""The write-ahead mutation journal: append, crash recovery at every
byte, compaction, and the durability guards."""

from __future__ import annotations

import os
import random

import pytest

from repro.core.engine import ObstacleDatabase
from repro.errors import DatasetError
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect
from repro.model import Obstacle
from repro.persist.journal import (
    JOURNAL_HEADER_SIZE,
    RECORD_HEADER_SIZE,
    MutationJournal,
    MutationRecord,
    decode_record,
    encode_record,
    entity_record,
    obstacle_record,
)

from tests.conftest import random_disjoint_rects, random_free_points
from tests.persist.helpers import cache_signature

SEED = 20040607
SET_NAME = "P"


def build_durable(journal_path, *, shards=None) -> ObstacleDatabase:
    """A small deterministic durable database with entities."""
    rng = random.Random(SEED)
    obstacles = random_disjoint_rects(rng, 12)
    entities = random_free_points(random.Random(SEED + 1), 16, obstacles)
    db = ObstacleDatabase(
        [o.polygon for o in obstacles],
        shards=shards,
        max_entries=16,
        min_entries=4,
        durable=journal_path,
    )
    db.add_entity_set(SET_NAME, entities)
    return db


def probe_points() -> list[Point]:
    rng = random.Random(SEED + 2)
    obstacles = random_disjoint_rects(random.Random(SEED), 12)
    return random_free_points(rng, 5, obstacles)


def run_probes(db: ObstacleDatabase) -> list[object]:
    answers: list[object] = []
    for q in probe_points():
        answers.append(db.nearest(SET_NAME, q, 3))
        answers.append(db.range(SET_NAME, q, 18.0))
    return answers


def apply_mutations(db: ObstacleDatabase) -> None:
    """A fixed mixed mutation stream: all four record kinds."""
    a = db.insert_obstacle(Rect(61.0, 61.0, 63.0, 63.0))
    db.insert_obstacle(Rect(66.0, 61.0, 68.0, 64.0))
    db.insert_entity(SET_NAME, Point(64.5, 60.0))
    db.delete_obstacle(a)
    db.insert_entity(SET_NAME, Point(60.0, 66.5))
    db.delete_entity(SET_NAME, Point(64.5, 60.0))


class TestRecordCodec:
    def test_round_trip_all_kinds(self):
        obstacle = Obstacle(7, Polygon.from_rect(Rect(1.0, 1.0, 3.0, 4.0)))
        records = [
            obstacle_record("insert", "obstacles", obstacle),
            obstacle_record("delete", "obstacles", obstacle),
            entity_record("insert", "P", Point(2.5, -7.25)),
            entity_record("delete", "west side", Point(-1.0, 0.0)),
        ]
        for record in records:
            assert decode_record(encode_record(record)) == record

    def test_unknown_kind_refused(self):
        bogus = MutationRecord(scope="obstacle", op="upsert", set_name="x")
        with pytest.raises(DatasetError, match="unknown kind"):
            encode_record(bogus)

    def test_unknown_code_located(self):
        payload = bytearray(
            encode_record(entity_record("insert", "P", Point(0.0, 0.0)))
        )
        payload[0] = 42
        with pytest.raises(
            DatasetError, match="unknown mutation record kind 42"
        ):
            decode_record(bytes(payload), path="x.journal")


@pytest.fixture
def journal_scene(tmp_path):
    """A durable database with an anchored base and a multi-record
    journal; yields ``(base, journal_path, boundaries, records)`` where
    ``boundaries`` are the absolute end offsets of each record."""
    journal_path = tmp_path / "db.journal"
    base = tmp_path / "base.snap"
    db = build_durable(journal_path)
    db.save(base)
    boundaries: list[int] = []
    before = db.journal.record_count

    a = db.insert_obstacle(Rect(61.0, 61.0, 63.0, 63.0))
    boundaries.append(db.journal.size)
    db.insert_obstacle(Rect(66.0, 61.0, 68.0, 64.0))
    boundaries.append(db.journal.size)
    db.insert_entity(SET_NAME, Point(64.5, 60.0))
    boundaries.append(db.journal.size)
    db.delete_obstacle(a)
    boundaries.append(db.journal.size)
    db.insert_entity(SET_NAME, Point(60.0, 66.5))
    boundaries.append(db.journal.size)
    db.delete_entity(SET_NAME, Point(64.5, 60.0))
    boundaries.append(db.journal.size)
    assert before == 0 and db.journal.record_count == 6
    db.journal.close()
    probe, records = MutationJournal.recover(journal_path)
    probe.close()
    assert len(records) == 6
    return base, journal_path, boundaries, records


class TestCrashInjection:
    def test_truncate_every_byte_offset(self, journal_scene, tmp_path):
        """Recovery after truncation at *every* byte offset restores
        exactly the longest durable record prefix — never an error,
        never a partial record."""
        __, journal_path, boundaries, records = journal_scene
        blob = journal_path.read_bytes()
        copy = tmp_path / "copy.journal"
        for offset in range(len(blob) + 1):
            copy.write_bytes(blob[:offset])
            journal, recovered = MutationJournal.recover(copy)
            journal.close()
            if offset < JOURNAL_HEADER_SIZE:
                # Torn creation: nothing was durable yet; the file is
                # reinitialised empty.
                expected_count = 0
                expected_size = JOURNAL_HEADER_SIZE
            else:
                expected_count = sum(1 for end in boundaries if end <= offset)
                expected_size = (
                    boundaries[expected_count - 1]
                    if expected_count
                    else JOURNAL_HEADER_SIZE
                )
            assert recovered == records[:expected_count], f"offset {offset}"
            assert os.path.getsize(copy) == expected_size, f"offset {offset}"

    def test_flip_one_bit_per_record(self, journal_scene, tmp_path):
        """A single flipped bit inside any record (header or payload)
        is corruption, not a crash: recovery raises a located
        DatasetError instead of applying anything."""
        __, journal_path, boundaries, __records = journal_scene
        blob = bytearray(journal_path.read_bytes())
        starts = [JOURNAL_HEADER_SIZE] + boundaries[:-1]
        copy = tmp_path / "flip.journal"
        for start, end in zip(starts, boundaries):
            for position in (
                start,  # sequence field -> header checksum
                start + RECORD_HEADER_SIZE - 2,  # record crc itself
                (start + RECORD_HEADER_SIZE + end) // 2,  # payload middle
                end - 1,  # last payload byte
            ):
                damaged = bytearray(blob)
                damaged[position] ^= 0x10
                copy.write_bytes(bytes(damaged))
                with pytest.raises(DatasetError) as err:
                    MutationJournal.recover(copy)
                message = str(err.value)
                assert str(copy) in message, message
                assert "offset" in message, message
                assert "checksum mismatch" in message, message

    def test_flipped_file_header_located(self, journal_scene, tmp_path):
        __, journal_path, __, __records = journal_scene
        blob = bytearray(journal_path.read_bytes())
        blob[9] ^= 0x01  # inside the version field
        copy = tmp_path / "head.journal"
        copy.write_bytes(bytes(blob))
        with pytest.raises(DatasetError, match="header checksum mismatch"):
            MutationJournal.recover(copy)

    def test_corruption_never_partially_applies(self, journal_scene, tmp_path):
        """load() on a corrupt journal raises before any record is
        applied — the base snapshot alone still restores cleanly."""
        base, journal_path, boundaries, __records = journal_scene
        blob = bytearray(journal_path.read_bytes())
        # Damage the *last* record: every earlier record is intact and
        # decodable, yet none of them may have been applied.
        blob[boundaries[-1] - 2] ^= 0x40
        bad = tmp_path / "bad.journal"
        bad.write_bytes(bytes(blob))
        with pytest.raises(DatasetError, match="checksum mismatch"):
            ObstacleDatabase.load(base, durable=bad)
        clean = ObstacleDatabase.load(base)
        assert len(clean.entity_tree(SET_NAME)) == 16


class TestRecovery:
    def test_recovered_database_is_bit_identical(self, tmp_path):
        journal_path = tmp_path / "db.journal"
        base = tmp_path / "base.snap"
        db = build_durable(journal_path)
        run_probes(db)  # warm the cache so the base carries graphs
        db.save(base)
        apply_mutations(db)
        live_signature = cache_signature(db)
        live_answers = run_probes(db)
        db.journal.close()

        recovered = ObstacleDatabase.load(base, durable=journal_path)
        assert cache_signature(recovered) == live_signature
        assert run_probes(recovered) == live_answers
        assert recovered._next_oid == db._next_oid
        assert len(recovered.entity_tree(SET_NAME)) == len(
            db.entity_tree(SET_NAME)
        )

    def test_torn_tail_truncated_then_replayed(self, tmp_path):
        journal_path = tmp_path / "db.journal"
        base = tmp_path / "base.snap"
        db = build_durable(journal_path)
        db.save(base)
        db.insert_obstacle(Rect(61.0, 61.0, 63.0, 63.0))
        intact = db.journal.size
        db.insert_entity(SET_NAME, Point(64.5, 60.0))
        db.journal.close()
        with open(journal_path, "r+b") as fh:
            fh.truncate(intact + 7)  # tear the second record mid-payload
        recovered = ObstacleDatabase.load(base, durable=journal_path)
        assert recovered.journal.record_count == 1
        assert os.path.getsize(journal_path) == intact
        assert len(recovered.entity_tree(SET_NAME)) == 16  # insert lost

    def test_journal_keeps_recording_after_recovery(self, tmp_path):
        journal_path = tmp_path / "db.journal"
        base = tmp_path / "base.snap"
        db = build_durable(journal_path)
        db.save(base)
        db.insert_obstacle(Rect(61.0, 61.0, 63.0, 63.0))
        db.journal.close()
        recovered = ObstacleDatabase.load(base, durable=journal_path)
        assert recovered.journal.record_count == 1
        recovered.insert_entity(SET_NAME, Point(60.0, 66.5))
        recovered.journal.close()
        __, records = MutationJournal.recover(journal_path)
        assert len(records) == 2
        assert records[1][1].scope == "entity"
        assert records[1][0] > records[0][0]  # sequences stay monotonic


class TestCompaction:
    def test_explicit_compact_folds_and_truncates(self, tmp_path):
        journal_path = tmp_path / "db.journal"
        base = tmp_path / "base.snap"
        db = build_durable(journal_path)
        db.save(base)
        apply_mutations(db)
        answers = run_probes(db)
        assert db.journal.record_count == 6
        db.compact()
        assert db.journal.record_count == 0
        assert os.path.getsize(journal_path) == JOURNAL_HEADER_SIZE
        stats = db.runtime_stats()
        assert stats["compactions"] == 1
        assert stats["compaction_bytes"] > 0
        db.journal.close()
        recovered = ObstacleDatabase.load(base, durable=journal_path)
        assert run_probes(recovered) == answers

    def test_compact_requires_anchor(self, tmp_path, monkeypatch):
        db = build_durable(tmp_path / "db.journal")
        with pytest.raises(DatasetError, match="call save"):
            db.compact()
        monkeypatch.delenv("REPRO_JOURNAL", raising=False)
        plain = ObstacleDatabase([Rect(1.0, 1.0, 2.0, 2.0)])
        with pytest.raises(DatasetError, match="durable"):
            plain.compact()

    def test_auto_compaction_trigger(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_JOURNAL_COMPACT_BYTES", "1")
        monkeypatch.setenv("REPRO_JOURNAL_COMPACT_RATIO", "0")
        journal_path = tmp_path / "db.journal"
        base = tmp_path / "base.snap"
        db = build_durable(journal_path)
        db.save(base)
        db.insert_obstacle(Rect(61.0, 61.0, 63.0, 63.0))
        db.insert_entity(SET_NAME, Point(64.5, 60.0))
        stats = db.runtime_stats()
        assert stats["compactions"] == 2  # every mutation crosses 1 byte
        assert db.journal.record_count == 0
        db.journal.close()
        recovered = ObstacleDatabase.load(base, durable=journal_path)
        assert len(recovered.entity_tree(SET_NAME)) == 17

    def test_crash_between_base_rewrite_and_truncation(self, tmp_path):
        """The torn-compaction window: the new base is durable but the
        journal truncation never happened.  The base's folded-sequence
        stamp marks every surviving record as already applied, so
        recovery skips them all and completes the truncation — no
        double-apply."""
        journal_path = tmp_path / "db.journal"
        base = tmp_path / "base.snap"
        db = build_durable(journal_path)
        db.save(base)
        apply_mutations(db)
        answers = run_probes(db)
        stale = journal_path.read_bytes()  # the pre-compaction journal
        db.compact()
        db.journal.close()
        # Simulate kill -9 after save(base) but before journal.reset():
        # the folded records reappear in the journal file.
        journal_path.write_bytes(stale)
        recovered = ObstacleDatabase.load(base, durable=journal_path)
        assert recovered.journal.record_count == 0  # truncation completed
        assert os.path.getsize(journal_path) == JOURNAL_HEADER_SIZE
        assert len(recovered.entity_tree(SET_NAME)) == 17  # not 18
        assert run_probes(recovered) == answers
        # New mutations must out-sequence the stamp, so a second
        # recovery replays exactly the new record and nothing else.
        recovered.insert_entity(SET_NAME, Point(59.0, 59.0))
        recovered.journal.close()
        again = ObstacleDatabase.load(base, durable=journal_path)
        assert len(again.entity_tree(SET_NAME)) == 18

    def test_shape_change_reanchors(self, tmp_path):
        journal_path = tmp_path / "db.journal"
        base = tmp_path / "base.snap"
        db = build_durable(journal_path)
        db.save(base)
        db.insert_obstacle(Rect(61.0, 61.0, 63.0, 63.0))
        db.add_entity_set("Q", [Point(70.0, 70.0)])
        # The structural change folded journal + new set into the base.
        assert db.journal.record_count == 0
        assert db.runtime_stats()["compactions"] == 1
        db.journal.close()
        recovered = ObstacleDatabase.load(base, durable=journal_path)
        assert len(recovered.entity_tree("Q")) == 1


class TestDurabilityGuards:
    def test_fresh_open_refuses_nonempty_journal(self, tmp_path):
        journal_path = tmp_path / "db.journal"
        db = build_durable(journal_path)
        db.save(tmp_path / "base.snap")
        db.insert_obstacle(Rect(61.0, 61.0, 63.0, 63.0))
        db.journal.close()
        with pytest.raises(DatasetError, match="already holds 1 record"):
            build_durable(journal_path)

    def test_fresh_open_reuses_empty_journal(self, tmp_path):
        journal_path = tmp_path / "db.journal"
        journal = MutationJournal.create(journal_path)
        journal.close()
        db = build_durable(journal_path)
        assert db.journal.record_count == 0
        db.journal.close()

    def test_env_directory_allocates_unique_journals(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_JOURNAL", str(tmp_path))
        a = ObstacleDatabase([Rect(1.0, 1.0, 2.0, 2.0)])
        b = ObstacleDatabase([Rect(1.0, 1.0, 2.0, 2.0)])
        assert a.journal is not None and b.journal is not None
        assert a.journal.path != b.journal.path
        a.insert_obstacle(Rect(4.0, 4.0, 5.0, 5.0))
        assert a.journal.record_count == 1
        assert b.journal.record_count == 0
        a.journal.close()
        b.journal.close()

    def test_not_durable_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOURNAL", raising=False)
        db = ObstacleDatabase([Rect(1.0, 1.0, 2.0, 2.0)])
        assert db.journal is None
