"""Persistence (snapshot store) test suite."""
