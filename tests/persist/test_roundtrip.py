"""Round-trip property suite: a restored database is observationally
identical to the live one.

Hypothesis-randomized scenes (shared strategies) are saved and
reloaded across every visibility backend and both storage layouts;
the restored database must reproduce bit-identical query answers,
identical simulated page-miss counters on a fixed access sequence,
and structurally identical cached visibility graphs.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.engine import ObstacleDatabase
from repro.geometry.point import Point
from repro.geometry.rect import Rect

from tests.persist.helpers import (
    backend_params,
    cache_signature,
    runtime_counters,
    storage_params,
    warm_queries,
)
from tests.strategies import disjoint_rect_obstacles, free_points


def _build_db(
    obstacles, entities, *, backend: str, shards: int | None, snap: float = 0.0
) -> ObstacleDatabase:
    db = ObstacleDatabase(
        [o.polygon for o in obstacles],
        backend=backend,
        shards=shards,
        graph_cache_snap=snap,
        max_entries=8,
        min_entries=3,
    )
    db.add_entity_set("P", entities)
    return db


def _roundtrip(db: ObstacleDatabase, tmp_dir, backend: str) -> ObstacleDatabase:
    path = os.path.join(str(tmp_dir), "db.snap")
    db.save(path)
    return ObstacleDatabase.load(path, backend=backend)


@pytest.mark.parametrize("backend", backend_params())
@pytest.mark.parametrize("shards", storage_params())
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_roundtrip_parity(tmp_path, backend, shards, data):
    """Answers, page counters, runtime counters and cached graphs all
    survive save -> load, on randomized scenes."""
    obstacles = data.draw(disjoint_rect_obstacles(max_count=5))
    entities = data.draw(free_points(obstacles, min_count=2, max_count=6))
    probes = data.draw(free_points(obstacles, min_count=1, max_count=3))
    snap = data.draw(st.sampled_from([0.0, 2.0]))
    db = _build_db(
        obstacles, entities, backend=backend, shards=shards, snap=snap
    )
    live_answers = warm_queries(db, probes)
    saved_builds = db.runtime_stats()["graph_builds"]
    loaded = _roundtrip(db, tmp_path, backend)

    # Runtime counters persist (format 2): the restored database
    # reports the same build count it was saved with...
    assert loaded.runtime_stats()["graph_builds"] == saved_builds
    # ...and a warm start means replaying the workload adds zero new
    # builds on top of it, answering identically.
    loaded_answers = warm_queries(loaded, probes)
    assert loaded_answers == live_answers
    assert loaded.runtime_stats()["graph_builds"] == saved_builds

    # Cached graphs are structurally identical (before the replay the
    # signature already matched; the replay mutates recency only).
    assert cache_signature(loaded) == cache_signature(db)

    # Identical page-miss counters on a fixed access sequence: the
    # restored trees have the same pages *and* the same buffer
    # residency, so the counters march in lockstep.
    db.reset_stats()
    loaded.reset_stats()
    replay_live = warm_queries(db, probes)
    replay_loaded = warm_queries(loaded, probes)
    assert replay_loaded == replay_live
    assert loaded.stats() == db.stats()
    assert runtime_counters(loaded) == runtime_counters(db)


@pytest.mark.parametrize("backend", backend_params())
@pytest.mark.parametrize("shards", storage_params())
def test_batch_answers_roundtrip(tmp_path, backend, shards):
    """batch_nearest / batch_range parity between live and restored."""
    obstacles = [
        Rect(10.0, 10.0, 20.0, 25.0),
        Rect(40.0, 5.0, 55.0, 18.0),
        Rect(30.0, 40.0, 45.0, 52.0),
    ]
    entities = [Point(5.0, 5.0), Point(25.0, 30.0), Point(60.0, 20.0)]
    queries = [Point(0.0, 0.0), Point(35.0, 35.0), Point(50.0, 2.0)]
    db = ObstacleDatabase(obstacles, backend=backend, shards=shards)
    db.add_entity_set("P", entities)
    live_nearest = db.batch_nearest("P", queries, 2, workers=0)
    live_range = db.batch_range("P", queries, 30.0, workers=0)
    loaded = _roundtrip(db, tmp_path, backend)
    assert loaded.batch_nearest("P", queries, 2, workers=0) == live_nearest
    assert loaded.batch_range("P", queries, 30.0, workers=0) == live_range


def test_composite_sources_roundtrip(tmp_path):
    """Multiple obstacle sets (composite source) round-trip."""
    db = ObstacleDatabase([Rect(2.0, 2.0, 4.0, 8.0)])
    db.add_obstacle_set("extra", [Rect(10.0, 1.0, 12.0, 6.0)])
    db.add_entity_set("P", [Point(6.0, 5.0), Point(0.0, 5.0)])
    q = Point(1.0, 5.0)
    live = db.nearest("P", q, 2)
    loaded = _roundtrip(db, tmp_path, "python-sweep")
    assert loaded.nearest("P", q, 2) == live
    assert sorted(loaded._obstacle_indexes) == ["extra", "obstacles"]


def test_mutated_database_roundtrips_versions(tmp_path):
    """Insert/delete history (version counters) survives, so stamps
    saved fresh stay fresh and stamps saved stale stay stale."""
    db = ObstacleDatabase([Rect(2.0, 2.0, 4.0, 8.0)], shards=4)
    db.add_entity_set("P", [Point(6.0, 5.0)])
    record = db.insert_obstacle(Rect(8.0, 2.0, 9.0, 4.0))
    db.nearest("P", Point(1.0, 5.0), 1)
    assert db.delete_obstacle(record)
    live_version = db.obstacle_index.version
    loaded = _roundtrip(db, tmp_path, "python-sweep")
    assert loaded.obstacle_index.version == live_version
    assert loaded.obstacle_index.layout_version == (
        db.obstacle_index.layout_version
    )
    assert loaded.nearest("P", Point(1.0, 5.0), 1) == db.nearest(
        "P", Point(1.0, 5.0), 1
    )


def test_dynamic_entity_updates_roundtrip(tmp_path):
    """Entity trees built by repeated insertion (not bulk) round-trip
    with their exact page structure."""
    db = ObstacleDatabase([Rect(5.0, 5.0, 8.0, 9.0)], bulk=False)
    db.add_entity_set("P", [])
    for i in range(40):
        db.insert_entity("P", Point(float(i % 7), float(i % 11)))
    assert db.delete_entity("P", Point(0.0, 0.0))
    live_tree = db.entity_tree("P")
    loaded = _roundtrip(db, tmp_path, "python-sweep")
    loaded_tree = loaded.entity_tree("P")
    loaded_tree.check_invariants()
    assert loaded_tree.size == live_tree.size
    assert loaded_tree.page_count == live_tree.page_count
    assert loaded_tree.root_id == live_tree.root_id
    assert loaded_tree.height == live_tree.height
    assert sorted(loaded_tree.buffer.page_ids()) == sorted(
        live_tree.buffer.page_ids()
    )
    assert loaded_tree.counter.snapshot() == live_tree.counter.snapshot()


def test_cold_snapshot_excludes_cache(tmp_path):
    """include_cache=False writes structure only; the restored runtime
    starts cold but answers identically."""
    db = ObstacleDatabase([Rect(3.0, 3.0, 6.0, 7.0)])
    db.add_entity_set("P", [Point(1.0, 1.0), Point(9.0, 9.0)])
    q = Point(5.0, 1.0)
    live = db.nearest("P", q, 1)
    path = os.path.join(str(tmp_path), "cold.snap")
    db.save(path, include_cache=False)
    loaded = ObstacleDatabase.load(path)
    assert len(loaded.context.cache) == 0
    assert loaded.nearest("P", q, 1) == live
    assert loaded.runtime_stats()["graph_builds"] > 0


def test_cache_knob_via_environment(tmp_path, monkeypatch):
    """REPRO_SNAPSHOT_CACHE=0 defaults saves to cold snapshots."""
    db = ObstacleDatabase([Rect(3.0, 3.0, 6.0, 7.0)])
    db.add_entity_set("P", [Point(1.0, 1.0)])
    db.nearest("P", Point(5.0, 1.0), 1)
    path = os.path.join(str(tmp_path), "cold.snap")
    monkeypatch.setenv("REPRO_SNAPSHOT_CACHE", "0")
    db.save(path)
    assert len(ObstacleDatabase.load(path).context.cache) == 0
    monkeypatch.setenv("REPRO_SNAPSHOT_CACHE", "2")
    from repro.errors import DatasetError

    with pytest.raises(DatasetError, match="REPRO_SNAPSHOT_CACHE"):
        db.save(path)


def test_runtime_counters_roundtrip(tmp_path):
    """Format 2 carries the runtime counters: a restored database
    reports exactly the values it was saved with (except ``backend``,
    which the restored context re-selects)."""
    db = ObstacleDatabase([Rect(4.0, 2.0, 6.0, 8.0)])
    db.add_entity_set("P", [Point(1.0, 5.0), Point(9.0, 5.0)])
    db.nearest("P", Point(2.0, 1.0), 2)
    db.obstructed_distance(Point(2.0, 5.0), Point(8.0, 5.0))
    saved = db.runtime_stats()
    assert saved["graph_builds"] > 0  # the probe did real work
    loaded = _roundtrip(db, tmp_path, "python-sweep")
    restored = loaded.runtime_stats()
    for counter, value in saved.items():
        if counter == "backend":
            continue
        assert restored[counter] == value, f"counter {counter} drifted"


def test_v1_snapshot_loads_with_zeroed_counters(tmp_path, monkeypatch):
    """A version-1 file (no runtime-stats section) still loads: the
    counters come up zeroed, answers and cache state are unaffected."""
    from repro.persist import codec, store

    db = ObstacleDatabase([Rect(4.0, 2.0, 6.0, 8.0)])
    db.add_entity_set("P", [Point(1.0, 5.0), Point(9.0, 5.0)])
    q = Point(2.0, 1.0)
    live = db.nearest("P", q, 2)
    path = os.path.join(str(tmp_path), "v1.snap")
    monkeypatch.setattr(codec, "FORMAT_VERSION", 1)
    monkeypatch.setattr(store, "_write_runtime_stats", lambda w, s: None)
    db.save(path)
    loaded = ObstacleDatabase.load(path)
    restored = loaded.runtime_stats()
    assert all(v == 0 for k, v in restored.items() if k != "backend")
    assert loaded.nearest("P", q, 2) == live
    assert len(loaded.context.cache) == len(db.context.cache)


def test_empty_database_roundtrip(tmp_path):
    """A database with no obstacles and no entities still round-trips."""
    db = ObstacleDatabase([])
    loaded = _roundtrip(db, tmp_path, "python-sweep")
    assert len(loaded.obstacle_index) == 0
    assert loaded.universe() is None


def test_array_codec_paths_identical(tmp_path, monkeypatch):
    """The numpy and struct array paths write byte-identical files and
    read each other's output."""
    pytest.importorskip("numpy")
    db = ObstacleDatabase([Rect(3.0, 3.0, 6.0, 7.0)], shards=4)
    db.add_entity_set("P", [Point(1.0, 1.0), Point(9.0, 2.0)])
    db.nearest("P", Point(0.0, 5.0), 1)
    a = os.path.join(str(tmp_path), "a.snap")
    b = os.path.join(str(tmp_path), "b.snap")
    monkeypatch.setenv("REPRO_SNAPSHOT_ARRAYS", "numpy")
    db.save(a)
    monkeypatch.setenv("REPRO_SNAPSHOT_ARRAYS", "struct")
    db.save(b)
    with open(a, "rb") as fa, open(b, "rb") as fb:
        assert fa.read() == fb.read()
    # cross-read: struct reader on a numpy-written file
    loaded = ObstacleDatabase.load(a)
    assert cache_signature(loaded) == cache_signature(db)
    monkeypatch.setenv("REPRO_SNAPSHOT_ARRAYS", "bogus")
    from repro.errors import DatasetError

    with pytest.raises(DatasetError, match="REPRO_SNAPSHOT_ARRAYS"):
        db.save(a)
