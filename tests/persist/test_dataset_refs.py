"""Dataset references: snapshots pin source files by content hash.

A reload verifies the referenced files' *content* — touching mtimes or
copying files never spoils a reference, editing them always does.
"""

from __future__ import annotations

import os

import pytest

from repro.core.engine import ObstacleDatabase
from repro.datasets.io import (
    content_hash,
    load_obstacles,
    save_obstacles,
)
from repro.errors import DatasetError
from repro.geometry.rect import Rect
from repro.model import Obstacle
from repro.geometry.polygon import Polygon


@pytest.fixture
def referenced_snapshot(tmp_path):
    """A snapshot recording its obstacle file by content hash."""
    obstacles = [
        Obstacle(0, Polygon.from_rect(Rect(2.0, 2.0, 4.0, 8.0))),
        Obstacle(1, Polygon.from_rect(Rect(10.0, 1.0, 12.0, 6.0))),
    ]
    data_path = tmp_path / "obstacles.txt"
    save_obstacles(data_path, obstacles)
    db = ObstacleDatabase(load_obstacles(data_path))
    snap_path = tmp_path / "scene.snap"
    db.save(snap_path, dataset_refs={"obstacles": data_path})
    return snap_path, data_path


def test_reload_by_content_hash_ignores_mtime(referenced_snapshot):
    """An untouched-content file reloads even after its mtime changes."""
    snap_path, data_path = referenced_snapshot
    os.utime(data_path, (1, 1))  # simulate a copy/restore clobbering mtime
    db = ObstacleDatabase.load(snap_path)
    assert len(db.obstacle_index) == 2


def test_reload_refuses_changed_content(referenced_snapshot):
    """Editing the referenced file (same length, fresh mtime games
    aside) fails the hash check by name."""
    snap_path, data_path = referenced_snapshot
    original = data_path.read_bytes()
    data_path.write_bytes(original.replace(b"2", b"3", 1))
    os.utime(data_path, (1, 1))
    with pytest.raises(DatasetError, match="changed since the snapshot"):
        ObstacleDatabase.load(snap_path)
    # Restoring the exact content (different mtime again) heals it.
    data_path.write_bytes(original)
    assert ObstacleDatabase.load(snap_path) is not None


def test_relative_refs_resolve_against_snapshot_dir(tmp_path, monkeypatch):
    """A snapshot saved next to its datasets with *relative* refs loads
    from any working directory (the ref falls back to the snapshot's
    own directory)."""
    obstacles = [Obstacle(0, Polygon.from_rect(Rect(2.0, 2.0, 4.0, 8.0)))]
    data_path = tmp_path / "obstacles.txt"
    save_obstacles(data_path, obstacles)
    monkeypatch.chdir(tmp_path)
    db = ObstacleDatabase(load_obstacles("obstacles.txt"))
    db.save("scene.snap", dataset_refs={"obstacles": "obstacles.txt"})
    monkeypatch.chdir("/")
    loaded = ObstacleDatabase.load(tmp_path / "scene.snap")
    assert len(loaded.obstacle_index) == 1


def test_reload_refuses_missing_file(referenced_snapshot):
    snap_path, data_path = referenced_snapshot
    data_path.unlink()
    with pytest.raises(DatasetError, match="missing"):
        ObstacleDatabase.load(snap_path)


def test_content_hash_is_content_only(tmp_path):
    """content_hash depends on bytes alone, not on path or mtime."""
    a = tmp_path / "a.txt"
    b = tmp_path / "sub"
    b.mkdir()
    b = b / "b.txt"
    a.write_bytes(b"0 1.0 1.0 2.0 1.0 2.0 2.0\n")
    b.write_bytes(b"0 1.0 1.0 2.0 1.0 2.0 2.0\n")
    os.utime(b, (1, 1))
    assert content_hash(a) == content_hash(b)
    b.write_bytes(b"0 1.0 1.0 2.0 1.0 2.0 3.0\n")
    assert content_hash(a) != content_hash(b)


def test_content_hash_missing_file(tmp_path):
    with pytest.raises(DatasetError, match="cannot hash"):
        content_hash(tmp_path / "nope.txt")
