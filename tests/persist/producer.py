"""Deterministic snapshot producer for the cross-process tests.

Builds a fixed, seeded database, warms its cache, and saves it — run
as ``python -m tests.persist.producer OUT.snap`` from the repo root
(CI runs it in a separate process, then the tier-1 suite loads the
file via ``REPRO_SNAPSHOT_FILE``).  :func:`build_db` is also imported
by the consumer tests to recreate the identical database in-process
and compare answers, which is sound because the construction is fully
deterministic (seeded RNG, no hash-salted types in any ordering).
"""

from __future__ import annotations

import random
import sys

from repro.core.engine import ObstacleDatabase
from repro.geometry.point import Point

from tests.conftest import random_disjoint_rects, random_free_points

SEED = 20040314
SHARDS = 8
SNAP = 2.0
SET_NAME = "P"


def probe_points() -> list[Point]:
    """The fixed probe/warm-up query positions."""
    rng = random.Random(SEED + 1)
    obstacles = random_disjoint_rects(random.Random(SEED), 20)
    return random_free_points(rng, 6, obstacles)


def build_db() -> ObstacleDatabase:
    """The canonical deterministic database, cache warmed."""
    rng = random.Random(SEED)
    obstacles = random_disjoint_rects(rng, 20)
    entities = random_free_points(random.Random(SEED + 2), 30, obstacles)
    db = ObstacleDatabase(
        [o.polygon for o in obstacles],
        shards=SHARDS,
        graph_cache_snap=SNAP,
        max_entries=16,
        min_entries=4,
    )
    db.add_entity_set(SET_NAME, entities)
    for q in probe_points():
        db.nearest(SET_NAME, q, 3)
        db.range(SET_NAME, q, 20.0)
    return db


def expected_answers(db: ObstacleDatabase) -> list[object]:
    """The probe workload's answers on ``db``."""
    answers: list[object] = []
    for q in probe_points():
        answers.append(db.nearest(SET_NAME, q, 3))
        answers.append(db.range(SET_NAME, q, 20.0))
    return answers


def main(argv: list[str]) -> int:
    """Build the canonical database and save it to ``argv[0]``."""
    if len(argv) != 1:
        print("usage: python -m tests.persist.producer OUT.snap")
        return 2
    db = build_db()
    db.save(argv[0])
    print(
        f"wrote {argv[0]}: {len(db.context.cache)} cached graph(s), "
        f"{db.runtime_stats()['graph_builds']} build(s)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
