"""Warm-start regression tests.

A restored database must (a) build zero new visibility graphs for
query centres its restored cache already covers, and (b) keep routing
post-load mutations repair-first — the context re-subscribes to the
restored sources' mutation feed at load time.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.core.engine import ObstacleDatabase
from repro.geometry.point import Point
from repro.geometry.rect import Rect

from tests.persist import producer
from tests.persist.helpers import backend_params, cache_signature

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)


def _warm_db(backend: str, shards: int | None) -> tuple[ObstacleDatabase, list[Point]]:
    obstacles = [
        Rect(10.0, 10.0, 20.0, 25.0),
        Rect(40.0, 5.0, 55.0, 18.0),
        Rect(30.0, 40.0, 45.0, 52.0),
    ]
    db = ObstacleDatabase(obstacles, backend=backend, shards=shards)
    db.add_entity_set("P", [Point(5.0, 5.0), Point(25.0, 30.0), Point(60.0, 20.0)])
    probes = [Point(0.0, 0.0), Point(35.0, 35.0), Point(50.0, 2.0)]
    for q in probes:
        db.nearest("P", q, 2)
    return db, probes


@pytest.mark.parametrize("backend", backend_params())
@pytest.mark.parametrize("shards", [None, 8])
def test_covered_centres_build_nothing(tmp_path, backend, shards):
    """Load-then-query builds 0 new graphs for restored centres."""
    db, probes = _warm_db(backend, shards)
    live = [db.nearest("P", q, 2) for q in probes]
    path = tmp_path / "warm.snap"
    db.save(path)
    saved = db.runtime_stats()
    loaded = ObstacleDatabase.load(path, backend=backend)
    assert [loaded.nearest("P", q, 2) for q in probes] == live
    # Counters persist (format 2): the replay adds zero builds and
    # zero rebuilds on top of the restored counts — only cache hits.
    stats = loaded.runtime_stats()
    assert stats["graph_builds"] == saved["graph_builds"]
    assert stats["graph_rebuilds"] == saved["graph_rebuilds"]
    assert stats["graph_cache_hits"] > saved["graph_cache_hits"]


@pytest.mark.parametrize("shards", [None, 8])
def test_mutation_after_load_routes_repair_first(tmp_path, shards):
    """An insert landing inside a restored coverage disk is repaired in
    place (feed re-subscription), not invalidated."""
    db, probes = _warm_db("python-sweep", shards)
    path = tmp_path / "warm.snap"
    db.save(path)
    loaded = ObstacleDatabase.load(path, backend="python-sweep")
    # Prime one lookup so the entry is demonstrably live, then mutate
    # inside its coverage disk (the probe's nearest ran at radius >=
    # distance to the entities, so a small box near the probe is in).
    q = probes[0]
    loaded.nearest("P", q, 2)
    before = loaded.runtime_stats()["graph_cache_repairs"]
    record = loaded.insert_obstacle(Rect(q.x + 1.0, q.y + 1.0, q.x + 3.0, q.y + 3.0))
    after_insert = loaded.runtime_stats()
    assert after_insert["graph_cache_repairs"] > before
    assert after_insert["graph_cache_invalidations"] == 0
    # The repaired cache answers exactly like a cold database over the
    # mutated obstacle set.
    reference = ObstacleDatabase(
        [o.polygon for __, o in _obstacle_items(loaded)],
        backend="python-sweep",
    )
    reference.add_entity_set(
        "P", [p for p, __ in loaded.entity_tree("P").items()]
    )
    for probe in probes:
        assert loaded.nearest("P", probe, 2) == reference.nearest(
            "P", probe, 2
        )
    # Delete routes repair-first too.
    repairs = loaded.runtime_stats()["graph_cache_repairs"]
    assert loaded.delete_obstacle(record)
    assert loaded.runtime_stats()["graph_cache_repairs"] > repairs


def _obstacle_items(db: ObstacleDatabase):
    """(oid, obstacle) pairs of the primary set, deduped."""
    seen = {}
    for tree in db._obstacle_indexes["obstacles"].trees():
        for obs, __ in tree.items():
            seen[obs.oid] = obs
    return sorted(seen.items())


def test_field_reuse_after_load(tmp_path):
    """obstructed_distance against a restored centre reuses the
    restored graph (distance-call path, not just nearest)."""
    db = ObstacleDatabase([Rect(4.0, 2.0, 6.0, 8.0)])
    a, b = Point(2.0, 5.0), Point(8.0, 5.0)
    live = db.obstructed_distance(a, b)
    path = tmp_path / "d.snap"
    db.save(path)
    saved_builds = db.runtime_stats()["graph_builds"]
    loaded = ObstacleDatabase.load(path)
    assert loaded.obstructed_distance(a, b) == live
    assert loaded.runtime_stats()["graph_builds"] == saved_builds


class TestCrossProcess:
    def test_subprocess_saved_snapshot_loads_here(self, tmp_path):
        """Save in one process, load in another: the producer module
        writes the snapshot in a child interpreter; this process
        restores it and matches an independently built twin."""
        path = tmp_path / "cross.snap"
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            os.path.join(REPO_ROOT, "src")
            + os.pathsep
            + env.get("PYTHONPATH", "")
        )
        result = subprocess.run(
            [sys.executable, "-m", "tests.persist.producer", str(path)],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert result.returncode == 0, result.stderr
        loaded = ObstacleDatabase.load(path)
        twin = producer.build_db()
        # The producer is deterministic, so the restored counters match
        # an identically built twin's exactly — and the probe replay
        # builds nothing new on either.
        assert (
            loaded.runtime_stats()["graph_builds"]
            == twin.runtime_stats()["graph_builds"]
        )
        assert producer.expected_answers(loaded) == producer.expected_answers(
            twin
        )
        assert (
            loaded.runtime_stats()["graph_builds"]
            == twin.runtime_stats()["graph_builds"]
        )
        assert cache_signature(loaded) == cache_signature(twin)

    @pytest.mark.skipif(
        not os.environ.get("REPRO_SNAPSHOT_FILE"),
        reason="REPRO_SNAPSHOT_FILE not set (CI cross-process leg only)",
    )
    def test_ci_handshake_snapshot(self):
        """CI leg: an earlier job step produced REPRO_SNAPSHOT_FILE via
        the producer module in a separate process; verify it here."""
        path = os.environ["REPRO_SNAPSHOT_FILE"]
        loaded = ObstacleDatabase.load(path)
        twin = producer.build_db()
        assert producer.expected_answers(loaded) == producer.expected_answers(
            twin
        )
        assert (
            loaded.runtime_stats()["graph_builds"]
            == twin.runtime_stats()["graph_builds"]
        )
