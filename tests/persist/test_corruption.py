"""Corruption handling: every damaged snapshot fails loudly, located,
and without leaving partial state behind."""

from __future__ import annotations

import struct
import zlib

import pytest

from repro.core.engine import ObstacleDatabase
from repro.errors import DatasetError
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.persist.codec import FORMAT_VERSION, HEADER_SIZE, MAGIC


@pytest.fixture
def snapshot(tmp_path):
    """A small valid snapshot plus its path."""
    db = ObstacleDatabase([Rect(2.0, 2.0, 4.0, 8.0)], shards=4)
    db.add_entity_set("P", [Point(6.0, 5.0), Point(0.0, 5.0)])
    db.nearest("P", Point(1.0, 5.0), 1)
    path = tmp_path / "scene.snap"
    db.save(path)
    return path


def _expect_failure(path, *, match: str | None = None):
    with pytest.raises(DatasetError) as err:
        ObstacleDatabase.load(path)
    message = str(err.value)
    assert str(path) in message, f"path missing from error: {message}"
    assert "offset" in message, f"offset missing from error: {message}"
    if match is not None:
        assert match in message, f"{match!r} not in {message}"


class TestTruncation:
    def test_truncated_header(self, snapshot, tmp_path):
        data = snapshot.read_bytes()
        short = tmp_path / "short.snap"
        short.write_bytes(data[: HEADER_SIZE - 5])
        _expect_failure(short, match="truncated snapshot header")

    def test_truncated_payload(self, snapshot, tmp_path):
        data = snapshot.read_bytes()
        short = tmp_path / "short.snap"
        short.write_bytes(data[:-7])
        _expect_failure(short, match="truncated snapshot payload")

    def test_empty_file(self, snapshot, tmp_path):
        empty = tmp_path / "empty.snap"
        empty.write_bytes(b"")
        _expect_failure(empty, match="truncated snapshot header")


class TestChecksum:
    def test_flipped_payload_byte(self, snapshot, tmp_path):
        data = bytearray(snapshot.read_bytes())
        data[HEADER_SIZE + len(data) // 2] ^= 0xFF
        bad = tmp_path / "bad.snap"
        bad.write_bytes(bytes(data))
        _expect_failure(bad, match="payload checksum mismatch")

    def test_flipped_header_byte(self, snapshot, tmp_path):
        data = bytearray(snapshot.read_bytes())
        data[10] ^= 0xFF  # inside the version field
        bad = tmp_path / "bad.snap"
        bad.write_bytes(bytes(data))
        _expect_failure(bad, match="header checksum mismatch")

    def test_bad_magic(self, snapshot, tmp_path):
        data = bytearray(snapshot.read_bytes())
        data[0] ^= 0xFF
        bad = tmp_path / "bad.snap"
        bad.write_bytes(bytes(data))
        with pytest.raises(DatasetError, match="bad magic"):
            ObstacleDatabase.load(bad)


class TestVersioning:
    def test_future_format_version(self, snapshot, tmp_path):
        """A snapshot written by a future format version is refused by
        name, even though its checksums are internally consistent."""
        data = snapshot.read_bytes()
        payload = data[HEADER_SIZE:]
        head = struct.pack(
            "<8sIQI",
            MAGIC,
            FORMAT_VERSION + 41,
            len(payload),
            zlib.crc32(payload),
        )
        future = tmp_path / "future.snap"
        future.write_bytes(
            head + struct.pack("<I", zlib.crc32(head)) + payload
        )
        _expect_failure(future, match=f"version {FORMAT_VERSION + 41}")

    def test_current_version_accepted(self, snapshot):
        assert ObstacleDatabase.load(snapshot) is not None


class TestNoPartialState:
    def test_failed_load_then_good_load(self, snapshot, tmp_path):
        """A failed load leaves nothing behind: the pristine file still
        loads, and produces a fully functional database."""
        data = bytearray(snapshot.read_bytes())
        data[-1] ^= 0x01
        bad = tmp_path / "bad.snap"
        bad.write_bytes(bytes(data))
        with pytest.raises(DatasetError):
            ObstacleDatabase.load(bad)
        db = ObstacleDatabase.load(snapshot)
        assert db.nearest("P", Point(1.0, 5.0), 1)
        for index in db._obstacle_indexes.values():
            for tree in index.trees():
                tree.check_invariants()

    def test_interrupted_save_never_clobbers(self, snapshot, tmp_path, monkeypatch):
        """save() writes through a temp file + atomic rename, so a
        crash mid-write leaves the previous snapshot intact."""
        import repro.persist.framing as framing

        before = snapshot.read_bytes()

        def explode(tmp, target):
            raise OSError("disk full")

        monkeypatch.setattr(framing.os, "replace", explode)
        db = ObstacleDatabase([Rect(1.0, 1.0, 2.0, 2.0)])
        with pytest.raises(OSError):
            db.save(snapshot)
        assert snapshot.read_bytes() == before
        assert not list(snapshot.parent.glob("*.tmp.*"))
