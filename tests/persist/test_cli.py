"""The ``repro-snapshot`` command-line interface."""

from __future__ import annotations

import random

import pytest

from repro.core.engine import ObstacleDatabase
from repro.datasets.io import save_obstacles, save_points
from repro.persist.cli import main

from tests.conftest import random_disjoint_rects, random_free_points


@pytest.fixture
def dataset_files(tmp_path):
    """Obstacle + entity dataset files and their records."""
    rng = random.Random(11)
    obstacles = random_disjoint_rects(rng, 10)
    points = random_free_points(rng, 15, obstacles)
    obstacle_path = tmp_path / "obstacles.txt"
    points_path = tmp_path / "cafes.txt"
    save_obstacles(obstacle_path, obstacles)
    save_points(points_path, points)
    return obstacle_path, points_path, obstacles, points


class TestSave:
    def test_save_info_verify(self, dataset_files, tmp_path, capsys):
        obstacle_path, points_path, obstacles, points = dataset_files
        out = tmp_path / "scene.snap"
        code = main(
            [
                "save",
                "--obstacles",
                str(obstacle_path),
                "--entities",
                f"cafes={points_path}",
                "--shards",
                "8",
                "--warm",
                "3",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        assert out.exists()
        assert main(["info", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "sharded" in printed
        assert "cafes" in printed
        assert "dataset ref" in printed
        assert main(["verify", str(out)]) == 0
        db = ObstacleDatabase.load(out)
        assert len(db.obstacle_index) == len(obstacles)
        assert db.entity_tree("cafes").size == len(points)
        assert len(db.context.cache) > 0  # --warm shipped a warm cache

    def test_warm_without_entities(self, dataset_files, tmp_path):
        obstacle_path = dataset_files[0]
        out = tmp_path / "scene.snap"
        code = main(
            [
                "save",
                "--obstacles",
                str(obstacle_path),
                "--warm",
                "2",
                "--no-refs",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        assert len(ObstacleDatabase.load(out).context.cache) > 0

    def test_malformed_entity_spec(self, dataset_files, tmp_path):
        obstacle_path = dataset_files[0]
        code = main(
            [
                "save",
                "--obstacles",
                str(obstacle_path),
                "--entities",
                "nofile",
                "--out",
                str(tmp_path / "x.snap"),
            ]
        )
        assert code == 2

    def test_corrupt_file_reports_error(self, dataset_files, tmp_path, capsys):
        bad = tmp_path / "bad.snap"
        bad.write_bytes(b"garbage bytes, not a snapshot")
        assert main(["verify", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err
