"""Shared helpers for the snapshot-store tests."""

from __future__ import annotations

from repro.core.engine import ObstacleDatabase
from repro.geometry.point import Point
from repro.visibility.kernel.backend import numpy_available


def backend_params() -> list[str]:
    """Every visibility backend runnable in this environment."""
    names = ["python-sweep", "naive"]
    if numpy_available():
        names.append("numpy-kernel")
    return names


def storage_params() -> list[int | None]:
    """Obstacle storage layouts: monolithic and sharded."""
    return [None, 8]


def warm_queries(
    db: ObstacleDatabase, probes: list[Point], *, set_name: str = "P", k: int = 2
) -> list[object]:
    """Run a deterministic mixed workload; returns its answers.

    One nearest and one range query per probe point — enough to
    populate the graph cache with coverage around every probe.
    """
    answers: list[object] = []
    for q in probes:
        answers.append(db.nearest(set_name, q, k))
        answers.append(db.range(set_name, q, 15.0))
    return answers


def runtime_counters(db: ObstacleDatabase) -> dict[str, object]:
    """Runtime stats minus wall-clock noise (``sweep_seconds``)."""
    return {
        k: v for k, v in db.runtime_stats().items() if k != "sweep_seconds"
    }


def cache_signature(db: ObstacleDatabase) -> list[tuple]:
    """A structural fingerprint of every cached graph, in LRU order:
    centre, coverage, guest order, node set, edge set, obstacle ids."""
    signature = []
    for entry in db.context.cache.entries():
        graph = entry.graph
        edges = {
            (u, v) if u < v else (v, u)
            for u in graph.nodes()
            for v in graph.neighbors(u)
        }
        signature.append(
            (
                entry.center,
                entry.covered,
                tuple(entry.guests),
                frozenset(graph.nodes()),
                frozenset(edges),
                frozenset(graph.obstacle_ids()),
                frozenset(graph.free_points()),
            )
        )
    return signature
