"""The shared framing layer: durable atomic writes and the one header
implementation behind snapshots, traces, and the journal."""

from __future__ import annotations

import os
import threading

import pytest

from repro.errors import DatasetError
from repro.persist import framing

MAGIC = b"RPROTEST"


class TestHeaderSharing:
    def test_one_header_size_everywhere(self):
        from repro.persist import codec
        from repro.workloads import trace

        assert codec.HEADER_SIZE == framing.HEADER_SIZE
        assert trace.TRACE_HEADER_SIZE == framing.HEADER_SIZE
        from repro.persist.journal import JOURNAL_HEADER_SIZE

        assert JOURNAL_HEADER_SIZE == framing.HEADER_SIZE

    def test_frame_round_trip(self, tmp_path):
        payload = bytes(range(256)) * 3
        framing.write_framed(tmp_path / "f.bin", MAGIC, 7, payload)
        version, back = framing.read_framed(
            tmp_path / "f.bin",
            magic=MAGIC,
            max_version=9,
            kind="test",
            what="framing test file",
        )
        assert (version, back) == (7, payload)

    def test_version_too_new_refused(self, tmp_path):
        framing.write_framed(tmp_path / "f.bin", MAGIC, 3, b"x")
        with pytest.raises(DatasetError, match="newer than the supported"):
            framing.read_framed(
                tmp_path / "f.bin",
                magic=MAGIC,
                max_version=2,
                kind="test",
                what="framing test file",
            )


class TestDurableAtomicWrite:
    def test_fsyncs_file_and_directory(self, tmp_path, monkeypatch):
        """The write is durable, not just atomic: the temp file is
        fsynced before the rename and the parent directory after."""
        real_fsync = os.fsync
        synced: list[int] = []

        def counting_fsync(fd):
            synced.append(fd)
            real_fsync(fd)

        monkeypatch.setattr(framing.os, "fsync", counting_fsync)
        framing.atomic_write_bytes(tmp_path / "out.bin", b"payload")
        assert len(synced) >= 2  # temp file, then the directory

    def test_foreign_temp_file_survives(self, tmp_path):
        """Cleanup unlinks only the temp file this call created — a
        concurrent writer's temp sibling is not collateral."""
        target = tmp_path / "out.bin"
        foreign = tmp_path / "out.bin.tmp.999999"
        foreign.write_bytes(b"someone else's in-flight save")
        framing.atomic_write_bytes(target, b"mine")
        assert target.read_bytes() == b"mine"
        assert foreign.read_bytes() == b"someone else's in-flight save"

    def test_concurrent_saves_same_target(self, tmp_path):
        """Racing saves of one target never collide on a temp name:
        the survivor is one complete payload and no temp is left."""
        target = tmp_path / "out.bin"
        payloads = [bytes([i]) * 4096 for i in range(8)]
        threads = [
            threading.Thread(
                target=framing.atomic_write_bytes, args=(target, blob)
            )
            for blob in payloads
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert target.read_bytes() in payloads
        leftovers = [p for p in tmp_path.iterdir() if p != target]
        assert leftovers == []

    def test_interrupted_write_leaves_old_file(self, tmp_path, monkeypatch):
        target = tmp_path / "out.bin"
        framing.atomic_write_bytes(target, b"old")

        def boom(src, dst):
            raise OSError("simulated crash at rename")

        monkeypatch.setattr(framing.os, "replace", boom)
        with pytest.raises(OSError, match="simulated crash"):
            framing.atomic_write_bytes(target, b"new")
        monkeypatch.undo()
        assert target.read_bytes() == b"old"
        leftovers = [p for p in tmp_path.iterdir() if p != target]
        assert leftovers == []  # the failed call removed its own temp
