"""Kill -9 crash-recovery: a producer process is killed mid-journal
and this process recovers the longest durable prefix.

The producer (:mod:`tests.persist.journal_producer`) anchors a base
snapshot and then applies an endless deterministic mutation stream to
a durable database — one journal record per mutation, sequence
numbers starting at 1.  The parent SIGKILLs it at an arbitrary
moment, so the kill can land mid-append (torn tail), between append
and apply, or inside a compaction.  Recovery must equal an in-process
twin that applied exactly the mutations whose records became durable:
the highest surviving sequence number — whether it survived in the
journal or folded into the base — *is* the mutation count.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.core.engine import ObstacleDatabase
from repro.geometry.point import Point
from repro.persist.journal import JOURNAL_HEADER_SIZE, MutationJournal
from repro.persist.store import snapshot_info

from tests.persist import journal_producer

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)

#: Kill once the journal holds at least this many record bytes, so the
#: recovered prefix is never trivially empty.
MIN_RECORD_BYTES = 600

#: Compact aggressively in the child so the kill window includes the
#: fold-then-truncate sequence, not just plain appends.
CHILD_COMPACT_BYTES = "2000"


def _spawn_producer(base, journal) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        os.path.join(REPO_ROOT, "src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    env["REPRO_JOURNAL_COMPACT_BYTES"] = CHILD_COMPACT_BYTES
    env.pop("REPRO_JOURNAL", None)  # the explicit durable= path rules
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "tests.persist.journal_producer",
            str(base),
            str(journal),
        ],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
    )


def test_sigkill_mid_journal_recovers_durable_prefix(tmp_path):
    base = tmp_path / "base.snap"
    journal = tmp_path / "db.journal"
    proc = _spawn_producer(base, journal)
    try:
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                stderr = proc.stderr.read().decode(errors="replace")
                pytest.fail(f"producer exited early ({proc.returncode}): {stderr}")
            if base.exists() and journal.exists():
                try:
                    size = os.path.getsize(journal)
                except OSError:
                    size = 0
                if size >= JOURNAL_HEADER_SIZE + MIN_RECORD_BYTES:
                    break
            time.sleep(0.01)
        else:
            pytest.fail("producer never reached the kill threshold")
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=60)
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup on failure
            proc.kill()
            proc.wait(timeout=60)
        proc.stderr.close()

    # How many mutations became durable?  The base's folded-sequence
    # stamp covers compacted records; surviving journal records carry
    # their own sequences.  Probe with a recovery scan on a copy so
    # the real load below still sees the torn tail.
    probe_copy = tmp_path / "probe.journal"
    probe_copy.write_bytes(journal.read_bytes())
    probe, entries = MutationJournal.recover(probe_copy)
    probe.close()
    base_seq = snapshot_info(base)["journal_seq"]
    durable = max([base_seq] + [seq for seq, __ in entries])
    assert durable > 0

    recovered = ObstacleDatabase.load(base, durable=journal)
    twin = journal_producer.build_db()
    journal_producer.replay_prefix(twin, durable)

    assert journal_producer.expected_answers(
        recovered
    ) == journal_producer.expected_answers(twin)
    assert len(
        recovered.entity_tree(journal_producer.SET_NAME)
    ) == len(twin.entity_tree(journal_producer.SET_NAME))
    assert recovered._next_oid == twin._next_oid
    # And the recovered database keeps journaling: one more mutation
    # must survive another recovery round-trip.
    recovered.insert_entity(journal_producer.SET_NAME, Point(150.0, 150.0))
    recovered.journal.close()
    again = ObstacleDatabase.load(base, durable=journal)
    assert len(again.entity_tree(journal_producer.SET_NAME)) == len(
        twin.entity_tree(journal_producer.SET_NAME)
    ) + 1
