"""Snapshot format v3: persisted frozen-CSR distance-field arrays.

Version 3 appends an optional section of frozen CSR adjacency arrays
after the runtime-stats section.  A warm load installs them, so the
first field evaluation after a restart skips the freeze; version-2
files (and entries whose freeze was stale at save time) simply load
with no frozen arrays and re-freeze lazily.
"""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")

from repro.core.engine import ObstacleDatabase
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.persist import codec, snapshot_info
from repro.runtime.field import FIELD_ENGINE_ENV

from tests.persist.helpers import backend_params, warm_queries


def _warm_db(backend: str = "python-sweep") -> tuple[ObstacleDatabase, list[Point]]:
    obstacles = [
        Rect(10.0, 10.0, 20.0, 25.0),
        Rect(40.0, 5.0, 55.0, 18.0),
        Rect(30.0, 40.0, 45.0, 52.0),
    ]
    db = ObstacleDatabase(obstacles, backend=backend)
    db.add_entity_set(
        "P", [Point(5.0, 5.0), Point(25.0, 30.0), Point(60.0, 20.0)]
    )
    return db, [Point(0.0, 0.0), Point(35.0, 35.0), Point(50.0, 2.0)]


def _frozen_arrays(db: ObstacleDatabase) -> list[tuple]:
    out = []
    for entry in db.context.cache.entries():
        cached = entry.graph._csr
        if cached is not None and cached[0] == entry.graph.structure_revision:
            csr = cached[1]
            out.append(
                (
                    tuple(csr.points),
                    csr.indptr.tolist(),
                    csr.indices.tolist(),
                    csr.weights.tolist(),
                )
            )
    return out


@pytest.mark.parametrize("backend", backend_params())
def test_v3_roundtrip_installs_frozen_arrays(tmp_path, backend, monkeypatch):
    monkeypatch.setenv(FIELD_ENGINE_ENV, "csr")
    db, probes = _warm_db(backend)
    live = warm_queries(db, probes)
    saved_frozen = _frozen_arrays(db)
    assert saved_frozen  # the warm stream froze at least one graph
    path = tmp_path / "v3.snap"
    db.save(path)

    info = snapshot_info(path)
    assert info["format_version"] == codec.FORMAT_VERSION
    assert info["frozen_fields"] == len(saved_frozen)

    loaded = ObstacleDatabase.load(path, backend=backend)
    assert _frozen_arrays(loaded) == saved_frozen
    freezes_before = loaded.runtime_stats()["field_freezes"]
    assert warm_queries(loaded, probes) == live
    # The restored arrays served the warm stream: zero new freezes.
    assert loaded.runtime_stats()["field_freezes"] == freezes_before


def test_stale_freeze_not_written(tmp_path, monkeypatch):
    monkeypatch.setenv(FIELD_ENGINE_ENV, "csr")
    db, probes = _warm_db()
    warm_queries(db, probes)
    assert _frozen_arrays(db)
    # Mutate every cached graph's topology: the freezes go stale and
    # the save must omit them rather than persist a wrong adjacency.
    for entry in db.context.cache.entries():
        entry.graph.add_entity(Point(-50.0, -50.0))
    path = tmp_path / "stale.snap"
    db.save(path)
    assert snapshot_info(path)["frozen_fields"] == 0
    loaded = ObstacleDatabase.load(path)
    assert _frozen_arrays(loaded) == []


def test_v2_snapshot_loads_and_refreezes_lazily(tmp_path, monkeypatch):
    monkeypatch.setenv(FIELD_ENGINE_ENV, "csr")
    db, probes = _warm_db()
    live = warm_queries(db, probes)
    # Pin the writer to format 2: the frozen section is omitted and the
    # header advertises the old version — exactly a pre-upgrade file.
    monkeypatch.setattr(codec, "FORMAT_VERSION", 2)
    path = tmp_path / "v2.snap"
    db.save(path)
    info = snapshot_info(path)
    assert info["format_version"] == 2
    assert info["frozen_fields"] == 0

    monkeypatch.setattr(codec, "FORMAT_VERSION", 3)
    loaded = ObstacleDatabase.load(path)
    assert _frozen_arrays(loaded) == []
    freezes_before = loaded.runtime_stats()["field_freezes"]
    assert warm_queries(loaded, probes) == live
    assert loaded.runtime_stats()["field_freezes"] > freezes_before


def test_python_engine_ignores_restored_arrays(tmp_path, monkeypatch):
    """A v3 file loads fine under the reference engine: the arrays are
    installed but never consulted, and answers match."""
    monkeypatch.setenv(FIELD_ENGINE_ENV, "csr")
    db, probes = _warm_db()
    live = warm_queries(db, probes)
    path = tmp_path / "mixed.snap"
    db.save(path)
    monkeypatch.setenv(FIELD_ENGINE_ENV, "python")
    loaded = ObstacleDatabase.load(path)
    assert warm_queries(loaded, probes) == live
    assert loaded.runtime_stats()["field_freezes"] >= 0


def test_array_codec_roundtrip():
    """The new ``f64_array``/``u32_array`` primitives round-trip exact
    values, including empties."""
    from repro.persist.codec import BinaryReader, BinaryWriter

    w = BinaryWriter()
    floats = [0.0, 1.5, -2.25, 3.141592653589793e300]
    ints = [0, 1, 7, 2**32 - 1]
    w.f64_array(floats)
    w.u32_array(ints)
    w.f64_array([])
    w.u32_array([])
    r = BinaryReader(w.getvalue(), path="<memory>")
    assert list(r.f64_array()) == floats
    assert list(r.u32_array()) == ints
    assert len(r.f64_array()) == 0
    assert len(r.u32_array()) == 0
