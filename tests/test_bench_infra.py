"""Tests for the benchmark infrastructure's pure functions.

The scaling laws are part of the reproduction's correctness story
(EXPERIMENTS.md relies on them), so they get their own tests.
"""

import math

from benchmarks.common import (
    BENCH_O,
    PAPER_OBSTACLES,
    queries_for,
    scale_factor,
    scaled_join_range,
    scaled_range,
)
from repro.datasets.synthetic import DEFAULT_UNIVERSE


class TestScaling:
    def test_scale_factor_definition(self):
        assert scale_factor() == math.sqrt(PAPER_OBSTACLES / BENCH_O)

    def test_scaled_range_preserves_per_disk_counts(self):
        # expected obstacles per disk: |O| * pi * e^2 / A must equal the
        # paper's |O_paper| * pi * e_paper^2 / A
        fraction = 0.001
        e = scaled_range(fraction)
        e_paper = fraction * DEFAULT_UNIVERSE.width
        ours = BENCH_O * e * e
        paper = PAPER_OBSTACLES * e_paper * e_paper
        assert math.isclose(ours, paper, rel_tol=1e-9)

    def test_scaled_join_range_preserves_pair_counts(self):
        # expected pairs: |S| * |T| * pi * e^2 / A; both cardinalities
        # shrink linearly with BENCH_O/PAPER_OBSTACLES
        fraction = 0.0001
        e = scaled_join_range(fraction)
        e_paper = fraction * DEFAULT_UNIVERSE.width
        shrink = BENCH_O / PAPER_OBSTACLES
        ours = (shrink * shrink) * e * e
        paper = e_paper * e_paper
        assert math.isclose(ours, paper, rel_tol=1e-9)

    def test_ranges_monotone_in_fraction(self):
        assert scaled_range(0.001) < scaled_range(0.01)
        assert scaled_join_range(0.0001) < scaled_join_range(0.001)


class TestQueriesFor:
    def test_cost_classes_monotone(self):
        assert queries_for(1) >= queries_for(2) >= queries_for(4)

    def test_minimum_two(self):
        assert queries_for(1000) == 2
