"""The serving-tier observability layer: histograms and ServeStats."""

import pytest

from repro.errors import QueryError
from repro.runtime.stats import RuntimeStats
from repro.serve.stats import _RATIO, LatencyHistogram, ServeStats


class TestLatencyHistogram:
    def test_empty(self):
        hist = LatencyHistogram()
        assert hist.count == 0
        assert hist.percentile(50) == 0.0
        assert hist.mean == 0.0
        assert hist.max == 0.0

    def test_single_sample_percentiles_equal_it(self):
        hist = LatencyHistogram()
        hist.record(0.004)
        # Any percentile is clamped to the true max for one sample.
        assert hist.percentile(50) == 0.004
        assert hist.percentile(99) == 0.004

    def test_percentiles_monotonic(self):
        hist = LatencyHistogram()
        for i in range(1, 200):
            hist.record(i / 1000.0)
        p50, p95, p99 = (hist.percentile(p) for p in (50, 95, 99))
        assert p50 <= p95 <= p99 <= hist.max

    def test_relative_error_bounded_by_ratio(self):
        hist = LatencyHistogram()
        samples = [0.0001 * (1 + i % 37) for i in range(500)]
        for s in samples:
            hist.record(s)
        exact = sorted(samples)[int(0.95 * len(samples)) - 1]
        approx = hist.percentile(95)
        assert exact <= approx <= exact * _RATIO

    def test_subfloor_samples_land_in_bucket_zero(self):
        hist = LatencyHistogram()
        hist.record(0.0)
        hist.record(1e-9)
        assert hist.count == 2
        assert hist.percentile(99) <= 1e-6

    def test_mean_and_max(self):
        hist = LatencyHistogram()
        for s in (0.001, 0.002, 0.003):
            hist.record(s)
        assert hist.mean == pytest.approx(0.002)
        assert hist.max == 0.003

    def test_negative_sample_rejected(self):
        with pytest.raises(QueryError):
            LatencyHistogram().record(-0.001)

    @pytest.mark.parametrize("p", [0, -5, 101])
    def test_bad_percentile_rejected(self, p):
        with pytest.raises(QueryError):
            LatencyHistogram().percentile(p)

    def test_merge(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        for s in (0.001, 0.010):
            a.record(s)
        for s in (0.100, 0.200):
            b.record(s)
        a.merge(b)
        assert a.count == 4
        assert a.max == 0.200
        assert a.total == pytest.approx(0.311)
        assert a.percentile(99) >= 0.1

    def test_snapshot_keys(self):
        hist = LatencyHistogram()
        hist.record(0.005)
        snap = hist.snapshot()
        assert set(snap) == {"count", "mean_s", "p50_s", "p95_s", "p99_s", "max_s"}
        assert snap["count"] == 1.0


class TestServeStats:
    def test_admit_settle_counters(self):
        stats = ServeStats()
        stats.admit()
        stats.admit(joined_open_batch=True)
        assert stats.requests == 2
        assert stats.coalesced == 1
        assert stats.in_flight == 2
        assert stats.in_flight_peak == 2
        stats.settle("nearest", 0.003)
        stats.settle("nearest", 0.004, failed=True)
        assert stats.in_flight == 0
        assert stats.in_flight_peak == 2
        assert stats.completed == 1
        assert stats.failed == 1
        assert stats.histogram("nearest").count == 2

    def test_snapshot_includes_runtime(self):
        runtime = RuntimeStats()
        runtime.graph_builds = 7
        stats = ServeStats(runtime)
        stats.admit()
        stats.settle("range", 0.001)
        snap = stats.snapshot()
        assert snap["runtime"]["graph_builds"] == 7
        assert "range" in snap["latency"]

    def test_snapshot_without_runtime(self):
        snap = ServeStats().snapshot()
        assert "runtime" not in snap
