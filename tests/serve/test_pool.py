"""The persistent warm-started worker pool: parity, deltas, lifecycle."""

import random

import pytest

from repro import ObstacleDatabase, Point, Rect
from repro.errors import QueryError
from repro.runtime.executor import POOL_ENV, resolve_pool_kind
from repro.serve.pool import PersistentWorkerPool
from tests.conftest import random_disjoint_rects, random_free_points


def _db(seed, *, shards=None, snap=0.0, n_obstacles=12, n_points=30):
    rng = random.Random(seed)
    obstacles = random_disjoint_rects(rng, n_obstacles)
    points = random_free_points(rng, n_points, obstacles)
    db = ObstacleDatabase(
        [o.polygon for o in obstacles],
        max_entries=8,
        min_entries=3,
        shards=shards,
        graph_cache_snap=snap,
    )
    db.add_entity_set("pois", points[8:])
    return db, points[:8]


class TestPoolKindResolution:
    def test_argument_wins(self):
        assert resolve_pool_kind("persistent") == "persistent"

    def test_default_is_fork(self, monkeypatch):
        monkeypatch.delenv(POOL_ENV, raising=False)
        assert resolve_pool_kind(None) == "fork"

    def test_env(self, monkeypatch):
        monkeypatch.setenv(POOL_ENV, "persistent")
        assert resolve_pool_kind(None) == "persistent"

    def test_unknown_rejected(self):
        with pytest.raises(QueryError):
            resolve_pool_kind("ephemeral")


class TestPoolParity:
    def test_nearest_matches_sequential(self):
        db, queries = _db(301)
        try:
            sequential = db.batch_nearest("pois", queries, 2, workers=0)
            pooled = db.batch_nearest(
                "pois", queries, 2, workers=4, pool="persistent"
            )
            assert pooled == sequential
            assert db.runtime_stats()["pool_batches"] == 1
            assert db.runtime_stats()["parallel_batches"] == 1
        finally:
            db.close()

    def test_range_matches_sequential(self):
        db, queries = _db(302)
        try:
            sequential = db.batch_range("pois", queries, 30.0, workers=0)
            pooled = db.batch_range(
                "pois", queries, 30.0, workers=3, pool="persistent"
            )
            assert pooled == sequential
        finally:
            db.close()

    def test_distance_matches_sequential(self):
        db, queries = _db(303)
        try:
            pairs = [(queries[i], queries[i + 1]) for i in range(6)]
            sequential = db.batch_distance(pairs, workers=0)
            pooled = db.batch_distance(pairs, workers=4, pool="persistent")
            assert pooled == sequential
        finally:
            db.close()

    def test_sharded_database_parity(self):
        db, queries = _db(304, shards=4)
        try:
            sequential = db.batch_nearest("pois", queries, 2, workers=0)
            pooled = db.batch_nearest(
                "pois", queries, 2, workers=2, pool="persistent"
            )
            assert pooled == sequential
        finally:
            db.close()

    def test_env_routes_through_pool(self, monkeypatch):
        monkeypatch.setenv(POOL_ENV, "persistent")
        db, queries = _db(305)
        try:
            sequential = db.batch_nearest("pois", queries, 1, workers=0)
            pooled = db.batch_nearest("pois", queries, 1, workers=2)
            assert pooled == sequential
            assert db.runtime_stats()["pool_batches"] == 1
        finally:
            db.close()

    def test_sequential_workers_never_build_pool(self, monkeypatch):
        monkeypatch.setenv(POOL_ENV, "persistent")
        db, queries = _db(306)
        db.batch_nearest("pois", queries, 1, workers=0)  # explicitly sequential
        assert db._serving_pool is None

    def test_pool_reused_across_batches(self):
        db, queries = _db(307)
        try:
            db.batch_nearest("pois", queries, 1, workers=2, pool="persistent")
            db.batch_range("pois", queries, 20.0, workers=2, pool="persistent")
            pool = db._serving_pool
            assert pool.spawns == 1
            assert pool.batches_served == 2
        finally:
            db.close()


class TestWarmStart:
    def test_zero_graph_builds_for_covered_centres(self):
        db, queries = _db(310, snap=5.0)
        try:
            # Warm the parent's cache at the query centres, then spawn
            # the pool: the snapshot ships the warm cache, so serving
            # the same centres must build zero graphs anywhere.
            db.batch_nearest("pois", queries, 2, workers=0)
            db._runtime_stats.reset()
            pooled = db.batch_nearest(
                "pois", queries, 2, workers=4, pool="persistent"
            )
            assert len(pooled) == len(queries)
            assert db.runtime_stats()["graph_builds"] == 0
        finally:
            db.close()


class TestMutationDeltas:
    def test_obstacle_insert_delete_replayed(self):
        db, queries = _db(320)
        try:
            db.batch_nearest("pois", queries, 2, workers=2, pool="persistent")
            record = db.insert_obstacle(Rect(45, 45, 55, 55))
            after_insert = db.batch_nearest(
                "pois", queries, 2, workers=2, pool="persistent"
            )
            assert after_insert == db.batch_nearest("pois", queries, 2, workers=0)
            assert db.delete_obstacle(record)
            after_delete = db.batch_nearest(
                "pois", queries, 2, workers=2, pool="persistent"
            )
            assert after_delete == db.batch_nearest("pois", queries, 2, workers=0)
            # Deltas replayed in place: never respawned.
            assert db._serving_pool.spawns == 1
        finally:
            db.close()

    def test_entity_insert_delete_replayed(self):
        db, queries = _db(321)
        try:
            db.batch_nearest("pois", queries, 1, workers=2, pool="persistent")
            p = Point(50.0, 50.0)
            db.insert_entity("pois", p)
            with_entity = db.batch_nearest(
                "pois", queries, 1, workers=2, pool="persistent"
            )
            assert with_entity == db.batch_nearest("pois", queries, 1, workers=0)
            assert db.delete_entity("pois", p)
            without = db.batch_nearest(
                "pois", queries, 1, workers=2, pool="persistent"
            )
            assert without == db.batch_nearest("pois", queries, 1, workers=0)
            assert db._serving_pool.spawns == 1
        finally:
            db.close()

    def test_out_of_band_edit_forces_respawn(self):
        db, queries = _db(322)
        try:
            db.batch_nearest("pois", queries, 1, workers=2, pool="persistent")
            pool = db._serving_pool
            assert pool.spawns == 1
            # Mutate the obstacle tree behind the mutation feed's back:
            # the version signature drifts, replay cannot express it.
            obstacle = db._coerce_obstacle(Rect(48, 48, 52, 52))
            db.obstacle_tree.insert(obstacle, obstacle.mbr)
            fixed = db.batch_nearest(
                "pois", queries, 1, workers=2, pool="persistent"
            )
            assert pool.spawns == 2
            assert fixed == db.batch_nearest("pois", queries, 1, workers=0)
        finally:
            db.close()

    def test_add_entity_set_invalidates_pool(self):
        db, queries = _db(323)
        try:
            db.batch_nearest("pois", queries, 1, workers=2, pool="persistent")
            pool = db._serving_pool
            assert pool.alive
            db.add_entity_set("extra", [Point(10, 10), Point(90, 90)])
            assert not pool.alive
            result = db.batch_nearest(
                "extra", queries, 1, workers=2, pool="persistent"
            )
            assert result == db.batch_nearest("extra", queries, 1, workers=0)
            assert pool.spawns == 2
        finally:
            db.close()


class TestPoolLifecycle:
    def test_worker_crash_raises_query_error_naming_chunk(self):
        db, queries = _db(330)
        try:
            pool = db.serving_pool(2)
            pool.run_batch(("nearest", "pois", 1, True), queries)
            pool._members[0].process.terminate()
            pool._members[0].process.join(timeout=5)
            with pytest.raises(QueryError, match=r"chunk \[0:\d+\)"):
                pool.run_batch(("nearest", "pois", 1, True), queries)
            assert not pool.alive  # torn down, not wedged
            # The next batch respawns cleanly.
            again = pool.run_batch(("nearest", "pois", 1, True), queries)
            assert again == db.batch_nearest("pois", queries, 1, workers=0)
        finally:
            db.close()

    def test_shutdown_idempotent(self):
        db, queries = _db(331)
        pool = db.serving_pool(2)
        pool.run_batch(("distance",), [(queries[0], queries[1])] * 2)
        pool.shutdown()
        pool.shutdown()
        assert not pool.alive
        with pytest.raises(QueryError, match="shut down"):
            pool.run_batch(("distance",), [(queries[0], queries[1])] * 2)
        db.close()

    def test_context_manager_tears_down(self):
        db, queries = _db(332)
        with db.serving_pool(2) as pool:
            pool.run_batch(("nearest", "pois", 1, True), queries[:2])
            assert pool.alive
        assert not pool.alive
        db.close()

    def test_database_close_idempotent(self):
        db, queries = _db(333)
        db.batch_nearest("pois", queries, 1, workers=2, pool="persistent")
        db.close()
        db.close()
        assert db._serving_pool is None
        # Still serves library calls, and can rebuild a pool.
        assert db.batch_nearest(
            "pois", queries, 1, workers=2, pool="persistent"
        ) == db.batch_nearest("pois", queries, 1, workers=0)
        db.close()

    def test_database_context_manager(self):
        db, queries = _db(334)
        with db:
            db.batch_nearest("pois", queries, 1, workers=2, pool="persistent")
            assert db._serving_pool is not None
        assert db._serving_pool is None

    def test_pool_workers_validated(self):
        db, __ = _db(335)
        with pytest.raises(QueryError):
            PersistentWorkerPool(db, 0)
        with pytest.raises(QueryError, match=">= 2 workers"):
            db.serving_pool(1)

    def test_unknown_command_rejected_without_killing_worker(self):
        db, queries = _db(336)
        try:
            pool = db.serving_pool(2)
            with pytest.raises(QueryError, match="bogus"):
                pool.run_batch(("bogus",), queries)
            # The worker reported the failure over the protocol; a
            # fresh batch works (after the defensive respawn).
            result = pool.run_batch(("nearest", "pois", 1, True), queries)
            assert result == db.batch_nearest("pois", queries, 1, workers=0)
        finally:
            db.close()

    def test_explicit_snapshot_path_left_on_disk(self, tmp_path):
        db, queries = _db(337)
        snap = tmp_path / "pool.snap"
        pool = PersistentWorkerPool(db, 2, snapshot_path=snap)
        try:
            result = pool.run_batch(("nearest", "pois", 1, True), queries)
            assert result == db.batch_nearest("pois", queries, 1, workers=0)
            assert snap.exists()
            restored = ObstacleDatabase.load(snap)
            assert restored.nearest("pois", queries[0], 1) == db.nearest(
                "pois", queries[0], 1
            )
        finally:
            pool.shutdown()
            db.close()


class TestPoolStats:
    def test_worker_page_counters_merged(self):
        db, queries = _db(340)
        try:
            db.reset_stats()
            db.batch_nearest("pois", queries, 2, workers=2, pool="persistent")
            stats = db.stats()
            # The parent evaluated nothing itself: every page access
            # reported must have been shipped back from the workers.
            assert stats["entities:pois"]["reads"] > 0
            assert stats["obstacles:obstacles"]["reads"] > 0
        finally:
            db.close()

    def test_worker_runtime_stats_merged(self):
        db, queries = _db(341)
        try:
            db.reset_stats()
            db.batch_nearest("pois", queries, 2, workers=2, pool="persistent")
            runtime = db.runtime_stats()
            assert runtime["graph_builds"] > 0
            assert runtime["field_builds"] >= len(queries)
        finally:
            db.close()
