"""The asyncio front-end: coalescing, parity, latency accounting."""

import asyncio
import random

import pytest

from repro import ObstacleDatabase, Point, QueryServer
from repro.errors import DatasetError, QueryError
from tests.conftest import random_disjoint_rects, random_free_points


def _db(seed, *, n_obstacles=10, n_points=26):
    rng = random.Random(seed)
    obstacles = random_disjoint_rects(rng, n_obstacles)
    points = random_free_points(rng, n_points, obstacles)
    db = ObstacleDatabase(
        [o.polygon for o in obstacles], max_entries=8, min_entries=3
    )
    db.add_entity_set("pois", points[8:])
    return db, points[:8]


def _run(coro):
    return asyncio.run(coro)


class TestServing:
    def test_concurrent_nearest_parity(self):
        db, queries = _db(401)

        async def main():
            async with QueryServer(db, coalesce_window=0.01) as server:
                results = await asyncio.gather(
                    *[server.nearest("pois", q, 2) for q in queries]
                )
            return [list(r) for r in results]

        served = _run(main())
        assert served == db.batch_nearest("pois", queries, 2)

    def test_concurrent_range_parity(self):
        db, queries = _db(402)

        async def main():
            async with QueryServer(db, coalesce_window=0.01) as server:
                return await asyncio.gather(
                    *[server.range("pois", q, 25.0) for q in queries]
                )

        served = [list(r) for r in _run(main())]
        assert served == db.batch_range("pois", queries, 25.0)

    def test_distance_requests(self):
        db, queries = _db(403)
        pairs = [(queries[0], queries[1]), (queries[2], queries[3])]

        async def main():
            async with QueryServer(db, coalesce_window=0.01) as server:
                return await asyncio.gather(
                    *[server.distance(a, b) for a, b in pairs]
                )

        assert _run(main()) == db.batch_distance(pairs)

    def test_requests_coalesce_into_one_batch(self):
        db, queries = _db(404)

        async def main():
            server = QueryServer(db, coalesce_window=0.05)
            results = await asyncio.gather(
                *[server.nearest("pois", q, 1) for q in queries]
            )
            await server.close()
            return server, results

        server, results = _run(main())
        snap = server.stats.snapshot()
        assert snap["requests"] == len(queries)
        assert snap["batches"] == 1
        assert snap["coalesced"] == len(queries) - 1
        assert snap["completed"] == len(queries)
        assert snap["in_flight"] == 0
        assert snap["in_flight_peak"] == len(queries)
        assert snap["latency"]["nearest"]["count"] == len(queries)
        assert snap["latency"]["nearest"]["p99_s"] > 0

    def test_max_batch_closes_window_early(self):
        db, queries = _db(405)

        async def main():
            # A window far longer than the test: only the size cap can
            # flush, so completion proves max_batch dispatches early.
            server = QueryServer(
                db, coalesce_window=30.0, max_batch=len(queries)
            )
            results = await asyncio.wait_for(
                asyncio.gather(*[server.nearest("pois", q, 1) for q in queries]),
                timeout=20.0,
            )
            await server.close()
            return server, results

        server, results = _run(main())
        assert server.stats.batches == 1
        assert len(results) == len(queries)

    def test_zero_window_dispatches_immediately(self):
        db, queries = _db(406)

        async def main():
            async with QueryServer(db, coalesce_window=0.0) as server:
                first = await server.nearest("pois", queries[0], 1)
                second = await server.nearest("pois", queries[1], 1)
                return server, [first, second]

        server, results = _run(main())
        assert server.stats.batches == 2
        assert server.stats.coalesced == 0
        assert [list(r) for r in results] == db.batch_nearest(
            "pois", queries[:2], 1
        )

    def test_distinct_keys_never_share_a_batch(self):
        db, queries = _db(407)

        async def main():
            async with QueryServer(db, coalesce_window=0.05) as server:
                await asyncio.gather(
                    server.nearest("pois", queries[0], 1),
                    server.nearest("pois", queries[1], 2),
                    server.range("pois", queries[2], 10.0),
                )
                return server

        server = _run(main())
        assert server.stats.batches == 3


class TestFailures:
    def test_error_propagates_to_each_request(self):
        db, queries = _db(410)

        async def main():
            async with QueryServer(db, coalesce_window=0.05) as server:
                results = await asyncio.gather(
                    server.nearest("no-such-set", queries[0], 1),
                    server.nearest("no-such-set", queries[1], 1),
                    return_exceptions=True,
                )
                return server, results

        server, results = _run(main())
        assert all(isinstance(r, DatasetError) for r in results)
        assert server.stats.failed == 2
        assert server.stats.in_flight == 0

    def test_closed_server_refuses_requests(self):
        db, queries = _db(411)

        async def main():
            server = QueryServer(db)
            await server.close()
            with pytest.raises(QueryError, match="closed"):
                await server.nearest("pois", queries[0], 1)
            await server.close()  # idempotent

        _run(main())

    def test_constructor_validation(self):
        db, __ = _db(412)
        with pytest.raises(QueryError):
            QueryServer(db, coalesce_window=-0.001)
        with pytest.raises(QueryError):
            QueryServer(db, max_batch=0)


class TestPooledServing:
    def test_server_over_persistent_pool(self):
        db, queries = _db(420)

        async def main():
            async with QueryServer(
                db, workers=2, pool="persistent", coalesce_window=0.02
            ) as server:
                return await asyncio.gather(
                    *[server.nearest("pois", q, 2) for q in queries]
                )

        try:
            served = [list(r) for r in _run(main())]
            assert served == db.batch_nearest("pois", queries, 2)
            assert db.runtime_stats()["pool_batches"] >= 1
        finally:
            db.close()
