"""Tests for the serving tier (pool, front-end, continuous queries)."""
