"""Continuous subscriptions: deltas on movement and obstacle mutation."""

import random

import pytest

from repro import ContinuousQueryHub, ObstacleDatabase, Point, Rect
from repro.errors import QueryError
from tests.conftest import random_disjoint_rects, random_free_points


def _line_db(**kwargs):
    """No obstacles initially; entities on the x-axis at known spots."""
    db = ObstacleDatabase([], **kwargs)
    db.add_entity_set(
        "pois", [Point(1, 0), Point(2, 0), Point(50, 0), Point(80, 0)]
    )
    return db


class TestSubscriptionLifecycle:
    def test_initial_result_is_published_as_added(self):
        db = _line_db()
        hub = ContinuousQueryHub(db)
        sub = hub.nearest("pois", Point(0, 0), 2)
        delta = hub.poll(sub)
        assert [p for p, __ in delta.added] == [Point(1, 0), Point(2, 0)]
        assert not delta.removed and not delta.changed
        assert not hub.poll(sub)  # quiescent: empty delta

    def test_current_matches_fresh_query(self):
        rng = random.Random(430)
        obstacles = random_disjoint_rects(rng, 8)
        points = random_free_points(rng, 12, obstacles)
        db = ObstacleDatabase(
            [o.polygon for o in obstacles], max_entries=8, min_entries=3
        )
        db.add_entity_set("pois", points[4:])
        hub = ContinuousQueryHub(db)
        sub = hub.nearest("pois", points[0], 3)
        assert sub.current == db.nearest("pois", points[0], 3)
        rsub = hub.range("pois", points[1], 30.0)
        assert rsub.current == db.range("pois", points[1], 30.0)

    def test_unsubscribe_is_idempotent_and_final(self):
        db = _line_db()
        hub = ContinuousQueryHub(db)
        sub = hub.nearest("pois", Point(0, 0), 1)
        assert len(hub) == 1
        hub.unsubscribe(sub)
        hub.unsubscribe(sub)
        assert len(hub) == 0
        with pytest.raises(QueryError, match="not active"):
            hub.poll(sub)

    def test_validation(self):
        db = _line_db()
        hub = ContinuousQueryHub(db)
        with pytest.raises(QueryError):
            hub.nearest("pois", Point(0, 0), 0)
        with pytest.raises(QueryError):
            hub.range("pois", Point(0, 0), -1.0)


class TestMovement:
    def test_move_publishes_delta(self):
        db = _line_db()
        hub = ContinuousQueryHub(db)
        sub = hub.nearest("pois", Point(0, 0), 1)
        hub.poll(sub)
        delta = hub.move(sub, Point(49, 0))
        assert [p for p, __ in delta.added] == [Point(50, 0)]
        assert [p for p, __ in delta.removed] == [Point(1, 0)]
        assert not hub.poll(sub)

    def test_small_move_changes_distances_only(self):
        db = _line_db()
        hub = ContinuousQueryHub(db)
        sub = hub.nearest("pois", Point(0, 0), 2)
        hub.poll(sub)
        delta = hub.move(sub, Point(0.5, 0))
        assert not delta.added and not delta.removed
        assert {p for p, __ in delta.changed} == {Point(1, 0), Point(2, 0)}


class TestObstacleMutations:
    def test_nearby_insert_reevaluates_and_deltas(self):
        db = _line_db()
        hub = ContinuousQueryHub(db)
        sub = hub.nearest("pois", Point(0, 0), 2)
        hub.poll(sub)
        before = sub.reevaluations
        # A wall between the client and (2, 0): inside the result disk
        # (kth distance 2), so the subscription must refresh; the NN
        # set is unchanged but (2, 0) now needs a detour.
        db.insert_obstacle(Rect(1.4, -0.5, 1.6, 0.5))
        assert sub.reevaluations == before + 1
        delta = hub.poll(sub)
        changed = dict(delta.changed)
        assert Point(2, 0) in changed
        assert changed[Point(2, 0)] > 2.0
        assert sub.current == db.nearest("pois", Point(0, 0), 2)

    def test_far_insert_is_filtered_out(self):
        db = _line_db()
        hub = ContinuousQueryHub(db)
        sub = hub.nearest("pois", Point(0, 0), 2)  # result disk radius 2
        hub.poll(sub)
        before = sub.reevaluations
        db.insert_obstacle(Rect(30, 30, 32, 32))
        assert sub.reevaluations == before  # untouched
        assert not hub.poll(sub)

    def test_delete_reevaluates_repair_first(self):
        db = _line_db()
        record = db.insert_obstacle(Rect(1.4, -0.5, 1.6, 0.5))
        hub = ContinuousQueryHub(db)
        sub = hub.nearest("pois", Point(0, 0), 2)
        hub.poll(sub)
        blocked = dict(sub.current)[Point(2, 0)]
        assert blocked > 2.0
        db.delete_obstacle(record)
        delta = hub.poll(sub)
        assert dict(delta.changed)[Point(2, 0)] == pytest.approx(2.0)
        assert sub.current == db.nearest("pois", Point(0, 0), 2)

    def test_range_subscription_uses_e_as_radius(self):
        db = _line_db()
        hub = ContinuousQueryHub(db)
        sub = hub.range("pois", Point(0, 0), 3.0)
        hub.poll(sub)
        before = sub.reevaluations
        db.insert_obstacle(Rect(10, -1, 11, 1))  # outside e=3
        assert sub.reevaluations == before
        db.insert_obstacle(Rect(1.4, -0.5, 1.6, 0.5))  # inside
        assert sub.reevaluations == before + 1
        assert sub.current == db.range("pois", Point(0, 0), 3.0)

    def test_underfilled_nearest_always_refreshes(self):
        db = ObstacleDatabase([])
        db.add_entity_set("pois", [Point(1, 0)])
        hub = ContinuousQueryHub(db)
        sub = hub.nearest("pois", Point(0, 0), 5)  # only 1 entity: unbounded
        before = sub.reevaluations
        db.insert_obstacle(Rect(90, 90, 91, 91))
        assert sub.reevaluations == before + 1

    def test_sharded_source_mutations_drive_subscriptions(self):
        rng = random.Random(431)
        obstacles = random_disjoint_rects(rng, 10)
        points = random_free_points(rng, 10, obstacles)
        db = ObstacleDatabase(
            [o.polygon for o in obstacles],
            max_entries=8,
            min_entries=3,
            shards=4,
        )
        db.add_entity_set("pois", points[2:])
        hub = ContinuousQueryHub(db)
        sub = hub.nearest("pois", points[0], 3)
        hub.poll(sub)
        q = points[0]
        db.insert_obstacle(Rect(q.x + 0.5, q.y + 0.5, q.x + 1.5, q.y + 1.5))
        assert sub.current == db.nearest("pois", points[0], 3)

    def test_entity_refresh_hook(self):
        db = _line_db()
        hub = ContinuousQueryHub(db)
        sub = hub.nearest("pois", Point(0, 0), 1)
        hub.poll(sub)
        db.insert_entity("pois", Point(0.5, 0))
        hub.refresh(sub)
        delta = hub.poll(sub)
        assert [p for p, __ in delta.added] == [Point(0.5, 0)]
        assert [p for p, __ in delta.removed] == [Point(1, 0)]
