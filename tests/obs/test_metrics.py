"""The unified metrics registry: exhaustiveness over every layer's
counters, and the JSON / Prometheus exports."""

from __future__ import annotations

import asyncio
import json
import re

import pytest

from repro.core.engine import ObstacleDatabase
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.obs.metrics import MetricsRegistry
from repro.runtime.stats import RuntimeStats
from repro.serve.server import QueryServer
from repro.stats.counters import PageAccessCounter

#: Every line of a Prometheus text exposition dump we emit matches one
#: of these shapes.
_PROM_TYPE = re.compile(r"^# TYPE [a-zA-Z_][a-zA-Z0-9_]* gauge$")
_PROM_SAMPLE = re.compile(
    r"^[a-zA-Z_][a-zA-Z0-9_]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"
    r" -?[0-9.+e-]+$"
)


@pytest.fixture
def db() -> ObstacleDatabase:
    database = ObstacleDatabase(
        [Rect(10.0, 10.0, 20.0, 25.0), Rect(40.0, 5.0, 55.0, 18.0)]
    )
    database.add_entity_set(
        "pois", [Point(5.0, 5.0), Point(25.0, 30.0), Point(60.0, 20.0)]
    )
    yield database
    database.close()


def _serve_some(server: QueryServer) -> None:
    async def drive() -> None:
        await asyncio.gather(
            server.nearest("pois", Point(0.0, 0.0), 2),
            server.nearest("pois", Point(1.0, 1.0), 2),
            server.distance(Point(0.0, 0.0), Point(30.0, 30.0)),
        )
        await server.close()

    asyncio.run(drive())


class TestExhaustiveness:
    def test_snapshot_covers_every_runtime_counter(self, db):
        """Acceptance: one snapshot() carries every counter the runtime
        layer ticks — the full RuntimeStats slot set, with live values."""
        db.nearest("pois", Point(0.0, 0.0), 2)
        doc = db.metrics().snapshot()
        for name in RuntimeStats.__slots__:
            assert name in doc["runtime"], f"runtime counter {name} missing"
        assert doc["runtime"]["graph_builds"] >= 1
        assert doc["runtime"]["sweeps_run"] >= 1

    def test_snapshot_covers_every_tree_page_counter(self, db):
        db.nearest("pois", Point(0.0, 0.0), 1)
        doc = db.metrics().snapshot()
        counter_keys = set(PageAccessCounter().snapshot())
        assert set(doc["pages"]) == {"obstacles:obstacles", "entities:pois"}
        for tree, counters in doc["pages"].items():
            assert counter_keys <= set(counters), (
                f"page counters incomplete for {tree}"
            )
        assert doc["pages"]["entities:pois"]["reads"] >= 1

    def test_server_snapshot_covers_serve_counters(self, db):
        server = QueryServer(db, workers=0, coalesce_window=0.0)
        registry = server.metrics()
        _serve_some(server)
        doc = registry.snapshot()
        for name in (
            "requests",
            "completed",
            "failed",
            "batches",
            "coalesced",
            "in_flight",
            "in_flight_peak",
        ):
            assert name in doc["serve"], f"serve counter {name} missing"
        assert doc["serve"]["requests"] == 3
        assert doc["serve"]["completed"] == 3
        # Per-kind latency histograms, labelled by request kind.
        assert set(doc["serve_latency"]) == {"nearest", "distance"}
        for kind, hist in doc["serve_latency"].items():
            for key in ("count", "mean_s", "p50_s", "p95_s", "p99_s", "max_s"):
                assert key in hist, f"latency metric {key} missing for {kind}"

    def test_pool_group_appears_when_pool_is_up(self, db):
        registry = db.metrics()
        assert registry.snapshot().get("pool", {}) == {}
        db.batch_nearest(
            "pois",
            [Point(0.0, 0.0), Point(1.0, 1.0)],
            1,
            workers=2,
            pool="persistent",
        )
        doc = registry.snapshot()
        assert doc["pool"] == {"workers": 2, "alive": 1}


class TestExports:
    def test_json_export_parses_and_sorts(self, db):
        db.nearest("pois", Point(0.0, 0.0), 1)
        doc = json.loads(db.metrics().to_json())
        assert doc["runtime"]["graph_builds"] >= 1
        assert doc["pages"]["entities:pois"]["reads"] >= 1

    def test_prometheus_export_parses(self, db):
        """Acceptance: every emitted line is valid text exposition."""
        db.nearest("pois", Point(0.0, 0.0), 1)
        dump = db.metrics().to_prometheus()
        assert dump.endswith("\n")
        names_typed = set()
        for line in dump.rstrip("\n").split("\n"):
            if line.startswith("#"):
                assert _PROM_TYPE.match(line), f"bad TYPE line: {line!r}"
                names_typed.add(line.split()[2])
            else:
                assert _PROM_SAMPLE.match(line), f"bad sample line: {line!r}"
                name = line.split("{")[0].split(" ")[0]
                assert name in names_typed, f"sample before TYPE: {line!r}"
        assert 'repro_pages_reads{tree="entities:pois"}' in dump
        assert "repro_runtime_graph_builds 1" in dump
        # String-valued metrics become *_info gauges with a label.
        assert re.search(
            r'repro_runtime_backend_info\{backend="[^"]+"\} 1', dump
        )

    def test_prometheus_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.register(
            "pages", lambda: {'we"ird\nname': {"reads": 1}}, label="tree"
        )
        dump = registry.to_prometheus()
        assert 'tree="we\\"ird\\nname"' in dump

    def test_prometheus_sanitises_metric_names(self):
        registry = MetricsRegistry()
        registry.register("1bad-group", lambda: {"odd.metric": 2})
        dump = registry.to_prometheus()
        assert "repro__1bad_group_odd_metric 2" in dump

    def test_none_provider_is_skipped(self):
        registry = MetricsRegistry()
        registry.register("maybe", lambda: None)
        registry.register("maybe", lambda: {"present": 1})
        assert registry.snapshot() == {"maybe": {"present": 1}}
        assert registry.groups == ["maybe"]
