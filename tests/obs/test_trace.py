"""The span tracer: sampling, nesting, the disabled fast path, and
cross-process graft/merge."""

from __future__ import annotations

import pytest

from repro.obs.trace import MAX_CHILDREN, NULL_SPAN, Span, Tracer


@pytest.fixture
def tracer() -> Tracer:
    """A private, always-on tracer (never the module global)."""
    return Tracer(sample_rate=1.0)


class TestDisabledFastPath:
    def test_span_off_returns_null_span(self):
        t = Tracer(sample_rate=0.0)
        span = t.span("query.range")
        assert span is NULL_SPAN
        assert not span
        with span as s:
            s.set_attr("ignored", 1)
        assert not t.tracing()

    def test_count_off_is_noop(self):
        t = Tracer(sample_rate=0.0)
        t.count("rtree.page_fetch")  # no open span, no error, no state
        assert t.last_root is None

    def test_env_default_is_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_SAMPLE", raising=False)
        assert Tracer().sample_rate == 0.0

    def test_env_rate_clamped(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_SAMPLE", "7")
        assert Tracer().sample_rate == 1.0
        monkeypatch.setenv("REPRO_TRACE_SAMPLE", "-2")
        assert Tracer().sample_rate == 0.0
        monkeypatch.setenv("REPRO_TRACE_SAMPLE", "bogus")
        assert Tracer().sample_rate == 0.0


class TestSampling:
    def test_rate_one_admits_every_root(self, tracer):
        for __ in range(3):
            with tracer.span("q") as span:
                pass
            assert span is not NULL_SPAN

    def test_deterministic_accumulator(self):
        t = Tracer(sample_rate=0.5)
        admitted = []
        for __ in range(8):
            span = t.span("q")
            admitted.append(span is not NULL_SPAN)
            if span is not NULL_SPAN:
                with span:
                    pass
        # acc: 0.5, 1.0*, 0.5, 1.0*, ... — every second root, no RNG.
        assert admitted == [False, True] * 4

    def test_configure_resets_accumulator(self):
        t = Tracer(sample_rate=0.5)
        t.span("q")  # acc -> 0.5
        t.configure(0.5)
        assert t.span("q") is NULL_SPAN  # acc restarted at 0


class TestNesting:
    def test_children_nest_under_open_parent(self, tracer):
        with tracer.span("query.nearest", k=2) as root:
            with tracer.span("field.build") as child:
                with tracer.span("graph.build") as grand:
                    pass
        assert [c.name for c in root.children] == ["field.build"]
        assert [c.name for c in child.children] == ["graph.build"]
        assert grand.children == []
        assert root.attrs == {"k": 2}
        assert root.duration > 0.0
        assert tracer.last_root is root

    def test_counters_tick_innermost_span(self, tracer):
        with tracer.span("q") as root:
            tracer.count("graph_cache.hit")
            with tracer.span("sweep"):
                tracer.count("sweep.events", 5)
                tracer.count("sweep.events", 2)
        assert root.counters == {"graph_cache.hit": 1}
        assert root.children[0].counters == {"sweep.events": 7}
        assert root.total_counters() == {
            "graph_cache.hit": 1,
            "sweep.events": 7,
        }

    def test_child_cap_drops_and_accounts(self, tracer):
        with tracer.span("q") as root:
            for __ in range(MAX_CHILDREN + 3):
                with tracer.span("child"):
                    pass
        assert len(root.children) == MAX_CHILDREN
        assert root.dropped == 3

    def test_walk_is_depth_first(self, tracer):
        with tracer.span("a") as root:
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
            with tracer.span("d"):
                pass
        assert [s.name for s in root.walk()] == ["a", "b", "c", "d"]

    def test_root_sink_fires_on_finish(self, tracer):
        seen = []
        tracer.add_root_sink(seen.append)
        with tracer.span("q"):
            with tracer.span("inner"):
                pass  # child completion must not fire the sink
        assert [s.name for s in seen] == ["q"]


class TestSerialisation:
    def test_to_dict_from_dict_roundtrip(self, tracer):
        with tracer.span("q", set="P") as root:
            tracer.count("rtree.page_fetch", 3)
            with tracer.span("graph.build", radius=2.0):
                pass
        doc = root.to_dict()
        rebuilt = Span.from_dict(doc)
        assert rebuilt.name == "q"
        assert rebuilt.attrs == {"set": "P"}
        assert rebuilt.counters == {"rtree.page_fetch": 3}
        assert [c.name for c in rebuilt.children] == ["graph.build"]
        assert rebuilt.duration == pytest.approx(root.duration)
        assert rebuilt.to_dict() == doc

    def test_graft_attaches_worker_tree(self, tracer):
        worker = Tracer(sample_rate=0.0)
        worker.reset_thread()
        detached = worker.detached("pool.worker", items=4)
        with detached:
            worker.count("sweep.run", 2)
        payload = detached.to_dict()
        with tracer.span("query.batch") as root:
            tracer.graft(payload)
            tracer.graft(None)  # untraced reply: no-op
        assert [c.name for c in root.children] == ["pool.worker"]
        assert root.children[0].counters == {"sweep.run": 2}

    def test_graft_without_open_span_is_noop(self, tracer):
        tracer.graft({"name": "orphan", "start": 0.0, "duration_s": 0.0})
        assert tracer.last_root is None

    def test_detached_bypasses_sampling_and_sinks(self):
        t = Tracer(sample_rate=0.0)
        seen = []
        t.add_root_sink(seen.append)
        span = t.detached("pool.worker")
        with span:
            t.count("sweep.run")
        assert span.counters == {"sweep.run": 1}
        assert seen == []

    def test_reset_thread_clears_stale_stack(self, tracer):
        span = tracer.span("q")
        span.__enter__()
        assert tracer.tracing()
        tracer.reset_thread()
        assert not tracer.tracing()


class TestThreadIsolation:
    def test_stacks_are_per_thread(self, tracer):
        import threading

        other_tracing = []

        def probe():
            other_tracing.append(tracer.tracing())

        with tracer.span("q"):
            worker = threading.Thread(target=probe)
            worker.start()
            worker.join()
        assert other_tracing == [False]
