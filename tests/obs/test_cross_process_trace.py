"""Cross-process trace propagation: a traced batch against the
persistent pool (and the per-batch executor) yields ONE merged span
tree containing the workers' subtrees — and tracing never changes
answers."""

from __future__ import annotations

import pytest

from repro.core.engine import ObstacleDatabase
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.obs.slowlog import SLOW_LOG
from repro.obs.trace import TRACER


@pytest.fixture
def traced():
    """Turn the global tracer fully on for the test, restore after."""
    prev = TRACER.sample_rate
    TRACER.configure(1.0)
    yield TRACER
    TRACER.configure(prev)
    TRACER.last_root = None
    SLOW_LOG.clear()


@pytest.fixture
def db() -> ObstacleDatabase:
    database = ObstacleDatabase(
        [
            Rect(10.0, 10.0, 20.0, 25.0),
            Rect(40.0, 5.0, 55.0, 18.0),
            Rect(30.0, 40.0, 45.0, 52.0),
        ]
    )
    database.add_entity_set(
        "pois",
        [Point(5.0, 5.0), Point(25.0, 30.0), Point(60.0, 20.0)],
    )
    yield database
    database.close()


QUERIES = [
    Point(0.0, 0.0),
    Point(35.0, 35.0),
    Point(50.0, 2.0),
    Point(12.0, 40.0),
]


class TestPersistentPool:
    def test_traced_pool_batch_merges_worker_spans(self, db, traced):
        # Tracing OFF: the reference answers (and the pool spawn).
        traced.configure(0.0)
        baseline = db.batch_nearest(
            "pois", QUERIES, 2, workers=2, pool="persistent"
        )
        # Tracing ON: bit-identical answers, one merged tree.
        traced.configure(1.0)
        answers = db.batch_nearest(
            "pois", QUERIES, 2, workers=2, pool="persistent"
        )
        assert answers == baseline

        root = traced.last_root
        assert root is not None and root.name == "query.batch_nearest"
        assert root.attrs["n"] == len(QUERIES)
        pool_spans = [s for s in root.walk() if s.name == "pool.batch"]
        assert len(pool_spans) == 1
        workers = [s for s in root.walk() if s.name == "pool.worker"]
        assert workers, "worker span trees were not grafted back"
        assert all(w.attrs["kind"] == "nearest" for w in workers)
        assert sum(w.attrs["items"] for w in workers) == len(QUERIES)
        # The worker subtrees carry the hot-layer evidence: R*-tree
        # page fetches (every chunk touches the entity tree) and the
        # graph-cache verdicts for its centres.
        merged: dict[str, int] = {}
        for w in workers:
            for name, value in w.total_counters().items():
                merged[name] = merged.get(name, 0) + value
        assert merged.get("rtree.page_fetch", 0) > 0
        cache_touches = (
            merged.get("graph_cache.hit", 0)
            + merged.get("graph_cache.miss", 0)
        )
        graph_spans = [
            s
            for w in workers
            for s in w.walk()
            if s.name in ("graph.build", "graph.rebuild", "field.build")
        ]
        assert cache_touches > 0 or graph_spans

    def test_untraced_pool_batch_ships_no_span_payload(self, db, traced):
        traced.configure(0.0)
        db.batch_nearest("pois", QUERIES, 2, workers=2, pool="persistent")
        assert traced.last_root is None


class TestBatchExecutor:
    def test_traced_thread_batch_merges_worker_spans(self, db, traced):
        traced.configure(0.0)
        baseline = db.batch_nearest(
            "pois", QUERIES, 2, workers=2, mode="thread", pool="fork"
        )
        traced.configure(1.0)
        answers = db.batch_nearest(
            "pois", QUERIES, 2, workers=2, mode="thread", pool="fork"
        )
        assert answers == baseline
        root = traced.last_root
        assert root is not None and root.name == "query.batch_nearest"
        workers = [s for s in root.walk() if s.name == "batch.worker"]
        assert workers
        covered = sorted(
            (w.attrs["start"], w.attrs["stop"]) for w in workers
        )
        assert covered[0][0] == 0
        assert covered[-1][1] == len(QUERIES)

    def test_traced_fork_batch_merges_worker_spans(self, db, traced):
        from repro.runtime.executor import fork_available

        if not fork_available():
            pytest.skip("fork start method unavailable")
        traced.configure(0.0)
        baseline = db.batch_nearest(
            "pois", QUERIES, 2, workers=2, mode="fork", pool="fork"
        )
        traced.configure(1.0)
        answers = db.batch_nearest(
            "pois", QUERIES, 2, workers=2, mode="fork", pool="fork"
        )
        assert answers == baseline
        root = traced.last_root
        workers = [s for s in root.walk() if s.name == "batch.worker"]
        assert workers
        # Fork workers run cold private contexts: their subtrees must
        # carry real work (spans or counters), proving the payload
        # crossed the process boundary, not just the span shell.
        assert any(w.children or w.total_counters() for w in workers)


class TestServer:
    def test_serve_batch_span_carries_queue_wait(self, db, traced):
        import asyncio

        from repro.serve.server import QueryServer

        async def drive() -> None:
            async with QueryServer(db, workers=0, coalesce_window=0.0) as srv:
                await srv.nearest("pois", Point(0.0, 0.0), 1)

        asyncio.run(drive())
        root = traced.last_root
        assert root is not None and root.name == "serve.batch"
        assert root.attrs["kind"] == "nearest"
        assert root.attrs["queue_wait_ms"] >= 0.0
        assert [c.name for c in root.children] == ["query.batch_nearest"]
