"""RuntimeStats completeness guard: every counter in ``__slots__``
must flow through snapshot, reset, merge, and the worker reply paths —
a counter added later that misses any of them fails here, not in a
silently-wrong benchmark."""

from __future__ import annotations

import pytest

from repro.core.engine import ObstacleDatabase
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.runtime.stats import RuntimeStats

_COUNTERS = [name for name in RuntimeStats.__slots__ if name != "backend"]


def _filled(offset: int = 0) -> RuntimeStats:
    stats = RuntimeStats()
    for i, name in enumerate(_COUNTERS):
        value = float(i + 1 + offset) if name == "sweep_seconds" else i + 1 + offset
        setattr(stats, name, value)
    return stats


class TestSnapshot:
    def test_snapshot_carries_exactly_the_slots(self):
        assert set(RuntimeStats().snapshot()) == set(RuntimeStats.__slots__)

    def test_reset_zeroes_every_counter(self):
        stats = _filled()
        stats.backend = "probe"
        stats.reset()
        for name in _COUNTERS:
            assert getattr(stats, name) == 0, f"reset missed {name}"
        assert stats.backend == "probe"  # configuration survives


class TestMerge:
    def test_merge_accounts_every_counter(self):
        target = _filled()
        source = _filled(offset=100)
        target.merge(source)
        for i, name in enumerate(_COUNTERS):
            expected = (i + 1) + (i + 1 + 100)
            assert getattr(target, name) == expected, f"merge missed {name}"

    def test_merge_from_dict_snapshot(self):
        target = RuntimeStats()
        target.merge(_filled().snapshot())
        for i, name in enumerate(_COUNTERS):
            assert getattr(target, name) == i + 1

    def test_merge_leaves_backend_alone(self):
        target = RuntimeStats()
        target.backend = "mine"
        source = RuntimeStats()
        source.backend = "theirs"
        target.merge(source)
        assert target.backend == "mine"

    @pytest.mark.parametrize("missing", _COUNTERS)
    def test_partial_snapshot_raises_naming_the_counter(self, missing):
        """A producer (pipe reply, fork join) that forgot a counter
        must fail loudly instead of silently dropping worker work."""
        snapshot = RuntimeStats().snapshot()
        del snapshot[missing]
        with pytest.raises(ValueError, match=missing):
            RuntimeStats().merge(snapshot)

    def test_missing_backend_is_tolerated(self):
        snapshot = RuntimeStats().snapshot()
        del snapshot["backend"]
        RuntimeStats().merge(snapshot)  # backend is config, not work


class TestWorkerReplyPaths:
    """The snapshots workers actually ship are complete by construction
    — both pool replies and fork-executor joins run through merge's
    strict check against a live database."""

    @pytest.fixture
    def db(self) -> ObstacleDatabase:
        database = ObstacleDatabase([Rect(10.0, 10.0, 20.0, 25.0)])
        database.add_entity_set("pois", [Point(5.0, 5.0), Point(25.0, 30.0)])
        yield database
        database.close()

    def test_runtime_stats_reply_shape(self, db):
        """db.runtime_stats() is exactly what a pool worker sends."""
        assert set(db.runtime_stats()) == set(RuntimeStats.__slots__)

    def test_pool_reply_merges_cleanly(self, db):
        queries = [Point(0.0, 0.0), Point(30.0, 30.0)]
        results = db.batch_nearest(
            "pois", queries, 1, workers=2, pool="persistent"
        )
        assert len(results) == len(queries)
        assert db.runtime_stats()["pool_batches"] == 1

    def test_fork_executor_reply_merges_cleanly(self, db):
        queries = [Point(0.0, 0.0), Point(30.0, 30.0)]
        results = db.batch_nearest(
            "pois", queries, 1, workers=2, mode="thread", pool="fork"
        )
        assert len(results) == len(queries)
        assert db.runtime_stats()["parallel_batches"] == 1
