"""The slow-query log: threshold capture, the ring bound, and the
wiring into the global tracer."""

from __future__ import annotations

import json
import time

from repro.obs.slowlog import SLOW_LOG, SlowQueryLog
from repro.obs.trace import TRACER, Tracer


def _finished_root(tracer: Tracer, name: str, **attrs):
    with tracer.span(name, **attrs) as span:
        pass
    return span


class TestCapture:
    def test_fast_roots_are_skipped(self):
        log = SlowQueryLog(threshold_ms=1e6)
        tracer = Tracer(sample_rate=1.0)
        tracer.add_root_sink(log.observe)
        _finished_root(tracer, "query.nearest")
        assert len(log) == 0

    def test_over_threshold_root_is_captured_whole(self):
        log = SlowQueryLog(threshold_ms=0.0)
        tracer = Tracer(sample_rate=1.0)
        tracer.add_root_sink(log.observe)
        with tracer.span("query.range", e=5.0):
            with tracer.span("graph.build"):
                tracer.count("sweep.run")
        (entry,) = log.entries()
        assert entry["name"] == "query.range"
        assert entry["attrs"] == {"e": 5.0}
        assert entry["duration_ms"] >= 0.0
        assert entry["trace"]["children"][0]["name"] == "graph.build"
        assert entry["trace"]["children"][0]["counters"] == {"sweep.run": 1}

    def test_threshold_boundary_uses_duration(self):
        log = SlowQueryLog(threshold_ms=5.0)
        tracer = Tracer(sample_rate=1.0)
        tracer.add_root_sink(log.observe)
        span = tracer.span("q")
        span.__enter__()
        span.start = time.perf_counter() - 0.010  # backdate: ~10 ms
        span.__exit__(None, None, None)
        assert len(log) == 1

    def test_ring_is_bounded(self):
        log = SlowQueryLog(threshold_ms=0.0, capacity=3)
        tracer = Tracer(sample_rate=1.0)
        tracer.add_root_sink(log.observe)
        for i in range(6):
            _finished_root(tracer, f"q{i}")
        names = [e["name"] for e in log.entries()]
        assert names == ["q3", "q4", "q5"]

    def test_clear_and_dump_json(self):
        log = SlowQueryLog(threshold_ms=0.0)
        tracer = Tracer(sample_rate=1.0)
        tracer.add_root_sink(log.observe)
        _finished_root(tracer, "q")
        doc = json.loads(log.dump_json())
        assert doc[0]["name"] == "q"
        log.clear()
        assert log.entries() == []


class TestEnvironment:
    def test_threshold_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SLOW_QUERY_MS", "250")
        assert SlowQueryLog().threshold_ms == 250.0
        monkeypatch.setenv("REPRO_SLOW_QUERY_MS", "junk")
        assert SlowQueryLog().threshold_ms == 100.0
        monkeypatch.delenv("REPRO_SLOW_QUERY_MS")
        assert SlowQueryLog().threshold_ms == 100.0


class TestGlobalWiring:
    def test_global_log_is_a_tracer_sink(self):
        """The module-level SLOW_LOG is hooked into the global TRACER
        at import time: a slow sampled root lands in it."""
        prev_rate = TRACER.sample_rate
        prev_threshold = SLOW_LOG.threshold_ms
        SLOW_LOG.clear()
        TRACER.configure(1.0)
        SLOW_LOG.threshold_ms = 0.0
        try:
            with TRACER.span("query.slow-wiring-probe"):
                pass
            assert any(
                e["name"] == "query.slow-wiring-probe"
                for e in SLOW_LOG.entries()
            )
        finally:
            TRACER.configure(prev_rate)
            SLOW_LOG.threshold_ms = prev_threshold
            SLOW_LOG.clear()
