"""The ``repro-obs`` command-line interface."""

from __future__ import annotations

import json
import random

import pytest

from repro.datasets.io import save_obstacles, save_points
from repro.obs.cli import main
from repro.persist.cli import main as snapshot_main

from tests.conftest import random_disjoint_rects, random_free_points


@pytest.fixture
def scene(tmp_path):
    """Dataset files plus a warm snapshot built through repro-snapshot."""
    rng = random.Random(23)
    obstacles = random_disjoint_rects(rng, 8)
    points = random_free_points(rng, 6, obstacles)
    obstacle_path = tmp_path / "obstacles.txt"
    points_path = tmp_path / "pois.txt"
    save_obstacles(obstacle_path, obstacles)
    save_points(points_path, points)
    snap = tmp_path / "scene.snap"
    assert (
        snapshot_main(
            [
                "save",
                "--obstacles",
                str(obstacle_path),
                "--entities",
                f"pois={points_path}",
                "--warm",
                "2",
                "--out",
                str(snap),
            ]
        )
        == 0
    )
    return snap, obstacle_path, points_path


class TestExport:
    def test_json_export_from_snapshot(self, scene, capsys):
        snap, __, __ = scene
        assert main(["export", "--snapshot", str(snap), "--probe", "3"]) == 0
        doc = json.loads(capsys.readouterr().out)
        # Counters restored from the warm snapshot plus the probe work.
        assert doc["runtime"]["graph_builds"] >= 1
        assert any(name.startswith("entities:") for name in doc["pages"])

    def test_prometheus_export_from_datasets(self, scene, capsys):
        __, obstacle_path, points_path = scene
        code = main(
            [
                "export",
                "--obstacles",
                str(obstacle_path),
                "--entities",
                f"pois={points_path}",
                "--probe",
                "2",
                "--format",
                "prometheus",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_runtime_graph_builds gauge" in out
        assert "repro_runtime_graph_builds" in out

    def test_trace_out_roundtrips_through_trace_command(
        self, scene, tmp_path, capsys
    ):
        snap, __, __ = scene
        trace_path = tmp_path / "trace.json"
        code = main(
            [
                "export",
                "--snapshot",
                str(snap),
                "--probe",
                "2",
                "--trace-out",
                str(trace_path),
            ]
        )
        assert code == 0
        capsys.readouterr()
        doc = json.loads(trace_path.read_text())
        assert doc["name"].startswith("query.")
        assert main(["trace", str(trace_path)]) == 0
        printed = capsys.readouterr().out
        assert doc["name"] in printed
        assert "ms" in printed

    def test_source_arguments_are_exclusive(self, scene, capsys):
        snap, obstacle_path, __ = scene
        assert main(["export"]) == 2
        assert (
            main(
                [
                    "export",
                    "--snapshot",
                    str(snap),
                    "--obstacles",
                    str(obstacle_path),
                ]
            )
            == 2
        )


class TestTrace:
    def test_rejects_non_json(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("not json at all")
        assert main(["trace", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_file_reports_error(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "absent.json")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_renders_slow_log_dump(self, tmp_path, capsys):
        entries = [
            {
                "name": "query.nearest",
                "duration_ms": 12.5,
                "trace": {
                    "name": "query.nearest",
                    "start": 0.0,
                    "duration_s": 0.0125,
                    "counters": {"rtree.page_fetch": 4},
                    "children": [
                        {
                            "name": "graph.build",
                            "start": 0.0,
                            "duration_s": 0.01,
                        }
                    ],
                },
            }
        ]
        path = tmp_path / "slow.json"
        path.write_text(json.dumps(entries))
        assert main(["trace", str(path)]) == 0
        printed = capsys.readouterr().out
        assert "query.nearest" in printed
        assert "graph.build" in printed
        assert "rtree.page_fetch=4" in printed


class TestTop:
    def test_top_prints_one_line_per_tick(self, scene, capsys):
        snap, __, __ = scene
        assert main(["top", "--snapshot", str(snap), "--ticks", "2"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3  # header + 2 ticks
        assert "reqs" in lines[0]

    def test_top_rejects_bad_ticks(self, scene, capsys):
        snap, __, __ = scene
        assert main(["top", "--snapshot", str(snap), "--ticks", "0"]) == 2
