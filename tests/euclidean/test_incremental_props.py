"""Property tests on the incremental Euclidean streams.

The obstructed algorithms' correctness rests on two contracts of the
Euclidean layer: streams are globally sorted, and they are *complete*
supersets under the lower-bound property.  These tests pin the
contracts directly.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.euclidean import (
    IncrementalClosestPairs,
    IncrementalNearestNeighbors,
)
from repro.geometry import Point, Rect
from repro.index import RStarTree, str_pack

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

coords = st.tuples(
    st.floats(0, 100, allow_nan=False), st.floats(0, 100, allow_nan=False)
)


def _tree(pts):
    tree = RStarTree(max_entries=4, min_entries=2)
    str_pack(tree, [(p, Rect.from_point(p)) for p in pts])
    return tree


@SETTINGS
@given(st.lists(coords, min_size=1, max_size=40), coords)
def test_nn_stream_is_sorted_and_complete(raw, q_raw):
    pts = [Point(x, y) for x, y in raw]
    q = Point(*q_raw)
    stream = list(IncrementalNearestNeighbors(_tree(pts), q))
    dists = [d for __, d in stream]
    assert dists == sorted(dists)
    assert len(stream) == len(pts)
    assert dists == pytest.approx(sorted(p.distance(q) for p in pts))


@SETTINGS
@given(st.lists(coords, min_size=1, max_size=40), coords)
def test_nn_stream_prefix_property(raw, q_raw):
    # stopping after j items gives exactly the j nearest
    pts = [Point(x, y) for x, y in raw]
    q = Point(*q_raw)
    j = max(1, len(pts) // 2)
    stream = IncrementalNearestNeighbors(_tree(pts), q)
    prefix = [next(stream) for __ in range(j)]
    want = sorted(p.distance(q) for p in pts)[:j]
    assert [d for __, d in prefix] == pytest.approx(want)


@SETTINGS
@given(
    st.lists(coords, min_size=1, max_size=12),
    st.lists(coords, min_size=1, max_size=12),
)
def test_cp_stream_is_sorted_and_complete(s_raw, t_raw):
    s = [Point(x, y) for x, y in s_raw]
    t = [Point(x, y) for x, y in t_raw]
    stream = list(IncrementalClosestPairs(_tree(s), _tree(t)))
    dists = [d for __, __, d in stream]
    assert dists == sorted(dists)
    assert len(stream) == len(s) * len(t)
    assert dists == pytest.approx(
        sorted(a.distance(b) for a in s for b in t)
    )


@SETTINGS
@given(
    st.lists(coords, min_size=1, max_size=12),
    st.lists(coords, min_size=1, max_size=12),
)
def test_cp_stream_sides_preserved(s_raw, t_raw):
    s = {Point(x, y) for x, y in s_raw}
    t = {Point(x, y) for x, y in t_raw}
    for a, b, __ in IncrementalClosestPairs(
        _tree(list(s)), _tree(list(t))
    ):
        assert a in s
        assert b in t
