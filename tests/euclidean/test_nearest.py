"""Tests for incremental best-first nearest-neighbour search [HS99]."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import QueryError
from repro.euclidean import IncrementalNearestNeighbors, k_nearest
from repro.geometry import Point, Rect
from repro.index import RStarTree, str_pack


def _tree(pts, max_entries=8):
    tree = RStarTree(max_entries=max_entries, min_entries=min(3, max_entries // 2))
    str_pack(tree, [(p, Rect.from_point(p)) for p in pts])
    return tree


def _random_points(seed, n):
    rng = random.Random(seed)
    return [Point(rng.uniform(0, 1000), rng.uniform(0, 1000)) for __ in range(n)]


class TestKNearest:
    def test_k1(self):
        pts = [Point(0, 0), Point(5, 0), Point(10, 0)]
        tree = _tree(pts)
        [(p, d)] = k_nearest(tree, Point(6, 0), 1)
        assert p == Point(5, 0)
        assert d == pytest.approx(1.0)

    def test_invalid_k(self):
        with pytest.raises(QueryError):
            k_nearest(_tree([Point(0, 0)]), Point(0, 0), 0)

    def test_k_larger_than_dataset(self):
        pts = [Point(0, 0), Point(1, 0)]
        assert len(k_nearest(_tree(pts), Point(0, 0), 10)) == 2

    def test_empty_tree(self):
        tree = RStarTree(max_entries=8)
        assert k_nearest(tree, Point(0, 0), 3) == []

    def test_matches_bruteforce(self):
        pts = _random_points(3, 400)
        tree = _tree(pts)
        q = Point(321, 654)
        got = [d for __, d in k_nearest(tree, q, 25)]
        want = sorted(p.distance(q) for p in pts)[:25]
        assert got == pytest.approx(want)

    def test_query_point_in_dataset(self):
        pts = _random_points(4, 50)
        tree = _tree(pts)
        (p, d), *__ = k_nearest(tree, pts[10], 1)
        assert d == 0.0
        assert p == pts[10]


class TestIncremental:
    def test_ascending_order(self):
        pts = _random_points(5, 300)
        tree = _tree(pts)
        stream = IncrementalNearestNeighbors(tree, Point(500, 500))
        dists = [d for __, d in stream]
        assert dists == sorted(dists)
        assert len(dists) == 300

    def test_full_enumeration_matches_sorted_bruteforce(self):
        pts = _random_points(6, 150)
        tree = _tree(pts, max_entries=4)
        q = Point(100, 900)
        got = [d for __, d in IncrementalNearestNeighbors(tree, q)]
        want = sorted(p.distance(q) for p in pts)
        assert got == pytest.approx(want)

    def test_resumable_between_pulls(self):
        pts = _random_points(7, 100)
        tree = _tree(pts)
        q = Point(0, 0)
        stream = IncrementalNearestNeighbors(tree, q)
        first = next(stream)
        rest = list(stream)
        assert len(rest) == 99
        assert first[1] <= rest[0][1]

    def test_duplicates_reported_individually(self):
        pts = [Point(1, 1)] * 5 + [Point(9, 9)]
        tree = _tree(pts)
        got = list(IncrementalNearestNeighbors(tree, Point(0, 0)))
        assert len(got) == 6
        assert [d for __, d in got][:5] == pytest.approx([Point(1, 1).distance(Point(0, 0))] * 5)

    def test_counts_page_accesses(self):
        pts = _random_points(8, 500)
        tree = _tree(pts, max_entries=16)
        tree.reset_stats(clear_buffer=True)
        list(IncrementalNearestNeighbors(tree, Point(500, 500)))
        assert tree.counter.reads >= tree.page_count


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    st.lists(
        st.tuples(st.floats(0, 100, allow_nan=False), st.floats(0, 100, allow_nan=False)),
        min_size=1,
        max_size=60,
    ),
    st.tuples(st.floats(0, 100, allow_nan=False), st.floats(0, 100, allow_nan=False)),
    st.integers(1, 10),
)
def test_property_knn_matches_bruteforce(coords, qxy, k):
    pts = [Point(x, y) for x, y in coords]
    tree = _tree(pts, max_entries=4)
    q = Point(*qxy)
    got = [d for __, d in k_nearest(tree, q, k)]
    want = sorted(p.distance(q) for p in pts)[:k]
    assert got == pytest.approx(want)
