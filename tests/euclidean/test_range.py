"""Tests for Euclidean range search (filter + refinement)."""

import random

import pytest

from repro.errors import QueryError
from repro.euclidean import entities_in_range, obstacles_in_range, range_query
from repro.geometry import Circle, Point, Polygon, Rect
from repro.index import RStarTree, str_pack
from repro.model import Obstacle
from tests.conftest import random_disjoint_rects


def _entity_tree(pts):
    tree = RStarTree(max_entries=8, min_entries=3)
    str_pack(tree, [(p, Rect.from_point(p)) for p in pts])
    return tree


def _obstacle_tree(obstacles):
    tree = RStarTree(max_entries=8, min_entries=3)
    str_pack(tree, [(o, o.mbr) for o in obstacles])
    return tree


class TestEntitiesInRange:
    def test_exact_for_points(self):
        rng = random.Random(0)
        pts = [Point(rng.uniform(0, 100), rng.uniform(0, 100)) for __ in range(200)]
        tree = _entity_tree(pts)
        q = Point(50, 50)
        got = sorted(p.as_tuple() for p in entities_in_range(tree, q, 20))
        want = sorted(p.as_tuple() for p in pts if p.distance(q) <= 20)
        assert got == want

    def test_zero_radius(self):
        pts = [Point(1, 1), Point(2, 2)]
        tree = _entity_tree(pts)
        assert entities_in_range(tree, Point(1, 1), 0.0) == [Point(1, 1)]

    def test_negative_radius_rejected(self):
        tree = _entity_tree([Point(1, 1)])
        with pytest.raises(QueryError):
            entities_in_range(tree, Point(0, 0), -1.0)

    def test_empty_tree(self):
        tree = RStarTree(max_entries=8)
        assert entities_in_range(tree, Point(0, 0), 100) == []


class TestObstaclesInRange:
    def test_refinement_rejects_mbr_only_hits(self):
        # A thin diagonal triangle: MBR reaches the query disk, body not.
        tri = Obstacle(0, Polygon([Point(10, 4), Point(10, 10), Point(4, 10)]))
        tree = _obstacle_tree([tri])
        assert obstacles_in_range(tree, Point(0, 0), 7.0) == []
        assert obstacles_in_range(tree, Point(0, 0), 10.0) == [tri]

    def test_matches_bruteforce(self):
        rng = random.Random(7)
        obstacles = random_disjoint_rects(rng, 30)
        tree = _obstacle_tree(obstacles)
        q = Point(50, 50)
        for radius in (5.0, 15.0, 40.0):
            got = {o.oid for o in obstacles_in_range(tree, q, radius)}
            want = {
                o.oid
                for o in obstacles
                if o.polygon.distance_to_point(q) <= radius
            }
            assert got == want

    def test_negative_radius_rejected(self):
        tree = _obstacle_tree(random_disjoint_rects(random.Random(1), 3))
        with pytest.raises(QueryError):
            obstacles_in_range(tree, Point(0, 0), -0.5)


class TestRangeQuery:
    def test_rect_region(self):
        pts = [Point(i, i) for i in range(10)]
        tree = _entity_tree(pts)
        got = set(range_query(tree, Rect(2, 2, 5, 5)))
        assert got == {Point(2, 2), Point(3, 3), Point(4, 4), Point(5, 5)}

    def test_circle_region(self):
        pts = [Point(i, 0) for i in range(10)]
        tree = _entity_tree(pts)
        got = set(range_query(tree, Circle(Point(0, 0), 2.5)))
        assert got == {Point(0, 0), Point(1, 0), Point(2, 0)}

    def test_unsupported_region(self):
        tree = _entity_tree([Point(0, 0)])
        with pytest.raises(QueryError):
            range_query(tree, "not-a-region")
