"""Tests for the R-tree distance join [BKS93]."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import QueryError
from repro.euclidean import distance_join
from repro.euclidean.join import intersection_join
from repro.geometry import Point, Rect
from repro.index import RStarTree, str_pack


def _tree(pts, max_entries=8):
    tree = RStarTree(max_entries=max_entries, min_entries=min(3, max_entries // 2))
    str_pack(tree, [(p, Rect.from_point(p)) for p in pts])
    return tree


def _random_points(seed, n, span=200.0):
    rng = random.Random(seed)
    return [Point(rng.uniform(0, span), rng.uniform(0, span)) for __ in range(n)]


class TestDistanceJoin:
    def test_negative_distance_rejected(self):
        t = _tree([Point(0, 0)])
        with pytest.raises(QueryError):
            distance_join(t, t, -1.0)

    def test_empty_inputs(self):
        empty = RStarTree(max_entries=8)
        full = _tree([Point(0, 0)])
        assert distance_join(empty, full, 10) == []
        assert distance_join(full, empty, 10) == []

    def test_matches_bruteforce(self):
        s = _random_points(1, 80)
        t = _random_points(2, 60)
        ts, tt = _tree(s), _tree(t)
        e = 25.0
        got = {(a.as_tuple(), b.as_tuple()) for a, b, __ in distance_join(ts, tt, e)}
        want = {
            (a.as_tuple(), b.as_tuple())
            for a in s
            for b in t
            if a.distance(b) <= e
        }
        assert got == want

    def test_reported_distances_correct(self):
        s = _random_points(3, 40)
        t = _random_points(4, 40)
        for a, b, d in distance_join(_tree(s), _tree(t), 30.0):
            assert d == pytest.approx(a.distance(b))
            assert d <= 30.0

    def test_zero_distance_join_is_intersection(self):
        shared = _random_points(5, 20)
        s = shared + _random_points(6, 20)
        t = shared + _random_points(7, 20)
        pairs = intersection_join(_tree(s), _tree(t))
        got = {(a.as_tuple(), b.as_tuple()) for a, b in pairs}
        want = {
            (a.as_tuple(), b.as_tuple()) for a in s for b in t if a.distance(b) == 0
        }
        assert got == want
        assert len(pairs) >= len(shared)

    def test_on_pair_callback_streams(self):
        s = _random_points(8, 30)
        t = _random_points(9, 30)
        seen = []
        returned = distance_join(
            _tree(s), _tree(t), 40.0, on_pair=lambda a, b, d: seen.append((a, b, d))
        )
        assert returned == []  # list not materialised when callback given
        assert seen
        assert {(a.as_tuple(), b.as_tuple()) for a, b, __ in seen} == {
            (a.as_tuple(), b.as_tuple())
            for a in s
            for b in t
            if a.distance(b) <= 40.0
        }

    def test_different_tree_heights(self):
        s = _random_points(10, 500)  # tall tree
        t = _random_points(11, 5)  # single leaf
        e = 50.0
        got = {(a.as_tuple(), b.as_tuple()) for a, b, __ in distance_join(_tree(s, 4), _tree(t, 4), e)}
        want = {
            (a.as_tuple(), b.as_tuple())
            for a in s
            for b in t
            if a.distance(b) <= e
        }
        assert got == want

    def test_counts_pages_on_both_trees(self):
        s, t = _random_points(12, 300), _random_points(13, 300)
        ts, tt = _tree(s), _tree(t)
        ts.reset_stats(clear_buffer=True)
        tt.reset_stats(clear_buffer=True)
        distance_join(ts, tt, 10.0)
        assert ts.counter.reads > 0
        assert tt.counter.reads > 0


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    st.lists(
        st.tuples(st.floats(0, 60, allow_nan=False), st.floats(0, 60, allow_nan=False)),
        min_size=0,
        max_size=30,
    ),
    st.lists(
        st.tuples(st.floats(0, 60, allow_nan=False), st.floats(0, 60, allow_nan=False)),
        min_size=0,
        max_size=30,
    ),
    st.floats(0, 40, allow_nan=False),
)
def test_property_join_equals_bruteforce(s_coords, t_coords, e):
    s = [Point(x, y) for x, y in s_coords]
    t = [Point(x, y) for x, y in t_coords]
    ts = _tree(s, 4) if s else RStarTree(max_entries=4)
    tt = _tree(t, 4) if t else RStarTree(max_entries=4)
    got = sorted(
        (a.as_tuple(), b.as_tuple()) for a, b, __ in distance_join(ts, tt, e)
    )
    want = sorted(
        (a.as_tuple(), b.as_tuple()) for a in s for b in t if a.distance(b) <= e
    )
    assert got == want
