"""Tests for incremental closest pairs [HS98, CMTV00]."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import QueryError
from repro.euclidean import IncrementalClosestPairs, k_closest_pairs
from repro.geometry import Point, Rect
from repro.index import RStarTree, str_pack


def _tree(pts, max_entries=8):
    tree = RStarTree(max_entries=max_entries, min_entries=min(3, max_entries // 2))
    str_pack(tree, [(p, Rect.from_point(p)) for p in pts])
    return tree


def _random_points(seed, n, span=300.0):
    rng = random.Random(seed)
    return [Point(rng.uniform(0, span), rng.uniform(0, span)) for __ in range(n)]


class TestKClosestPairs:
    def test_invalid_k(self):
        t = _tree([Point(0, 0)])
        with pytest.raises(QueryError):
            k_closest_pairs(t, t, 0)

    def test_empty_side(self):
        empty = RStarTree(max_entries=8)
        full = _tree([Point(0, 0)])
        assert k_closest_pairs(empty, full, 3) == []
        assert k_closest_pairs(full, empty, 3) == []

    def test_single_pair(self):
        s = _tree([Point(0, 0), Point(10, 10)])
        t = _tree([Point(1, 0), Point(20, 20)])
        [(a, b, d)] = k_closest_pairs(s, t, 1)
        assert (a, b) == (Point(0, 0), Point(1, 0))
        assert d == pytest.approx(1.0)

    def test_matches_bruteforce(self):
        s = _random_points(1, 50)
        t = _random_points(2, 40)
        got = [d for __, __, d in k_closest_pairs(_tree(s), _tree(t), 15)]
        want = sorted(a.distance(b) for a in s for b in t)[:15]
        assert got == pytest.approx(want)

    def test_k_exceeding_pair_count(self):
        s = [Point(0, 0), Point(1, 1)]
        t = [Point(2, 2)]
        pairs = k_closest_pairs(_tree(s), _tree(t), 100)
        assert len(pairs) == 2

    def test_sides_not_swapped(self):
        s = [Point(0, 0)]
        t = [Point(3, 4)]
        [(a, b, d)] = k_closest_pairs(_tree(s), _tree(t), 1)
        assert a == Point(0, 0) and b == Point(3, 4)
        assert d == pytest.approx(5.0)


class TestIncrementalStream:
    def test_ascending_distances(self):
        s = _random_points(3, 40)
        t = _random_points(4, 40)
        dists = [d for __, __, d in IncrementalClosestPairs(_tree(s), _tree(t))]
        assert dists == sorted(dists)
        assert len(dists) == 40 * 40

    def test_full_stream_equals_bruteforce(self):
        s = _random_points(5, 25)
        t = _random_points(6, 20)
        got = [d for __, __, d in IncrementalClosestPairs(_tree(s, 4), _tree(t, 4))]
        want = sorted(a.distance(b) for a in s for b in t)
        assert got == pytest.approx(want)

    def test_coincident_points_zero_distance_first(self):
        s = [Point(5, 5), Point(50, 50)]
        t = [Point(5, 5), Point(80, 80)]
        stream = IncrementalClosestPairs(_tree(s), _tree(t))
        a, b, d = next(stream)
        assert d == 0.0
        assert a == b == Point(5, 5)

    def test_unbalanced_tree_heights(self):
        s = _random_points(7, 600)
        t = _random_points(8, 3)
        got = [d for __, __, d in IncrementalClosestPairs(_tree(s, 4), _tree(t, 4))]
        want = sorted(a.distance(b) for a in s for b in t)
        assert got[:50] == pytest.approx(want[:50])


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    st.lists(
        st.tuples(st.floats(0, 50, allow_nan=False), st.floats(0, 50, allow_nan=False)),
        min_size=1,
        max_size=15,
    ),
    st.lists(
        st.tuples(st.floats(0, 50, allow_nan=False), st.floats(0, 50, allow_nan=False)),
        min_size=1,
        max_size=15,
    ),
    st.integers(1, 8),
)
def test_property_cp_matches_bruteforce(s_coords, t_coords, k):
    s = [Point(x, y) for x, y in s_coords]
    t = [Point(x, y) for x, y in t_coords]
    got = [d for __, __, d in k_closest_pairs(_tree(s, 4), _tree(t, 4), k)]
    want = sorted(a.distance(b) for a in s for b in t)[:k]
    assert got == pytest.approx(want)
