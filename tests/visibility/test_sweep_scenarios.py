"""Targeted sweep scenarios: each test pins one geometric situation the
rotational sweep must get right (regression anchors for the degenerate
fallback logic)."""

import math

from repro.geometry import Point, Polygon
from repro.model import Obstacle
from repro.visibility import VisibilityGraph, visible_from
from tests.conftest import rect_obstacle


def _visible(points, obstacles, source):
    g = VisibilityGraph.build(points, obstacles)
    return set(visible_from(source, g))


class TestRayThroughVertex:
    def test_ray_entering_interior_through_corner(self):
        # p -> w passes exactly through corner (0,0) of the box and
        # continues through the interior: blocked.
        box = rect_obstacle(0, 0, 0, 10, 10)
        p, w = Point(-5, -5), Point(12, 12)
        assert w not in _visible([p, w], [box], p)

    def test_ray_grazing_corner_outside(self):
        # p -> w touches corner (0,10) but stays outside: visible.
        box = rect_obstacle(0, 0, 0, 10, 10)
        p, w = Point(-5, 5), Point(5, 15)
        assert w in _visible([p, w], [box], p)

    def test_two_boxes_sharing_ray(self):
        # ray passes through corners of two different boxes
        box1 = rect_obstacle(0, 2, 2, 4, 4)
        box2 = rect_obstacle(1, 6, 6, 8, 8)
        p, w = Point(0, 0), Point(10, 10)
        # through (4,4)->(6,6): the diagonal cuts both interiors
        assert w not in _visible([p, w], [box1, box2], p)

    def test_corner_to_corner_between_boxes(self):
        # segment between facing corners of two disjoint boxes that
        # only grazes both: visible
        box1 = rect_obstacle(0, 0, 0, 4, 4)
        box2 = rect_obstacle(1, 6, 6, 10, 10)
        assert Point(6, 6) in _visible([], [box1, box2], Point(4, 4))


class TestCollinearConfigurations:
    def test_chain_of_points_along_street_line(self):
        street = rect_obstacle(0, 10, 5, 30, 8)
        pts = [Point(0, 5), Point(40, 5), Point(50, 5)]
        vis = _visible(pts, [street], pts[0])
        # along the bottom edge line: boundary grazing, all visible
        assert Point(40, 5) in vis
        assert Point(50, 5) in vis

    def test_points_blocked_across_street_interior_line(self):
        street = rect_obstacle(0, 10, 5, 30, 8)
        a, b = Point(0, 6.5), Point(40, 6.5)  # line cuts the interior
        assert b not in _visible([a, b], [street], a)

    def test_vertex_collinear_with_two_free_points(self):
        box = rect_obstacle(0, 4, 0, 8, 4)
        # p, corner (4,4), w all on the line y = x
        p, w = Point(0, 0), Point(6, 6)
        assert w in _visible([p, w], [box], p)


class TestBoundaryEntities:
    def test_entity_on_edge_sees_along_edge(self):
        box = rect_obstacle(0, 0, 0, 10, 10)
        a, b = Point(3, 0), Point(7, 0)  # both on the bottom edge
        assert b in _visible([a, b], [box], a)

    def test_entity_on_edge_blocked_across_diagonal(self):
        box = rect_obstacle(0, 0, 0, 10, 10)
        a, b = Point(3, 0), Point(10, 7)  # bottom edge -> right edge
        assert b not in _visible([a, b], [box], a)

    def test_entities_on_adjacent_edges_near_corner(self):
        box = rect_obstacle(0, 0, 0, 10, 10)
        a, b = Point(1, 0), Point(0, 1)
        # the chord cuts the corner region *inside* the box
        assert b not in _visible([a, b], [box], a)

    def test_entity_at_vertex_position(self):
        box = rect_obstacle(0, 0, 0, 10, 10)
        w = Point(20, 0)
        vis = _visible([w], [box], Point(10, 0))  # sweep from the vertex
        assert w in vis


class TestNonConvexScenes:
    def test_u_shape_courtyard(self):
        u_shape = Obstacle(
            0,
            Polygon(
                [
                    Point(0, 0), Point(30, 0), Point(30, 30), Point(20, 30),
                    Point(20, 10), Point(10, 10), Point(10, 30), Point(0, 30),
                ]
            ),
        )
        inside = Point(15, 20)   # in the courtyard notch
        outside = Point(15, 40)  # above the opening
        far_left = Point(-10, 5)
        vis = _visible([inside, outside, far_left], [u_shape], inside)
        assert outside in vis        # straight out through the opening
        assert far_left not in vis   # would cut through an arm

    def test_spiral_reflex_vertices(self):
        spiral = Obstacle(
            0,
            Polygon(
                [
                    Point(0, 0), Point(40, 0), Point(40, 40), Point(10, 40),
                    Point(10, 20), Point(20, 20), Point(20, 30), Point(30, 30),
                    Point(30, 10), Point(0, 10),
                ]
            ),
        )
        # pocket point in the spiral's channel (the region between the
        # inner arm at x=20 and the wall at x=30 is the only exterior
        # pocket; (15, 25) — the seed's original pick — is actually
        # *interior*, as Polygon.contains and the exact oracle agree)
        pocket = Point(25, 25)
        vis = _visible([pocket], [spiral], pocket)
        assert Point(20, 20) in vis
        assert Point(20, 30) in vis
        assert Point(30, 30) in vis
        assert Point(40, 0) not in vis
        # the interior point sees nothing — matching the exact oracle
        assert _visible([Point(15, 25)], [spiral], Point(15, 25)) == set()


class TestRegularPolygons:
    def test_silhouette_of_octagon(self):
        octagon = Obstacle(0, Polygon.regular(Point(0, 0), 10, 8))
        p = Point(-30, 0)
        vis = _visible([p], [octagon], p)
        # exactly the front-facing vertices are visible; the one
        # diametrically opposite is not
        far = max(octagon.polygon.vertices, key=lambda v: v.distance(p))
        assert far not in vis
        assert len(vis) >= 4

    def test_triangle_all_vertices_visible_from_afar(self):
        tri = Obstacle(0, Polygon([Point(0, 0), Point(10, 0), Point(5, 8)]))
        p = Point(5, -20)
        vis = _visible([p], [tri], p)
        assert Point(0, 0) in vis and Point(10, 0) in vis
