"""Tests for the rotational plane sweep — including the oracle
equivalence property that anchors the whole visibility layer."""

import random

import pytest
from hypothesis import HealthCheck, given, settings

from repro.geometry import Point, Polygon, Rect
from repro.model import Obstacle
from repro.visibility import VisibilityGraph, naive_visible_from, visible_from
from tests.conftest import random_disjoint_rects, random_free_points, rect_obstacle
from tests.strategies import disjoint_rect_obstacles, free_points


def _graph_scene(points, obstacles):
    """Build a VisibilityGraph purely as a SweepScene container."""
    return VisibilityGraph.build(points, obstacles)


class TestBasicVisibility:
    def test_no_obstacles_all_visible(self):
        pts = [Point(0, 0), Point(10, 0), Point(5, 8)]
        g = _graph_scene(pts, [])
        assert set(visible_from(pts[0], g)) == {pts[1], pts[2]}

    def test_single_blocker(self):
        wall = rect_obstacle(0, 4, -5, 6, 5)
        a, b = Point(0, 0), Point(10, 0)
        g = _graph_scene([a, b], [wall])
        assert b not in visible_from(a, g)

    def test_visible_around_blocker(self):
        wall = rect_obstacle(0, 4, -5, 6, 5)
        a, c = Point(0, 0), Point(10, 20)
        g = _graph_scene([a, c], [wall])
        assert c in visible_from(a, g)

    def test_obstacle_vertices_visible_from_outside(self):
        box = rect_obstacle(0, 2, 2, 4, 4)
        q = Point(0, 0)
        g = _graph_scene([q], [box])
        vis = set(visible_from(q, g))
        assert Point(2, 2) in vis
        assert Point(4, 2) in vis  # corner graze along x-axis direction
        assert Point(2, 4) in vis
        assert Point(4, 4) not in vis  # hidden behind the box

    def test_square_diagonal_not_visible(self):
        box = rect_obstacle(0, 0, 0, 10, 10)
        g = _graph_scene([], [box])
        vis = set(visible_from(Point(0, 0), g))
        assert Point(10, 10) not in vis
        assert Point(10, 0) in vis and Point(0, 10) in vis

    def test_boundary_edge_visibility(self):
        box = rect_obstacle(0, 0, 0, 10, 10)
        g = _graph_scene([], [box])
        assert Point(10, 0) in visible_from(Point(0, 0), g)

    def test_entity_on_boundary_blocked_through_interior(self):
        box = rect_obstacle(0, 0, 0, 10, 10)
        a = Point(5, 0)   # on the bottom edge
        b = Point(5, 10)  # on the top edge
        g = _graph_scene([a, b], [box])
        assert b not in visible_from(a, g)
        assert a not in visible_from(b, g)

    def test_collinear_points_along_edge_line(self):
        box = rect_obstacle(0, 2, 0, 6, 3)
        a, b, c = Point(0, 0), Point(8, 0), Point(12, 0)
        g = _graph_scene([a, b, c], [box])
        # all three lie on the line of the bottom edge: grazing, visible
        assert b in visible_from(a, g)
        assert c in visible_from(a, g)

    def test_point_inside_notch_of_l_shape(self):
        l_shape = Obstacle(
            0,
            Polygon(
                [
                    Point(0, 0),
                    Point(6, 0),
                    Point(6, 2),
                    Point(2, 2),
                    Point(2, 6),
                    Point(0, 6),
                ]
            ),
        )
        q = Point(4, 4)  # inside the notch (outside the polygon)
        g = _graph_scene([q], [l_shape])
        vis = set(visible_from(q, g))
        assert Point(2, 2) in vis
        assert Point(6, 2) in vis
        assert Point(2, 6) in vis
        assert Point(0, 0) not in vis


class TestSweepVsOracle:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_scenes(self, seed):
        rng = random.Random(seed * 31 + 5)
        obstacles = random_disjoint_rects(rng, rng.randint(1, 10))
        points = random_free_points(rng, 6, obstacles)
        g = _graph_scene(points, obstacles)
        nodes = list(g.nodes())
        for u in nodes:
            got = set(visible_from(u, g))
            want = set(naive_visible_from(u, [v for v in nodes if v != u], obstacles))
            assert got == want, f"seed {seed}, node {u}"

    @pytest.mark.parametrize("seed", range(8))
    def test_grid_aligned_scenes_with_boundary_entities(self, seed):
        rng = random.Random(seed * 17 + 3)
        obstacles = []
        occupied = []
        for y in (10, 10, 30, 50):
            x0 = rng.choice((0, 20, 40, 60))
            rect = Rect(x0, y, x0 + rng.choice((10, 15)), y + 4)
            if any(rect.intersects(o) for o in occupied):
                continue
            occupied.append(rect)
            obstacles.append(
                rect_obstacle(len(obstacles), rect.minx, rect.miny, rect.maxx, rect.maxy)
            )
        points = [o.polygon.boundary_point_at(rng.random()) for o in obstacles]
        points += [Point(-5, 10), Point(100, 10), Point(-5, 14)]
        points = [p for p in points if not any(o.polygon.contains(p) for o in obstacles)]
        g = _graph_scene(points, obstacles)
        nodes = list(g.nodes())
        for u in nodes:
            got = set(visible_from(u, g))
            want = set(naive_visible_from(u, [v for v in nodes if v != u], obstacles))
            assert got == want, f"seed {seed}, node {u}"


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(disjoint_rect_obstacles())
def test_property_sweep_equals_oracle_on_vertices(obstacles):
    g = _graph_scene([], obstacles)
    nodes = list(g.nodes())
    for u in nodes[: min(len(nodes), 8)]:
        got = set(visible_from(u, g))
        want = set(naive_visible_from(u, [v for v in nodes if v != u], obstacles))
        assert got == want
