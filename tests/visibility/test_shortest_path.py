"""Tests for Dijkstra over visibility graphs."""

import math

import pytest

from repro.geometry import Point
from repro.visibility import (
    VisibilityGraph,
    bounded_dijkstra,
    dijkstra,
    shortest_path,
    shortest_path_dist,
)
from tests.conftest import rect_obstacle


@pytest.fixture
def wall_graph():
    """Two points separated by a vertical wall: the shortest path must
    round a wall corner."""
    wall = rect_obstacle(0, 4, -10, 6, 10)
    a, b = Point(0, 0), Point(10, 0)
    g = VisibilityGraph.build([a, b], [wall])
    return g, a, b, wall


class TestShortestPathDist:
    def test_identity(self):
        g = VisibilityGraph.build([Point(1, 1)], [])
        assert shortest_path_dist(g, Point(1, 1), Point(1, 1)) == 0.0

    def test_unknown_node_inf(self):
        g = VisibilityGraph.build([Point(0, 0)], [])
        assert shortest_path_dist(g, Point(0, 0), Point(9, 9)) == math.inf

    def test_direct_edge(self):
        a, b = Point(0, 0), Point(3, 4)
        g = VisibilityGraph.build([a, b], [])
        assert shortest_path_dist(g, a, b) == pytest.approx(5.0)

    def test_around_wall(self, wall_graph):
        g, a, b, wall = wall_graph
        d = shortest_path_dist(g, a, b)
        # must round either corner (4,10)/(6,10) or the bottom pair
        expected = (
            Point(0, 0).distance(Point(4, 10))
            + Point(4, 10).distance(Point(6, 10))
            + Point(6, 10).distance(Point(10, 0))
        )
        assert d == pytest.approx(expected)
        assert d > a.distance(b)  # strictly longer than Euclidean

    def test_touching_ring_is_escapable_through_seams(self):
        # Four walls touching along their boundaries: under the
        # open-segment semantics the zero-width seams are passable, so
        # the "courtyard" is not sealed (a ring of *disjoint* simple
        # polygons can never seal a point).
        walls = [
            rect_obstacle(0, -10, -10, 10, -8),
            rect_obstacle(1, -10, 8, 10, 10),
            rect_obstacle(2, -10, -8, -8, 8),
            rect_obstacle(3, 8, -8, 10, 8),
        ]
        a, b = Point(0, 0), Point(50, 50)
        g = VisibilityGraph.build([a, b], walls)
        assert shortest_path_dist(g, a, b) < math.inf

    def test_disconnected_inf_with_overlapping_ring(self):
        # Overlapping walls close the seams: a is truly sealed.  The
        # sweep kernel assumes non-crossing boundaries (the paper's
        # setting), so the exact naive kernel is used here.
        walls = [
            rect_obstacle(0, -10, -10, 10, -7),
            rect_obstacle(1, -10, 7, 10, 10),
            rect_obstacle(2, -10, -9, -7, 9),
            rect_obstacle(3, 7, -9, 10, 9),
        ]
        a, b = Point(0, 0), Point(50, 50)
        g = VisibilityGraph.build([a, b], walls, method="naive")
        assert shortest_path_dist(g, a, b) == math.inf


class TestShortestPath:
    def test_path_endpoints(self, wall_graph):
        g, a, b, __ = wall_graph
        d, path = shortest_path(g, a, b)
        assert path[0] == a and path[-1] == b
        assert len(path) >= 3  # must pass at least two wall corners

    def test_path_length_consistent(self, wall_graph):
        g, a, b, __ = wall_graph
        d, path = shortest_path(g, a, b)
        walked = sum(path[i].distance(path[i + 1]) for i in range(len(path) - 1))
        assert walked == pytest.approx(d)

    def test_trivial_path(self):
        g = VisibilityGraph.build([Point(2, 2)], [])
        d, path = shortest_path(g, Point(2, 2), Point(2, 2))
        assert d == 0.0 and path == [Point(2, 2)]

    def test_unreachable_path_empty(self):
        a, b = Point(0, 0), Point(100, 100)
        g = VisibilityGraph.build([a], [])
        d, path = shortest_path(g, a, b)
        assert d == math.inf and path == []


class TestDijkstraVariants:
    def test_bound_limits_expansion(self, wall_graph):
        g, a, b, __ = wall_graph
        full = dijkstra(g, a)
        bounded = bounded_dijkstra(g, a, 5.0)
        assert set(bounded) <= set(full)
        assert all(d <= 5.0 for d in bounded.values())
        assert b not in bounded  # b is ~22 away around the wall

    def test_targets_early_exit(self, wall_graph):
        g, a, b, __ = wall_graph
        res = dijkstra(g, a, targets=[b])
        assert b in res
        assert res[b] == pytest.approx(shortest_path_dist(g, a, b))

    def test_source_missing_empty(self):
        g = VisibilityGraph.build([Point(0, 0)], [])
        assert dijkstra(g, Point(5, 5)) == {}

    def test_distances_monotone_with_bound(self, wall_graph):
        g, a, __, __ = wall_graph
        d1 = bounded_dijkstra(g, a, 8.0)
        d2 = bounded_dijkstra(g, a, 20.0)
        for node, d in d1.items():
            assert d2[node] == pytest.approx(d)


class TestTargetsAndBoundSemantics:
    """Early-exit contract of ``dijkstra(targets=...)`` and the closed
    boundary of ``bounded_dijkstra`` (satellite coverage for the heap
    rework)."""

    def test_settled_target_terminates_expansion(self):
        # A long chain: asking for a near target must not settle the
        # far end of the chain.
        points = [Point(float(i), 0.0) for i in range(30)]
        g = VisibilityGraph.build(points, [])
        res = dijkstra(g, points[0], targets=[points[1]])
        assert res[points[1]] == pytest.approx(1.0)
        assert len(res) < len(points)

    def test_all_targets_settled(self, wall_graph):
        g, a, b, wall = wall_graph
        corners = list(wall.polygon.vertices)[:2]
        res = dijkstra(g, a, targets=[b] + corners)
        for t in [b] + corners:
            assert t in res

    def test_unreachable_target_within_bound_terminates(self, wall_graph):
        # b is ~22 away around the wall: within bound 5 it is
        # unreachable, and the expansion must prove that by exhausting
        # the bounded frontier rather than spinning.
        g, a, b, __ = wall_graph
        res = dijkstra(g, a, targets=[b], bound=5.0)
        assert b not in res
        assert all(d <= 5.0 for d in res.values())

    def test_sealed_target_terminates(self):
        # A target in a separate component: the heap drains and the
        # call returns (no bound needed to terminate).
        walls = [
            rect_obstacle(0, -10, -10, 10, -7),
            rect_obstacle(1, -10, 7, 10, 10),
            rect_obstacle(2, -10, -9, -7, 9),
            rect_obstacle(3, 7, -9, 10, 9),
        ]
        a, b = Point(0, 0), Point(50, 50)
        g = VisibilityGraph.build([a, b], walls, method="naive")
        res = dijkstra(g, a, targets=[b])
        assert b not in res

    def test_bounded_dijkstra_includes_exact_boundary(self):
        # Integer chain: node i sits at exactly distance i.  The bound
        # is inclusive (``nd <= bound`` pushes, ``d > bound`` breaks),
        # so a node at exactly the bound is settled.
        points = [Point(float(i), 0.0) for i in range(8)]
        g = VisibilityGraph.build(points, [])
        res = bounded_dijkstra(g, points[0], 5.0)
        assert res[points[5]] == 5.0
        assert points[6] not in res


class TestHeapTraffic:
    """Regression guard for the stale-pop/dominated-push fix: on a
    dense graph the heap must pop O(n) entries, not one per
    relaxation."""

    def _counting_heapq(self):
        import heapq as real

        class Counting:
            pops = 0
            pushes = 0

            @classmethod
            def heappop(cls, heap):
                cls.pops += 1
                return real.heappop(heap)

            @classmethod
            def heappush(cls, heap, item):
                cls.pushes += 1
                return real.heappush(heap, item)

        return Counting

    def test_dense_graph_pop_count_linear(self, monkeypatch):
        # ``repro.visibility.shortest_path`` the module is shadowed by
        # the re-exported function of the same name; go via importlib.
        import importlib

        sp = importlib.import_module("repro.visibility.shortest_path")

        # Collinear points with no obstacles: a complete visibility
        # graph (every pair mutually visible), the densest case.  All
        # coordinates are integers, so relaxations i -> j compute
        # i + (j - i) == j exactly and the dominated-push guard
        # rejects every non-improving re-push.
        n = 40
        points = [Point(float(i), 0.0) for i in range(n)]
        g = VisibilityGraph.build(points, [])
        counting = self._counting_heapq()
        monkeypatch.setattr(sp, "heapq", counting)
        res = sp.dijkstra(g, points[0])
        assert len(res) == n
        for i, p in enumerate(points):
            assert res[p] == float(i)
        # One pop per settled node; the pre-fix behaviour pushed one
        # entry per relaxation (~n^2/2 = 800 here) and popped them all.
        assert counting.pops == n
        # The source enters via the initial heap literal, so exactly
        # one push per non-source settled node.
        assert counting.pushes == n - 1
