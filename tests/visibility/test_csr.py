"""Frozen CSR views: freeze correctness, flat-heap behaviour, and
bit-parity of the int-indexed Dijkstra against the dict-path oracle."""

import math

import pytest

np = pytest.importorskip("numpy")

from repro.geometry.point import Point
from repro.visibility import VisibilityGraph, bounded_dijkstra, dijkstra
from repro.visibility.csr import CSRGraph, FlatHeap, frozen
from tests.conftest import rect_obstacle


def _grid_graph(seed: int = 0, n: int = 18, obstacles: int = 4):
    rng = np.random.default_rng(seed)
    points = [
        Point(float(x), float(y))
        for x, y in rng.uniform(-20, 20, size=(n, 2)).round(3)
    ]
    obs = []
    for i in range(obstacles):
        cx, cy = rng.uniform(-14, 14, size=2)
        w, h = rng.uniform(1, 5, size=2)
        obs.append(rect_obstacle(i, cx, cy, cx + w, cy + h))
    return VisibilityGraph.build(points, obs, method="naive")


class TestFlatHeap:
    def test_pushes_pop_sorted(self):
        heap = FlatHeap(capacity=2)
        keys = [5.0, 1.0, 3.0, 2.0, 4.0, 0.5]
        for i, k in enumerate(keys):
            heap.push(k, i)
        out = [heap.pop() for _ in range(len(heap))]
        assert [k for k, __ in out] == sorted(keys)
        assert not len(heap)

    def test_push_many_matches_push(self):
        rng = np.random.default_rng(7)
        keys = rng.uniform(0, 100, size=64)
        nodes = np.arange(64, dtype=np.int32)
        a = FlatHeap(capacity=4)
        a.push_many(keys, nodes)
        b = FlatHeap(capacity=4)
        for k, v in zip(keys.tolist(), nodes.tolist()):
            b.push(k, v)
        got_a = sorted(a.pop() for _ in range(64))
        got_b = sorted(b.pop() for _ in range(64))
        assert got_a == got_b
        assert [k for k, __ in got_a] == sorted(keys.tolist())


class TestFreeze:
    def test_arrays_mirror_adjacency(self):
        g = _grid_graph(seed=1)
        csr = CSRGraph.freeze(g)
        assert csr.node_count == g.node_count
        assert csr.edge_count == g.edge_count
        for p in csr.points:
            i = csr.index[p]
            assert (csr.xs[i], csr.ys[i]) == (p.x, p.y)
            lo, hi = int(csr.indptr[i]), int(csr.indptr[i + 1])
            row = {
                csr.points[int(j)]: float(w)
                for j, w in zip(csr.indices[lo:hi], csr.weights[lo:hi])
            }
            assert row == g._adj[p]

    def test_frozen_caches_per_revision(self):
        g = _grid_graph(seed=2)
        csr = frozen(g)
        assert frozen(g) is csr
        g.add_entity(Point(100.0, 100.0))
        csr2 = frozen(g)
        assert csr2 is not csr
        assert csr2.node_count == csr.node_count + 1

    def test_structure_revision_moves_on_topology_change(self):
        g = _grid_graph(seed=3)
        r0 = g.structure_revision
        g.add_entity(Point(50.0, 50.0))
        r1 = g.structure_revision
        assert r1 > r0
        g.delete_entity(Point(50.0, 50.0))
        assert g.structure_revision > r1


class TestDijkstraParity:
    @pytest.mark.parametrize("seed", range(5))
    def test_full_expansion_bit_identical(self, seed):
        g = _grid_graph(seed=seed)
        csr = CSRGraph.freeze(g)
        source = csr.points[0]
        oracle = dijkstra(g, source)
        dist, settled = csr.dijkstra(csr.index[source])
        for p in csr.points:
            i = csr.index[p]
            if p in oracle:
                assert settled[i]
                assert dist[i] == oracle[p]  # bitwise
            else:
                assert not settled[i]
                assert math.isinf(dist[i])

    @pytest.mark.parametrize("seed", range(3))
    def test_bounded_bit_identical(self, seed):
        g = _grid_graph(seed=seed)
        csr = CSRGraph.freeze(g)
        source = csr.points[0]
        full = dijkstra(g, source)
        bound = float(np.median([d for d in full.values() if d < math.inf]))
        oracle = bounded_dijkstra(g, source, bound)
        dist, settled = csr.dijkstra(csr.index[source], bound=bound)
        got = {
            csr.points[i]: float(dist[i])
            for i in range(csr.node_count)
            if settled[i]
        }
        assert got == oracle

    def test_targets_early_exit_settles_targets(self):
        g = _grid_graph(seed=4)
        csr = CSRGraph.freeze(g)
        source = csr.points[0]
        oracle = dijkstra(g, source)
        reachable = [p for p in csr.points[1:] if p in oracle]
        target = max(reachable, key=oracle.__getitem__)
        near = min(reachable, key=oracle.__getitem__)
        dist, settled = csr.dijkstra(
            csr.index[source], targets=[csr.index[near]]
        )
        assert settled[csr.index[near]]
        assert dist[csr.index[near]] == oracle[near]
        # The far target need not have settled after the early exit.
        full_dist, full_settled = csr.dijkstra(csr.index[source])
        assert full_settled.sum() >= settled.sum()
        assert full_dist[csr.index[target]] == oracle[target]

    def test_field_cache_reuses_array(self):
        g = _grid_graph(seed=5)
        csr = CSRGraph.freeze(g)
        a = csr.field(0)
        assert csr.field(0) is a
        b = csr.field(1)
        assert b is not a
