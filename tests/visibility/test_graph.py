"""Tests for the dynamic visibility graph (add/delete operations)."""

import random

import pytest

from repro.errors import QueryError
from repro.geometry import Point, Polygon, Rect
from repro.model import Obstacle
from repro.visibility import VisibilityGraph
from tests.conftest import random_disjoint_rects, random_free_points, rect_obstacle


def _adjacency(graph: VisibilityGraph) -> set[tuple[Point, Point]]:
    return {(u, v) for u in graph.nodes() for v in graph.neighbors(u)}


class TestBuild:
    def test_empty(self):
        g = VisibilityGraph.build([], [])
        assert g.node_count == 0
        assert g.edge_count == 0

    def test_points_only_complete_graph(self):
        pts = [Point(0, 0), Point(1, 0), Point(0, 1)]
        g = VisibilityGraph.build(pts, [])
        assert g.edge_count == 3
        assert set(g.neighbors(pts[0])) == {pts[1], pts[2]}

    def test_single_rect_obstacle(self):
        g = VisibilityGraph.build([], [rect_obstacle(0, 0, 0, 10, 10)])
        assert g.node_count == 4
        # boundary edges only; diagonals excluded
        assert g.edge_count == 4

    def test_edge_weights_are_distances(self):
        pts = [Point(0, 0), Point(3, 4)]
        g = VisibilityGraph.build(pts, [])
        assert g.neighbors(pts[0])[pts[1]] == pytest.approx(5.0)

    def test_symmetry(self):
        rng = random.Random(9)
        obstacles = random_disjoint_rects(rng, 8)
        points = random_free_points(rng, 5, obstacles)
        g = VisibilityGraph.build(points, obstacles)
        for u in g.nodes():
            for v, w in g.neighbors(u).items():
                assert g.neighbors(v)[u] == w

    def test_neighbors_unknown_node_raises(self):
        g = VisibilityGraph.build([Point(0, 0)], [])
        with pytest.raises(QueryError):
            g.neighbors(Point(42, 42))

    def test_duplicate_points_collapse(self):
        g = VisibilityGraph.build([Point(1, 1), Point(1, 1)], [])
        assert g.node_count == 1


class TestAddObstacle:
    def test_add_blocks_existing_edge(self):
        a, b = Point(0, 0), Point(10, 0)
        g = VisibilityGraph.build([a, b], [])
        assert b in g.neighbors(a)
        g.add_obstacle(rect_obstacle(7, 4, -3, 6, 3))
        assert b not in g.neighbors(a)
        assert g.has_obstacle(7)

    def test_add_duplicate_returns_false(self):
        g = VisibilityGraph.build([], [])
        obs = rect_obstacle(1, 0, 0, 2, 2)
        assert g.add_obstacle(obs)
        assert not g.add_obstacle(obs)

    def test_incremental_equals_batch(self):
        rng = random.Random(4)
        obstacles = random_disjoint_rects(rng, 10)
        points = random_free_points(rng, 5, obstacles)
        incremental = VisibilityGraph.build(points, obstacles[:3])
        for obs in obstacles[3:]:
            incremental.add_obstacle(obs)
        batch = VisibilityGraph.build(points, obstacles)
        assert _adjacency(incremental) == _adjacency(batch)

    def test_obstacle_ids_tracked(self):
        obstacles = [rect_obstacle(i, i * 10, 0, i * 10 + 5, 5) for i in range(3)]
        g = VisibilityGraph.build([], obstacles[:2])
        assert g.obstacle_ids() == {0, 1}
        g.add_obstacle(obstacles[2])
        assert g.obstacle_ids() == {0, 1, 2}

    def test_boundary_membership_updated_for_entities(self):
        p = Point(5, 0)
        g = VisibilityGraph.build([p], [])
        g.add_obstacle(rect_obstacle(0, 0, 0, 10, 10))  # p now on its boundary
        far = Point(5, 20)
        g.add_entity(far)
        # p -> far crosses the interior, must not be an edge
        assert far not in g.neighbors(p)


class TestAddDeleteEntity:
    def test_add_entity_connects(self):
        g = VisibilityGraph.build([Point(0, 0)], [])
        assert g.add_entity(Point(5, 5))
        assert Point(5, 5) in g.neighbors(Point(0, 0))

    def test_add_existing_returns_false(self):
        g = VisibilityGraph.build([Point(0, 0)], [])
        assert not g.add_entity(Point(0, 0))

    def test_add_entity_coinciding_with_vertex(self):
        g = VisibilityGraph.build([], [rect_obstacle(0, 0, 0, 4, 4)])
        assert not g.add_entity(Point(0, 0))  # already a vertex node
        assert g.node_count == 4

    def test_delete_entity(self):
        a, b = Point(0, 0), Point(5, 5)
        g = VisibilityGraph.build([a, b], [])
        assert g.delete_entity(b)
        assert not g.has_node(b)
        assert b not in g.neighbors(a)

    def test_delete_vertex_refused(self):
        g = VisibilityGraph.build([], [rect_obstacle(0, 0, 0, 4, 4)])
        assert not g.delete_entity(Point(0, 0))
        assert g.node_count == 4

    def test_delete_unknown_returns_false(self):
        g = VisibilityGraph.build([], [])
        assert not g.delete_entity(Point(9, 9))

    def test_add_delete_roundtrip_restores_adjacency(self):
        rng = random.Random(11)
        obstacles = random_disjoint_rects(rng, 6)
        points = random_free_points(rng, 4, obstacles)
        g = VisibilityGraph.build(points, obstacles)
        before = _adjacency(g)
        extra = random_free_points(random.Random(99), 3, obstacles)
        for p in extra:
            g.add_entity(p)
        for p in extra:
            g.delete_entity(p)
        assert _adjacency(g) == before

    def test_free_points_tracking(self):
        a = Point(0, 0)
        g = VisibilityGraph.build([a], [rect_obstacle(0, 5, 5, 8, 8)])
        assert g.free_points() == {a}
