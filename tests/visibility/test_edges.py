"""Tests for BoundaryEdge and the OpenEdges ordering structure."""

import pytest

from repro.geometry import Point
from repro.visibility.edges import BoundaryEdge, OpenEdges, ray_edge_distance


def edge(x1, y1, x2, y2, oid=0):
    return BoundaryEdge(Point(x1, y1), Point(x2, y2), oid)


class TestBoundaryEdge:
    def test_endpoints(self):
        e = edge(0, 0, 1, 1)
        assert e.has_endpoint(Point(0, 0))
        assert e.has_endpoint(Point(1, 1))
        assert not e.has_endpoint(Point(0.5, 0.5))

    def test_other(self):
        e = edge(0, 0, 1, 1)
        assert e.other(Point(0, 0)) == Point(1, 1)
        assert e.other(Point(1, 1)) == Point(0, 0)

    def test_equality_orientation_independent(self):
        assert edge(0, 0, 1, 1) == edge(1, 1, 0, 0)
        assert edge(0, 0, 1, 1) != edge(0, 0, 1, 1, oid=5)
        assert hash(edge(0, 0, 1, 1)) == hash(edge(1, 1, 0, 0))


class TestRayEdgeDistance:
    def test_perpendicular_crossing(self):
        p, w = Point(0, 0), Point(10, 0)
        e = edge(5, -3, 5, 3)
        assert ray_edge_distance(p, w, e) == pytest.approx(5.0)

    def test_crossing_beyond_w_still_measured(self):
        p, w = Point(0, 0), Point(1, 0)
        e = edge(5, -3, 5, 3)
        assert ray_edge_distance(p, w, e) == pytest.approx(5.0)

    def test_parallel_uses_closest_endpoint(self):
        p, w = Point(0, 0), Point(10, 0)
        e = edge(3, 0, 7, 0)  # collinear with the ray
        assert ray_edge_distance(p, w, e) == pytest.approx(3.0)

    def test_touch_at_vertex(self):
        p, w = Point(0, 0), Point(10, 0)
        e = edge(4, 0, 4, 5)
        assert ray_edge_distance(p, w, e) == pytest.approx(4.0)


class TestOpenEdges:
    def test_insert_orders_by_distance(self):
        p, w = Point(0, 0), Point(10, 0)
        oe = OpenEdges(p)
        far = edge(8, -2, 8, 2)
        near = edge(3, -2, 3, 2)
        oe.insert(w, far)
        oe.insert(w, near)
        assert oe.smallest() == near
        assert len(oe) == 2

    def test_delete(self):
        p, w = Point(0, 0), Point(10, 0)
        oe = OpenEdges(p)
        e1, e2 = edge(3, -2, 3, 2), edge(8, -2, 8, 2)
        oe.insert(w, e1)
        oe.insert(w, e2)
        oe.delete(w, e1)
        assert oe.smallest() == e2
        assert len(oe) == 1

    def test_delete_missing_is_noop(self):
        oe = OpenEdges(Point(0, 0))
        oe.delete(Point(1, 0), edge(5, -1, 5, 1))
        assert len(oe) == 0

    def test_bool_and_snapshot(self):
        p, w = Point(0, 0), Point(10, 0)
        oe = OpenEdges(p)
        assert not oe
        e1 = edge(3, -2, 3, 2)
        oe.insert(w, e1)
        assert oe
        assert oe.as_list() == [e1]

    def test_shared_vertex_tiebreak(self):
        # Two edges meeting at a vertex on the ray: the one bending back
        # toward the center must sort first (it blocks sooner as the
        # sweep advances).
        p = Point(0, 0)
        v = Point(5, 0)
        toward = BoundaryEdge(v, Point(5, 5), 0)      # perpendicular
        away = BoundaryEdge(v, Point(10, 5), 0)       # receding
        oe = OpenEdges(p)
        oe.insert(v, away)
        oe.insert(v, toward)
        assert oe.smallest() == toward
