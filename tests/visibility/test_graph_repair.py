"""Property tests for ``VisibilityGraph.remove_obstacle``.

The acceptance contract of the delete-repair path: across randomized
scenes and every visibility backend, a graph repaired by
``remove_obstacle`` is *identical* to a from-scratch rebuild over the
surviving obstacle set — same nodes, same visible sets (edges), same
shortest-path distances.
"""

import random

import pytest

from repro.geometry import Point
from repro.visibility import VisibilityGraph
from repro.visibility.kernel.backend import numpy_available
from repro.visibility.shortest_path import shortest_path_dist
from tests.conftest import random_disjoint_rects, random_free_points

BACKENDS = ["python-sweep", "naive"] + (
    ["numpy-kernel"] if numpy_available() else []
)


def _edge_set(graph):
    return {
        frozenset((u, v)) for u in graph.nodes() for v in graph.neighbors(u)
    }


def _scene(seed, n_obstacles=10, n_free=5):
    rng = random.Random(seed)
    obstacles = random_disjoint_rects(rng, n_obstacles)
    points = random_free_points(rng, n_free, obstacles)
    return rng, obstacles, points


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("seed", range(6))
class TestRepairEqualsRebuild:
    def test_structure_matches_rebuild(self, backend, seed):
        rng, obstacles, points = _scene(seed)
        graph = VisibilityGraph.build(points, obstacles, method=backend)
        if backend == "numpy-kernel":
            graph.packed_scene()  # materialize so removal exercises it
        victim = obstacles[rng.randrange(len(obstacles))]
        revision = graph.obstacle_revision
        assert graph.remove_obstacle(victim.oid)
        assert graph.obstacle_revision > revision
        survivors = [o for o in obstacles if o.oid != victim.oid]
        rebuilt = VisibilityGraph.build(points, survivors, method=backend)
        assert set(graph.nodes()) == set(rebuilt.nodes())
        assert _edge_set(graph) == _edge_set(rebuilt)
        assert graph.obstacle_ids() == rebuilt.obstacle_ids()

    def test_shortest_paths_match_rebuild(self, backend, seed):
        rng, obstacles, points = _scene(seed)
        graph = VisibilityGraph.build(points, obstacles, method=backend)
        victim = obstacles[rng.randrange(len(obstacles))]
        graph.remove_obstacle(victim.oid)
        survivors = [o for o in obstacles if o.oid != victim.oid]
        rebuilt = VisibilityGraph.build(points, survivors, method=backend)
        for a in points[:2]:
            for b in points[2:]:
                assert shortest_path_dist(graph, a, b) == shortest_path_dist(
                    rebuilt, a, b
                )


@pytest.mark.parametrize("backend", BACKENDS)
class TestRemoveObstacleEdgeCases:
    def test_missing_oid_is_noop(self, backend):
        __, obstacles, points = _scene(3)
        graph = VisibilityGraph.build(points, obstacles, method=backend)
        revision = graph.obstacle_revision
        edges = _edge_set(graph)
        assert not graph.remove_obstacle(10_000)
        assert graph.obstacle_revision == revision
        assert _edge_set(graph) == edges

    def test_remove_all_obstacles_leaves_complete_graph(self, backend):
        __, obstacles, points = _scene(4, n_obstacles=4, n_free=4)
        graph = VisibilityGraph.build(points, obstacles, method=backend)
        for obs in obstacles:
            assert graph.remove_obstacle(obs.oid)
        # No obstacles left: every pair of free points sees each other.
        n = len(points)
        assert set(graph.nodes()) == set(points)
        assert graph.edge_count == n * (n - 1) // 2

    def test_remove_then_readd_roundtrips(self, backend):
        rng, obstacles, points = _scene(5)
        graph = VisibilityGraph.build(points, obstacles, method=backend)
        edges = _edge_set(graph)
        victim = obstacles[rng.randrange(len(obstacles))]
        graph.remove_obstacle(victim.oid)
        graph.add_obstacle(victim)
        assert _edge_set(graph) == edges

    def test_shared_vertex_survives_neighbours_removal(self, backend):
        from tests.conftest import rect_obstacle

        # Two rectangles sharing the corner (5, 5).
        left = rect_obstacle(0, 1, 1, 5, 5)
        right = rect_obstacle(1, 5, 5, 9, 9)
        probe = [Point(0, 8), Point(8, 0)]
        graph = VisibilityGraph.build(probe, [left, right], method=backend)
        assert graph.remove_obstacle(left.oid)
        rebuilt = VisibilityGraph.build(probe, [right], method=backend)
        assert set(graph.nodes()) == set(rebuilt.nodes())
        assert Point(5, 5) in set(graph.nodes())
        assert _edge_set(graph) == _edge_set(rebuilt)

    def test_promoted_free_point_survives_removal(self, backend):
        """Regression: a free point promoted to an obstacle vertex
        (coinciding coordinates, either registration order) must be
        demoted back — not deleted — when the owning obstacle goes."""
        from tests.conftest import rect_obstacle

        q = Point(5, 5)
        far = rect_obstacle(0, 20, 20, 24, 24)
        cornered = rect_obstacle(1, 5, 5, 9, 9)  # vertex exactly at q

        # Order A: free point first, obstacle second (promotion).
        graph = VisibilityGraph.build([q, Point(0, 0)], [far], method=backend)
        graph.add_obstacle(cornered)
        assert graph.remove_obstacle(cornered.oid)
        assert graph.has_node(q)
        assert q in graph.free_points()
        rebuilt = VisibilityGraph.build(
            [q, Point(0, 0)], [far], method=backend
        )
        assert _edge_set(graph) == _edge_set(rebuilt)
        # Demoted: deletable as an entity again.
        assert graph.delete_entity(q)

        # Order B: obstacle first, free point second.
        graph = VisibilityGraph.build(
            [q, Point(0, 0)], [far, cornered], method=backend
        )
        assert graph.remove_obstacle(cornered.oid)
        assert graph.has_node(q)
        assert q in graph.free_points()
        assert _edge_set(graph) == _edge_set(rebuilt)

    def test_packed_scene_compaction(self, backend):
        pytest.importorskip("numpy")
        rng, obstacles, points = _scene(6, n_obstacles=6)
        graph = VisibilityGraph.build(points, obstacles, method=backend)
        packed = graph.packed_scene()
        before_verts = packed.vertex_count
        victim = obstacles[rng.randrange(len(obstacles))]
        graph.remove_obstacle(victim.oid)
        assert packed.edge_count == sum(
            len(o.polygon.edges()) for o in obstacles if o.oid != victim.oid
        )
        assert packed.vertex_count == before_verts - len(
            victim.polygon.vertices
        )
        # Packed arrays still mirror the graph: endpoint indices map
        # back to the surviving vertex points.
        ea, eb = packed.edge_endpoints()
        events = packed.event_points()
        for i in range(packed.edge_count):
            assert events[int(ea[i])] in set(graph.nodes())
            assert events[int(eb[i])] in set(graph.nodes())
