"""Tests for the exact brute-force visibility oracle."""

from repro.geometry import Point
from repro.visibility import is_visible, naive_visible_from
from tests.conftest import rect_obstacle


class TestIsVisible:
    BOX = [rect_obstacle(0, 4, -2, 6, 2)]

    def test_blocked_through_interior(self):
        assert not is_visible(Point(0, 0), Point(10, 0), self.BOX)

    def test_visible_around(self):
        assert is_visible(Point(0, 0), Point(10, 10), self.BOX)

    def test_grazing_edge_visible(self):
        assert is_visible(Point(0, 2), Point(10, 2), self.BOX)

    def test_grazing_corner_visible(self):
        # passes exactly through corner (4, -2), staying below the box
        assert is_visible(Point(0, 0), Point(8, -4), self.BOX)

    def test_through_interior_after_corner(self):
        # enters the interior midway through the left edge
        assert not is_visible(Point(0, 4), Point(8, -4), self.BOX)

    def test_no_obstacles(self):
        assert is_visible(Point(0, 0), Point(1, 1), [])

    def test_far_obstacle_skipped_by_mbr(self):
        far = [rect_obstacle(0, 100, 100, 110, 110)]
        assert is_visible(Point(0, 0), Point(10, 0), far)


class TestNaiveVisibleFrom:
    def test_excludes_self(self):
        pts = [Point(0, 0), Point(1, 1)]
        assert Point(0, 0) not in naive_visible_from(Point(0, 0), pts, [])

    def test_filters_blocked(self):
        box = [rect_obstacle(0, 4, -2, 6, 2)]
        targets = [Point(10, 0), Point(10, 10)]
        vis = naive_visible_from(Point(0, 0), targets, box)
        assert vis == [Point(10, 10)]
