"""Property-based tests for visibility graph construction and dynamics."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.visibility import VisibilityGraph, naive_visible_from
from tests.strategies import disjoint_rect_obstacles, free_points

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _adjacency(graph: VisibilityGraph) -> set:
    return {(u, v) for u in graph.nodes() for v in graph.neighbors(u)}


@SETTINGS
@given(st.data())
def test_sweep_build_equals_naive_build(data):
    obstacles = data.draw(disjoint_rect_obstacles())
    points = data.draw(free_points(obstacles, min_count=0, max_count=6))
    sweep = VisibilityGraph.build(points, obstacles, method="sweep")
    naive = VisibilityGraph.build(points, obstacles, method="naive")
    assert _adjacency(sweep) == _adjacency(naive)


@SETTINGS
@given(st.data())
def test_incremental_obstacles_equal_batch(data):
    obstacles = data.draw(disjoint_rect_obstacles(max_count=5))
    points = data.draw(free_points(obstacles, min_count=0, max_count=4))
    split = data.draw(st.integers(0, len(obstacles)))
    incremental = VisibilityGraph.build(points, obstacles[:split])
    for obs in obstacles[split:]:
        incremental.add_obstacle(obs)
    batch = VisibilityGraph.build(points, obstacles)
    assert _adjacency(incremental) == _adjacency(batch)


@SETTINGS
@given(st.data())
def test_incremental_entities_equal_batch(data):
    obstacles = data.draw(disjoint_rect_obstacles(max_count=5))
    points = data.draw(free_points(obstacles, min_count=0, max_count=6))
    split = data.draw(st.integers(0, len(points)))
    incremental = VisibilityGraph.build(points[:split], obstacles)
    for p in points[split:]:
        incremental.add_entity(p)
    batch = VisibilityGraph.build(points, obstacles)
    assert _adjacency(incremental) == _adjacency(batch)


@SETTINGS
@given(st.data())
def test_delete_entity_restores_prior_graph(data):
    obstacles = data.draw(disjoint_rect_obstacles(max_count=4))
    points = data.draw(free_points(obstacles, min_count=1, max_count=5))
    base = VisibilityGraph.build(points[:-1], obstacles)
    grown = VisibilityGraph.build(points[:-1], obstacles)
    extra = points[-1]
    if grown.add_entity(extra):
        grown.delete_entity(extra)
    assert _adjacency(grown) == _adjacency(base)


@SETTINGS
@given(st.data())
def test_edges_match_oracle_per_node(data):
    obstacles = data.draw(disjoint_rect_obstacles(max_count=4))
    points = data.draw(free_points(obstacles, min_count=0, max_count=4))
    graph = VisibilityGraph.build(points, obstacles)
    nodes = list(graph.nodes())
    for u in nodes[:6]:
        got = set(graph.neighbors(u))
        want = set(
            naive_visible_from(u, [v for v in nodes if v != u], obstacles)
        )
        assert got == want


@SETTINGS
@given(st.data())
def test_edge_weights_are_euclidean(data):
    obstacles = data.draw(disjoint_rect_obstacles(max_count=4))
    points = data.draw(free_points(obstacles, min_count=0, max_count=4))
    graph = VisibilityGraph.build(points, obstacles)
    for u in graph.nodes():
        for v, w in graph.neighbors(u).items():
            assert w == pytest.approx(u.distance(v))
