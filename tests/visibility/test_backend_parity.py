"""Backend parity: the vectorized kernel must return *identical*
visible sets to the python sweep — on random scenes, on degenerate
collinear/touching scenes, and through every dynamic update — and
both must match the exact pairwise oracle."""

import random

import pytest
from hypothesis import HealthCheck, given, settings

from repro.geometry import Point, Polygon, Rect
from repro.model import Obstacle
from repro.visibility import (
    VisibilityGraph,
    available_backends,
    is_visible,
    resolve_backend,
)
from tests.conftest import random_disjoint_rects, random_free_points, rect_obstacle
from tests.strategies import disjoint_rect_obstacles

pytest.importorskip("numpy")

PY = "python-sweep"
NP = "numpy-kernel"


def _visible_sets(points, obstacles, method):
    g = VisibilityGraph.build(points, obstacles, method=method)
    backend = resolve_backend(method)
    return {u: frozenset(backend.visible_from(u, g)) for u in g.nodes()}


def _assert_backend_parity(points, obstacles, tag=""):
    py = _visible_sets(points, obstacles, PY)
    np_ = _visible_sets(points, obstacles, NP)
    assert set(py) == set(np_)
    for u in py:
        assert py[u] == np_[u], f"{tag}: backends diverge at {u}"
    # ... and both match the pairwise oracle.
    nodes = list(py)
    for u in nodes:
        want = frozenset(
            v for v in nodes if v != u and is_visible(u, v, obstacles)
        )
        assert py[u] == want, f"{tag}: python-sweep vs oracle at {u}"
        assert np_[u] == want, f"{tag}: numpy-kernel vs oracle at {u}"


class TestRegistry:
    def test_all_backends_listed(self):
        assert available_backends() == ["naive", "numpy-kernel", "python-sweep"]

    def test_sweep_alias_resolves_to_python_sweep(self):
        assert resolve_backend("sweep").name == PY

    def test_unknown_backend_rejected(self):
        from repro.errors import QueryError

        with pytest.raises(QueryError):
            resolve_backend("fortran-kernel")

    def test_graph_records_backend_name(self):
        g = VisibilityGraph(method=NP)
        assert g.method == NP

    def test_auto_pick_falls_back_without_numpy(self, monkeypatch):
        from repro.visibility.kernel import backend as backend_mod

        monkeypatch.delenv(backend_mod.AUTO_BACKEND_ENV, raising=False)
        monkeypatch.setattr(backend_mod, "numpy_available", lambda: False)
        assert backend_mod.default_backend_name() == PY

    def test_env_override_wins_even_without_numpy(self, monkeypatch):
        from repro.visibility.kernel import backend as backend_mod

        monkeypatch.setenv(backend_mod.AUTO_BACKEND_ENV, "naive")
        monkeypatch.setattr(backend_mod, "numpy_available", lambda: False)
        assert backend_mod.default_backend_name() == "naive"

    def test_numpy_kernel_unavailable_becomes_query_error(self, monkeypatch):
        """When the kernel module cannot import (numpy missing), asking
        for numpy-kernel by name fails with a QueryError, not a bare
        ImportError."""
        import sys

        import repro.visibility.kernel as kernel_pkg
        from repro.errors import QueryError

        # None in sys.modules makes the lazy import raise ImportError;
        # the bound package attribute (set by any earlier import) must
        # go too, or `from ... import numpy_sweep` short-circuits.
        if hasattr(kernel_pkg, "numpy_sweep"):
            monkeypatch.delattr(kernel_pkg, "numpy_sweep")
        monkeypatch.setitem(
            sys.modules, "repro.visibility.kernel.numpy_sweep", None
        )
        with pytest.raises(QueryError, match="unavailable"):
            resolve_backend(NP)


class TestRandomScenes:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_rect_scenes(self, seed):
        rng = random.Random(seed * 131 + 17)
        obstacles = random_disjoint_rects(rng, rng.randint(1, 10))
        points = random_free_points(rng, 6, obstacles)
        _assert_backend_parity(points, obstacles, f"seed {seed}")

    @pytest.mark.parametrize("seed", range(6))
    def test_polygon_scenes(self, seed):
        """Non-rectangular obstacles: L-shapes exercise reflex vertices."""
        rng = random.Random(seed * 59 + 11)
        obstacles = []
        for oid, x0 in enumerate(range(0, 90, 30)):
            y0 = rng.choice((0, 40))
            s = rng.uniform(8, 14)
            obstacles.append(
                Obstacle(
                    oid,
                    Polygon(
                        [
                            Point(x0, y0),
                            Point(x0 + s, y0),
                            Point(x0 + s, y0 + s / 3),
                            Point(x0 + s / 3, y0 + s / 3),
                            Point(x0 + s / 3, y0 + s),
                            Point(x0, y0 + s),
                        ]
                    ),
                )
            )
        points = random_free_points(rng, 5, obstacles)
        _assert_backend_parity(points, obstacles, f"L-seed {seed}")


class TestDegenerateScenes:
    def test_collinear_row_of_boxes(self):
        obstacles = [
            rect_obstacle(0, 0, 0, 10, 10),
            rect_obstacle(1, 20, 0, 30, 10),
            rect_obstacle(2, 40, 0, 50, 10),
        ]
        points = [
            Point(15, 0),   # on the shared bottom edge line, between boxes
            Point(35, 10),  # on the shared top edge line
            Point(-5, 0),
            Point(55, 0),
            Point(5, 0),    # on a boundary edge
            Point(25, 10),  # on a boundary edge
        ]
        _assert_backend_parity(points, obstacles, "collinear row")

    def test_vertex_touching_diagonal(self):
        """Boxes touching corner-to-corner: rays through shared vertices."""
        obstacles = [
            rect_obstacle(0, 0, 0, 10, 10),
            rect_obstacle(1, 10, 10, 20, 20),
        ]
        points = [Point(5, 15), Point(15, 5), Point(-1, -1), Point(21, 21)]
        _assert_backend_parity(points, obstacles, "corner touch")

    @pytest.mark.parametrize("seed", range(6))
    def test_grid_aligned_with_boundary_entities(self, seed):
        rng = random.Random(seed * 17 + 3)
        obstacles, occupied = [], []
        for y in (10, 10, 30, 50):
            x0 = rng.choice((0, 20, 40, 60))
            rect = Rect(x0, y, x0 + rng.choice((10, 15)), y + 4)
            if any(rect.intersects(o) for o in occupied):
                continue
            occupied.append(rect)
            obstacles.append(
                rect_obstacle(
                    len(obstacles), rect.minx, rect.miny, rect.maxx, rect.maxy
                )
            )
        points = [o.polygon.boundary_point_at(rng.random()) for o in obstacles]
        points += [Point(-5, 10), Point(100, 10), Point(-5, 14)]
        points = [
            p for p in points if not any(o.polygon.contains(p) for o in obstacles)
        ]
        _assert_backend_parity(points, obstacles, f"grid {seed}")


class TestOutOfContractInputs:
    """Valid scenes never place points inside obstacles, but the
    backends must stay oracle-identical even on such inputs: a center
    strictly inside an obstacle sees nothing."""

    @pytest.mark.parametrize("method", [PY, NP, "naive"])
    def test_interior_center_sees_nothing(self, method):
        obstacles = [rect_obstacle(0, 1, 9, 3, 12)]
        inside = Point(2, 11)
        boundary = Point(3, 10)
        g = VisibilityGraph.build([inside, boundary], obstacles, method=method)
        assert resolve_backend(method).visible_from(inside, g) == []
        assert dict(g.neighbors(inside)) == {}

    def test_interior_query_distance_agrees_across_backends(self):
        from math import isinf

        from repro.core.engine import ObstacleDatabase
        from repro.geometry import Rect

        results = set()
        for method in (PY, NP, "naive"):
            db = ObstacleDatabase([Rect(1, 9, 3, 12)], backend=method)
            d = db.obstructed_distance((2, 11), (3, 10))
            results.add(d)
        assert len(results) == 1
        assert isinf(results.pop())


class TestDynamicParity:
    """Both backends stay identical through incremental maintenance —
    the packed scene must track add_obstacle / add_entity /
    delete_entity exactly."""

    @pytest.mark.parametrize("seed", range(4))
    def test_incremental_updates_converge(self, seed):
        rng = random.Random(seed * 7 + 1)
        obstacles = random_disjoint_rects(rng, 8)
        points = random_free_points(rng, 4, obstacles)
        half = len(obstacles) // 2
        gp = VisibilityGraph.build(points, obstacles[:half], method=PY)
        gn = VisibilityGraph.build(points, obstacles[:half], method=NP)
        gn.packed_scene()  # force the packed mirror before the updates
        for obs in obstacles[half:]:
            gp.add_obstacle(obs)
            gn.add_obstacle(obs)
        extra = random_free_points(rng, 4, obstacles)
        for p in extra:
            gp.add_entity(p)
            gn.add_entity(p)
        for p in extra[:2]:
            gp.delete_entity(p)
            gn.delete_entity(p)
        for p in random_free_points(rng, 2, obstacles):
            gp.add_entity(p)  # exercises swap-remove slot reuse
            gn.add_entity(p)
        assert {u: dict(gp.neighbors(u)) for u in gp.nodes()} == {
            u: dict(gn.neighbors(u)) for u in gn.nodes()
        }

    @pytest.mark.parametrize("method", [PY, NP])
    def test_entity_promoted_to_obstacle_vertex_survives_delete(self, method):
        """An entity coinciding with a later obstacle's vertex becomes
        that vertex: delete_entity must refuse to tear it out of the
        graph, and the packed scene must not keep a stale free copy."""
        g = VisibilityGraph(method=method)
        corner = Point(4, 4)
        assert g.add_entity(corner)
        if method == NP:
            g.packed_scene()
        g.add_obstacle(rect_obstacle(99, 4, 4, 6, 6))
        assert not g.delete_entity(corner)
        assert g.has_node(corner)
        assert g.add_entity(Point(3, 3))  # sweeps again; must not crash
        assert corner in g.neighbors(Point(3, 3))
        if method == NP:
            packed = g.packed_scene()
            assert packed.free_count == 1  # only Point(3, 3)
            assert packed.vertex_id(corner) is not None

    @pytest.mark.parametrize("method", [PY, NP])
    def test_build_with_vertex_coincident_point_is_not_deletable(self, method):
        """Same invariant through the other registration order: build()
        registers obstacles first, so a point list containing an
        obstacle-vertex coordinate must not make that vertex an
        entity."""
        corner = Point(4, 4)
        g = VisibilityGraph.build(
            [corner, Point(0, 0)], [rect_obstacle(0, 4, 4, 6, 6)], method=method
        )
        assert corner not in g.free_points()
        assert not g.delete_entity(corner)
        assert g.has_node(corner)
        assert g.add_entity(Point(3, 3))  # must not crash on stale nodes
        assert corner in g.neighbors(Point(3, 3))

    def test_rebuild_resets_packed_scene(self):
        obstacles = [rect_obstacle(0, 0, 0, 10, 10)]
        g = VisibilityGraph.build([Point(-5, -5)], obstacles, method=NP)
        packed = g.packed_scene()
        assert packed.vertex_count == 4
        g.rebuild([rect_obstacle(1, 20, 20, 30, 30), rect_obstacle(2, 40, 0, 45, 5)])
        fresh = g.packed_scene()
        assert fresh is not packed
        assert fresh.vertex_count == 8
        assert fresh.free_count == 1


class TestResidualInteriorCheck:
    """The vectorized residual `crosses_interior` check: sweep centers
    on obstacle boundaries whose rays dive straight through their own
    polygon's interior generate no crossing candidates and are decided
    by the (now batched) midpoint containment."""

    def test_interior_diagonals_blocked(self):
        """Opposite rectangle corners see each other only around the
        outside, never through the diagonal."""
        obstacles = [rect_obstacle(0, 10, 10, 20, 18)]
        for method in (PY, NP):
            g = VisibilityGraph.build([], obstacles, method=method)
            corners = obstacles[0].polygon.vertices
            for u in corners:
                nbrs = set(resolve_backend(method).visible_from(u, g))
                # Adjacent corners visible, opposite corner is not.
                assert len(nbrs & set(corners)) == 2, method

    def test_concave_polygon_pocket(self):
        """A U-shaped polygon: vertices across the pocket see each
        other (segment through free space), vertices across an arm do
        not — both via the residual check, no blocking candidates."""
        u_shape = Obstacle(
            0,
            Polygon(
                [
                    Point(0, 0), Point(30, 0), Point(30, 20), Point(20, 20),
                    Point(20, 6), Point(10, 6), Point(10, 20), Point(0, 20),
                ]
            ),
        )
        points = [Point(15, 25), Point(-5, 10), Point(35, 10)]
        _assert_backend_parity(points, [u_shape], "U pocket")

    def test_entity_on_edge_interior(self):
        """Entities sitting on (not at a vertex of) obstacle edges:
        the residual midpoint falls on/near the boundary and must be
        settled exactly, on both sides of the edge."""
        obstacles = [rect_obstacle(0, 10, 10, 20, 18)]
        points = [
            Point(15, 10),  # bottom edge midpoint
            Point(15, 18),  # top edge midpoint
            Point(20, 14),  # right edge midpoint
            Point(15, 5),
            Point(15, 25),
        ]
        _assert_backend_parity(points, obstacles, "edge entities")

    def test_collinear_run_along_boundary(self):
        """A target collinear with a boundary edge through the center:
        the grazing run must not read as an interior departure."""
        obstacles = [rect_obstacle(0, 10, 10, 20, 18)]
        points = [Point(5, 10), Point(25, 10), Point(30, 10)]
        _assert_backend_parity(points, obstacles, "boundary graze")


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(disjoint_rect_obstacles())
def test_property_backends_agree_on_random_scenes(obstacles):
    py = _visible_sets([], obstacles, PY)
    np_ = _visible_sets([], obstacles, NP)
    assert py == np_
    nodes = list(py)
    for u in nodes[: min(len(nodes), 8)]:
        want = frozenset(
            v for v in nodes if v != u and is_visible(u, v, obstacles)
        )
        assert np_[u] == want
