"""Unit tests for the PackedScene array layout: vertex interning,
edge/oid packing, the incident-edge CSR, and free-point swap-remove."""

import pytest

np = pytest.importorskip("numpy")

from repro.geometry import Point
from repro.visibility.kernel import PackedScene
from tests.conftest import rect_obstacle


@pytest.fixture
def scene():
    packed = PackedScene()
    packed.add_obstacle(rect_obstacle(7, 0, 0, 10, 10))
    packed.add_obstacle(rect_obstacle(9, 20, 0, 30, 10))
    return packed


class TestVertexPacking:
    def test_counts(self, scene):
        assert scene.vertex_count == 8
        assert scene.edge_count == 8
        assert scene.free_count == 0

    def test_coords_match_points(self, scene):
        xy = scene.vertex_xy()
        for i, p in enumerate(scene.event_points()):
            assert (xy[i, 0], xy[i, 1]) == (p.x, p.y)
            assert scene.vertex_id(p) == i

    def test_shared_vertices_interned_once(self):
        packed = PackedScene()
        packed.add_obstacle(rect_obstacle(0, 0, 0, 10, 10))
        packed.add_obstacle(rect_obstacle(1, 10, 0, 20, 10))  # shares 2 corners
        assert packed.vertex_count == 6
        assert packed.edge_count == 8

    def test_edge_oids_tag_owning_obstacle(self, scene):
        oids = scene.edge_oids()
        assert sorted(set(oids.tolist())) == [7, 9]
        assert (oids[:4] == 7).all() and (oids[4:] == 9).all()


class TestIncidentCSR:
    def test_every_rect_vertex_has_two_incident_edges(self, scene):
        indptr, indices = scene.incident_csr()
        assert indptr[0] == 0 and indptr[-1] == indices.shape[0] == 16
        ea, eb = scene.edge_endpoints()
        for v in range(scene.vertex_count):
            ids = scene.incident_edge_ids(v)
            assert len(ids) == 2
            for e in ids.tolist():
                assert v in (ea[e], eb[e])

    def test_csr_tracks_incremental_obstacles(self, scene):
        scene.incident_csr()  # build once
        scene.add_obstacle(rect_obstacle(11, 40, 0, 50, 10))
        assert len(scene.incident_edge_ids(scene.vertex_count - 1)) == 2


class TestFreePoints:
    def test_swap_remove_keeps_slots_dense(self, scene):
        pts = [Point(-1, -1), Point(-2, -2), Point(-3, -3)]
        for p in pts:
            scene.add_free_point(p)
        scene.remove_free_point(pts[0])
        assert scene.free_count == 2
        xy = scene.free_xy()
        remaining = {tuple(row) for row in xy.tolist()}
        assert remaining == {(-2.0, -2.0), (-3.0, -3.0)}
        assert scene.event_points()[-scene.free_count :] == [pts[2], pts[1]]

    def test_remove_unknown_is_noop(self, scene):
        scene.remove_free_point(Point(99, 99))
        assert scene.free_count == 0

    def test_vertex_coincident_free_point_not_duplicated(self, scene):
        scene.add_free_point(Point(0, 0))  # a rect corner
        assert scene.free_count == 0

    def test_vertex_interning_absorbs_existing_free_point(self):
        packed = PackedScene()
        packed.add_free_point(Point(4, 4))
        packed.add_obstacle(rect_obstacle(0, 4, 4, 6, 6))
        assert packed.free_count == 0
        assert packed.vertex_id(Point(4, 4)) is not None
