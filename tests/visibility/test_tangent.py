"""Tests for tangent visibility graphs [PV95]."""

import math
import random

import pytest

from repro.errors import GeometryError
from repro.geometry import Point, Polygon
from repro.model import Obstacle
from repro.visibility import VisibilityGraph, shortest_path_dist
from repro.visibility.tangent import is_tangent_at, prune_to_tangent
from tests.conftest import random_disjoint_rects, random_free_points, rect_obstacle


class TestIsTangentAt:
    BOX = rect_obstacle(0, 0, 0, 10, 10)

    def test_boundary_edge_is_tangent(self):
        assert is_tangent_at(Point(0, 0), Point(10, 0), self.BOX)

    def test_collinear_with_edge_is_tangent(self):
        # the line through (0,0) toward (-5,0) contains neighbour (10,0)
        assert is_tangent_at(Point(0, 0), Point(-5, 0), self.BOX)

    def test_supporting_line_is_tangent(self):
        # both neighbours are strictly left of the line to (5, -5)
        assert is_tangent_at(Point(0, 0), Point(5, -5), self.BOX)

    def test_separating_line_not_tangent(self):
        # the diagonal direction separates neighbours (10,0) and (0,10)
        assert not is_tangent_at(Point(0, 0), Point(-5, -5), self.BOX)
        assert not is_tangent_at(Point(0, 0), Point(20, 15), self.BOX)

    def test_non_vertex_rejected(self):
        with pytest.raises(GeometryError):
            is_tangent_at(Point(5, 5), Point(0, 0), self.BOX)


class TestPruneToTangent:
    def test_nonconvex_rejected(self):
        l_shape = Obstacle(
            0,
            Polygon(
                [
                    Point(0, 0), Point(4, 0), Point(4, 2),
                    Point(2, 2), Point(2, 4), Point(0, 4),
                ]
            ),
        )
        g = VisibilityGraph.build([], [l_shape])
        with pytest.raises(GeometryError):
            prune_to_tangent(g)

    def test_prunes_edges_but_preserves_distances(self):
        rng = random.Random(17)
        obstacles = random_disjoint_rects(rng, 10)
        points = random_free_points(rng, 6, obstacles)
        full = VisibilityGraph.build(points, obstacles)
        pruned = VisibilityGraph.build(points, obstacles)
        removed = prune_to_tangent(pruned)
        assert removed > 0
        assert pruned.edge_count + removed == full.edge_count
        for a in points[:3]:
            for b in points[3:]:
                d_full = shortest_path_dist(full, a, b)
                d_pruned = shortest_path_dist(pruned, a, b)
                assert d_pruned == pytest.approx(d_full), (a, b)

    def test_boundary_edges_survive(self):
        box = rect_obstacle(0, 2, 2, 8, 8)
        g = VisibilityGraph.build([], [box])
        prune_to_tangent(g)
        corners = box.polygon.vertices
        for i, u in enumerate(corners):
            v = corners[(i + 1) % 4]
            assert v in g.neighbors(u)

    def test_free_point_edges_to_tangent_corners_only(self):
        box = rect_obstacle(0, 2, 2, 8, 8)
        p = Point(0, 0)
        g = VisibilityGraph.build([p], [box])
        prune_to_tangent(g)
        nbrs = set(g.neighbors(p))
        # (2,8) and (8,2) are the silhouette (tangent) corners from
        # (0,0); the near corner (2,2) is visible, but the supporting
        # line separates its polygon neighbours (no shortest path ever
        # bends there), so the edge is pruned.
        assert Point(2, 8) in nbrs
        assert Point(8, 2) in nbrs
        assert Point(2, 2) not in nbrs
        assert Point(8, 8) not in nbrs  # not even visible

    def test_shortest_path_around_hexagon(self):
        hexagon = Obstacle(0, Polygon.regular(Point(0, 0), 5.0, 6))
        a, b = Point(-10, 0), Point(10, 0)
        full = VisibilityGraph.build([a, b], [hexagon])
        pruned = VisibilityGraph.build([a, b], [hexagon])
        prune_to_tangent(pruned)
        assert shortest_path_dist(pruned, a, b) == pytest.approx(
            shortest_path_dist(full, a, b)
        )
        assert shortest_path_dist(pruned, a, b) > 20.0
