"""Scenario tests with hand-computed expected values.

These recreate the paper's worked examples (Figs. 1, 4, 6, 7) in
machine-checkable form: scenes small enough that the expected
obstructed distances can be derived by hand.
"""

import math

import pytest

from repro import ObstacleDatabase, Point, Rect, VisibilityGraph, shortest_path
from tests.conftest import rect_obstacle


class TestSingleWallDetour:
    """A vertical wall between q and p (the paper's Fig. 7 situation)."""

    WALL = Rect(4, -10, 6, 10)
    Q = Point(0, 0)
    P = Point(10, 0)

    def _db(self):
        db = ObstacleDatabase([self.WALL], max_entries=8, min_entries=3)
        db.add_entity_set("p", [self.P])
        return db

    def test_distance_exact(self):
        # Symmetric detour around either wall end: q -> (4, ±10) ->
        # (6, ±10) -> p.
        expected = math.hypot(4, 10) + 2.0 + math.hypot(4, 10)
        assert self._db().obstructed_distance(self.Q, self.P) == pytest.approx(
            expected
        )

    def test_path_goes_around_wall_end(self):
        g = VisibilityGraph.build(
            [self.Q, self.P], [rect_obstacle(0, 4, -10, 6, 10)]
        )
        d, path = shortest_path(g, self.Q, self.P)
        assert len(path) == 4
        ys = {abs(p.y) for p in path[1:3]}
        assert ys == {10.0}  # both bends at wall-end corners

    def test_range_query_uses_detour_distance(self):
        db = self._db()
        expected = math.hypot(4, 10) + 2.0 + math.hypot(4, 10)
        # p is Euclidean-inside range 12 but obstructed-outside
        assert db.range("p", self.Q, 12.0) == []
        got = db.range("p", self.Q, expected + 0.001)
        assert got[0][0] == self.P


class TestFigureOneNearestNeighbor:
    """Paper Fig. 1: Euclidean NN 'a' is behind an obstacle; 'b' wins."""

    def test_obstructed_nn_differs_from_euclidean(self):
        wall = Rect(3, -2, 9, 2)
        a = Point(10, 0)    # Euclidean NN of q, straight behind the wall
        b = Point(0, 10.2)  # slightly farther Euclidean, unobstructed
        q = Point(0, 0)
        db = ObstacleDatabase([wall], max_entries=8, min_entries=3)
        db.add_entity_set("pts", [a, b])

        assert q.distance(a) < q.distance(b)
        [(winner, d)] = db.nearest("pts", q, 1)
        assert winner == b
        assert d == pytest.approx(q.distance(b))

    def test_euclidean_winner_when_no_obstruction(self):
        far_wall = Rect(100, 100, 105, 105)
        a, b = Point(10, 0), Point(0, 10.2)
        q = Point(0, 0)
        db = ObstacleDatabase([far_wall], max_entries=8, min_entries=3)
        db.add_entity_set("pts", [a, b])
        [(winner, __)] = db.nearest("pts", q, 1)
        assert winner == a


class TestIterativeDiscovery:
    """Paper Fig. 7: obstacles outside the initial range block the
    provisional path and must be discovered iteratively."""

    def test_staircase_of_walls(self):
        # Each wall forces a wider detour that a new wall then blocks.
        walls = [
            Rect(4, -3, 5, 3),     # directly between q and p
            Rect(2, 3.2, 8, 4),    # blocks the detour over the top
            Rect(2, -4, 8, -3.2),  # blocks the detour under the bottom
        ]
        q, p = Point(0, 0), Point(10, 0)
        db = ObstacleDatabase(walls, max_entries=8, min_entries=3)
        d = db.obstructed_distance(q, p)
        assert d > math.hypot(10, 0)
        # ground truth from the global visibility graph
        from tests.conftest import oracle_distance
        from repro.model import Obstacle
        from repro.geometry import Polygon

        obstacles = [
            Obstacle(i, Polygon.from_rect(r)) for i, r in enumerate(walls)
        ]
        assert d == pytest.approx(oracle_distance(q, p, obstacles))


class TestZigzagCorridor:
    """A corridor of offset walls: the path must thread the gaps."""

    def test_threading_distance(self):
        walls = [
            Rect(2, 0, 3, 8),
            Rect(5, 2, 6, 10),
            Rect(8, 0, 9, 8),
        ]
        q, p = Point(0, 5), Point(11, 5)
        db = ObstacleDatabase(walls, max_entries=8, min_entries=3)
        d = db.obstructed_distance(q, p)
        from tests.conftest import oracle_distance
        from repro.model import Obstacle
        from repro.geometry import Polygon

        obstacles = [
            Obstacle(i, Polygon.from_rect(r)) for i, r in enumerate(walls)
        ]
        assert d == pytest.approx(oracle_distance(q, p, obstacles))
        assert d > 11.0
