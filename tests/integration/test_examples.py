"""Smoke tests: every example script must run to completion.

Examples are executed in-process (via runpy) with small seeds; their
printed output is captured and sanity-checked for the key phenomena
they demonstrate.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def _run(script: str, argv: list[str], capsys) -> str:
    old_argv = sys.argv
    sys.argv = [script] + argv
    try:
        runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = _run("quickstart.py", [], capsys)
    assert "Obstacle range query" in out
    assert "detour!" in out
    assert "Obstacle closest pairs" in out


def test_city_navigation(capsys):
    out = _run("city_navigation.py", ["42"], capsys)
    assert "Pedestrian at" in out
    assert "Walking route" in out
    assert "Detour factor" in out


def test_facility_planning(capsys):
    out = _run("facility_planning.py", ["7"], capsys)
    assert "True walking coverage" in out
    assert "Pharmacy load" in out


def test_incremental_browsing(capsys):
    out = _run("incremental_browsing.py", ["3"], capsys)
    assert "dispatch" in out
    assert "Nearest available ambulance" in out


def test_moving_query(capsys):
    out = _run("moving_query.py", ["9"], capsys)
    assert "NN handover profile" in out
    assert "nearest cafe" in out


def test_visualize_scene(tmp_path, capsys):
    out_file = tmp_path / "scene.svg"
    out = _run("visualize_scene.py", ["11", str(out_file)], capsys)
    assert out_file.exists()
    assert "wrote" in out
    assert out_file.read_text().startswith("<svg")
