"""End-to-end property tests: every query algorithm against brute-force
oracles built on the *global* visibility graph.

These are the repository's strongest correctness statements — the
hypothesis engine explores random disjoint-obstacle scenes, entity
layouts and parameters, and every algorithm must agree exactly with the
oracle.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    obstacle_closest_pairs,
    obstacle_distance_join,
    obstacle_nearest,
    obstacle_range,
)
from repro.core.source import build_obstacle_index
from repro.geometry import Point, Rect
from repro.index import RStarTree, str_pack
from tests.conftest import oracle_distance
from tests.strategies import disjoint_rect_obstacles, free_points

SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _tree(points):
    tree = RStarTree(max_entries=8, min_entries=3)
    str_pack(tree, [(p, Rect.from_point(p)) for p in points])
    return tree


@SETTINGS
@given(st.data())
def test_or_matches_oracle(data):
    obstacles = data.draw(disjoint_rect_obstacles())
    points = data.draw(free_points(obstacles, min_count=2, max_count=8))
    if len(points) < 2:
        return
    q, *entities = points
    e = data.draw(st.floats(5.0, 60.0))
    idx = build_obstacle_index(obstacles, max_entries=8, min_entries=3)
    got = dict(obstacle_range(_tree(entities), idx, q, e))
    want = {}
    for p in entities:
        if p.distance(q) <= e:
            d = oracle_distance(q, p, obstacles)
            if d <= e:
                want[p] = d
    assert set(got) == set(want)
    for p, d in got.items():
        assert d == pytest.approx(want[p])


@SETTINGS
@given(st.data())
def test_onn_matches_oracle(data):
    obstacles = data.draw(disjoint_rect_obstacles())
    points = data.draw(free_points(obstacles, min_count=2, max_count=8))
    if len(points) < 2:
        return
    q, *entities = points
    k = data.draw(st.integers(1, len(entities)))
    idx = build_obstacle_index(obstacles, max_entries=8, min_entries=3)
    got = [d for __, d in obstacle_nearest(_tree(entities), idx, q, k)]
    want = sorted(oracle_distance(q, p, obstacles) for p in entities)[:k]
    assert got == pytest.approx(want)


@SETTINGS
@given(st.data())
def test_odj_matches_oracle(data):
    obstacles = data.draw(disjoint_rect_obstacles())
    points = data.draw(free_points(obstacles, min_count=2, max_count=10))
    if len(points) < 2:
        return
    half = len(points) // 2
    s, t = points[:half], points[half:]
    e = data.draw(st.floats(5.0, 50.0))
    idx = build_obstacle_index(obstacles, max_entries=8, min_entries=3)
    got = {(a, b) for a, b, __ in obstacle_distance_join(_tree(s), _tree(t), idx, e)}
    want = {
        (a, b)
        for a in s
        for b in t
        if a.distance(b) <= e and oracle_distance(a, b, obstacles) <= e
    }
    assert got == want


@SETTINGS
@given(st.data())
def test_ocp_matches_oracle(data):
    obstacles = data.draw(disjoint_rect_obstacles())
    points = data.draw(free_points(obstacles, min_count=2, max_count=8))
    if len(points) < 2:
        return
    half = len(points) // 2
    s, t = points[:half], points[half:]
    if not s or not t:
        return
    k = data.draw(st.integers(1, 4))
    idx = build_obstacle_index(obstacles, max_entries=8, min_entries=3)
    got = [d for __, __, d in obstacle_closest_pairs(_tree(s), _tree(t), idx, k)]
    want = sorted(oracle_distance(a, b, obstacles) for a in s for b in t)[
        : min(k, len(s) * len(t))
    ]
    assert got == pytest.approx(want)


@SETTINGS
@given(st.data())
def test_euclidean_lower_bound_invariant(data):
    obstacles = data.draw(disjoint_rect_obstacles())
    points = data.draw(free_points(obstacles, min_count=2, max_count=6))
    if len(points) < 2:
        return
    a, b = points[0], points[1]
    d_o = oracle_distance(a, b, obstacles)
    assert d_o >= a.distance(b) - 1e-9
    assert d_o < math.inf  # disjoint simple polygons never seal a point
