"""Unit tests for the simulated page store and LRU buffer."""

import pytest

from repro.errors import SpatialIndexError
from repro.index.node import Node
from repro.index.pagestore import LRUBuffer, PageStore


class TestPageStore:
    def test_allocate_monotonic(self):
        store = PageStore()
        ids = [store.allocate() for __ in range(5)]
        assert ids == sorted(set(ids))

    def test_write_read_roundtrip(self):
        store = PageStore()
        node = Node(store.allocate(), level=0)
        store.write(node)
        assert store.read(node.page_id) is node

    def test_read_missing_raises(self):
        with pytest.raises(SpatialIndexError):
            PageStore().read(42)

    def test_free(self):
        store = PageStore()
        node = Node(store.allocate(), level=0)
        store.write(node)
        store.free(node.page_id)
        with pytest.raises(SpatialIndexError):
            store.read(node.page_id)
        assert len(store) == 0

    def test_len_and_iter(self):
        store = PageStore()
        for __ in range(3):
            store.write(Node(store.allocate(), level=0))
        assert len(store) == 3
        assert sorted(store) == [0, 1, 2]


class TestLRUBuffer:
    def test_invalid_params(self):
        with pytest.raises(SpatialIndexError):
            LRUBuffer(capacity=0)
        with pytest.raises(SpatialIndexError):
            LRUBuffer(fraction=0.0)
        with pytest.raises(SpatialIndexError):
            LRUBuffer(fraction=1.5)

    def test_miss_then_hit(self):
        buf = LRUBuffer(capacity=2)
        assert buf.access(1, store_pages=10) is False
        assert buf.access(1, store_pages=10) is True

    def test_lru_eviction_order(self):
        buf = LRUBuffer(capacity=2)
        buf.access(1, 10)
        buf.access(2, 10)
        buf.access(1, 10)  # 1 is now most recent
        buf.access(3, 10)  # evicts 2
        assert 1 in buf and 3 in buf and 2 not in buf

    def test_fraction_capacity(self):
        buf = LRUBuffer(fraction=0.1)
        assert buf.capacity_for(100) == 10
        assert buf.capacity_for(5) == 1  # never below one page

    def test_fraction_mode_grows_with_store(self):
        buf = LRUBuffer(fraction=0.5)
        for pid in range(4):
            buf.access(pid, store_pages=4)
        assert len(buf) == 2

    def test_set_capacity_evicts(self):
        buf = LRUBuffer(capacity=4)
        for pid in range(4):
            buf.access(pid, 10)
        buf.set_capacity(2)
        assert len(buf) == 2
        assert 3 in buf and 2 in buf  # most recent survive

    def test_set_capacity_validation(self):
        with pytest.raises(SpatialIndexError):
            LRUBuffer().set_capacity(0)

    def test_invalidate(self):
        buf = LRUBuffer(capacity=4)
        buf.access(1, 10)
        buf.invalidate(1)
        assert 1 not in buf
        assert buf.access(1, 10) is False

    def test_clear(self):
        buf = LRUBuffer(capacity=4)
        buf.access(1, 10)
        buf.access(2, 10)
        buf.clear()
        assert len(buf) == 0
