"""Tests for the Hilbert curve keys."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry import Point, Rect
from repro.index import hilbert_index
from repro.index.hilbert import hilbert_key


class TestHilbertIndex:
    def test_order_1_layout(self):
        # The order-1 curve visits (0,0) (0,1) (1,1) (1,0).
        assert hilbert_index(0, 0, order=1) == 0
        assert hilbert_index(0, 1, order=1) == 1
        assert hilbert_index(1, 1, order=1) == 2
        assert hilbert_index(1, 0, order=1) == 3

    def test_bijective_order_4(self):
        side = 16
        seen = {
            hilbert_index(x, y, order=4) for x in range(side) for y in range(side)
        }
        assert seen == set(range(side * side))

    def test_out_of_range_rejected(self):
        with pytest.raises(GeometryError):
            hilbert_index(-1, 0, order=4)
        with pytest.raises(GeometryError):
            hilbert_index(16, 0, order=4)

    def test_adjacency_order_4(self):
        # Consecutive curve positions are grid neighbours (the locality
        # property ODJ's seed ordering relies on).
        side = 16
        inverse = {}
        for x in range(side):
            for y in range(side):
                inverse[hilbert_index(x, y, order=4)] = (x, y)
        for d in range(side * side - 1):
            x0, y0 = inverse[d]
            x1, y1 = inverse[d + 1]
            assert abs(x0 - x1) + abs(y0 - y1) == 1

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_deterministic(self, x, y):
        assert hilbert_index(x, y, order=8) == hilbert_index(x, y, order=8)


class TestHilbertKey:
    UNIVERSE = Rect(0, 0, 100, 100)

    def test_corners_distinct(self):
        keys = {
            hilbert_key(Point(0, 0), self.UNIVERSE),
            hilbert_key(Point(100, 0), self.UNIVERSE),
            hilbert_key(Point(0, 100), self.UNIVERSE),
            hilbert_key(Point(100, 100), self.UNIVERSE),
        }
        assert len(keys) == 4

    def test_outside_clamped(self):
        inside = hilbert_key(Point(0, 0), self.UNIVERSE)
        outside = hilbert_key(Point(-50, -50), self.UNIVERSE)
        assert inside == outside

    def test_degenerate_universe(self):
        degenerate = Rect(5, 5, 5, 5)
        assert hilbert_key(Point(5, 5), degenerate) >= 0

    def test_nearby_points_nearby_keys(self):
        # Not universally true for Hilbert curves, but holds on average;
        # check a specific non-boundary pair.
        a = hilbert_key(Point(10.0, 10.0), self.UNIVERSE)
        b = hilbert_key(Point(10.2, 10.0), self.UNIVERSE)
        far = hilbert_key(Point(90.0, 90.0), self.UNIVERSE)
        assert abs(a - b) < abs(a - far)
