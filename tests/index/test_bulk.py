"""Tests for STR bulk loading."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import SpatialIndexError
from repro.geometry import Point, Rect
from repro.index import RStarTree, str_pack


def _items(seed: int, n: int):
    rng = random.Random(seed)
    pts = [Point(rng.uniform(0, 1000), rng.uniform(0, 1000)) for __ in range(n)]
    return [(p, Rect.from_point(p)) for p in pts]


class TestStrPack:
    def test_empty_ok(self):
        tree = RStarTree(max_entries=8)
        str_pack(tree, [])
        assert len(tree) == 0

    def test_single_item(self):
        tree = RStarTree(max_entries=8)
        str_pack(tree, _items(0, 1))
        assert len(tree) == 1
        assert tree.height == 1

    def test_requires_empty_tree(self):
        tree = RStarTree(max_entries=8)
        tree.insert(Point(1, 1), Rect.from_point(Point(1, 1)))
        with pytest.raises(SpatialIndexError):
            str_pack(tree, _items(0, 10))

    def test_fill_factor_validation(self):
        tree = RStarTree(max_entries=8)
        with pytest.raises(SpatialIndexError):
            str_pack(tree, _items(0, 10), fill=0.0)
        with pytest.raises(SpatialIndexError):
            str_pack(tree, _items(0, 10), fill=1.5)

    def test_invariants_hold(self):
        tree = RStarTree(max_entries=8, min_entries=3)
        str_pack(tree, _items(1, 500))
        tree.check_invariants()
        assert len(tree) == 500

    def test_query_equivalence_with_dynamic_tree(self):
        items = _items(2, 400)
        bulk = RStarTree(max_entries=8, min_entries=3)
        str_pack(bulk, items)
        dynamic = RStarTree(max_entries=8, min_entries=3)
        for data, rect in items:
            dynamic.insert(data, rect)
        q = Rect(100, 200, 600, 700)
        got_bulk = sorted(e.data.as_tuple() for e in bulk.search_rect(q))
        got_dyn = sorted(e.data.as_tuple() for e in dynamic.search_rect(q))
        assert got_bulk == got_dyn

    def test_full_fill_packs_tighter_than_low_fill(self):
        items = _items(3, 1000)
        t_full = RStarTree(max_entries=16, min_entries=4)
        str_pack(t_full, items, fill=1.0)
        t_loose = RStarTree(max_entries=16, min_entries=4)
        str_pack(t_loose, items, fill=0.5)
        assert t_full.page_count < t_loose.page_count

    def test_insert_after_bulk_load(self):
        tree = RStarTree(max_entries=8, min_entries=3)
        str_pack(tree, _items(4, 300))
        extra = Point(-50, -50)
        tree.insert(extra, Rect.from_point(extra))
        tree.check_invariants()
        assert len(tree) == 301
        assert any(p == extra for p, __ in tree.items())

    def test_delete_after_bulk_load(self):
        items = _items(5, 300)
        tree = RStarTree(max_entries=8, min_entries=3)
        str_pack(tree, items)
        for data, rect in items[:100]:
            assert tree.delete(data, rect)
        tree.check_invariants()
        assert len(tree) == 200


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(0, 400), st.integers(4, 32), st.sampled_from([0.5, 0.7, 1.0]))
def test_property_bulk_load_sound(n, max_entries, fill):
    items = _items(n * 7 + 1, n)
    tree = RStarTree(max_entries=max_entries, min_entries=2)
    str_pack(tree, items, fill=fill)
    assert len(tree) == n
    if n:
        tree.check_invariants()
        assert sorted(p.as_tuple() for p, __ in tree.items()) == sorted(
            d.as_tuple() for d, __ in items
        )
