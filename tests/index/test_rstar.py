"""Unit and property tests for the R*-tree."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import SpatialIndexError
from repro.geometry import Circle, Point, Rect
from repro.index import Entry, Node, RStarTree


def _points(seed: int, n: int, universe: float = 1000.0) -> list[Point]:
    rng = random.Random(seed)
    return [
        Point(rng.uniform(0, universe), rng.uniform(0, universe)) for __ in range(n)
    ]


def _build(points: list[Point], max_entries: int = 8) -> RStarTree:
    tree = RStarTree(max_entries=max_entries, min_entries=max(2, max_entries // 3))
    for p in points:
        tree.insert(p, Rect.from_point(p))
    return tree


class TestConfiguration:
    def test_paper_page_layout_gives_204_entries(self):
        tree = RStarTree(page_size=4096, entry_size=20, header_size=16)
        assert tree.max_entries == 204

    def test_capacity_too_small_rejected(self):
        with pytest.raises(SpatialIndexError):
            RStarTree(max_entries=3)

    def test_min_entries_validation(self):
        with pytest.raises(SpatialIndexError):
            RStarTree(max_entries=8, min_entries=5)  # > M/2
        with pytest.raises(SpatialIndexError):
            RStarTree(max_entries=8, min_entries=1)

    def test_empty_tree(self):
        tree = RStarTree(max_entries=8)
        assert len(tree) == 0
        assert tree.height == 1
        assert tree.mbr() is None
        assert tree.search_rect(Rect(0, 0, 1, 1)) == []


class TestEntryNode:
    def test_entry_must_have_exactly_one_payload(self):
        with pytest.raises(SpatialIndexError):
            Entry(Rect(0, 0, 1, 1))
        with pytest.raises(SpatialIndexError):
            Entry(Rect(0, 0, 1, 1), child=1, data="x")

    def test_leaf_entry_flag(self):
        assert Entry(Rect(0, 0, 1, 1), data="x").is_leaf_entry
        assert not Entry(Rect(0, 0, 1, 1), child=3).is_leaf_entry

    def test_node_mbr_empty_raises(self):
        with pytest.raises(SpatialIndexError):
            Node(0, level=0).mbr()

    def test_node_mbr(self):
        node = Node(0, 0, [Entry(Rect(0, 0, 1, 1), data="a"),
                           Entry(Rect(5, 5, 6, 8), data="b")])
        assert node.mbr() == Rect(0, 0, 6, 8)


class TestInsertSearch:
    def test_single_insert(self):
        tree = _build([Point(5, 5)])
        assert len(tree) == 1
        assert [e.data for e in tree.search_rect(Rect(0, 0, 10, 10))] == [Point(5, 5)]

    def test_range_matches_bruteforce(self):
        pts = _points(1, 300)
        tree = _build(pts)
        tree.check_invariants()
        q = Rect(100, 100, 400, 350)
        got = sorted(e.data.as_tuple() for e in tree.search_rect(q))
        want = sorted(p.as_tuple() for p in pts if q.contains_point(p))
        assert got == want

    def test_circle_matches_bruteforce(self):
        pts = _points(2, 300)
        tree = _build(pts)
        c = Circle(Point(500, 500), 150)
        got = sorted(e.data.as_tuple() for e in tree.search_circle(c))
        want = sorted(p.as_tuple() for p in pts if c.contains_point(p))
        assert got == want

    def test_invalid_circle_rejected_by_geometry(self):
        from repro.errors import GeometryError

        with pytest.raises(GeometryError):
            Circle(Point(0, 0), -1.0)

    def test_duplicate_points_allowed(self):
        tree = RStarTree(max_entries=4)
        for __ in range(10):
            tree.insert(Point(1, 1), Rect.from_point(Point(1, 1)))
        assert len(tree.search_rect(Rect(0, 0, 2, 2))) == 10
        tree.check_invariants()

    def test_items_iterates_everything(self):
        pts = _points(4, 120)
        tree = _build(pts)
        assert sorted(p.as_tuple() for p, __ in tree.items()) == sorted(
            p.as_tuple() for p in pts
        )

    def test_tree_grows_in_height(self):
        tree = _build(_points(5, 200), max_entries=4)
        assert tree.height >= 3
        tree.check_invariants()

    def test_mbr_covers_all(self):
        pts = _points(6, 100)
        tree = _build(pts)
        mbr = tree.mbr()
        assert all(mbr.contains_point(p) for p in pts)


class TestDelete:
    def test_delete_existing(self):
        pts = _points(7, 100)
        tree = _build(pts)
        assert tree.delete(pts[0], Rect.from_point(pts[0]))
        assert len(tree) == 99
        tree.check_invariants()

    def test_delete_missing_returns_false(self):
        tree = _build(_points(8, 20))
        assert not tree.delete(Point(-1, -1), Rect.from_point(Point(-1, -1)))
        assert len(tree) == 20

    def test_delete_all_then_reuse(self):
        pts = _points(9, 60)
        tree = _build(pts, max_entries=4)
        for p in pts:
            assert tree.delete(p, Rect.from_point(p))
        assert len(tree) == 0
        tree.insert(Point(1, 2), Rect.from_point(Point(1, 2)))
        assert len(tree) == 1
        tree.check_invariants()

    def test_root_shrinks_after_mass_delete(self):
        pts = _points(10, 300)
        tree = _build(pts, max_entries=4)
        for p in pts[:290]:
            tree.delete(p, Rect.from_point(p))
        tree.check_invariants()
        assert tree.height <= 3

    def test_delete_keeps_query_correct(self):
        pts = _points(11, 200)
        tree = _build(pts)
        kept = pts[::2]
        for p in pts[1::2]:
            assert tree.delete(p, Rect.from_point(p))
        q = Rect(0, 0, 600, 600)
        got = sorted(e.data.as_tuple() for e in tree.search_rect(q))
        want = sorted(p.as_tuple() for p in kept if q.contains_point(p))
        assert got == want


class TestStats:
    def test_reads_counted(self):
        tree = _build(_points(12, 200))
        tree.reset_stats(clear_buffer=True)
        tree.search_rect(Rect(0, 0, 1000, 1000))
        assert tree.counter.reads > 0
        assert tree.counter.misses > 0

    def test_buffer_hits_cheaper_second_time(self):
        tree = _build(_points(13, 500), max_entries=16)
        tree.buffer.set_capacity(tree.page_count)  # everything fits
        tree.reset_stats(clear_buffer=True)
        tree.search_rect(Rect(0, 0, 1000, 1000))
        cold = tree.counter.misses
        tree.counter.reset()
        tree.search_rect(Rect(0, 0, 1000, 1000))
        assert tree.counter.misses == 0
        assert cold > 0

    def test_reset_stats(self):
        tree = _build(_points(14, 50))
        tree.search_rect(Rect(0, 0, 1000, 1000))
        tree.reset_stats()
        assert tree.counter.reads == 0
        assert tree.counter.misses == 0


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    st.lists(
        st.tuples(
            st.floats(0, 1000, allow_nan=False), st.floats(0, 1000, allow_nan=False)
        ),
        min_size=1,
        max_size=120,
    ),
    st.integers(4, 16),
)
def test_property_invariants_and_query_equivalence(coords, max_entries):
    pts = [Point(x, y) for x, y in coords]
    tree = RStarTree(max_entries=max_entries, min_entries=2)
    for p in pts:
        tree.insert(p, Rect.from_point(p))
    tree.check_invariants()
    q = Rect(200, 200, 700, 800)
    got = sorted(e.data.as_tuple() for e in tree.search_rect(q))
    want = sorted(p.as_tuple() for p in pts if q.contains_point(p))
    assert got == want


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.data())
def test_property_random_insert_delete_interleaving(data):
    n = data.draw(st.integers(5, 80))
    rng = random.Random(data.draw(st.integers(0, 10_000)))
    pts = _points(rng.randrange(1 << 20), n)
    tree = RStarTree(max_entries=6, min_entries=2)
    live: list[Point] = []
    for p in pts:
        if live and rng.random() < 0.35:
            victim = live.pop(rng.randrange(len(live)))
            assert tree.delete(victim, Rect.from_point(victim))
        tree.insert(p, Rect.from_point(p))
        live.append(p)
    tree.check_invariants()
    assert len(tree) == len(live)
    assert sorted(p.as_tuple() for p, __ in tree.items()) == sorted(
        p.as_tuple() for p in live
    )
