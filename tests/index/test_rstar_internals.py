"""White-box tests for R*-tree internals: split quality, forced
reinsert, rectangle payloads (obstacle MBRs), pathological inputs."""

import random

from repro.geometry import Point, Rect
from repro.index import RStarTree
from repro.index.node import Entry
from repro.index.rstar import _prefix_suffix_mbrs, _rstar_split


def _entries(rects):
    return [Entry(r, data=i) for i, r in enumerate(rects)]


class TestSplitAlgorithm:
    def test_split_groups_cover_all_entries(self):
        rng = random.Random(1)
        rects = [
            Rect(x, y, x + 1, y + 1)
            for x, y in (
                (rng.uniform(0, 100), rng.uniform(0, 100)) for __ in range(20)
            )
        ]
        a, b = _rstar_split(_entries(rects), m=4)
        assert len(a) + len(b) == 20
        assert len(a) >= 4 and len(b) >= 4

    def test_split_separates_two_clusters(self):
        left = [Rect(i, 0, i + 0.5, 1) for i in range(8)]
        right = [Rect(100 + i, 0, 100.5 + i, 1) for i in range(8)]
        a, b = _rstar_split(_entries(left + right), m=4)
        a_ids = {e.data for e in a}
        # one group must be exactly the left cluster (or the right one)
        assert a_ids in ({0, 1, 2, 3, 4, 5, 6, 7}, {8, 9, 10, 11, 12, 13, 14, 15})

    def test_split_zero_overlap_for_separable_input(self):
        rects = [Rect(i * 10, 0, i * 10 + 5, 5) for i in range(10)]
        a, b = _rstar_split(_entries(rects), m=3)
        mbr_a = Rect.union_all([e.rect for e in a])
        mbr_b = Rect.union_all([e.rect for e in b])
        assert mbr_a.intersection_area(mbr_b) == 0.0

    def test_prefix_suffix_mbrs(self):
        rects = [Rect(0, 0, 1, 1), Rect(5, 5, 6, 6), Rect(2, 8, 3, 9)]
        prefixes, suffixes = _prefix_suffix_mbrs(_entries(rects))
        assert prefixes[0] == rects[0]
        assert prefixes[2] == Rect(0, 0, 6, 9)
        assert suffixes[2] == rects[2]
        assert suffixes[0] == Rect(0, 0, 6, 9)


class TestForcedReinsert:
    def test_reinsert_triggers_before_split(self):
        # With capacity 8, inserting 9 clustered + 1 outlier into one
        # leaf triggers the overflow treatment; forced reinsert should
        # relocate far entries rather than split immediately when the
        # tree has more than one level.
        tree = RStarTree(max_entries=8, min_entries=3)
        rng = random.Random(2)
        for __ in range(200):
            p = Point(rng.uniform(0, 100), rng.uniform(0, 100))
            tree.insert(p, Rect.from_point(p))
        tree.check_invariants()
        # structural sanity is the observable: fanout bounds everywhere
        assert tree.height >= 2

    def test_outliers_do_not_corrupt(self):
        tree = RStarTree(max_entries=6, min_entries=2)
        rng = random.Random(3)
        for i in range(150):
            if i % 10 == 0:
                p = Point(rng.uniform(1e5, 2e5), rng.uniform(1e5, 2e5))
            else:
                p = Point(rng.uniform(0, 100), rng.uniform(0, 100))
            tree.insert(p, Rect.from_point(p))
        tree.check_invariants()
        assert len(tree) == 150


class TestRectPayloads:
    def test_obstacle_mbrs_inserted_and_found(self):
        tree = RStarTree(max_entries=8, min_entries=3)
        rng = random.Random(4)
        rects = []
        for i in range(120):
            x, y = rng.uniform(0, 1000), rng.uniform(0, 1000)
            r = Rect(x, y, x + rng.uniform(1, 80), y + rng.uniform(1, 10))
            rects.append(r)
            tree.insert(i, r)
        tree.check_invariants()
        q = Rect(200, 200, 500, 500)
        got = sorted(e.data for e in tree.search_rect(q))
        want = sorted(i for i, r in enumerate(rects) if q.intersects(r))
        assert got == want

    def test_elongated_rects(self):
        # street-like extreme aspect ratios must not break the split
        tree = RStarTree(max_entries=4, min_entries=2)
        for i in range(60):
            if i % 2 == 0:
                r = Rect(i * 5, 0, i * 5 + 200, 2)
            else:
                r = Rect(0, i * 5, 2, i * 5 + 200)
            tree.insert(i, r)
        tree.check_invariants()


class TestPathological:
    def test_all_identical_points(self):
        tree = RStarTree(max_entries=4, min_entries=2)
        p = Point(5, 5)
        for __ in range(50):
            tree.insert(p, Rect.from_point(p))
        tree.check_invariants()
        assert len(tree.search_rect(Rect(5, 5, 5, 5))) == 50

    def test_collinear_points(self):
        tree = RStarTree(max_entries=4, min_entries=2)
        for i in range(100):
            p = Point(float(i), 0.0)
            tree.insert(p, Rect.from_point(p))
        tree.check_invariants()
        got = tree.search_rect(Rect(10, -1, 20, 1))
        assert len(got) == 11

    def test_interleaved_insert_delete_identical(self):
        tree = RStarTree(max_entries=4, min_entries=2)
        p = Point(1, 1)
        rect = Rect.from_point(p)
        for __ in range(30):
            tree.insert(p, rect)
        for __ in range(15):
            assert tree.delete(p, rect)
        tree.check_invariants()
        assert len(tree) == 15
