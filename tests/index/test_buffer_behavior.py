"""Behavioural tests for buffered page accesses at the tree level.

The paper's I/O metric depends on the interaction of access patterns
with the LRU buffer; these tests pin the properties the benchmarks
rely on (locality helps, bigger buffers never hurt, counters compose).
"""

import random

from repro.geometry import Circle, Point, Rect
from repro.index import RStarTree, str_pack


def _tree(n=2000, max_entries=16, buffer_fraction=0.1):
    rng = random.Random(42)
    pts = [Point(rng.uniform(0, 1000), rng.uniform(0, 1000)) for __ in range(n)]
    tree = RStarTree(
        max_entries=max_entries,
        min_entries=max_entries // 3,
        buffer_fraction=buffer_fraction,
    )
    str_pack(tree, [(p, Rect.from_point(p)) for p in pts])
    return tree


def _query_centers(n, seed, span=1000.0):
    rng = random.Random(seed)
    return [Point(rng.uniform(0, span), rng.uniform(0, span)) for __ in range(n)]


class TestBufferLocality:
    def test_repeated_query_costs_less(self):
        tree = _tree()
        region = Circle(Point(500, 500), 50)
        tree.reset_stats(clear_buffer=True)
        tree.search_circle(region)
        cold = tree.counter.misses
        tree.counter.reset()
        tree.search_circle(region)
        warm = tree.counter.misses
        assert warm <= cold

    def test_hilbert_ordered_queries_fewer_misses(self):
        # The ODJ seed-ordering rationale at the index level: visiting
        # query centers in Hilbert order produces no more buffer misses
        # than a shuffled order of the same centers.
        from repro.index.hilbert import hilbert_key

        tree = _tree(buffer_fraction=0.1)
        centers = _query_centers(80, seed=3)
        universe = Rect(0, 0, 1000, 1000)

        def run(order):
            tree.reset_stats(clear_buffer=True)
            for c in order:
                tree.search_circle(Circle(c, 40))
            return tree.counter.misses

        ordered = run(sorted(centers, key=lambda p: hilbert_key(p, universe)))
        rng = random.Random(99)
        shuffled = centers[:]
        rng.shuffle(shuffled)
        unordered = run(shuffled)
        assert ordered <= unordered

    def test_larger_buffer_never_more_misses(self):
        centers = _query_centers(40, seed=5)
        misses = []
        for fraction in (0.02, 0.1, 0.5):
            tree = _tree(buffer_fraction=fraction)
            tree.reset_stats(clear_buffer=True)
            for c in centers:
                tree.search_circle(Circle(c, 40))
            misses.append(tree.counter.misses)
        assert misses[0] >= misses[1] >= misses[2]

    def test_reads_bound_misses(self):
        tree = _tree()
        tree.reset_stats(clear_buffer=True)
        for c in _query_centers(20, seed=8):
            tree.search_circle(Circle(c, 60))
        assert tree.counter.misses <= tree.counter.reads

    def test_full_buffer_only_compulsory_misses(self):
        tree = _tree(buffer_fraction=1.0)
        tree.reset_stats(clear_buffer=True)
        for c in _query_centers(30, seed=9):
            tree.search_circle(Circle(c, 60))
        # with a buffer covering the whole tree, misses are at most one
        # per page (compulsory)
        assert tree.counter.misses <= tree.page_count
