"""The benchmark-regression gate: compare() semantics and the committed
baseline's integrity."""

import json
import pathlib

import pytest

from benchmarks.check_regression import (
    GATES,
    _lookup,
    compare,
    delta_rows,
    format_delta_table,
    format_markdown_summary,
    main,
)

ROOT = pathlib.Path(__file__).resolve().parent.parent


def _doc(**overrides):
    """A minimal passing document, with dotted-path overrides."""
    results = {
        "smoke": {
            "OR": {
                "entity_pa": 2.5,
                "obstacle_pa": 3.0,
                "result_size": 1.0,
                "false_hit_ratio": 0.0,
            },
            "ONN (k=4)": {"entity_pa": 3.5, "obstacle_pa": 6.5},
            "ODJ": {"obstacle_pa": 22.0, "result_size": 5.0},
            "OCP (k=4)": {"entity_pa": 11.0, "result_size": 4.0},
        },
        "smoke repeated d_O": {
            "fresh": {"graph_builds": 16.0},
            "cached": {"graph_builds": 2.0},
        },
        "smoke moving-query cache": {
            "exact": {"graph_builds": 24.0},
            "snapped": {"graph_builds": 3.0},
        },
        "smoke snapshot warm-start": {
            "builds_cold": 24.0,
            "builds_warm": 0.0,
            "build_reduction": float("inf"),
        },
        "smoke kernel": {"edges_match": 1.0},
        "smoke serve": {
            "parity": 1.0,
            "warm_builds": 0.0,
            "persistent": {"graph_builds": 8.0, "pool_batches": 8.0},
        },
        "smoke obs": {
            "disabled_overhead_ok": 1.0,
            "sampled_overhead_ok": 1.0,
            "trace_parity": 1.0,
            "pool_trace_merged": 1.0,
            "registry_complete": 1.0,
            "prometheus_parses": 1.0,
        },
        "smoke field engine": {
            "parity": 1.0,
            "counters_match": 1.0,
            "speedup_ok": 1.0,
            "graph_builds": 4.0,
            "field_freezes": 10.0,
        },
        "smoke adaptive policy": {
            "gate_ok": 1.0,
            "parity": 1.0,
            "trace_deterministic": 1.0,
            "wins": 2.0,
            "losses": 0.0,
            "zipf-hotspot": {"builds_adaptive": 17.0},
            "churn-heavy": {"builds_adaptive": 13.0},
        },
        "smoke journal": {
            "recovery_parity": 1.0,
            "compaction_ok": 1.0,
            "incremental_ok": 1.0,
            "save_speedup_ok": 1.0,
            "bytes_ratio": 195.0,
            "write_amplification": 1.0,
        },
    }
    for dotted, value in overrides.items():
        node = results
        *parents, leaf = dotted.split("/")
        for key in parents:
            node = node[key]
        if value is None:
            del node[leaf]
        else:
            node[leaf] = value
    return {"results": results}


class TestCompare:
    def test_identical_documents_pass(self):
        assert compare(_doc(), _doc()) == []

    def test_every_gate_path_resolves_in_the_fixture(self):
        doc = _doc()["results"]
        for path, __ in GATES:
            assert _lookup(doc, path) is not None, path

    def test_lower_gate_catches_regression(self):
        worse = _doc(**{"smoke/OR/entity_pa": 2.5 * 1.4})
        violations = compare(_doc(), worse)
        assert len(violations) == 1
        assert "entity_pa" in violations[0]

    def test_lower_gate_tolerates_within_threshold(self):
        slightly = _doc(**{"smoke/OR/entity_pa": 2.5 * 1.2})
        assert compare(_doc(), slightly) == []

    def test_improvement_always_passes(self):
        better = _doc(**{"smoke moving-query cache/snapped/graph_builds": 1.0})
        assert compare(_doc(), better) == []

    def test_higher_gate_catches_drop(self):
        base = _doc(**{"smoke snapshot warm-start/build_reduction": 8.0})
        worse = _doc(**{"smoke snapshot warm-start/build_reduction": 4.0})
        violations = compare(base, worse)
        assert len(violations) == 1
        assert "build_reduction" in violations[0]

    def test_infinite_reduction_is_stable(self):
        # inf baseline vs inf current (builds_warm == 0 on both sides).
        assert compare(_doc(), _doc()) == []
        worse = _doc(**{"smoke snapshot warm-start/build_reduction": 4.0})
        assert compare(_doc(), worse)  # falling from inf is a regression

    def test_exact_gate_catches_any_change(self):
        flipped = _doc(**{"smoke serve/parity": 0.0})
        violations = compare(_doc(), flipped)
        assert len(violations) == 1
        assert "parity" in violations[0]

    def test_missing_in_current_is_a_violation(self):
        gone = _doc(**{"smoke kernel": None})
        violations = compare(_doc(), gone)
        assert any("missing from the current run" in v for v in violations)

    def test_missing_in_baseline_is_skipped(self):
        old = _doc(**{"smoke serve": None})
        assert compare(old, _doc()) == []

    def test_threshold_override(self):
        worse = _doc(**{"smoke/OR/entity_pa": 2.5 * 1.2})
        assert compare(_doc(), worse, threshold=0.1)

    def test_bare_results_mapping_accepted(self):
        assert compare(_doc()["results"], _doc()["results"]) == []


class TestDeltaTable:
    def test_one_row_per_gate(self):
        rows = delta_rows(_doc(), _doc())
        assert len(rows) == len(GATES)
        assert all(r[5] == "ok" for r in rows)

    def test_regression_row_carries_old_new_delta(self):
        worse = _doc(**{"smoke/OR/entity_pa": 5.0})
        row = next(
            r for r in delta_rows(_doc(), worse) if "entity_pa" in r[0]
        )
        label, direction, base, cur, delta, verdict = row
        assert (direction, base, cur, verdict) == ("lower", 2.5, 5.0, "FAIL")
        assert delta == pytest.approx(100.0)

    def test_missing_baseline_rows_are_skipped(self):
        old = _doc(**{"smoke field engine": None})
        rows = delta_rows(old, _doc())
        skipped = [r for r in rows if r[5] == "skipped"]
        assert len(skipped) == 5  # the five field-engine gates
        assert compare(old, _doc()) == []

    def test_skipped_rows_carry_the_current_value(self):
        # The CLI's stale-baseline check (exit 3) needs to see whether
        # the current run emitted the gate the baseline lacks.
        old = _doc(**{"smoke adaptive policy": None})
        rows = delta_rows(old, _doc())
        skipped = [r for r in rows if r[5] == "skipped"]
        assert len(skipped) == 7  # the seven adaptive-policy gates
        assert all(r[2] is None for r in skipped)  # no baseline value
        assert all(r[3] is not None for r in skipped)  # current value rides

    def test_zero_and_inf_baselines_have_no_delta(self):
        rows = delta_rows(_doc(), _doc())
        by_label = {r[0]: r for r in rows}
        assert by_label["smoke snapshot warm-start / builds_warm"][4] is None
        assert (
            by_label["smoke snapshot warm-start / build_reduction"][4] is None
        )

    def test_plain_table_renders_every_gate(self):
        text = format_delta_table(delta_rows(_doc(), _doc()))
        assert "Δ%" in text and "verdict" in text
        for path, __ in GATES:
            assert " / ".join(path) in text

    def test_failures_only_filter(self):
        worse = _doc(**{"smoke/OR/entity_pa": 5.0})
        text = format_delta_table(
            delta_rows(_doc(), worse), failures_only=True
        )
        assert "entity_pa" in text
        assert "field engine" not in text

    def test_markdown_summary_counts_failures(self):
        worse = _doc(**{"smoke serve/parity": 0.0})
        md = format_markdown_summary(
            delta_rows(_doc(), worse), threshold=0.3
        )
        assert "**1 regression(s)**" in md
        assert "| smoke serve / parity |" in md
        assert md.count("❌") == 1

    def test_markdown_summary_clean(self):
        md = format_markdown_summary(delta_rows(_doc(), _doc()), threshold=0.3)
        assert "all gates clean" in md
        assert "❌" not in md


class TestCli:
    def _write(self, tmp_path, name, doc):
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return str(path)

    def test_clean_run_exits_zero(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", _doc())
        cur = self._write(tmp_path, "cur.json", _doc())
        assert main([base, cur]) == 0
        assert "clean" in capsys.readouterr().out

    def test_regression_exits_one(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", _doc())
        cur = self._write(
            tmp_path, "cur.json", _doc(**{"smoke/OR/entity_pa": 99.0})
        )
        assert main([base, cur]) == 1
        assert "entity_pa" in capsys.readouterr().out

    def test_threshold_flag(self, tmp_path):
        base = self._write(tmp_path, "base.json", _doc())
        cur = self._write(
            tmp_path, "cur.json", _doc(**{"smoke/OR/entity_pa": 2.5 * 1.2})
        )
        assert main([base, cur]) == 0
        assert main(["--threshold", "0.1", base, cur]) == 1

    def test_bad_usage_exits_two(self, tmp_path):
        assert main([]) == 2
        assert main(["--threshold", "x", "a", "b"]) == 2
        assert main(["--summary"]) == 2

    def test_failure_prints_delta_table(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", _doc())
        cur = self._write(
            tmp_path, "cur.json", _doc(**{"smoke/OR/entity_pa": 99.0})
        )
        assert main([base, cur]) == 1
        out = capsys.readouterr().out
        assert "Δ%" in out  # the full table, not just the violation list
        assert "smoke kernel / edges_match" in out

    def test_stale_baseline_exits_three(self, tmp_path, capsys):
        # The baseline predates a gate the current run emits: distinct
        # exit code plus the refresh command, not a KeyError or a
        # silent pass.
        base = self._write(
            tmp_path, "base.json", _doc(**{"smoke adaptive policy": None})
        )
        cur = self._write(tmp_path, "cur.json", _doc())
        assert main([base, cur]) == 3
        out = capsys.readouterr().out
        assert "missing from the baseline" in out
        assert "smoke adaptive policy / gate_ok" in out
        assert "run_all.py --smoke --json BENCH_smoke.json" in out

    def test_stale_baseline_does_not_mask_regressions(self, tmp_path):
        # A real regression still wins over the stale-baseline notice.
        base = self._write(
            tmp_path, "base.json", _doc(**{"smoke adaptive policy": None})
        )
        cur = self._write(
            tmp_path, "cur.json", _doc(**{"smoke/OR/entity_pa": 99.0})
        )
        assert main([base, cur]) == 1

    def test_gate_absent_on_both_sides_stays_quiet(self, tmp_path):
        # Neither document knows the metric (e.g. both predate it):
        # skipped, but not stale — exit 0.
        base = self._write(
            tmp_path, "base.json", _doc(**{"smoke adaptive policy": None})
        )
        cur = self._write(
            tmp_path, "cur.json", _doc(**{"smoke adaptive policy": None})
        )
        assert main([base, cur]) == 0

    def test_summary_written_pass_and_fail(self, tmp_path):
        base = self._write(tmp_path, "base.json", _doc())
        good = self._write(tmp_path, "good.json", _doc())
        bad = self._write(
            tmp_path, "bad.json", _doc(**{"smoke serve/parity": 0.0})
        )
        summary = tmp_path / "summary.md"
        assert main(["--summary", str(summary), base, good]) == 0
        assert "all gates clean" in summary.read_text()
        assert main(["--summary", str(summary), base, bad]) == 1
        # Appended (the CI step-summary file accumulates).
        text = summary.read_text()
        assert "all gates clean" in text
        assert "**1 regression(s)**" in text


class TestCommittedBaseline:
    """The baseline the CI diff step runs against must stay healthy."""

    def test_baseline_exists_and_parses(self):
        doc = json.loads((ROOT / "BENCH_smoke.json").read_text())
        assert "results" in doc and "config" in doc

    def test_baseline_covers_every_gate(self):
        doc = json.loads((ROOT / "BENCH_smoke.json").read_text())
        for path, __ in GATES:
            assert _lookup(doc["results"], path) is not None, path

    def test_baseline_parity_flags_hold(self):
        results = json.loads((ROOT / "BENCH_smoke.json").read_text())["results"]
        assert results["smoke serve"]["parity"] == 1.0
        assert results["smoke serve"]["warm_builds"] == 0.0
        assert results["smoke kernel"]["edges_match"] == 1.0
        for flag in (
            "disabled_overhead_ok",
            "sampled_overhead_ok",
            "trace_parity",
            "pool_trace_merged",
            "registry_complete",
            "prometheus_parses",
        ):
            assert results["smoke obs"][flag] == 1.0, flag
        policy = results["smoke adaptive policy"]
        assert policy["gate_ok"] == 1.0
        assert policy["parity"] == 1.0
        assert policy["trace_deterministic"] == 1.0
        assert policy["wins"] >= 2.0
        assert policy["losses"] == 0.0
