"""Repair-first mutation routing through the runtime.

``QueryContext`` subscribes to its obstacle source's mutation feed and
patches cached graphs in place (insert: one ``add_obstacle``; delete:
``remove_obstacle``'s local re-sweep) instead of dropping them for a
from-scratch rebuild.  These tests pin the acceptance properties:

* a repaired graph answers every query exactly like a cold database
  over the same obstacle set (randomized churn, both storage layouts,
  every backend);
* sharded mutation maintenance is O(affected): only entries registered
  under the mutated shards are visited;
* when repair is impossible the rebuild fallback still yields correct
  answers (direct tree mutation behind the runtime's back).
"""

import random

import pytest

from repro import ObstacleDatabase, Point, Rect
from repro.core.source import build_sharded_obstacle_index
from repro.runtime.context import QueryContext
from repro.visibility.kernel.backend import numpy_available
from tests.conftest import (
    oracle_distance,
    random_disjoint_rects,
    random_free_points,
    rect_obstacle,
)

BACKENDS = ["python-sweep", "naive"] + (
    ["numpy-kernel"] if numpy_available() else []
)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("shards", [None, 16])
@pytest.mark.parametrize("seed", range(3))
class TestRepairedAnswersMatchRebuild:
    def test_randomized_churn_matches_cold_database(
        self, backend, shards, seed
    ):
        rng = random.Random(9_000 + seed)
        obstacles = random_disjoint_rects(rng, 14)
        points = random_free_points(rng, 8, obstacles)
        polygons = [o.polygon for o in obstacles]
        db = ObstacleDatabase(
            polygons, max_entries=8, min_entries=3, shards=shards,
            backend=backend,
        )
        live = list(polygons)
        records = [None] * len(polygons)
        pairs = list(zip(points[:4], points[4:]))
        for p, q in pairs:  # prime cached graphs
            db.obstructed_distance(p, q)
        for step in range(6):
            if rng.random() < 0.5 and any(r is None for r in records):
                # Delete a live obstacle (records filled lazily by oid).
                idx = rng.choice(
                    [i for i, r in enumerate(records) if r is None]
                )
                assert db.delete_obstacle(idx)
                records[idx] = "deleted"
                live[idx] = None
            else:
                x, y = rng.uniform(0, 80), rng.uniform(0, 80)
                rect = Rect(x, y, x + rng.uniform(2, 8), y + rng.uniform(2, 8))
                rec = db.insert_obstacle(rect)
                records.append(rec)
                live.append(rec.polygon)
            cold = ObstacleDatabase(
                [p for p in live if p is not None],
                max_entries=8, min_entries=3, backend=backend,
            )
            for p, q in pairs:
                assert db.obstructed_distance(p, q) == pytest.approx(
                    cold.obstructed_distance(p, q)
                ), (step, p, q)

    def test_delete_repair_avoids_builds(self, backend, shards, seed):
        rng = random.Random(17_000 + seed)
        obstacles = random_disjoint_rects(rng, 12)
        points = random_free_points(rng, 6, obstacles)
        polygons = [o.polygon for o in obstacles]
        db = ObstacleDatabase(
            polygons, max_entries=8, min_entries=3, shards=shards,
            backend=backend,
        )
        pairs = list(zip(points[:3], points[3:]))
        for p, q in pairs:
            db.obstructed_distance(p, q)
        builds = db.runtime_stats()["graph_builds"]
        assert db.delete_obstacle(rng.randrange(len(polygons)))
        for p, q in pairs:
            db.obstructed_distance(p, q)
        stats = db.runtime_stats()
        # The delete was absorbed by in-place repairs: the post-delete
        # queries hit the cache without any build or rebuild.
        assert stats["graph_builds"] == builds
        assert stats["graph_rebuilds"] == 0


class TestShardScanIsAffectedOnly:
    def test_mutation_visits_only_registered_entries(self):
        universe = Rect(0, 0, 100, 100)
        obstacles = [
            rect_obstacle(i, 10 * i + 2, 2, 10 * i + 5, 5) for i in range(9)
        ]
        index = build_sharded_obstacle_index(
            obstacles, shards=16, universe=universe,
            max_entries=8, min_entries=3,
        )
        ctx = QueryContext(index)
        # Many small cached graphs spread over the universe.
        centers = [Point(10 * i + 7.0, 7.0) for i in range(9)]
        for c in centers:
            ctx.entry_for(c, 2.0)
        entries = {c: ctx.cache.get(c, ctx.version) for c in centers}
        stamps = {c: entries[c].version for c in centers}
        # Mutate one corner shard: a small obstacle near the first
        # centre only.
        index.insert(rect_obstacle(99, 6, 6, 8, 8))
        repaired = {
            c for c in centers if entries[c].version is not stamps[c]
        }
        # Only the entries whose coverage disk shares a grid cell with
        # the mutation were visited; the rest kept their stamp objects
        # untouched — the scan is O(affected), not O(cache size).
        assert Point(7.0, 7.0) in repaired
        assert len(repaired) < len(centers)
        for c in centers:
            assert ctx.cache.get(c, ctx.version) is entries[c]

    def test_shard_registry_tracks_coverage_growth(self):
        universe = Rect(0, 0, 100, 100)
        obstacles = [rect_obstacle(0, 60, 60, 63, 63)]
        index = build_sharded_obstacle_index(
            obstacles, shards=16, universe=universe,
            max_entries=8, min_entries=3,
        )
        ctx = QueryContext(index)
        entry = ctx.entry_for(Point(5, 5), 3.0)
        small = set(ctx.cache.shard_keys())
        ctx.ensure_coverage(entry, 90.0)
        grown = set(ctx.cache.shard_keys())
        assert small < grown  # the disk now touches more shards


class TestRepairEdgeCases:
    def test_cached_centre_survives_cornered_obstacle_cycle(self):
        """Regression: insert an obstacle with a vertex exactly on a
        cached query centre, then delete it — the centre must stay a
        graph node and answers must match a cold database."""
        db = ObstacleDatabase(
            [Rect(100, 100, 102, 102)], max_entries=8, min_entries=3
        )
        p, q = Point(0, 0), Point(6, 4)
        before = db.obstructed_distance(p, q)
        rec = db.insert_obstacle(Rect(6, 4, 10, 8))  # corner exactly at q
        blocked = db.obstructed_distance(p, q)
        cold = ObstacleDatabase([Rect(6, 4, 10, 8)], max_entries=8, min_entries=3)
        assert blocked == pytest.approx(cold.obstructed_distance(p, q))
        assert db.delete_obstacle(rec)
        assert db.obstructed_distance(p, q) == pytest.approx(before)

    def test_oversized_delete_repair_falls_back_to_rebuild(self):
        """Above DELETE_REPAIR_NODE_LIMIT the runtime discards the
        entry instead of re-sweeping it (repair would cost more than
        the rebuild), and answers stay correct."""
        import repro.runtime.context as context_mod

        rng = random.Random(31)
        obstacles = random_disjoint_rects(rng, 12)
        points = random_free_points(rng, 4, obstacles)
        polygons = [o.polygon for o in obstacles]
        db = ObstacleDatabase(polygons, max_entries=8, min_entries=3)
        p, q = points[0], points[1]
        db.obstructed_distance(p, q)
        # Delete an obstacle the cached graph actually holds, so the
        # repair-vs-rebuild decision is exercised.
        entry = db.context.cache.get(q, db.context.version)
        victim = sorted(entry.graph.obstacle_ids())[0]
        old_limit = context_mod.DELETE_REPAIR_NODE_LIMIT
        context_mod.DELETE_REPAIR_NODE_LIMIT = 0  # force the fallback
        try:
            assert db.delete_obstacle(victim)
        finally:
            context_mod.DELETE_REPAIR_NODE_LIMIT = old_limit
        stats = db.runtime_stats()
        assert stats["graph_cache_invalidations"] >= 1
        assert stats["graph_cache_repairs"] == 0
        cold = ObstacleDatabase(
            [o.polygon for o in obstacles if o.oid != victim],
            max_entries=8, min_entries=3,
        )
        assert db.obstructed_distance(p, q) == pytest.approx(
            cold.obstructed_distance(p, q)
        )


class TestRebuildFallback:
    def test_direct_tree_mutation_still_rebuilds(self):
        """Mutations applied behind the feed's back (directly to the
        tree) bypass repair; version drift catches them at the next
        lookup and the entry is rebuilt — never served stale."""
        from repro.geometry import Polygon
        from repro.model import Obstacle

        db = ObstacleDatabase(
            [Rect(100, 100, 102, 102)], max_entries=8, min_entries=3
        )
        a, b = Point(0, 0), Point(10, 0)
        assert db.obstructed_distance(a, b) == pytest.approx(10.0)
        wall = Obstacle(999, Polygon.from_rect(Rect(4, -10, 6, 10)))
        db.obstacle_tree.insert(wall, wall.mbr)
        d = db.obstructed_distance(a, b)
        assert d == pytest.approx(oracle_distance(a, b, [wall]))
        assert d > 10.0

    def test_routed_mutation_does_not_mask_direct_tree_edit(self):
        """Regression: an entry left stale by a direct tree edit must
        not be 'validated' by a later routed mutation — the repair
        pass re-stamps only entries that were fresh immediately before
        the mutation; anything else is discarded and rebuilt."""
        from repro.geometry import Polygon
        from repro.model import Obstacle

        db = ObstacleDatabase(
            [Rect(100, 100, 102, 102)], max_entries=8, min_entries=3
        )
        a, b = Point(0, 0), Point(10, 0)
        assert db.obstructed_distance(a, b) == pytest.approx(10.0)
        wall = Obstacle(999, Polygon.from_rect(Rect(4, -2, 6, 2)))
        db.obstacle_tree.insert(wall, wall.mbr)  # behind the feed's back
        # Routed mutation far away: repairs affected entries in place
        # and refreshes their stamps — it must not absorb the wall.
        db.insert_obstacle(Rect(200, 200, 201, 201))
        d = db.obstructed_distance(a, b)
        assert d == pytest.approx(oracle_distance(a, b, [wall]))
        assert d > 10.0

    def test_routed_mutation_does_not_mask_direct_shard_edit(self):
        """Same guarantee under sharded storage: a direct
        ``shard(key).insert`` bumps the shard version without firing
        the outer feed; the next routed mutation must discard the
        drifted entry instead of re-stamping over the missed wall."""
        from repro.geometry import Polygon
        from repro.model import Obstacle

        universe = Rect(-20, -20, 20, 20)
        corners = [(-15, -15), (-15, 14), (14, -15), (14, 14)]
        seeds = [
            rect_obstacle(i, x, y, x + 1, y + 1)
            for i, (x, y) in enumerate(corners)
        ]
        index = build_sharded_obstacle_index(
            seeds, shards=4, universe=universe, max_entries=8, min_entries=3,
        )
        ctx = QueryContext(index)
        a, b = Point(0, 0), Point(10, 0)
        assert ctx.distance(a, b) == pytest.approx(10.0)
        wall = Obstacle(100, Polygon.from_rect(Rect(4, -2, 6, 2)))
        key = index.keys_for_obstacle(wall)[0]
        index.shard(key).insert(wall)  # shard version moves; no outer feed
        index.insert(Obstacle(101, Polygon.from_rect(Rect(14, 10, 15, 11))))
        d = ctx.distance(a, b)
        assert d == pytest.approx(oracle_distance(a, b, [wall]))
        assert d > 10.0
