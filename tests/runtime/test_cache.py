"""The versioned LRU visibility-graph cache."""

import pytest

from repro.geometry import Point
from repro.runtime.cache import CachedGraph, VisibilityGraphCache
from repro.runtime.stats import RuntimeStats
from repro.visibility import VisibilityGraph


def _entry(x, y, version=0):
    center = Point(x, y)
    return CachedGraph(VisibilityGraph.build([center], []), center, 0.0, version)


class TestLRUPolicy:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            VisibilityGraphCache(0)

    def test_eviction_order_is_lru_not_fifo(self):
        cache = VisibilityGraphCache(2)
        a, b = _entry(0, 0), _entry(1, 1)
        cache.put(a)
        cache.put(b)
        # Touch `a`: under FIFO it would still be evicted next; under
        # LRU the victim becomes `b`.
        assert cache.get(a.center, 0) is a
        cache.put(_entry(2, 2))
        assert a.center in cache
        assert b.center not in cache

    def test_eviction_on_overflow(self):
        cache = VisibilityGraphCache(3)
        entries = [_entry(i, i) for i in range(5)]
        for e in entries:
            cache.put(e)
        assert len(cache) == 3
        assert cache.keys() == [e.center for e in entries[2:]]
        assert cache.stats.graph_cache_evictions == 2

    def test_get_moves_to_end(self):
        cache = VisibilityGraphCache(3)
        entries = [_entry(i, i) for i in range(3)]
        for e in entries:
            cache.put(e)
        cache.get(entries[0].center, 0)
        assert cache.keys()[-1] == entries[0].center

    def test_put_refreshes_existing_center(self):
        cache = VisibilityGraphCache(2)
        a, b = _entry(0, 0), _entry(1, 1)
        cache.put(a)
        cache.put(b)
        replacement = _entry(0, 0)
        cache.put(replacement)
        assert len(cache) == 2
        assert cache.get(a.center, 0) is replacement


class TestVersioning:
    def test_version_mismatch_is_dropped(self):
        cache = VisibilityGraphCache(4)
        stale = _entry(0, 0, version=1)
        cache.put(stale)
        assert cache.get(stale.center, version=2) is None
        assert stale.center not in cache
        assert cache.stats.graph_cache_invalidations == 1

    def test_matching_version_is_served(self):
        cache = VisibilityGraphCache(4)
        entry = _entry(0, 0, version=7)
        cache.put(entry)
        assert cache.get(entry.center, version=7) is entry

    def test_stats_counters(self):
        stats = RuntimeStats()
        cache = VisibilityGraphCache(4, stats=stats)
        entry = _entry(0, 0)
        assert cache.get(entry.center, 0) is None
        cache.put(entry)
        cache.get(entry.center, 0)
        snap = stats.snapshot()
        assert snap["graph_cache_misses"] == 1
        assert snap["graph_cache_hits"] == 1

    def test_clear(self):
        cache = VisibilityGraphCache(4)
        cache.put(_entry(0, 0))
        cache.clear()
        assert len(cache) == 0
