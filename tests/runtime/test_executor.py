"""The parallel batch engine: equivalence, stats merging, guards."""

import random

import pytest

from repro import ObstacleDatabase, Point, Rect
from repro.core.source import build_obstacle_index
from repro.errors import DatasetError, QueryError
from repro.runtime.batch import batch_distance, batch_nearest, batch_range
from repro.runtime.context import QueryContext
from repro.runtime.executor import (
    MODE_ENV,
    WORKERS_ENV,
    BatchExecutor,
    _chunk_ranges,
    fork_available,
    resolve_mode,
    resolve_workers,
)
from repro.runtime.metric import EuclideanMetric, ObstructedMetric
from tests.conftest import (
    random_disjoint_rects,
    random_free_points,
    small_tree,
)

_MODES = ["thread"] + (["fork"] if fork_available() else [])


def _scene(seed, n_obstacles=10, n_points=18):
    rng = random.Random(seed)
    obstacles = random_disjoint_rects(rng, n_obstacles)
    points = random_free_points(rng, n_points, obstacles)
    return obstacles, points


def _metric(obstacles):
    index = build_obstacle_index(obstacles, max_entries=8, min_entries=3)
    return ObstructedMetric(QueryContext(index))


class TestResolution:
    def test_workers_argument_wins(self):
        assert resolve_workers(3) == 3

    def test_workers_default_is_sequential(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(None) == 0

    def test_workers_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "4")
        assert resolve_workers(None) == 4

    def test_workers_env_invalid(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "lots")
        with pytest.raises(QueryError):
            resolve_workers(None)

    def test_workers_negative_rejected(self):
        with pytest.raises(QueryError):
            resolve_workers(-1)

    def test_mode_env(self, monkeypatch):
        monkeypatch.setenv(MODE_ENV, "thread")
        assert resolve_mode(None) == "thread"

    def test_mode_unknown_rejected(self):
        with pytest.raises(QueryError):
            resolve_mode("greenlet")

    def test_mode_auto_resolves(self, monkeypatch):
        monkeypatch.delenv(MODE_ENV, raising=False)
        assert resolve_mode(None) in ("fork", "thread")

    def test_chunk_ranges_cover_everything(self):
        for n in (1, 2, 7, 16):
            for parts in (1, 2, 3, 5):
                ranges = _chunk_ranges(n, parts)
                flat = [i for a, b in ranges for i in range(a, b)]
                assert flat == list(range(n))

    def test_sequential_executor_refuses_run(self):
        with pytest.raises(QueryError):
            BatchExecutor(workers=0).run(
                EuclideanMetric(), [Point(0, 0)], lambda m, q: q
            )


class TestParallelEquivalence:
    @pytest.mark.parametrize("mode", _MODES)
    def test_batch_nearest_matches_sequential(self, mode):
        obstacles, points = _scene(201)
        tree = small_tree(points[6:])
        queries = points[:6] + points[:3]  # with duplicates
        sequential = batch_nearest(tree, _metric(obstacles), queries, 2)
        parallel = batch_nearest(
            tree, _metric(obstacles), queries, 2, workers=4, mode=mode
        )
        assert parallel == sequential

    @pytest.mark.parametrize("mode", _MODES)
    def test_batch_range_matches_sequential(self, mode):
        obstacles, points = _scene(202)
        tree = small_tree(points[6:])
        queries = points[:6]
        sequential = batch_range(tree, _metric(obstacles), queries, 28.0)
        parallel = batch_range(
            tree, _metric(obstacles), queries, 28.0, workers=3, mode=mode
        )
        assert parallel == sequential

    @pytest.mark.parametrize("mode", _MODES)
    def test_database_batch_parallel(self, mode):
        obstacles, points = _scene(203)
        db = ObstacleDatabase(
            [o.polygon for o in obstacles], max_entries=8, min_entries=3
        )
        db.add_entity_set("pois", points[5:])
        queries = points[:5]
        sequential = db.batch_nearest("pois", queries, 2)
        parallel = db.batch_nearest("pois", queries, 2, workers=4, mode=mode)
        assert parallel == sequential
        assert db.runtime_stats()["parallel_batches"] >= 1

    def test_more_workers_than_queries(self):
        obstacles, points = _scene(204, n_points=8)
        tree = small_tree(points[2:])
        sequential = batch_nearest(tree, _metric(obstacles), points[:2], 1)
        parallel = batch_nearest(
            tree, _metric(obstacles), points[:2], 1, workers=8, mode="thread"
        )
        assert parallel == sequential

    def test_euclidean_metric_parallelizes(self):
        __, points = _scene(205, n_obstacles=0)
        tree = small_tree(points[4:])
        metric = EuclideanMetric()
        sequential = batch_nearest(tree, metric, points[:4], 2)
        parallel = batch_nearest(
            tree, metric, points[:4], 2, workers=2, mode="thread"
        )
        assert parallel == sequential

    def test_unspawnable_metric_falls_back_to_sequential(self):
        class Plain:
            """DistanceOracle without spawn(): cannot fan out."""

            def distance(self, p, q, *, bound=float("inf")):
                return p.distance(q)

            def lower_bound(self, p, q):
                return p.distance(q)

            def field(self, q, *, radius=0.0):
                return type(
                    "F", (), {"distance_to": lambda s, p, bound=0: q.distance(p)}
                )()

            def range_refine(self, q, e, candidates):
                return sorted(
                    ((p, q.distance(p)) for p in candidates if q.distance(p) <= e),
                    key=lambda pair: pair[1],
                )

        __, points = _scene(206, n_obstacles=0)
        tree = small_tree(points[3:])
        result = batch_nearest(tree, Plain(), points[:3], 1, workers=4)
        assert len(result) == 3


class TestStatsAndMemo:
    def test_worker_stats_merged_on_join(self):
        obstacles, points = _scene(207)
        tree = small_tree(points[6:])
        metric = _metric(obstacles)
        batch_nearest(tree, metric, points[:6], 2, workers=3, mode="thread")
        stats = metric.context.stats
        # The parent context ran nothing itself; every sweep/build
        # counted must have come from merged worker snapshots.
        assert stats.parallel_batches == 1
        assert stats.graph_builds > 0
        assert stats.field_builds >= 6

    def test_memo_hits_counted_in_parallel(self):
        obstacles, points = _scene(208)
        tree = small_tree(points[2:])
        metric = _metric(obstacles)
        q = points[0]
        results = batch_nearest(
            tree, metric, [q] * 10, 2, workers=2, mode="thread"
        )
        assert all(r == results[0] for r in results)
        assert metric.context.stats.batch_memo_hits == 9
        # 10 identical points collapse to one distinct query — the
        # parallel path is skipped (nothing to fan out).
        assert metric.context.stats.parallel_batches == 0

    def test_sequential_memo_unchanged(self):
        obstacles, points = _scene(209)
        tree = small_tree(points[2:])
        metric = _metric(obstacles)
        q = points[0]
        results = batch_nearest(tree, metric, [q] * 10, 2)
        assert all(r == results[0] for r in results)
        assert metric.context.stats.batch_memo_hits == 9


class TestMutationGuard:
    def _db(self, seed=210):
        obstacles, points = _scene(seed)
        db = ObstacleDatabase(
            [o.polygon for o in obstacles], max_entries=8, min_entries=3
        )
        db.add_entity_set("pois", points[6:])
        return db, points[:6]

    def test_mid_batch_mutation_raises(self):
        db, queries = self._db()
        metric = ObstructedMetric(db.context)

        calls = []

        class Mutating:
            def spawn(self):
                return self

            def field(self, q, *, radius=0.0):
                if not calls:
                    calls.append(q)
                    db.insert_obstacle(Rect(50, 50, 52, 52))
                return metric.field(q, radius=radius)

            def __getattr__(self, name):
                return getattr(metric, name)

        # workers=0 pins the sequential path: the guard watches for
        # *parent-side* mutations, and in fork mode a worker-side
        # insert would only ever touch the child's copy-on-write trees.
        with pytest.raises(DatasetError, match="mutated during batch"):
            batch_nearest(
                db.entity_tree("pois"), Mutating(), queries, 1, workers=0
            )

    def test_mutation_between_batches_is_fine(self):
        db, queries = self._db(211)
        first = db.batch_nearest("pois", queries, 1)
        db.insert_obstacle(Rect(50, 50, 52, 52))
        second = db.batch_nearest("pois", queries, 1)
        assert len(first) == len(second)

    def test_batch_distance_guarded(self):
        db, queries = self._db(212)
        metric = ObstructedMetric(db.context)
        pairs = [(queries[0], queries[1]), (queries[2], queries[3])]
        assert len(batch_distance(metric, pairs)) == 2

        class Mutating:
            context = db.context

            def distance(self, p, q, *, bound=float("inf")):
                db.insert_obstacle(Rect(60, 60, 61, 61))
                return metric.distance(p, q, bound=bound)

        with pytest.raises(DatasetError, match="mutated during batch"):
            batch_distance(Mutating(), pairs)


class TestForkPageCounters:
    """Satellite of PR 6: fork-worker page counters merge on join."""

    def _db(self, seed=250):
        obstacles, points = _scene(seed, n_points=24)
        db = ObstacleDatabase(
            [o.polygon for o in obstacles], max_entries=8, min_entries=3
        )
        db.add_entity_set("pois", points[8:])
        return db, points[:8]

    @pytest.mark.skipif(not fork_available(), reason="fork unavailable")
    def test_fork_reads_match_sequential(self):
        db, queries = self._db()
        db.reset_stats()
        db.batch_nearest("pois", queries, 2)
        sequential = {k: dict(v) for k, v in db.stats().items()}

        db.reset_stats(clear_buffers=True)
        db.batch_nearest("pois", queries, 2, workers=4, mode="fork", pool="fork")
        forked = {k: dict(v) for k, v in db.stats().items()}

        # Logical page reads are buffer-independent and must be fully
        # accounted: the children shipped their deltas home.
        for name, counters in sequential.items():
            assert forked[name]["reads"] == counters["reads"], name
            assert forked[name]["reads"] > 0

    @pytest.mark.skipif(not fork_available(), reason="fork unavailable")
    def test_fork_counters_accumulate_across_batches(self):
        db, queries = self._db(251)
        db.reset_stats()
        db.batch_nearest("pois", queries, 2, workers=2, mode="fork", pool="fork")
        once = db.stats()["entities:pois"]["reads"]
        assert once > 0
        db.batch_nearest("pois", queries, 2, workers=2, mode="fork", pool="fork")
        assert db.stats()["entities:pois"]["reads"] == 2 * once

    def test_thread_mode_counters_shared_not_doubled(self):
        db, queries = self._db(252)
        db.reset_stats()
        db.batch_nearest("pois", queries, 2)
        sequential = db.stats()["entities:pois"]["reads"]
        db.reset_stats(clear_buffers=True)
        db.batch_nearest("pois", queries, 2, workers=3, mode="thread", pool="fork")
        # Thread workers tick the parent's counters directly; the
        # fork-only delta path must not double-book them.
        assert db.stats()["entities:pois"]["reads"] == sequential
