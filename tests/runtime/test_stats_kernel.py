"""Regression tests for the per-backend sweep counters in
:class:`~repro.runtime.stats.RuntimeStats` (``sweeps_run``,
``sweep_events``, ``sweep_seconds``, ``backend``)."""

import pytest

from repro.core.engine import ObstacleDatabase
from repro.geometry import Point, Rect
from repro.runtime.stats import RuntimeStats
from repro.visibility import default_backend_name


@pytest.fixture
def small_db():
    db = ObstacleDatabase([Rect(4, 4, 6, 6), Rect(10, 2, 12, 8)])
    db.add_entity_set("P", [Point(0, 0), Point(14, 5), Point(5, 10)])
    return db


class TestSweepCounters:
    def test_snapshot_exposes_kernel_fields(self, small_db):
        stats = small_db.runtime_stats()
        for field in ("sweeps_run", "sweep_events", "sweep_seconds", "backend"):
            assert field in stats
        assert stats["sweeps_run"] == 0
        assert stats["backend"] == default_backend_name()

    def test_distance_ticks_sweep_counters(self, small_db):
        small_db.obstructed_distance((0, 0), (14, 5))
        stats = small_db.runtime_stats()
        assert stats["sweeps_run"] > 0
        # Every sweep processes at least the other query point.
        assert stats["sweep_events"] >= stats["sweeps_run"]
        assert stats["sweep_seconds"] > 0.0

    def test_reset_zeroes_counters_but_keeps_backend(self, small_db):
        small_db.nearest("P", (1, 1), k=2)
        assert small_db.runtime_stats()["sweeps_run"] > 0
        small_db.reset_stats()
        stats = small_db.runtime_stats()
        assert stats["sweeps_run"] == 0
        assert stats["sweep_events"] == 0
        assert stats["sweep_seconds"] == 0.0
        assert stats["backend"] == default_backend_name()

    @pytest.mark.parametrize("name", ["python-sweep", "naive"])
    def test_explicit_backend_is_reported(self, name):
        db = ObstacleDatabase([Rect(4, 4, 6, 6)], backend=name)
        db.add_entity_set("P", [Point(0, 0), Point(9, 9)])
        db.obstructed_distance((0, 0), (9, 9))
        stats = db.runtime_stats()
        assert stats["backend"] == name
        assert stats["sweeps_run"] > 0

    def test_numpy_kernel_backend_counts_match_python_sweep(self):
        pytest.importorskip("numpy")
        counts = {}
        for name in ("python-sweep", "numpy-kernel"):
            db = ObstacleDatabase(
                [Rect(4, 4, 6, 6), Rect(10, 2, 12, 8)], backend=name
            )
            db.add_entity_set("P", [Point(0, 0), Point(14, 5)])
            db.nearest("P", (1, 1), k=2)
            stats = db.runtime_stats()
            counts[name] = (stats["sweeps_run"], stats["sweep_events"])
        # Identical query plans on identical scenes: the two backends
        # must run the same sweeps over the same events.
        assert counts["python-sweep"] == counts["numpy-kernel"]

    def test_standalone_stats_default_backend_label(self):
        assert RuntimeStats().backend == ""

    def test_shared_backend_instance_ticks_each_database(self):
        """One backend instance across two databases: each database's
        counters reflect its own sweeps (the instance is wrapped, not
        mutated and bound to the first database's stats)."""
        from repro.visibility.kernel.backend import PythonSweepBackend

        shared = PythonSweepBackend()
        dbs = []
        for _ in range(2):
            db = ObstacleDatabase([Rect(4, 4, 6, 6)], backend=shared)
            db.add_entity_set("P", [Point(0, 0), Point(9, 9)])
            dbs.append(db)
        dbs[1].obstructed_distance((0, 0), (9, 9))
        assert dbs[0].runtime_stats()["sweeps_run"] == 0
        assert dbs[1].runtime_stats()["sweeps_run"] > 0
        assert shared.stats is None
