"""Batch query entry points: equivalence and amortization."""

import random

import pytest

from repro import ObstacleDatabase, Point, Rect
from repro.core.source import build_obstacle_index
from repro.runtime.batch import batch_distance, batch_nearest, batch_range
from repro.runtime.context import QueryContext
from repro.runtime.metric import ObstructedMetric
from tests.conftest import (
    random_disjoint_rects,
    random_free_points,
    small_tree,
)


def _scene(seed, n_obstacles=8, n_points=12):
    rng = random.Random(seed)
    obstacles = random_disjoint_rects(rng, n_obstacles)
    points = random_free_points(rng, n_points, obstacles)
    return obstacles, points


class TestBatchEquivalence:
    def test_batch_nearest_equals_per_query(self):
        obstacles, points = _scene(41)
        tree = small_tree(points[4:])
        queries = points[:4]
        metric = ObstructedMetric.over(
            build_obstacle_index(obstacles, max_entries=8, min_entries=3)
        )
        batched = batch_nearest(tree, metric, queries, 3)
        for q, result in zip(queries, batched):
            fresh = ObstructedMetric.over(
                build_obstacle_index(obstacles, max_entries=8, min_entries=3)
            )
            from repro.runtime.queries import metric_nearest

            expected = metric_nearest(tree, fresh, q, 3)
            assert [d for __, d in result] == pytest.approx(
                [d for __, d in expected]
            )
            assert [p for p, __ in result] == [p for p, __ in expected]

    def test_batch_range_equals_per_query(self):
        obstacles, points = _scene(42)
        tree = small_tree(points[4:])
        queries = points[:4]
        metric = ObstructedMetric.over(
            build_obstacle_index(obstacles, max_entries=8, min_entries=3)
        )
        batched = batch_range(tree, metric, queries, 30.0)
        from repro.runtime.queries import metric_range

        for q, result in zip(queries, batched):
            fresh = ObstructedMetric.over(
                build_obstacle_index(obstacles, max_entries=8, min_entries=3)
            )
            expected = metric_range(tree, fresh, q, 30.0)
            assert result == [
                (p, pytest.approx(d)) for p, d in expected
            ]

    def test_batch_distance_pairs(self):
        obstacles, points = _scene(43)
        index = build_obstacle_index(obstacles, max_entries=8, min_entries=3)
        metric = ObstructedMetric.over(index)
        pairs = [(points[i], points[i + 1]) for i in range(4)]
        got = batch_distance(metric, pairs)
        for (a, b), d in zip(pairs, got):
            assert d == pytest.approx(metric.context.distance(a, b))


class TestBatchAmortization:
    def test_repeated_queries_memoized(self):
        obstacles, points = _scene(44)
        index = build_obstacle_index(obstacles, max_entries=8, min_entries=3)
        metric = ObstructedMetric(QueryContext(index))
        tree = small_tree(points[2:])
        q = points[0]
        results = batch_nearest(tree, metric, [q] * 10, 2)
        assert all(r == results[0] for r in results)
        assert metric.context.stats.batch_memo_hits == 9

    def test_database_batch_api(self):
        obstacles, points = _scene(45)
        db = ObstacleDatabase(
            [o.polygon for o in obstacles], max_entries=8, min_entries=3
        )
        db.add_entity_set("pois", points[4:])
        queries = points[:4] + points[:4]  # duplicates amortize
        batched = db.batch_nearest("pois", queries, 2)
        assert len(batched) == 8
        for q, result in zip(queries, batched):
            assert result == db.nearest("pois", q, 2)
        batched_ranges = db.batch_range("pois", queries, 20.0)
        for q, result in zip(queries, batched_ranges):
            assert result == db.range("pois", q, 20.0)

    def test_tuple_queries_coerced(self):
        db = ObstacleDatabase([Rect(4, 0, 6, 4)], max_entries=8, min_entries=3)
        db.add_entity_set("pois", [Point(10, 2), Point(0, 2)])
        [r1], [r2] = db.batch_nearest("pois", [(0.0, 2.0), (10.0, 2.0)], 1)
        assert r1 == (Point(0, 2), 0.0)
        assert r2 == (Point(10, 2), 0.0)
