"""Cross-engine parity: the compiled CSR distance-field engine must be
bit-identical to the reference python (dict-adjacency) engine.

``REPRO_FIELD_ENGINE`` selects the engine per field construction, so
the same query script is replayed on a fresh database under each
engine and the answers are compared with ``==`` — not ``approx`` —
across every visibility backend, under insert/delete repair churn, and
through persistent-pool batch replies.
"""

import random

import pytest

from repro import ObstacleDatabase, Point, Rect
from repro.errors import QueryError
from repro.runtime.field import (
    FIELD_ENGINE_ENV,
    make_distance_field,
    resolve_field_engine,
)
from repro.visibility.kernel.backend import numpy_available
from tests.conftest import random_disjoint_rects, random_free_points

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="CSR engine requires numpy"
)

BACKENDS = ["python-sweep", "naive"] + (
    ["numpy-kernel"] if numpy_available() else []
)
ENGINES = ["python", "csr"]


def _db(seed, *, backend="python-sweep", shards=None, n_obstacles=12,
        n_points=26):
    rng = random.Random(seed)
    obstacles = random_disjoint_rects(rng, n_obstacles)
    points = random_free_points(rng, n_points, obstacles)
    db = ObstacleDatabase(
        [o.polygon for o in obstacles],
        max_entries=8,
        min_entries=3,
        shards=shards,
        backend=backend,
    )
    db.add_entity_set("pois", points[8:])
    return db, points[:8]


class TestEngineResolution:
    def test_auto_prefers_csr_with_numpy(self, monkeypatch):
        monkeypatch.delenv(FIELD_ENGINE_ENV, raising=False)
        assert resolve_field_engine() == "csr"
        assert resolve_field_engine("auto") == "csr"

    def test_env_selects_python(self, monkeypatch):
        monkeypatch.setenv(FIELD_ENGINE_ENV, "python")
        assert resolve_field_engine() == "python"

    def test_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(FIELD_ENGINE_ENV, "python")
        assert resolve_field_engine("csr") == "csr"

    def test_unknown_engine_rejected(self):
        with pytest.raises(QueryError):
            resolve_field_engine("simd")

    def test_csr_without_numpy_rejected(self, monkeypatch):
        import repro.runtime.field as field_mod

        monkeypatch.setattr(field_mod, "np", None)
        with pytest.raises(QueryError):
            resolve_field_engine("csr")
        assert resolve_field_engine("auto") == "python"

    def test_factory_dispatches(self):
        from repro.core.distance import SourceDistanceField
        from repro.core.source import build_obstacle_index
        from repro.runtime.field import CSRSourceDistanceField
        from repro.visibility import VisibilityGraph

        index = build_obstacle_index([], max_entries=8, min_entries=3)
        q = Point(0.0, 0.0)
        graph = VisibilityGraph.build([q], [])
        compiled = make_distance_field(graph, q, index, engine="csr")
        reference = make_distance_field(graph, q, index, engine="python")
        assert isinstance(compiled, CSRSourceDistanceField)
        assert type(reference) is SourceDistanceField


def _query_script(db, queries):
    """A fixed mixed workload; returns every answer, exactly."""
    out = []
    for q in queries[:4]:
        out.append(("range", db.range("pois", q, 30.0)))
        out.append(("nearest", db.nearest("pois", q, 3)))
    out.append(("dist", db.obstructed_distance(queries[0], queries[1])))
    out.append(("semijoin", sorted(db.semijoin("pois", "pois").items())))
    return out


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("seed", range(3))
class TestCrossEngineParity:
    def test_warm_stream_bit_identical(self, backend, seed, monkeypatch):
        answers = {}
        for engine in ENGINES:
            monkeypatch.setenv(FIELD_ENGINE_ENV, engine)
            db, queries = _db(400 + seed, backend=backend)
            # Replay the stream twice: the second pass exercises the
            # warm caches (pinned freezes, per-source field arrays).
            first = _query_script(db, queries)
            second = _query_script(db, queries)
            assert first == second
            answers[engine] = (first, db.runtime_stats())
        (py, py_stats), (csr, csr_stats) = answers["python"], answers["csr"]
        assert py == csr  # bitwise: no approx
        # The engines drive identical graph builds and page traffic;
        # only the new freeze/batch counters may differ.
        for key in ("graph_builds", "graph_rebuilds", "field_builds"):
            assert py_stats[key] == csr_stats[key], key
        assert csr_stats["field_freezes"] > 0
        assert py_stats["field_freezes"] == 0


@pytest.mark.parametrize("backend", BACKENDS)
class TestParityUnderRepair:
    def test_mutation_churn_bit_identical(self, backend, monkeypatch):
        answers = {}
        for engine in ENGINES:
            monkeypatch.setenv(FIELD_ENGINE_ENV, engine)
            rng = random.Random(4242)
            db, queries = _db(515, backend=backend)
            script = [_query_script(db, queries)]
            rec = db.insert_obstacle(Rect(18.0, 18.0, 24.0, 23.0))
            script.append(_query_script(db, queries))
            assert db.delete_obstacle(rec)
            db.insert_obstacle(
                Rect(*(lambda x, y: (x, y, x + 4, y + 3))(
                    rng.uniform(30, 60), rng.uniform(30, 60)
                ))
            )
            script.append(_query_script(db, queries))
            answers[engine] = script
        assert answers["python"] == answers["csr"]


class TestParityThroughPool:
    def test_pool_replies_bit_identical(self, monkeypatch):
        results = {}
        for engine in ENGINES:
            monkeypatch.setenv(FIELD_ENGINE_ENV, engine)
            db, queries = _db(616)
            try:
                nn = db.batch_nearest(
                    "pois", queries, 2, workers=2, pool="persistent"
                )
                rr = db.batch_range(
                    "pois", queries, 25.0, workers=2, pool="persistent"
                )
                seq_nn = db.batch_nearest("pois", queries, 2, workers=0)
                assert nn == seq_nn
                results[engine] = (nn, rr)
            finally:
                db.close()
        assert results["python"] == results["csr"]


class TestEngineCounters:
    def test_batch_eval_counter_moves(self, monkeypatch):
        monkeypatch.setenv(FIELD_ENGINE_ENV, "csr")
        db, queries = _db(717)
        db.range("pois", queries[0], 30.0)
        stats = db.runtime_stats()
        assert stats["field_batch_evals"] >= 1
        assert stats["field_freezes"] >= 1

    def test_python_engine_never_freezes(self, monkeypatch):
        monkeypatch.setenv(FIELD_ENGINE_ENV, "python")
        db, queries = _db(718)
        db.range("pois", queries[0], 30.0)
        db.nearest("pois", queries[1], 2)
        stats = db.runtime_stats()
        assert stats["field_freezes"] == 0
        # Batched evaluation is engine-independent (range refinement
        # hands the field a candidate batch either way).
        assert stats["field_batch_evals"] >= 1
