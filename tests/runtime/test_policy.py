"""Adaptive cache policy: resolution, actuator, estimator, wiring.

The policy's contract has three layers, each tested here:

* ``resolve_cache_policy`` — names / env / instances to policies,
  unknown names fail fast;
* ``VisibilityGraphCache.configure`` — the actuator: re-keying
  preserves entries (collisions evict like capacity overflow), shard
  registrations follow survivors, capacity shrinks evict the LRU tail;
* ``AdaptiveCachePolicy`` — the estimator: localized streams engage a
  positive snap quantum, uniform streams keep exact keys, capacity
  follows the working set, hot cells widen the guest bound — and the
  whole loop through ``ObstacleDatabase`` keeps answers bit-identical
  while building fewer graphs on a localized stream.
"""

import random

import pytest

from repro import ObstacleDatabase, Point
from repro.errors import DatasetError
from repro.runtime.cache import CachedGraph, VisibilityGraphCache
from repro.runtime.policy import (
    POLICY_ENV,
    AdaptiveCachePolicy,
    CachePolicy,
    resolve_cache_policy,
)
from repro.runtime.stats import RuntimeStats
from repro.visibility import VisibilityGraph
from tests.conftest import random_disjoint_rects, random_free_points


class TestResolve:
    def test_default_is_static(self, monkeypatch):
        monkeypatch.delenv(POLICY_ENV, raising=False)
        policy = resolve_cache_policy()
        assert type(policy) is CachePolicy
        assert policy.name == "static"

    def test_env_selects_adaptive(self, monkeypatch):
        monkeypatch.setenv(POLICY_ENV, "adaptive")
        assert isinstance(resolve_cache_policy(), AdaptiveCachePolicy)

    def test_empty_env_is_static(self, monkeypatch):
        monkeypatch.setenv(POLICY_ENV, "")
        assert resolve_cache_policy().name == "static"

    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv(POLICY_ENV, "adaptive")
        assert resolve_cache_policy("static").name == "static"

    def test_instance_passes_through(self):
        policy = AdaptiveCachePolicy(window=8)
        assert resolve_cache_policy(policy) is policy

    def test_unknown_name_fails_fast(self):
        with pytest.raises(DatasetError, match="adaptive.*static|static.*adaptive"):
            resolve_cache_policy("learned")

    def test_validation(self):
        with pytest.raises(DatasetError):
            AdaptiveCachePolicy(window=1)
        with pytest.raises(DatasetError):
            AdaptiveCachePolicy(adjust_every=0)


class TestConfigure:
    def _entry(self, x, y):
        center = Point(x, y)
        return CachedGraph(
            VisibilityGraph.build([center], []), center, 0.0, 0
        )

    def test_rekey_preserves_entries(self):
        cache = VisibilityGraphCache(8, snap=0.0)
        a, b = self._entry(0.0, 0.0), self._entry(50.0, 50.0)
        cache.put(a)
        cache.put(b)
        assert cache.configure(snap=4.0)
        assert len(cache) == 2
        # Near-duplicates of each centre now hit the re-keyed entries.
        assert cache.get(Point(0.6, 0.6), 0) is a
        assert cache.get(Point(49.2, 49.6), 0) is b

    def test_rekey_collision_keeps_most_recent_and_books_eviction(self):
        stats = RuntimeStats()
        cache = VisibilityGraphCache(8, snap=0.0, stats=stats)
        older, newer = self._entry(0.0, 0.0), self._entry(0.5, 0.5)
        cache.put(older)
        cache.put(newer)
        assert cache.configure(snap=4.0)
        assert len(cache) == 1
        assert cache.get(Point(0.0, 0.0), 0) is newer
        assert stats.graph_cache_evictions == 1

    def test_rekey_moves_shard_registrations(self):
        cache = VisibilityGraphCache(8, snap=0.0)
        a = self._entry(10.0, 10.0)
        cache.put(a, shards=[3, 4])
        cache.configure(snap=2.0)
        assert set(map(id, cache.entries_for_shards([3]))) == {id(a)}
        # The registration lives under the new key: a further re-key
        # back to exact keeps it intact.
        cache.configure(snap=0.0)
        assert set(map(id, cache.entries_for_shards([4]))) == {id(a)}

    def test_capacity_shrink_evicts_lru_tail(self):
        stats = RuntimeStats()
        cache = VisibilityGraphCache(4, snap=0.0, stats=stats)
        entries = [self._entry(float(i), 0.0) for i in range(4)]
        for e in entries:
            cache.put(e)
        assert cache.configure(capacity=2)
        assert len(cache) == 2
        assert entries[0].center not in cache
        assert entries[1].center not in cache
        assert cache.get(entries[3].center, 0) is entries[3]
        assert stats.graph_cache_evictions == 2

    def test_noop_returns_false(self):
        cache = VisibilityGraphCache(4, snap=2.0)
        assert not cache.configure()
        assert not cache.configure(snap=2.0, capacity=4)

    def test_validation(self):
        cache = VisibilityGraphCache(4)
        with pytest.raises(ValueError):
            cache.configure(capacity=0)
        with pytest.raises(ValueError):
            cache.configure(snap=-1.0)


def _attached(policy, capacity=8, snap=0.0):
    stats = RuntimeStats()
    cache = VisibilityGraphCache(capacity, snap=snap, stats=stats)
    policy.attach(cache, stats)
    return cache, stats


def _seed_bounds(policy):
    """Give the estimator universe-scale history: the snap cap is
    judged against the long-run spread, so a stream that never left
    one tiny box would read as uniform at its own scale."""
    for corner in (Point(0.0, 0.0), Point(1000.0, 1000.0)):
        policy.observe(corner)


class TestEstimator:
    def test_localized_stream_engages_snapping(self):
        policy = AdaptiveCachePolicy(window=16, adjust_every=4)
        cache, stats = _attached(policy)
        _seed_bounds(policy)
        rng = random.Random(3)
        for __ in range(32):
            policy.observe(
                Point(500.0 + rng.uniform(-2, 2), 500.0 + rng.uniform(-2, 2))
            )
        assert cache.snap > 0.0
        assert stats.policy_adjustments >= 1
        assert stats.policy_snap >= 1

    def test_uniform_stream_keeps_exact_keys(self):
        policy = AdaptiveCachePolicy(window=16, adjust_every=4)
        cache, stats = _attached(policy)
        rng = random.Random(5)
        for __ in range(48):
            policy.observe(
                Point(rng.uniform(0, 1000), rng.uniform(0, 1000))
            )
        assert cache.snap == 0.0

    def test_regime_change_disengages_snapping(self):
        policy = AdaptiveCachePolicy(window=16, adjust_every=4)
        cache, stats = _attached(policy)
        _seed_bounds(policy)
        rng = random.Random(7)
        for __ in range(24):
            policy.observe(
                Point(500.0 + rng.uniform(-2, 2), 500.0 + rng.uniform(-2, 2))
            )
        assert cache.snap > 0.0
        for __ in range(48):
            policy.observe(
                Point(rng.uniform(0, 1000), rng.uniform(0, 1000))
            )
        assert cache.snap == 0.0

    def test_capacity_follows_working_set(self):
        policy = AdaptiveCachePolicy(window=32, adjust_every=8, max_capacity=64)
        cache, stats = _attached(policy, capacity=4)
        rng = random.Random(11)
        for __ in range(48):
            policy.observe(
                Point(rng.uniform(0, 1000), rng.uniform(0, 1000))
            )
        # 32 distinct exact centres in the window: capacity learns up.
        assert cache.capacity > 4
        assert cache.capacity <= 64
        assert stats.policy_capacity >= 1

    def test_hot_cell_widens_guest_bound(self):
        policy = AdaptiveCachePolicy(hot_guest_factor=4, hot_share=0.25)
        cache, __ = _attached(policy, snap=10.0)
        center = Point(55.0, 55.0)
        entry = CachedGraph(
            VisibilityGraph.build([center], []), center, 0.0, 0
        )
        for __unused in range(64):
            policy.observe(center)
        assert policy.guest_limit(entry, 64) == 256
        cold = CachedGraph(
            VisibilityGraph.build([Point(900.0, 900.0)], []),
            Point(900.0, 900.0), 0.0, 0,
        )
        assert policy.guest_limit(cold, 64) == 64

    def test_spawn_is_fresh_and_parameter_identical(self):
        policy = AdaptiveCachePolicy(
            window=24, adjust_every=6, snap_factor=9.0,
            locality_fraction=0.7, max_capacity=128,
            hot_guest_factor=3, hot_share=0.4,
        )
        cache, __ = _attached(policy)
        policy.observe(Point(1.0, 2.0))
        child = policy.spawn()
        assert child is not policy
        assert type(child) is AdaptiveCachePolicy
        for attr in (
            "window", "adjust_every", "snap_factor", "locality_fraction",
            "max_capacity", "hot_guest_factor", "hot_share",
        ):
            assert getattr(child, attr) == getattr(policy, attr)
        assert child._centers == []  # no estimator state shipped
        assert not hasattr(child, "cache")  # unattached

    def test_static_spawn(self):
        assert type(CachePolicy().spawn()) is CachePolicy


def _jitter_stream(rng, anchors, jitter, n):
    stream = []
    for i in range(n):
        a = anchors[i % len(anchors)]
        stream.append(
            Point(a.x + rng.uniform(-jitter, jitter),
                  a.y + rng.uniform(-jitter, jitter))
        )
    return stream


class TestDatabaseWiring:
    def _scene(self, seed):
        rng = random.Random(seed)
        obstacles = random_disjoint_rects(rng, 20)
        polygons = [o.polygon for o in obstacles]
        points = random_free_points(rng, 12, obstacles)
        return rng, polygons, points

    def test_adaptive_answers_bit_identical_and_builds_fewer(self):
        rng, polygons, points = self._scene(21)
        static = ObstacleDatabase(
            polygons, max_entries=8, min_entries=3, graph_cache_snap=0.0,
            cache_policy="static",
        )
        adaptive = ObstacleDatabase(
            polygons, max_entries=8, min_entries=3, graph_cache_snap=0.0,
            cache_policy="adaptive",
        )
        assert static.cache_policy == "static"
        assert adaptive.cache_policy == "adaptive"
        stream = _jitter_stream(rng, points[:3], 1.5, 60)
        p = points[5]
        for q in stream:
            assert adaptive.obstructed_distance(p, q) == (
                static.obstructed_distance(p, q)
            )
        ss = static.runtime_stats()
        sa = adaptive.runtime_stats()
        assert sa["graph_builds"] < ss["graph_builds"]
        assert sa["policy_adjustments"] >= 1
        assert sa["policy_snap"] >= 1
        assert ss["policy_adjustments"] == 0

    def test_env_policy_selected_at_construction(self, monkeypatch):
        monkeypatch.setenv(POLICY_ENV, "adaptive")
        __, polygons, __p = self._scene(33)
        db = ObstacleDatabase(polygons, max_entries=8, min_entries=3)
        assert db.cache_policy == "adaptive"
        assert isinstance(db.context.policy, AdaptiveCachePolicy)

    def test_context_spawn_gives_private_policy_of_same_kind(self):
        __, polygons, __p = self._scene(34)
        db = ObstacleDatabase(
            polygons, max_entries=8, min_entries=3, cache_policy="adaptive"
        )
        ctx = db.context
        worker_ctx = ctx.spawn()
        assert type(worker_ctx.policy) is type(ctx.policy)
        assert worker_ctx.policy is not ctx.policy
        assert worker_ctx.policy.cache is worker_ctx.cache

    def test_load_accepts_policy_and_snapshot_format_unchanged(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.delenv(POLICY_ENV, raising=False)
        __, polygons, points = self._scene(35)
        db = ObstacleDatabase(
            polygons, max_entries=8, min_entries=3, cache_policy="adaptive"
        )
        db.add_entity_set("pois", points)
        path = tmp_path / "scene.snap"
        db.save(path)
        plain = ObstacleDatabase.load(path)
        assert plain.cache_policy == "static"  # runtime config, not state
        warm = ObstacleDatabase.load(path, cache_policy="adaptive")
        assert warm.cache_policy == "adaptive"
        q = points[0]
        assert warm.nearest("pois", q, 3) == plain.nearest("pois", q, 3)