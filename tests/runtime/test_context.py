"""QueryContext: shared graphs, coverage tracking, version invalidation."""

import random

import pytest

from repro.core.source import build_obstacle_index
from repro.geometry import Point
from repro.runtime.context import QueryContext
from tests.conftest import (
    oracle_distance,
    random_disjoint_rects,
    random_free_points,
    rect_obstacle,
)


def _index(obstacles):
    return build_obstacle_index(obstacles, max_entries=8, min_entries=3)


class TestDistance:
    def test_matches_oracle(self):
        rng = random.Random(101)
        obstacles = random_disjoint_rects(rng, 12)
        pts = random_free_points(rng, 8, obstacles)
        ctx = QueryContext(_index(obstacles))
        for a, b in zip(pts[:4], pts[4:]):
            assert ctx.distance(a, b) == pytest.approx(
                oracle_distance(a, b, obstacles)
            )

    def test_identical_points(self):
        ctx = QueryContext(_index([rect_obstacle(0, 0, 0, 1, 1)]))
        assert ctx.distance(Point(5, 5), Point(5, 5)) == 0.0

    def test_bound_pruning_never_underestimates(self):
        wall = rect_obstacle(0, 4, -10, 6, 10)
        ctx = QueryContext(_index([wall]))
        a, b = Point(0, 0), Point(10, 0)
        exact = ctx.distance(a, b)
        pruned = QueryContext(_index([wall])).distance(a, b, bound=5.0)
        assert exact > 10.0
        assert pruned > 5.0  # pruning may stop early but never below bound

    def test_transient_entity_removed(self):
        ctx = QueryContext(_index([rect_obstacle(0, 4, 0, 6, 4)]))
        a, b = Point(0, 2), Point(10, 2)
        ctx.distance(a, b)
        entry = ctx.cache.get(b, ctx.version)
        assert entry is not None
        assert not entry.graph.has_node(a)
        assert entry.graph.has_node(b)


class TestGraphReuse:
    def test_repeated_center_builds_one_graph(self):
        rng = random.Random(7)
        obstacles = random_disjoint_rects(rng, 10)
        pts = random_free_points(rng, 6, obstacles)
        ctx = QueryContext(_index(obstacles))
        center = pts[0]
        for p in pts[1:]:
            ctx.distance(p, center)
        for p in pts[1:]:
            ctx.distance(p, center)
        assert ctx.stats.graph_builds == 1
        assert ctx.stats.distance_calls == 10

    def test_covered_radius_skips_retrieval(self):
        obstacles = [rect_obstacle(0, 4, 0, 6, 4)]
        ctx = QueryContext(_index(obstacles))
        q = Point(10, 2)
        far = Point(-10, 2)
        near = Point(5, 10)
        ctx.distance(far, q)
        expansions = ctx.stats.coverage_expansions
        # The second pair lies well inside the already-covered disk:
        # its whole Fig. 8 iteration needs no obstacle retrieval.
        ctx.distance(near, q)
        assert ctx.stats.coverage_expansions == expansions

    def test_coverage_grows_monotonically(self):
        ctx = QueryContext(_index([rect_obstacle(0, 4, 0, 6, 4)]))
        q = Point(0, 0)
        entry = ctx.entry_for(q, 5.0)
        assert entry.covered == 5.0
        ctx.entry_for(q, 3.0)
        assert entry.covered == 5.0
        ctx.entry_for(q, 8.0)
        assert entry.covered == 8.0

    def test_consistent_results_across_reuse(self):
        rng = random.Random(33)
        obstacles = random_disjoint_rects(rng, 14)
        pts = random_free_points(rng, 8, obstacles)
        ctx = QueryContext(_index(obstacles), cache_size=2)
        center = pts[0]
        first = [ctx.distance(p, center) for p in pts[1:]]
        second = [ctx.distance(p, center) for p in pts[1:]]
        assert first == second


class TestVersionInvalidation:
    def test_insert_repairs_cached_graph(self):
        index = _index([rect_obstacle(0, 100, 100, 101, 101)])
        ctx = QueryContext(index)
        a, b = Point(0, 0), Point(10, 0)
        assert ctx.distance(a, b) == pytest.approx(10.0)
        wall = rect_obstacle(1, 4, -10, 6, 10)
        index.insert(wall)
        d = ctx.distance(a, b)
        assert d == pytest.approx(oracle_distance(a, b, [wall]))
        assert d > 10.0
        # The mutation feed repaired the cached graph in place — no
        # invalidation, no rebuild, one build total.
        assert ctx.stats.graph_cache_repairs >= 1
        assert ctx.stats.graph_cache_invalidations == 0
        assert ctx.stats.graph_builds == 1

    def test_delete_restores_distance(self):
        wall = rect_obstacle(0, 4, -10, 6, 10)
        index = _index([wall])
        ctx = QueryContext(index)
        a, b = Point(0, 0), Point(10, 0)
        blocked = ctx.distance(a, b)
        assert blocked > 10.0
        stored = index.obstacles_in_range(Point(5, 0), 2.0)[0]
        assert index.delete(stored)
        assert ctx.distance(a, b) == pytest.approx(10.0)

    def test_field_for_matches_oracle(self):
        rng = random.Random(55)
        obstacles = random_disjoint_rects(rng, 12)
        pts = random_free_points(rng, 7, obstacles)
        ctx = QueryContext(_index(obstacles))
        q = pts[0]
        field = ctx.field_for(q, radius=5.0)
        for p in pts[1:]:
            assert field.distance_to(p) == pytest.approx(
                oracle_distance(q, p, obstacles)
            )

    def test_shared_graph_field_sees_other_users_obstacles(self):
        # A field and a distance evaluation share the cached graph for
        # q; obstacles discovered by the distance call must invalidate
        # the field's Dijkstra snapshot (obstacle_revision check).
        wall = rect_obstacle(0, 4, -10, 6, 10)
        index = _index([wall])
        ctx = QueryContext(index)
        q = Point(10, 0)
        field = ctx.field_for(q)  # zero-coverage graph: no obstacles yet
        # Prime the shared graph through a different path.
        ctx.distance(Point(0, 0), q)
        assert field.graph.has_obstacle(0)
        expected = oracle_distance(Point(0, 1), q, [wall])
        assert field.distance_to(Point(0, 1)) == pytest.approx(expected)
