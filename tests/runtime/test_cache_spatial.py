"""Spatial cache keys: near-duplicate centres share coverage-guarded graphs.

Satellite acceptance for the coverage-aware cache key: on a batch
workload of near-duplicate query centres, the snapped-key cache must
answer *identically* to the exact-key cache (the coverage guard makes
reuse lossless) while hitting far more often and building far fewer
graphs.
"""

import random

import pytest

from repro import ObstacleDatabase, Point
from repro.geometry import Rect
from repro.runtime.cache import CachedGraph, VisibilityGraphCache
from repro.visibility import VisibilityGraph
from tests.conftest import random_disjoint_rects, random_free_points


def _dbs(seed, snap, shards=None):
    rng = random.Random(seed)
    obstacles = random_disjoint_rects(rng, 20)
    polygons = [o.polygon for o in obstacles]
    exact = ObstacleDatabase(
        polygons, max_entries=8, min_entries=3, graph_cache_snap=0.0,
        shards=shards,
    )
    snapped = ObstacleDatabase(
        polygons, max_entries=8, min_entries=3, graph_cache_snap=snap,
        shards=shards,
    )
    points = random_free_points(rng, 12, obstacles)
    return rng, exact, snapped, points


def _near_duplicate_queries(rng, anchors, jitter, per_anchor):
    """A batch of query centres clustered tightly around a few anchors
    (the moving-query / hot-key shape)."""
    queries = []
    for anchor in anchors:
        for __ in range(per_anchor):
            queries.append(
                Point(
                    anchor.x + rng.uniform(-jitter, jitter),
                    anchor.y + rng.uniform(-jitter, jitter),
                )
            )
    return queries


class TestSnappedKeyParity:
    @pytest.mark.parametrize("shards", [None, 16])
    def test_batch_answers_identical_and_hit_rate_improves(self, shards):
        rng, exact, snapped, points = _dbs(42, snap=4.0, shards=shards)
        for db in (exact, snapped):
            db.add_entity_set("pois", points)
        queries = _near_duplicate_queries(rng, points[:4], 0.5, 6)
        res_exact = exact.batch_nearest("pois", queries, 3)
        res_snapped = snapped.batch_nearest("pois", queries, 3)
        assert res_snapped == res_exact
        se, ss = exact.runtime_stats(), snapped.runtime_stats()
        assert ss["graph_builds"] < se["graph_builds"]

        def hit_rate(s):
            total = s["graph_cache_hits"] + s["graph_cache_misses"]
            return s["graph_cache_hits"] / total if total else 0.0

        assert hit_rate(ss) > hit_rate(se)

    def test_distance_answers_bit_identical(self):
        rng, exact, snapped, points = _dbs(77, snap=3.0)
        queries = _near_duplicate_queries(rng, points[:3], 0.4, 5)
        for q in queries:
            for p in points[6:9]:
                assert snapped.obstructed_distance(p, q) == (
                    exact.obstructed_distance(p, q)
                )

    def test_range_and_nearest_parity(self):
        rng, exact, snapped, points = _dbs(101, snap=3.0)
        for db in (exact, snapped):
            db.add_entity_set("pois", points[4:])
        for q in _near_duplicate_queries(rng, points[:2], 0.3, 4):
            assert snapped.nearest("pois", q, 3) == exact.nearest("pois", q, 3)
            assert snapped.range("pois", q, 20.0) == exact.range(
                "pois", q, 20.0
            )

    def test_mutations_stay_correct_with_snapping(self):
        rng, exact, snapped, points = _dbs(55, snap=3.0)
        a, q = points[0], points[1]
        assert snapped.obstructed_distance(a, q) == (
            exact.obstructed_distance(a, q)
        )
        wall = Rect(
            min(a.x, q.x) + abs(q.x - a.x) / 2 - 1, -5,
            min(a.x, q.x) + abs(q.x - a.x) / 2 + 1, 105,
        )
        recs = (exact.insert_obstacle(wall), snapped.insert_obstacle(wall))
        assert snapped.obstructed_distance(a, q) == (
            exact.obstructed_distance(a, q)
        )
        assert exact.delete_obstacle(recs[0])
        assert snapped.delete_obstacle(recs[1])
        assert snapped.obstructed_distance(a, q) == (
            exact.obstructed_distance(a, q)
        )


class TestGuestBound:
    def test_jittering_centre_does_not_grow_graph_unboundedly(self):
        """A stationary-but-noisy centre stream (GPS jitter inside one
        snap cell) keeps the shared graph bounded: old guest centres
        are evicted beyond GUEST_LIMIT."""
        from repro.core.source import build_obstacle_index
        from repro.runtime.context import GUEST_LIMIT, QueryContext
        from tests.conftest import rect_obstacle

        index = build_obstacle_index(
            [rect_obstacle(0, 40, 40, 44, 44)], max_entries=8, min_entries=3
        )
        ctx = QueryContext(index, snap=10.0, policy="static")
        rng = random.Random(8)
        p = Point(0.0, 0.0)
        for __ in range(3 * GUEST_LIMIT):
            q = Point(20 + rng.uniform(-1, 1), 20 + rng.uniform(-1, 1))
            d = ctx.distance(p, q)
            assert d == pytest.approx(p.distance(q))  # unobstructed
        entry = ctx.cache.get(Point(20, 20), ctx.version)
        assert entry is not None
        assert len(entry.guests) <= GUEST_LIMIT
        # centre + bounded guests (transient p is removed per call).
        assert entry.graph.node_count <= GUEST_LIMIT + 1 + 4
        assert ctx.stats.graph_builds == 1

    def test_field_survives_guest_eviction(self):
        """A held distance field whose source was evicted from the
        shared graph re-admits it instead of failing."""
        from repro.core.source import build_obstacle_index
        from repro.runtime.context import GUEST_LIMIT, QueryContext
        from tests.conftest import rect_obstacle

        wall = rect_obstacle(0, 4, -10, 6, 10)
        index = build_obstacle_index([wall], max_entries=8, min_entries=3)
        ctx = QueryContext(index, snap=50.0, policy="static")
        entry = ctx.entry_for(Point(9.0, 0.5), 25.0)  # owns the cell
        q = Point(10.0, 0.1)  # off-centre: admitted as a guest
        field = ctx.field_for(q, radius=25.0)
        first = field.distance_to(Point(0, 0))
        # Flood the same snap cell with enough distinct centres to
        # evict q from the shared graph's guest list.
        for i in range(GUEST_LIMIT + 5):
            ctx.entry_for(Point(10.0 + 0.01 * (i + 1), 0.1), 1.0)
        assert not entry.graph.has_node(q)
        assert field.distance_to(Point(0, 0)) == first
        # The re-admission went through the guest bookkeeping: the
        # source is evictable again, not a permanent untracked node.
        assert q in entry.guests
        assert len(entry.guests) <= GUEST_LIMIT

    def test_live_field_answers_guest_admitted_after_snapshot(self):
        """Regression: a guest centre admitted to the shared graph
        after a live field's Dijkstra snapshot (free points bump no
        revision) must still get a finite, exact answer — the stale
        field must not short-circuit via ``has_node`` into ``inf``
        and a full-universe ``grow(inf)`` retrieval."""
        import math

        from repro.core.source import build_obstacle_index
        from repro.runtime.context import QueryContext
        from tests.conftest import rect_obstacle

        box = rect_obstacle(0, 2, 2, 3, 3)  # inside the first coverage disk
        index = build_obstacle_index([box], max_entries=8, min_entries=3)
        ctx = QueryContext(index, snap=4.0)
        q1, q2 = Point(0.0, 0.0), Point(1.0, 0.0)  # same snap cell
        field = ctx.field_for(q1)
        assert field.distance_to(Point(5.0, 0.0)) == pytest.approx(5.0)
        entry = ctx.entry_for(q2)  # admitted as a guest of q1's graph
        assert entry.graph.has_node(q2)
        d = field.distance_to(q2)
        assert math.isfinite(d)
        assert d == pytest.approx(1.0)
        assert math.isfinite(entry.covered)  # no grow(inf) blow-up


class TestPolicyCapacityChange:
    def test_capacity_shrink_preserves_lru_order_and_held_fields(self):
        """A jittering-centre stream crossing a policy-driven capacity
        change: shrinking the LRU (what ``AdaptiveCachePolicy`` applies
        through ``cache.configure``) must evict in LRU order, and a
        held distance field whose source was evicted from its shared
        graph must re-admit it before evaluating — even after the
        field's entry itself fell out of the cache."""
        from repro.core.source import build_obstacle_index
        from repro.runtime.context import GUEST_LIMIT, QueryContext
        from tests.conftest import rect_obstacle

        index = build_obstacle_index(
            [rect_obstacle(0, 700, 700, 744, 744)], max_entries=8, min_entries=3
        )
        ctx = QueryContext(index, snap=10.0, policy="static")
        rng = random.Random(13)
        # Anchors sit mid-cell (jitter +-1 never crosses a boundary).
        anchors = [Point(22.0 + 100.0 * i, 22.0) for i in range(6)]

        def jitter(a):
            return Point(a.x + rng.uniform(-1, 1), a.y + rng.uniform(-1, 1))

        # Oldest cell: an entry plus a guest source held by a live field.
        entry0 = ctx.entry_for(jitter(anchors[0]), 5.0)
        q = Point(anchors[0].x + 2.0, anchors[0].y)
        field = ctx.field_for(q, radius=30.0)
        target = Point(anchors[0].x - 20.0, anchors[0].y)
        first = field.distance_to(target)
        assert first == pytest.approx(q.distance(target))  # unobstructed
        # Jitter inside the cell until q is evicted from the guest list...
        for __ in range(GUEST_LIMIT + 8):
            ctx.entry_for(jitter(anchors[0]), 1.0)
        assert not entry0.graph.has_node(q)
        # ...then across the remaining cells, ageing cell 0 to LRU tail.
        for a in anchors[1:]:
            for __ in range(4):
                ctx.entry_for(jitter(a), 1.0)
        assert len(ctx.cache) == 6
        evictions = ctx.stats.graph_cache_evictions
        # The policy actuator fires mid-stream: capacity 64 -> 3.
        assert ctx.cache.configure(capacity=3)
        assert ctx.cache.capacity == 3
        assert ctx.stats.graph_cache_evictions == evictions + 3
        # Eviction order preserved: oldest three cells gone, newest kept.
        assert [a in ctx.cache for a in anchors] == [False] * 3 + [True] * 3
        # The stream keeps jittering across the change; answers intact.
        p = Point(0.0, 0.0)
        q2 = jitter(anchors[0])
        assert ctx.distance(p, q2) == pytest.approx(p.distance(q2))
        # Held field: the evicted source is re-admitted before the
        # evaluation, through the guest bookkeeping.
        assert field.distance_to(target) == first
        assert q in entry0.guests
        assert len(entry0.guests) <= GUEST_LIMIT


class TestSpatialCacheUnit:
    def _entry(self, x, y, covered=0.0, version=0):
        center = Point(x, y)
        return CachedGraph(
            VisibilityGraph.build([center], []), center, covered, version
        )

    def test_snap_validation(self):
        with pytest.raises(ValueError):
            VisibilityGraphCache(4, snap=-1.0)

    def test_zero_snap_keeps_exact_keys(self):
        cache = VisibilityGraphCache(4, snap=0.0)
        a, b = self._entry(0, 0), self._entry(0.4, 0.4)
        cache.put(a)
        cache.put(b)
        assert len(cache) == 2
        assert cache.get(a.center, 0) is a
        assert cache.get(b.center, 0) is b

    def test_near_duplicates_share_one_cell(self):
        cache = VisibilityGraphCache(4, snap=2.0)
        a = self._entry(10.0, 10.0)
        cache.put(a)
        # The near-duplicate centre maps to the same cell: spatial hit.
        assert cache.get(Point(10.6, 9.5), 0) is a
        assert len(cache) == 1
        # A far centre maps elsewhere: miss.
        assert cache.get(Point(20.0, 20.0), 0) is None

    def test_put_in_occupied_cell_replaces(self):
        cache = VisibilityGraphCache(4, snap=2.0)
        a, b = self._entry(10.0, 10.0), self._entry(10.3, 10.3)
        cache.put(a)
        cache.put(b)
        assert len(cache) == 1
        assert cache.get(a.center, 0) is b

    def test_shard_registration_and_affected_lookup(self):
        cache = VisibilityGraphCache(8)
        a, b, c = self._entry(0, 0), self._entry(1, 1), self._entry(2, 2)
        cache.put(a, shards=[1, 2])
        cache.put(b, shards=[2, 3])
        cache.put(c)  # unsharded entry: never in a shard's fan-in
        assert set(map(id, cache.entries_for_shards([1]))) == {id(a)}
        assert set(map(id, cache.entries_for_shards([2]))) == {id(a), id(b)}
        assert cache.entries_for_shards([9]) == []
        cache.refresh_shards(a, [5])
        assert cache.entries_for_shards([1]) == []
        assert set(map(id, cache.entries_for_shards([5]))) == {id(a)}

    def test_eviction_unregisters_shards(self):
        cache = VisibilityGraphCache(1)
        a, b = self._entry(0, 0), self._entry(1, 1)
        cache.put(a, shards=[1])
        cache.put(b, shards=[1])
        assert set(map(id, cache.entries_for_shards([1]))) == {id(b)}

    def test_discard_is_identity_checked(self):
        cache = VisibilityGraphCache(4)
        a = self._entry(0, 0)
        impostor = self._entry(0, 0)
        cache.put(a)
        assert not cache.discard(impostor)
        assert cache.get(a.center, 0) is a
        assert cache.discard(a)
        assert a.center not in cache
