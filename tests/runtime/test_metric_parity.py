"""Parity: the shared skeletons parameterized by each metric reproduce
the dedicated implementations on seeded synthetic scenes.

This is the acceptance check for the runtime refactor: the
``euclidean`` query functions and the ``core`` obstructed ones are
parameterizations of the *same* skeletons, so

* ``EuclideanMetric`` plugged into a skeleton must equal the classical
  algorithm (and brute force);
* ``ObstructedMetric`` must equal the brute-force oracle over a global
  visibility graph;
* with no (nearby) obstacles the two metrics must agree with each
  other.
"""

import math
import random

import pytest

from repro.core.source import build_obstacle_index
from repro.euclidean.closest import k_closest_pairs
from repro.euclidean.nearest import IncrementalNearestNeighbors, k_nearest
from repro.euclidean.range import entities_in_range
from repro.geometry import Point
from repro.runtime.metric import EuclideanMetric, ObstructedMetric
from repro.runtime.queries import (
    iter_metric_nearest,
    metric_closest_pairs,
    metric_distance_join,
    metric_nearest,
    metric_range,
    metric_semijoin,
)
from tests.conftest import (
    oracle_distance,
    random_disjoint_rects,
    random_free_points,
    small_tree,
)


def _index(obstacles):
    return build_obstacle_index(obstacles, max_entries=8, min_entries=3)


def _scene(seed, n_obstacles=10, n_points=14):
    rng = random.Random(seed)
    obstacles = random_disjoint_rects(rng, n_obstacles)
    points = random_free_points(rng, n_points, obstacles)
    return obstacles, points


class TestEuclideanParameterization:
    """EuclideanMetric + skeleton == classical algorithm == brute force."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_nearest(self, seed):
        __, points = _scene(seed)
        tree = small_tree(points[2:])
        q = points[0]
        metric = EuclideanMetric()
        got = metric_nearest(tree, metric, q, 5)
        via_module = k_nearest(tree, q, 5)
        brute = sorted((q.distance(p), p) for p in points[2:])[:5]
        assert [(p, pytest.approx(d)) for p, d in got] == via_module
        assert [d for __, d in got] == pytest.approx([d for d, __ in brute])

    @pytest.mark.parametrize("seed", [4, 5])
    def test_incremental_nearest_order(self, seed):
        __, points = _scene(seed)
        tree = small_tree(points[1:])
        q = points[0]
        stream = iter_metric_nearest(tree, EuclideanMetric(), q)
        dists = [d for __, d in stream]
        incremental = [d for __, d in IncrementalNearestNeighbors(tree, q)]
        assert dists == pytest.approx(incremental)
        assert dists == sorted(dists)

    @pytest.mark.parametrize("seed", [6, 7])
    def test_range(self, seed):
        __, points = _scene(seed)
        tree = small_tree(points[1:])
        q = points[0]
        e = 30.0
        got = metric_range(tree, EuclideanMetric(), q, e)
        expected = sorted(entities_in_range(tree, q, e), key=q.distance)
        assert [p for p, __ in got] == expected
        assert all(d == pytest.approx(q.distance(p)) for p, d in got)

    @pytest.mark.parametrize("seed", [8, 9])
    def test_closest_pairs(self, seed):
        __, points = _scene(seed, n_points=16)
        tree_s = small_tree(points[:8])
        tree_t = small_tree(points[8:])
        got = metric_closest_pairs(tree_s, tree_t, EuclideanMetric(), 4)
        via_module = k_closest_pairs(tree_s, tree_t, 4)
        assert [d for *__, d in got] == pytest.approx(
            [d for *__, d in via_module]
        )
        brute = sorted(
            s.distance(t) for s in points[:8] for t in points[8:]
        )[:4]
        assert [d for *__, d in got] == pytest.approx(brute)

    def test_semijoin(self):
        __, points = _scene(11, n_points=12)
        tree_s = small_tree(points[:6])
        tree_t = small_tree(points[6:])
        got = metric_semijoin(tree_s, tree_t, EuclideanMetric())
        for s in points[:6]:
            t, d = got[s]
            expected = min(s.distance(t2) for t2 in points[6:])
            assert d == pytest.approx(expected)

    def test_distance_join(self):
        __, points = _scene(12, n_points=14)
        tree_s = small_tree(points[:7])
        tree_t = small_tree(points[7:])
        e = 40.0
        got = metric_distance_join(tree_s, tree_t, EuclideanMetric(), e)
        brute = {
            (s, t)
            for s in points[:7]
            for t in points[7:]
            if s.distance(t) <= e
        }
        assert {(s, t) for s, t, __ in got} == brute


class TestMetricAgreement:
    """With no obstacles in reach, obstructed == Euclidean everywhere."""

    def test_nearest_and_range_agree(self):
        __, points = _scene(21, n_obstacles=0)
        tree = small_tree(points[1:])
        q = points[0]
        obstructed = ObstructedMetric.over(_index([]))
        euclid = EuclideanMetric()
        nn_o = metric_nearest(tree, obstructed, q, 4)
        nn_e = metric_nearest(tree, euclid, q, 4)
        assert [d for __, d in nn_o] == pytest.approx([d for __, d in nn_e])
        r_o = metric_range(tree, obstructed, q, 25.0)
        r_e = metric_range(tree, euclid, q, 25.0)
        assert [(p, pytest.approx(d)) for p, d in r_e] == r_o


class TestObstructedParameterization:
    """ObstructedMetric + skeleton == brute-force oracle."""

    @pytest.mark.parametrize("seed", [31, 32])
    def test_nearest_matches_oracle(self, seed):
        obstacles, points = _scene(seed)
        tree = small_tree(points[1:])
        q = points[0]
        metric = ObstructedMetric.over(_index(obstacles))
        got = metric_nearest(tree, metric, q, 4)
        brute = sorted(
            (oracle_distance(q, p, obstacles), p) for p in points[1:]
        )[:4]
        assert [d for __, d in got] == pytest.approx([d for d, __ in brute])

    @pytest.mark.parametrize("seed", [33, 34])
    def test_range_matches_oracle(self, seed):
        obstacles, points = _scene(seed)
        tree = small_tree(points[1:])
        q = points[0]
        e = 35.0
        metric = ObstructedMetric.over(_index(obstacles))
        got = dict(metric_range(tree, metric, q, e))
        for p in points[1:]:
            d = oracle_distance(q, p, obstacles)
            if d <= e - 1e-9:
                assert got[p] == pytest.approx(d)
            elif d > e + 1e-9:
                assert p not in got

    def test_closest_pairs_match_oracle(self):
        obstacles, points = _scene(35, n_points=12)
        tree_s = small_tree(points[:6])
        tree_t = small_tree(points[6:])
        metric = ObstructedMetric.over(_index(obstacles))
        got = metric_closest_pairs(tree_s, tree_t, metric, 3)
        brute = sorted(
            oracle_distance(s, t, obstacles)
            for s in points[:6]
            for t in points[6:]
            if not math.isinf(oracle_distance(s, t, obstacles))
        )[:3]
        assert [d for *__, d in got] == pytest.approx(brute)
