"""Per-shard cache invalidation and sharded/monolithic query parity."""

import random

import pytest

from repro import ObstacleDatabase, Point, Rect
from repro.core.source import build_obstacle_index, build_sharded_obstacle_index
from repro.runtime.context import QueryContext
from tests.conftest import (
    oracle_distance,
    random_disjoint_rects,
    random_free_points,
    rect_obstacle,
)

UNIVERSE = Rect(0, 0, 100, 100)


def _sharded_context(obstacles, shards=16):
    index = build_sharded_obstacle_index(
        obstacles, shards=shards, universe=UNIVERSE,
        max_entries=8, min_entries=3,
    )
    return index, QueryContext(index)


class TestPerShardInvalidation:
    def test_far_mutation_repairs_only_touched_shard(self):
        near = [rect_obstacle(0, 10, 10, 13, 13)]
        far = [rect_obstacle(1, 90, 90, 93, 93)]
        index, ctx = _sharded_context(near + far)
        a = ctx.distance(Point(5, 5), Point(16, 16))
        b = ctx.distance(Point(85, 85), Point(96, 96))
        assert a > 0 and b > 0
        near_entry = ctx.cache.get(Point(16, 16), ctx.version)
        near_version = near_entry.version
        hits = ctx.stats.graph_cache_hits
        builds = ctx.stats.graph_builds

        new_obs = rect_obstacle(2, 94, 94, 96, 96)
        index.insert(new_obs)  # far shard only

        # The near graph was never visited: same stamp object, still a
        # hit — the mutation fan-in is O(affected), not O(cache size).
        assert ctx.cache.get(Point(16, 16), ctx.version) is near_entry
        assert near_entry.version is near_version
        assert not near_entry.graph.has_obstacle(2)
        # The far graph was repaired in place (one add_obstacle), not
        # invalidated: lookup hits and the new obstacle is in the graph.
        far_entry = ctx.cache.get(Point(96, 96), ctx.version)
        assert far_entry is not None
        assert far_entry.graph.has_obstacle(2)
        assert ctx.stats.graph_cache_repairs == 1
        assert ctx.stats.graph_cache_invalidations == 0
        assert ctx.stats.graph_cache_hits == hits + 2
        assert ctx.stats.graph_builds == builds

    def test_mutated_shard_queries_see_new_obstacle(self):
        far = [rect_obstacle(0, 90, 90, 93, 93)]
        index, ctx = _sharded_context(far)
        a, b = Point(85, 91.5), Point(95, 91.5)
        ctx.distance(a, b)
        wall = rect_obstacle(1, 88, 80, 89, 103)
        index.insert(wall)
        d = ctx.distance(a, b)
        assert d == pytest.approx(oracle_distance(a, b, far + [wall]))
        assert d > a.distance(b)

    def test_monolithic_mutation_refreshes_every_entry(self):
        near = [rect_obstacle(0, 10, 10, 13, 13)]
        far = [rect_obstacle(1, 90, 90, 93, 93)]
        index = build_obstacle_index(near + far, max_entries=8, min_entries=3)
        ctx = QueryContext(index)
        ctx.distance(Point(5, 5), Point(16, 16))
        index.insert(rect_obstacle(2, 94, 94, 96, 96))
        # Monolithic versioning stays global, so the repair scan visits
        # every entry — here the far obstacle misses the near graph's
        # coverage disk, so the visit is a pure stamp refresh: the
        # entry survives at its old content with the new version.
        entry = ctx.cache.get(Point(16, 16), ctx.version)
        assert entry is not None
        assert not entry.graph.has_obstacle(2)
        assert entry.version == ctx.version
        assert ctx.stats.graph_cache_repairs == 0

    def test_held_entry_refreshes_against_mutated_shard(self):
        far = [rect_obstacle(0, 90, 90, 93, 93)]
        index, ctx = _sharded_context(far)
        q = Point(95, 91.5)
        field = ctx.field_for(q, radius=20.0)
        wall = rect_obstacle(1, 88, 80, 89, 103)
        index.insert(wall)
        p = Point(85, 91.5)
        assert field.distance_to(p) == pytest.approx(
            oracle_distance(q, p, far + [wall])
        )

    def test_coverage_growth_tracks_new_shards(self):
        near = [rect_obstacle(0, 10, 10, 13, 13)]
        far = [rect_obstacle(1, 60, 60, 63, 63)]
        index, ctx = _sharded_context(near + far)
        q = Point(5, 5)
        entry = ctx.entry_for(q, 5.0)
        assert not entry.graph.has_obstacle(1)
        # Grow the disk until it reaches the far cluster's shard.
        ctx.ensure_coverage(entry, 90.0)
        assert entry.graph.has_obstacle(1)
        # A mutation in that shard now reaches the grown graph: the
        # repair scan patches the new obstacle into it in place.
        index.insert(rect_obstacle(2, 61, 61, 62, 62))
        assert ctx.cache.get(q, ctx.version) is entry
        assert entry.graph.has_obstacle(2)
        assert ctx.stats.graph_cache_repairs == 1


class TestShardedQueryParity:
    def test_database_queries_match_monolithic(self):
        rng = random.Random(991)
        obstacles = random_disjoint_rects(rng, 30)
        points = random_free_points(rng, 20, obstacles)
        polygons = [o.polygon for o in obstacles]
        sharded = ObstacleDatabase(
            polygons, max_entries=8, min_entries=3, shards=16
        )
        mono = ObstacleDatabase(polygons, max_entries=8, min_entries=3)
        for db in (sharded, mono):
            db.add_entity_set("pois", points[8:])
        for q in points[:8]:
            assert sharded.nearest("pois", q, 3) == mono.nearest("pois", q, 3)
            assert sharded.range("pois", q, 25.0) == mono.range("pois", q, 25.0)

    def test_database_distance_and_batch_match(self):
        rng = random.Random(992)
        obstacles = random_disjoint_rects(rng, 25)
        points = random_free_points(rng, 16, obstacles)
        polygons = [o.polygon for o in obstacles]
        sharded = ObstacleDatabase(
            polygons, max_entries=8, min_entries=3, shards=16
        )
        mono = ObstacleDatabase(polygons, max_entries=8, min_entries=3)
        for db in (sharded, mono):
            db.add_entity_set("pois", points[6:])
        assert sharded.obstructed_distance(points[0], points[1]) == (
            pytest.approx(mono.obstructed_distance(points[0], points[1]))
        )
        queries = points[:6]
        assert sharded.batch_nearest("pois", queries, 2) == (
            mono.batch_nearest("pois", queries, 2)
        )
        assert sharded.batch_range("pois", queries, 20.0) == (
            mono.batch_range("pois", queries, 20.0)
        )

    def test_dynamic_updates_match_monolithic(self):
        rng = random.Random(993)
        obstacles = random_disjoint_rects(rng, 15)
        points = random_free_points(rng, 6, obstacles)
        polygons = [o.polygon for o in obstacles]
        sharded = ObstacleDatabase(
            polygons, max_entries=8, min_entries=3, shards=16
        )
        mono = ObstacleDatabase(polygons, max_entries=8, min_entries=3)
        a, b = points[0], points[1]
        assert sharded.obstructed_distance(a, b) == pytest.approx(
            mono.obstructed_distance(a, b)
        )
        wall = Rect(
            min(a.x, b.x) + abs(b.x - a.x) / 2 - 1, -5,
            min(a.x, b.x) + abs(b.x - a.x) / 2 + 1, 105,
        )
        s_rec = sharded.insert_obstacle(wall)
        m_rec = mono.insert_obstacle(wall)
        assert sharded.obstructed_distance(a, b) == pytest.approx(
            mono.obstructed_distance(a, b)
        )
        assert sharded.delete_obstacle(s_rec)
        assert mono.delete_obstacle(m_rec)
        assert sharded.obstructed_distance(a, b) == pytest.approx(
            mono.obstructed_distance(a, b)
        )

    def test_stats_key_stable_even_with_one_shard(self):
        # The aggregate key must not depend on how many shards ended up
        # occupied — a one-shard sharded layout still reports under the
        # same name as monolithic storage.
        db = ObstacleDatabase(
            [Rect(1, 1, 2, 2)], max_entries=8, min_entries=3, shards=1
        )
        db.add_entity_set("pois", [Point(5, 5)])
        db.nearest("pois", (0.0, 0.0), 1)
        assert "obstacles:obstacles" in db.stats()

    def test_sharded_db_has_no_single_obstacle_tree(self):
        from repro.errors import DatasetError

        db = ObstacleDatabase(
            [Rect(1, 1, 2, 2)], max_entries=8, min_entries=3, shards=4
        )
        with pytest.raises(DatasetError):
            db.obstacle_tree
        assert len(db.obstacle_index.trees()) >= 1
