"""Unit tests for the shared expansion step of OR (Fig. 5 internals)."""

import pytest

from repro.core.range import expand_within_range
from repro.geometry import Point
from repro.visibility import VisibilityGraph
from tests.conftest import rect_obstacle


class TestExpandWithinRange:
    def test_empty_candidates(self):
        g = VisibilityGraph.build([Point(0, 0)], [])
        assert expand_within_range(g, Point(0, 0), 10.0, []) == []

    def test_direct_neighbors_reported_with_distance(self):
        q = Point(0, 0)
        a, b = Point(3, 0), Point(0, 4)
        g = VisibilityGraph.build([q, a, b], [])
        got = dict(expand_within_range(g, q, 10.0, [a, b]))
        assert got[a] == pytest.approx(3.0)
        assert got[b] == pytest.approx(4.0)

    def test_bound_excludes_far_entities(self):
        q = Point(0, 0)
        a, b = Point(3, 0), Point(9, 0)
        g = VisibilityGraph.build([q, a, b], [])
        got = dict(expand_within_range(g, q, 5.0, [a, b]))
        assert a in got and b not in got

    def test_path_through_intermediate_entity(self):
        # b is only reachable within the bound via the detour that the
        # wall forces; the expansion must route around the wall corner.
        wall = rect_obstacle(0, 2, -4, 4, 4)
        q, b = Point(0, 0), Point(6, 0)
        g = VisibilityGraph.build([q, b], [wall])
        got = dict(expand_within_range(g, q, 20.0, [b]))
        direct = q.distance(b)
        assert got[b] > direct

    def test_query_point_as_candidate(self):
        q = Point(1, 1)
        g = VisibilityGraph.build([q], [])
        got = dict(expand_within_range(g, q, 5.0, [q]))
        assert got[q] == 0.0

    def test_early_termination_when_all_found(self):
        # all candidates adjacent to q; far nodes must not be expanded
        # (observable through the result only — a behavioural check
        # that the function stops once `pending` empties)
        q = Point(0, 0)
        near = [Point(1, 0), Point(0, 1)]
        far = [Point(100, 0)]
        g = VisibilityGraph.build([q] + near + far, [])
        got = expand_within_range(g, q, 1000.0, near)
        assert {p for p, __ in got} == set(near)

    def test_duplicate_candidates_reported_once(self):
        q = Point(0, 0)
        a = Point(2, 0)
        g = VisibilityGraph.build([q, a], [])
        got = expand_within_range(g, q, 5.0, [a, a])
        assert len(got) == 1

    def test_results_ascending(self):
        q = Point(0, 0)
        pts = [Point(5, 0), Point(1, 0), Point(3, 0), Point(0, 2)]
        g = VisibilityGraph.build([q] + pts, [])
        got = expand_within_range(g, q, 10.0, pts)
        dists = [d for __, d in got]
        assert dists == sorted(dists)
