"""Sharded obstacle storage: parity with the monolithic index,
fan-out locality, per-shard versioning and dynamic mutations."""

import math
import random

import pytest

from repro.core.source import (
    ShardedObstacleIndex,
    build_obstacle_index,
    build_sharded_obstacle_index,
)
from repro.errors import DatasetError
from repro.geometry import Point, Rect
from repro.runtime.sharding import ShardGrid
from tests.conftest import random_disjoint_rects, rect_obstacle


def _pair(obstacles, shards=16, **kwargs):
    kwargs.setdefault("max_entries", 8)
    kwargs.setdefault("min_entries", 3)
    mono = build_obstacle_index(obstacles, **kwargs)
    sharded = build_sharded_obstacle_index(obstacles, shards=shards, **kwargs)
    return mono, sharded


class TestShardGrid:
    def test_for_shards_rounds_up_to_power_of_two_grid(self):
        grid = ShardGrid.for_shards(Rect(0, 0, 100, 100), 10)
        assert grid.side == 4
        assert grid.cell_count == 16

    def test_cells_clamped_to_universe(self):
        grid = ShardGrid(Rect(0, 0, 100, 100), order=2)
        assert grid.cell_of(Point(-50, -50)) == (0, 0)
        assert grid.cell_of(Point(500, 500)) == (3, 3)

    def test_disk_cells_subset_of_bbox_cells(self):
        grid = ShardGrid(Rect(0, 0, 100, 100), order=3)
        # A disk centred in a cell, radius under the cell size, must
        # not touch the diagonal neighbours beyond its reach.
        cells = set(grid.cells_for_disk(Point(31.25, 31.25), 6.0))
        assert (2, 2) in cells
        assert all(abs(cx - 2) <= 1 and abs(cy - 2) <= 1 for cx, cy in cells)

    def test_infinite_disk_covers_grid(self):
        grid = ShardGrid(Rect(0, 0, 100, 100), order=1)
        assert len(list(grid.cells_for_disk(Point(0, 0), math.inf))) == 4

    def test_hilbert_keys_unique(self):
        grid = ShardGrid(Rect(0, 0, 1, 1), order=2)
        keys = {
            grid.key(cx, cy)
            for cx in range(grid.side)
            for cy in range(grid.side)
        }
        assert keys == set(range(16))


class TestRetrievalParity:
    def test_random_disks_match_monolithic(self):
        rng = random.Random(73)
        obstacles = random_disjoint_rects(rng, 40)
        mono, sharded = _pair(obstacles)
        for __ in range(60):
            c = Point(rng.uniform(-10, 110), rng.uniform(-10, 110))
            r = rng.uniform(0.0, 70.0)
            expected = {o.oid for o in mono.obstacles_in_range(c, r)}
            got = {o.oid for o in sharded.obstacles_in_range(c, r)}
            assert got == expected

    def test_infinite_range_returns_all_once(self):
        rng = random.Random(74)
        obstacles = random_disjoint_rects(rng, 20)
        __, sharded = _pair(obstacles)
        got = sharded.obstacles_in_range(Point(0, 0), math.inf)
        assert {o.oid for o in got} == {o.oid for o in obstacles}
        assert len(got) == len(obstacles)  # deduped

    def test_spanning_obstacle_not_duplicated(self):
        # One obstacle crossing the centre of the grid lands in
        # several shards but is retrieved exactly once.
        big = rect_obstacle(0, 40, 40, 60, 60)
        sharded = build_sharded_obstacle_index(
            [big], shards=16, universe=Rect(0, 0, 100, 100),
            max_entries=8, min_entries=3,
        )
        assert sharded.shard_count >= 4
        got = sharded.obstacles_in_range(Point(50, 50), 5.0)
        assert [o.oid for o in got] == [0]
        assert len(sharded) == 1

    def test_fan_out_touches_only_intersecting_shards(self):
        # Obstacles in two opposite corners: a small disk around one
        # corner must not read any page of the other corner's shard.
        near = [rect_obstacle(0, 5, 5, 8, 8)]
        far = [rect_obstacle(1, 92, 92, 95, 95)]
        sharded = build_sharded_obstacle_index(
            near + far, shards=16, universe=Rect(0, 0, 100, 100),
            max_entries=8, min_entries=3,
        )
        for tree in sharded.trees():
            tree.reset_stats()
        got = sharded.obstacles_in_range(Point(6, 6), 10.0)
        assert [o.oid for o in got] == [0]
        touched = [
            tree.name
            for tree in sharded.trees()
            if tree.counter.snapshot()["reads"] > 0
        ]
        assert len(touched) == 1


class TestMutations:
    def test_insert_delete_roundtrip(self):
        rng = random.Random(75)
        obstacles = random_disjoint_rects(rng, 12)
        __, sharded = _pair(obstacles)
        extra = rect_obstacle(500, 70, 70, 74, 74)
        sharded.insert(extra)
        assert len(sharded) == len(obstacles) + 1
        assert sharded.find(500) is not None
        assert sharded.delete(extra)
        assert len(sharded) == len(obstacles)
        assert sharded.find(500) is None
        assert not sharded.delete(extra)

    def test_mutation_bumps_only_touched_shard_versions(self):
        near = [rect_obstacle(0, 5, 5, 8, 8)]
        far = [rect_obstacle(1, 92, 92, 95, 95)]
        sharded = build_sharded_obstacle_index(
            near + far, shards=16, universe=Rect(0, 0, 100, 100),
            max_entries=8, min_entries=3,
        )
        before = {k: sharded.shard_version(k) for k in sharded.shard_keys()}
        sharded.insert(rect_obstacle(2, 90, 90, 91, 91))
        after = {k: sharded.shard_version(k) for k in sharded.shard_keys()}
        moved = [k for k in before if after[k] != before[k]]
        assert len(moved) == 1
        assert sharded.version == sum(after.values())

    def test_new_shard_bumps_layout_version(self):
        sharded = build_sharded_obstacle_index(
            [rect_obstacle(0, 5, 5, 8, 8)], shards=16,
            universe=Rect(0, 0, 100, 100), max_entries=8, min_entries=3,
        )
        layout = sharded.layout_version
        sharded.insert(rect_obstacle(1, 60, 60, 62, 62))
        assert sharded.layout_version > layout
        # Inserting into the now-existing shard does not move layout.
        layout = sharded.layout_version
        sharded.insert(rect_obstacle(2, 63, 63, 65, 65))
        assert sharded.layout_version == layout

    def test_outlier_insert_clamps_to_rim_shard(self):
        sharded = build_sharded_obstacle_index(
            [rect_obstacle(0, 5, 5, 8, 8)], shards=16,
            universe=Rect(0, 0, 100, 100), max_entries=8, min_entries=3,
        )
        outlier = rect_obstacle(1, 500, 500, 504, 504)
        sharded.insert(outlier)
        got = sharded.obstacles_in_range(Point(502, 502), 5.0)
        assert [o.oid for o in got] == [1]
        assert sharded.delete(outlier)


class TestVersionStamps:
    def test_stamp_tracks_only_disk_shards(self):
        near = [rect_obstacle(0, 5, 5, 8, 8)]
        far = [rect_obstacle(1, 92, 92, 95, 95)]
        sharded = build_sharded_obstacle_index(
            near + far, shards=16, universe=Rect(0, 0, 100, 100),
            max_entries=8, min_entries=3,
        )
        stamp = sharded.version_stamp(Point(6, 6), 10.0)
        assert not stamp.is_stale()
        # Mutating the far shard leaves the stamp fresh...
        sharded.insert(rect_obstacle(2, 90, 90, 91, 91))
        assert not stamp.is_stale()
        # ...but a mutation inside the stamped disk is detected.
        sharded.insert(rect_obstacle(3, 4, 4, 6, 6))
        assert stamp.is_stale()

    def test_new_shard_inside_disk_detected(self):
        sharded = build_sharded_obstacle_index(
            [rect_obstacle(0, 92, 92, 95, 95)], shards=16,
            universe=Rect(0, 0, 100, 100), max_entries=8, min_entries=3,
        )
        # Stamp over an empty region: no occupied shards tracked.
        stamp = sharded.version_stamp(Point(10, 10), 15.0)
        assert stamp.versions == {}
        assert not stamp.is_stale()
        # Creating a shard *inside* the disk makes the stamp stale.
        sharded.insert(rect_obstacle(1, 5, 5, 7, 7))
        assert stamp.is_stale()

    def test_new_shard_outside_disk_ignored(self):
        sharded = build_sharded_obstacle_index(
            [rect_obstacle(0, 5, 5, 8, 8)], shards=16,
            universe=Rect(0, 0, 100, 100), max_entries=8, min_entries=3,
        )
        stamp = sharded.version_stamp(Point(6, 6), 8.0)
        sharded.insert(rect_obstacle(1, 92, 92, 95, 95))  # new far shard
        assert not stamp.is_stale()

    def test_extend_absorbs_new_shards(self):
        near = [rect_obstacle(0, 5, 5, 8, 8)]
        far = [rect_obstacle(1, 60, 60, 63, 63)]
        sharded = build_sharded_obstacle_index(
            near + far, shards=16, universe=Rect(0, 0, 100, 100),
            max_entries=8, min_entries=3,
        )
        stamp = sharded.version_stamp(Point(6, 6), 8.0)
        assert len(stamp.versions) == 1
        stamp.extend(90.0)
        assert len(stamp.versions) == sharded.shard_count
        sharded.insert(rect_obstacle(2, 61, 61, 62, 62))
        assert stamp.is_stale()


class TestMisc:
    def test_universe_is_data_mbr(self):
        obstacles = [rect_obstacle(0, 10, 10, 20, 20),
                     rect_obstacle(1, 70, 70, 90, 95)]
        sharded = build_sharded_obstacle_index(
            obstacles, shards=16, max_entries=8, min_entries=3
        )
        u = sharded.universe()
        assert (u.minx, u.miny, u.maxx, u.maxy) == (10, 10, 90, 95)

    def test_empty_index(self):
        sharded = build_sharded_obstacle_index(
            [], shards=16, max_entries=8, min_entries=3
        )
        assert len(sharded) == 0
        assert sharded.shard_count == 0
        assert sharded.universe() is None
        assert sharded.obstacles_in_range(Point(0, 0), 10.0) == []

    def test_unknown_shard_key_raises(self):
        sharded = build_sharded_obstacle_index(
            [], shards=16, max_entries=8, min_entries=3
        )
        with pytest.raises(DatasetError):
            sharded.shard(3)

    def test_bulk_false_matches_bulk_true(self):
        rng = random.Random(76)
        obstacles = random_disjoint_rects(rng, 15)
        a = build_sharded_obstacle_index(
            obstacles, shards=16, max_entries=8, min_entries=3
        )
        b = build_sharded_obstacle_index(
            obstacles, shards=16, bulk=False, max_entries=8, min_entries=3
        )
        assert len(a) == len(b)
        assert a.shard_keys() == b.shard_keys()
        c = Point(50, 50)
        assert (
            {o.oid for o in a.obstacles_in_range(c, 40.0)}
            == {o.oid for o in b.obstacles_in_range(c, 40.0)}
        )

    def test_repr_mentions_shards(self):
        sharded = build_sharded_obstacle_index(
            [rect_obstacle(0, 0, 0, 1, 1)], shards=4,
            max_entries=8, min_entries=3,
        )
        assert isinstance(sharded, ShardedObstacleIndex)
        assert "shards" in repr(sharded)
