"""Tests for SourceDistanceField and bounded distance computation."""

import math
import random

import pytest

from repro.core.distance import (
    SourceDistanceField,
    compute_obstructed_distance,
)
from repro.core.source import build_obstacle_index
from repro.geometry import Point
from repro.visibility import VisibilityGraph
from tests.conftest import (
    oracle_distance,
    random_disjoint_rects,
    random_free_points,
    rect_obstacle,
)


def _index(obstacles):
    return build_obstacle_index(obstacles, max_entries=8, min_entries=3)


class TestSourceDistanceField:
    def test_source_distance_zero(self):
        idx = _index([rect_obstacle(0, 5, 5, 6, 6)])
        g = VisibilityGraph.build([Point(0, 0)], [])
        field = SourceDistanceField(g, Point(0, 0), idx)
        assert field.distance_to(Point(0, 0)) == 0.0

    def test_source_added_if_missing(self):
        idx = _index([rect_obstacle(0, 5, 5, 6, 6)])
        g = VisibilityGraph.build([], [])
        field = SourceDistanceField(g, Point(1, 1), idx)
        assert g.has_node(Point(1, 1))
        assert field.distance_to(Point(4, 5)) == pytest.approx(5.0)

    def test_matches_per_pair_computation(self):
        rng = random.Random(7)
        obstacles = random_disjoint_rects(rng, 12)
        pts = random_free_points(rng, 8, obstacles)
        idx = _index(obstacles)
        q = pts[0]
        graph = VisibilityGraph.build([q], [])
        field = SourceDistanceField(graph, q, idx)
        for p in pts[1:]:
            assert field.distance_to(p) == pytest.approx(
                oracle_distance(q, p, obstacles)
            )

    def test_candidate_probe_does_not_mutate_graph(self):
        idx = _index([rect_obstacle(0, 4, -3, 6, 3)])
        q = Point(0, 0)
        graph = VisibilityGraph.build(
            [q], idx.obstacles_in_range(q, 20.0)
        )
        field = SourceDistanceField(graph, q, idx)
        nodes_before = set(graph.nodes())
        field.distance_to(Point(10, 0))
        assert set(graph.nodes()) == nodes_before

    def test_candidate_on_obstacle_boundary(self):
        # probe point exactly on an edge of a known obstacle: the
        # on-the-fly boundary membership must prevent a straight-through
        # "shortcut" across the interior
        box = rect_obstacle(0, 4, -3, 6, 3)
        idx = _index([box])
        q = Point(0, 0)
        graph = VisibilityGraph.build([q], [box])
        field = SourceDistanceField(graph, q, idx)
        p = Point(6, 0)  # on the right edge of the box
        d = field.distance_to(p)
        assert d == pytest.approx(oracle_distance(q, p, [box]))
        assert d > 6.0  # must route around a corner

    def test_bound_prunes_but_never_underestimates(self):
        rng = random.Random(13)
        obstacles = random_disjoint_rects(rng, 10)
        pts = random_free_points(rng, 6, obstacles)
        idx = _index(obstacles)
        q = pts[0]
        graph = VisibilityGraph.build([q], [])
        field = SourceDistanceField(graph, q, idx)
        for p in pts[1:]:
            exact = oracle_distance(q, p, obstacles)
            bounded = field.distance_to(p, bound=exact / 2.0)
            # the bounded value is a lower bound on the truth, and
            # exceeding the bound is the only allowed inexactness
            assert bounded <= exact + 1e-9
            if bounded <= exact / 2.0:
                assert bounded == pytest.approx(exact)

    def test_graph_growth_shared_across_probes(self):
        rng = random.Random(19)
        obstacles = random_disjoint_rects(rng, 10)
        pts = random_free_points(rng, 5, obstacles)
        idx = _index(obstacles)
        q = pts[0]
        graph = VisibilityGraph.build([q], [])
        field = SourceDistanceField(graph, q, idx)
        for p in pts[1:]:
            field.distance_to(p)
        # obstacles discovered for earlier probes persist
        assert graph.obstacle_ids()  # non-empty after probing around

    def test_node_added_after_snapshot_not_inf(self):
        """Regression: a free point admitted to the graph *after* the
        field's Dijkstra snapshot (free-point additions do not bump
        ``obstacle_revision``) must not read ``inf`` out of the stale
        field — the shared-graph runtime admits guest centres exactly
        this way."""
        wall = rect_obstacle(0, 4, -1, 6, 1)
        idx = _index([wall])
        q = Point(0, 0)
        graph = VisibilityGraph.build([q], [])
        field = SourceDistanceField(graph, q, idx)
        assert field.distance_to(Point(0, 5)) == pytest.approx(5.0)
        guest = Point(10, 0)
        assert graph.add_entity(guest)  # behind the field's snapshot
        d = field.distance_to(guest)
        assert math.isfinite(d)
        assert d == pytest.approx(oracle_distance(q, guest, [wall]))


class TestBoundedCompute:
    def test_bound_early_exit_value_exceeds_bound(self):
        wall = rect_obstacle(0, 4, -10, 6, 10)
        idx = _index([wall])
        q, p = Point(0, 0), Point(10, 0)
        g = VisibilityGraph.build([q, p], [wall])
        d = compute_obstructed_distance(g, p, q, idx, bound=5.0)
        assert d > 5.0

    def test_unbounded_still_exact(self):
        wall = rect_obstacle(0, 4, -10, 6, 10)
        idx = _index([wall])
        q, p = Point(0, 0), Point(10, 0)
        g = VisibilityGraph.build([q, p], [wall])
        d = compute_obstructed_distance(g, p, q, idx)
        assert d == pytest.approx(oracle_distance(q, p, [wall]))


class TestONNPruneFlag:
    def test_prune_flag_does_not_change_results(self):
        from repro.core import obstacle_nearest
        from repro.geometry import Rect
        from repro.index import RStarTree, str_pack

        rng = random.Random(23)
        obstacles = random_disjoint_rects(rng, 12)
        entities = random_free_points(rng, 25, obstacles)
        tree = RStarTree(max_entries=8, min_entries=3)
        str_pack(tree, [(p, Rect.from_point(p)) for p in entities])
        idx = _index(obstacles)
        q = random_free_points(random.Random(4), 1, obstacles)[0]
        pruned = obstacle_nearest(tree, idx, q, 5, prune_bound=True)
        exact = obstacle_nearest(tree, idx, q, 5, prune_bound=False)
        assert [p for p, __ in pruned] == [p for p, __ in exact]
        assert [d for __, d in pruned] == pytest.approx([d for __, d in exact])
