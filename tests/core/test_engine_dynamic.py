"""Dynamic-update behaviour of ObstacleDatabase: inserted and deleted
entities must be reflected in all query types immediately."""

import pytest

from repro import ObstacleDatabase, Point, Rect


@pytest.fixture
def db():
    database = ObstacleDatabase(
        [Rect(4, -10, 6, 10)], max_entries=8, min_entries=3
    )
    database.add_entity_set("pois", [Point(0, 0), Point(10, 0)])
    database.add_entity_set("homes", [Point(0, 5)])
    return database


class TestInsertVisibleToQueries:
    def test_nearest_sees_new_entity(self, db):
        q = Point(-1, 0)
        [(before, __)] = db.nearest("pois", q, 1)
        assert before == Point(0, 0)
        db.insert_entity("pois", Point(-1, 0.5))
        [(after, d)] = db.nearest("pois", q, 1)
        assert after == Point(-1, 0.5)
        assert d == pytest.approx(0.5)

    def test_range_sees_new_entity(self, db):
        q = Point(0, 20)
        assert dict(db.range("pois", q, 3.0)) == {}
        db.insert_entity("pois", Point(0, 18))
        got = dict(db.range("pois", q, 3.0))
        assert Point(0, 18) in got

    def test_join_sees_new_entity(self, db):
        before = db.distance_join("homes", "pois", 5.0)
        db.insert_entity("homes", Point(9, 1))
        after = db.distance_join("homes", "pois", 5.0)
        assert len(after) > len(before)

    def test_closest_pair_improves(self, db):
        [(s, t, d0)] = db.closest_pairs("homes", "pois", 1)
        db.insert_entity("homes", Point(10, 0.25))
        [(s1, t1, d1)] = db.closest_pairs("homes", "pois", 1)
        assert d1 < d0
        assert (s1, t1) == (Point(10, 0.25), Point(10, 0))


class TestDeleteInvisibleToQueries:
    def test_nearest_skips_deleted(self, db):
        q = Point(-1, 0)
        assert db.delete_entity("pois", Point(0, 0))
        [(winner, __)] = db.nearest("pois", q, 1)
        assert winner == Point(10, 0)

    def test_range_skips_deleted(self, db):
        q = Point(1, 0)
        assert Point(0, 0) in dict(db.range("pois", q, 2.0))
        db.delete_entity("pois", Point(0, 0))
        assert dict(db.range("pois", q, 2.0)) == {}

    def test_delete_then_reinsert(self, db):
        p = Point(0, 0)
        db.delete_entity("pois", p)
        db.insert_entity("pois", p)
        [(winner, d)] = db.nearest("pois", p, 1)
        assert winner == p and d == 0.0


class TestTreeConsistencyUnderChurn:
    def test_many_updates_keep_invariants(self, db):
        tree = db.entity_tree("pois")
        for i in range(100):
            db.insert_entity("pois", Point(float(i), float(i % 7)))
        for i in range(0, 100, 2):
            assert db.delete_entity("pois", Point(float(i), float(i % 7)))
        tree.check_invariants()
        res = db.nearest("pois", Point(51, 51 % 7), 3)
        assert res[0][0] == Point(51, 51 % 7)
