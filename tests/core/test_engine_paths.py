"""Tests for ObstacleDatabase.shortest_path."""

import math
import random

import pytest

from repro import ObstacleDatabase, Point, Rect
from tests.conftest import (
    oracle_distance,
    random_disjoint_rects,
    random_free_points,
)


class TestShortestPath:
    def test_trivial(self):
        db = ObstacleDatabase([Rect(50, 50, 60, 60)], max_entries=8, min_entries=3)
        d, path = db.shortest_path(Point(1, 1), Point(1, 1))
        assert d == 0.0 and path == [Point(1, 1)]

    def test_straight_line_when_clear(self):
        db = ObstacleDatabase([Rect(50, 50, 60, 60)], max_entries=8, min_entries=3)
        d, path = db.shortest_path(Point(0, 0), Point(3, 4))
        assert d == pytest.approx(5.0)
        assert path == [Point(0, 0), Point(3, 4)]

    def test_detour_route(self):
        db = ObstacleDatabase([Rect(4, -10, 6, 10)], max_entries=8, min_entries=3)
        d, path = db.shortest_path(Point(0, 0), Point(10, 0))
        assert len(path) == 4
        walked = sum(path[i].distance(path[i + 1]) for i in range(len(path) - 1))
        assert walked == pytest.approx(d)
        expected = 2 * math.hypot(4, 10) + 2.0
        assert d == pytest.approx(expected)

    def test_path_segments_avoid_interiors(self):
        rng = random.Random(8)
        obstacles = random_disjoint_rects(rng, 12)
        pts = random_free_points(rng, 4, obstacles)
        db = ObstacleDatabase(
            [o.polygon for o in obstacles], max_entries=8, min_entries=3
        )
        for a, b in zip(pts[:2], pts[2:]):
            d, path = db.shortest_path(a, b)
            assert d == pytest.approx(oracle_distance(a, b, obstacles))
            for u, v in zip(path, path[1:]):
                for o in obstacles:
                    assert not o.polygon.crosses_interior(u, v)

    def test_tuple_inputs(self):
        db = ObstacleDatabase([Rect(50, 50, 60, 60)], max_entries=8, min_entries=3)
        d, path = db.shortest_path((0.0, 0.0), (3.0, 4.0))
        assert d == pytest.approx(5.0)
