"""Tests for obstructed distance computation (paper Fig. 8)."""

import math
import random

import pytest

from repro.core import ObstructedDistanceComputer, compute_obstructed_distance
from repro.core.source import ObstacleIndex, build_obstacle_index
from repro.geometry import Point
from repro.visibility import VisibilityGraph
from tests.conftest import (
    oracle_distance,
    random_disjoint_rects,
    random_free_points,
    rect_obstacle,
)


def _index(obstacles):
    return build_obstacle_index(obstacles, max_entries=8, min_entries=3)


class TestComputeObstructedDistance:
    def test_no_obstacles_equals_euclidean(self):
        a, b = Point(0, 0), Point(3, 4)
        idx = _index([rect_obstacle(0, 100, 100, 110, 110)])  # far away
        g = VisibilityGraph.build([a, b], [])
        assert compute_obstructed_distance(g, a, b, idx) == pytest.approx(5.0)

    def test_detour_around_wall(self):
        wall = rect_obstacle(0, 4, -10, 6, 10)
        a, b = Point(0, 0), Point(10, 0)
        idx = _index([wall])
        g = VisibilityGraph.build([a, b], [wall])
        d = compute_obstructed_distance(g, a, b, idx)
        assert d == pytest.approx(oracle_distance(a, b, [wall]))
        assert d > 10.0

    def test_iterative_expansion_pulls_outside_obstacles(self):
        # The initial graph knows only the small central wall; the
        # longer detour forced by it is blocked by a second wall that
        # only the iterative range enlargement can discover.
        inner = rect_obstacle(0, 4, -2, 6, 2)
        outer = rect_obstacle(1, 2, 2.5, 8, 4.0)  # above, outside d_E range
        a, b = Point(0, 0), Point(10, 0)
        idx = _index([inner, outer])
        g = VisibilityGraph.build([a, b], [inner])  # only the inner one
        d = compute_obstructed_distance(g, a, b, idx)
        assert d == pytest.approx(oracle_distance(a, b, [inner, outer]))
        assert g.has_obstacle(1)  # the outer wall was discovered

    def test_identical_points(self):
        idx = _index([rect_obstacle(0, 0, 0, 1, 1)])
        g = VisibilityGraph.build([Point(5, 5)], [])
        assert compute_obstructed_distance(g, Point(5, 5), Point(5, 5), idx) == 0.0

    def test_randomized_against_oracle(self):
        rng = random.Random(77)
        obstacles = random_disjoint_rects(rng, 15)
        pts = random_free_points(rng, 8, obstacles)
        idx = _index(obstacles)
        for a, b in zip(pts[:4], pts[4:]):
            near = [
                o
                for o in obstacles
                if o.polygon.distance_to_point(b) <= a.distance(b)
            ]
            g = VisibilityGraph.build([a, b], near)
            d = compute_obstructed_distance(g, a, b, idx)
            assert d == pytest.approx(oracle_distance(a, b, obstacles))

    def test_distance_never_below_euclidean(self):
        rng = random.Random(5)
        obstacles = random_disjoint_rects(rng, 10)
        pts = random_free_points(rng, 6, obstacles)
        idx = _index(obstacles)
        for a, b in zip(pts[:3], pts[3:]):
            g = VisibilityGraph.build([a, b], [])
            d = compute_obstructed_distance(g, a, b, idx)
            assert d >= a.distance(b) - 1e-9


class TestObstructedDistanceComputer:
    def test_cache_size_validation(self):
        with pytest.raises(ValueError):
            ObstructedDistanceComputer(_index([]), cache_size=0)

    def test_same_point_zero(self):
        computer = ObstructedDistanceComputer(_index([rect_obstacle(0, 0, 0, 1, 1)]))
        assert computer.distance(Point(3, 3), Point(3, 3)) == 0.0

    def test_matches_oracle(self):
        rng = random.Random(13)
        obstacles = random_disjoint_rects(rng, 12)
        pts = random_free_points(rng, 6, obstacles)
        computer = ObstructedDistanceComputer(_index(obstacles))
        for a, b in zip(pts[:3], pts[3:]):
            assert computer.distance(a, b) == pytest.approx(
                oracle_distance(a, b, obstacles)
            )

    def test_cache_reuse_consistent(self):
        rng = random.Random(21)
        obstacles = random_disjoint_rects(rng, 10)
        pts = random_free_points(rng, 5, obstacles)
        computer = ObstructedDistanceComputer(_index(obstacles), cache_size=2)
        center = pts[0]
        first = [computer.distance(p, center) for p in pts[1:]]
        second = [computer.distance(p, center) for p in pts[1:]]
        assert first == second

    def test_cache_eviction(self):
        rng = random.Random(22)
        obstacles = random_disjoint_rects(rng, 6)
        pts = random_free_points(rng, 6, obstacles)
        computer = ObstructedDistanceComputer(_index(obstacles), cache_size=1)
        d1 = computer.distance(pts[0], pts[1])
        computer.distance(pts[2], pts[3])  # evicts the graph for pts[1]
        assert computer.distance(pts[0], pts[1]) == pytest.approx(d1)

    def test_clear(self):
        computer = ObstructedDistanceComputer(_index([rect_obstacle(0, 4, 0, 6, 4)]))
        d1 = computer.distance(Point(0, 1), Point(10, 1))
        computer.clear()
        assert computer.distance(Point(0, 1), Point(10, 1)) == pytest.approx(d1)

    def test_symmetry(self):
        rng = random.Random(30)
        obstacles = random_disjoint_rects(rng, 12)
        pts = random_free_points(rng, 4, obstacles)
        computer = ObstructedDistanceComputer(_index(obstacles))
        for a, b in zip(pts[:2], pts[2:]):
            assert computer.distance(a, b) == pytest.approx(computer.distance(b, a))
