"""Tests for the ObstacleDatabase facade."""

import math
import random

import pytest

from repro import ObstacleDatabase
from repro.errors import DatasetError, QueryError
from repro.geometry import Point, Polygon, Rect
from repro.model import Obstacle
from tests.conftest import (
    oracle_distance,
    random_disjoint_rects,
    random_free_points,
)


@pytest.fixture
def city():
    rng = random.Random(2004)
    obstacles = random_disjoint_rects(rng, 12)
    a = random_free_points(rng, 20, obstacles)
    b = random_free_points(rng, 15, obstacles)
    db = ObstacleDatabase(obstacles, max_entries=8, min_entries=3)
    db.add_entity_set("a", a)
    db.add_entity_set("b", b)
    return db, obstacles, a, b


class TestDatasets:
    def test_accepts_rects_polygons_obstacles(self):
        db = ObstacleDatabase(
            [
                Rect(0, 0, 1, 1),
                Polygon.from_rect(Rect(5, 5, 6, 6)),
                Obstacle(99, Polygon.from_rect(Rect(10, 10, 11, 11))),
            ]
        )
        assert len(db.obstacle_tree) == 3

    def test_rejects_garbage_obstacle(self):
        with pytest.raises(DatasetError):
            ObstacleDatabase(["wall"])

    def test_malformed_cache_snap_env_raises_dataset_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_SNAP", "banana")
        with pytest.raises(DatasetError, match="REPRO_CACHE_SNAP"):
            ObstacleDatabase([Rect(0, 0, 1, 1)])

    def test_obstacle_ids_reassigned_globally(self):
        db = ObstacleDatabase([Rect(0, 0, 1, 1)])
        db.add_obstacle_set("more", [Rect(5, 5, 6, 6)])
        oids = [o.oid for o, __ in db.obstacle_tree.items()]
        more = db._obstacle_indexes["more"].tree
        oids += [o.oid for o, __ in more.items()]
        assert len(set(oids)) == 2

    def test_duplicate_set_names_rejected(self):
        db = ObstacleDatabase([Rect(0, 0, 1, 1)])
        db.add_entity_set("x", [Point(1, 1)])
        with pytest.raises(DatasetError):
            db.add_entity_set("x", [Point(2, 2)])
        with pytest.raises(DatasetError):
            db.add_obstacle_set("obstacles", [Rect(2, 2, 3, 3)])

    def test_unknown_entity_set(self):
        db = ObstacleDatabase([Rect(0, 0, 1, 1)])
        with pytest.raises(DatasetError):
            db.range("ghosts", Point(0, 0), 1.0)

    def test_point_coercion(self):
        db = ObstacleDatabase([Rect(10, 10, 12, 12)])
        db.add_entity_set("p", [(1.0, 2.0), Point(3, 4)])
        assert len(db.entity_tree("p")) == 2
        with pytest.raises(QueryError):
            db.nearest("p", "not-a-point", 1)

    def test_insert_delete_entity(self):
        db = ObstacleDatabase([Rect(10, 10, 12, 12)], max_entries=8, min_entries=3)
        db.add_entity_set("p", [Point(0, 0)])
        db.insert_entity("p", Point(5, 5))
        assert len(db.entity_tree("p")) == 2
        assert db.delete_entity("p", Point(5, 5))
        assert not db.delete_entity("p", Point(99, 99))
        assert len(db.entity_tree("p")) == 1

    def test_universe_covers_everything(self):
        db = ObstacleDatabase([Rect(0, 0, 1, 1)])
        db.add_entity_set("p", [Point(100, 100)])
        u = db.universe()
        assert u.contains_point(Point(100, 100))
        assert u.contains_point(Point(0, 0))


class TestQueries:
    def test_range_consistent_with_oracle(self, city):
        db, obstacles, a, __ = city
        q = Point(50, 50)
        got = dict(db.range("a", q, 30.0))
        for p, d in got.items():
            assert d == pytest.approx(oracle_distance(q, p, obstacles))

    def test_nearest_and_inearest_agree(self, city):
        db, __, __, __ = city
        q = Point(20, 80)
        batch = db.nearest("a", q, 5)
        stream = db.inearest("a", q)
        inc = [next(stream) for __ in range(5)]
        assert [d for __, d in batch] == pytest.approx([d for __, d in inc])

    def test_join_subset_of_euclidean(self, city):
        db, __, __, __ = city
        for s, t, d in db.distance_join("a", "b", 25.0):
            assert s.distance(t) <= 25.0 + 1e-9
            assert d <= 25.0 + 1e-9

    def test_closest_pairs_and_stream_agree(self, city):
        db, __, __, __ = city
        batch = db.closest_pairs("a", "b", 4)
        stream = db.iclosest_pairs("a", "b")
        inc = [next(stream) for __ in range(4)]
        assert [d for *__, d in batch] == pytest.approx([d for *__, d in inc])

    def test_obstructed_distance_matches_oracle(self, city):
        db, obstacles, a, b = city
        d = db.obstructed_distance(a[0], b[0])
        assert d == pytest.approx(oracle_distance(a[0], b[0], obstacles))

    def test_tuple_queries(self, city):
        db, __, __, __ = city
        res = db.nearest("a", (50.0, 50.0), 1)
        assert len(res) == 1


class TestMultipleObstacleSets:
    def test_second_set_obstructs(self):
        # Without the second set the path is straight; with it, longer.
        db1 = ObstacleDatabase([Rect(100, 100, 101, 101)], max_entries=8, min_entries=3)
        base = db1.obstructed_distance(Point(0, 0), Point(10, 0))
        assert base == pytest.approx(10.0)
        db2 = ObstacleDatabase([Rect(100, 100, 101, 101)], max_entries=8, min_entries=3)
        db2.add_obstacle_set("construction", [Rect(4, -5, 6, 5)])
        detour = db2.obstructed_distance(Point(0, 0), Point(10, 0))
        assert detour > 10.0


class TestStats:
    def test_stats_reported_per_tree(self, city):
        db, __, __, __ = city
        db.reset_stats(clear_buffers=True)
        db.nearest("a", Point(50, 50), 3)
        stats = db.stats()
        assert "entities:a" in stats
        assert "obstacles:obstacles" in stats
        assert stats["entities:a"]["reads"] > 0

    def test_reset(self, city):
        db, __, __, __ = city
        db.nearest("a", Point(50, 50), 3)
        db.reset_stats()
        assert all(v["reads"] == 0 for v in db.stats().values())


class TestDynamicBuild:
    def test_bulk_false(self):
        rng = random.Random(5)
        obstacles = random_disjoint_rects(rng, 8)
        db = ObstacleDatabase(obstacles, bulk=False, max_entries=8, min_entries=3)
        db.add_entity_set("p", random_free_points(rng, 10, obstacles))
        db.obstacle_tree.check_invariants()
        db.entity_tree("p").check_invariants()
        assert len(db.entity_tree("p")) == 10
