"""Tests for the obstacle distance semi-join (paper Sec. 2.1)."""

import random

import pytest

from repro import ObstacleDatabase
from repro.core import obstacle_semijoin
from repro.core.source import build_obstacle_index
from repro.errors import QueryError
from repro.geometry import Point, Rect
from repro.index import RStarTree, str_pack
from tests.conftest import (
    oracle_distance,
    random_disjoint_rects,
    random_free_points,
    rect_obstacle,
)


def _tree(points):
    tree = RStarTree(max_entries=8, min_entries=3)
    str_pack(tree, [(p, Rect.from_point(p)) for p in points])
    return tree


def _setup(seed, n_obs=10, n_s=8, n_t=6):
    rng = random.Random(seed)
    obstacles = random_disjoint_rects(rng, n_obs)
    s = random_free_points(rng, n_s, obstacles)
    t = random_free_points(rng, n_t, obstacles)
    idx = build_obstacle_index(obstacles, max_entries=8, min_entries=3)
    return obstacles, s, t, _tree(s), _tree(t), idx


class TestObstacleSemijoin:
    def test_unknown_strategy(self):
        __, __, __, ts, tt, idx = _setup(1)
        with pytest.raises(QueryError):
            obstacle_semijoin(ts, tt, idx, strategy="magic")

    def test_empty_inputs(self):
        obstacles = [rect_obstacle(0, 0, 0, 1, 1)]
        idx = build_obstacle_index(obstacles, max_entries=8, min_entries=3)
        empty = RStarTree(max_entries=8)
        full = _tree([Point(5, 5)])
        assert obstacle_semijoin(empty, full, idx) == {}
        assert obstacle_semijoin(full, empty, idx) == {}

    @pytest.mark.parametrize("strategy", ["nn", "cp"])
    def test_matches_oracle(self, strategy):
        obstacles, s, t, ts, tt, idx = _setup(5)
        got = obstacle_semijoin(ts, tt, idx, strategy=strategy)
        assert set(got) == set(s)
        for src, (__, d) in got.items():
            best = min(oracle_distance(src, cand, obstacles) for cand in t)
            assert d == pytest.approx(best)

    def test_strategies_agree(self):
        obstacles, s, t, ts, tt, idx = _setup(9)
        by_nn = obstacle_semijoin(ts, tt, idx, strategy="nn")
        by_cp = obstacle_semijoin(ts, tt, idx, strategy="cp")
        assert set(by_nn) == set(by_cp)
        for key in by_nn:
            assert by_nn[key][1] == pytest.approx(by_cp[key][1])

    def test_obstacle_changes_assignment(self):
        wall = rect_obstacle(0, 4, -5, 6, 5)
        s = [Point(3.5, 0)]
        t = [Point(6.5, 0), Point(3.5, 8)]
        idx = build_obstacle_index([wall], max_entries=8, min_entries=3)
        got = obstacle_semijoin(_tree(s), _tree(t), idx)
        # Euclidean NN is (6.5, 0) across the wall; obstructed NN is the
        # point above the wall.
        assert got[s[0]][0] == Point(3.5, 8)

    def test_engine_api(self):
        obstacles, s, t, __, __, __ = _setup(13)
        db = ObstacleDatabase(obstacles, max_entries=8, min_entries=3)
        db.add_entity_set("s", s)
        db.add_entity_set("t", t)
        got = db.semijoin("s", "t")
        assert set(got) == set(s)
        alt = db.semijoin("s", "t", strategy="nn")
        for key in got:
            assert got[key][1] == pytest.approx(alt[key][1])
