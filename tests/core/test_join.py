"""Tests for the obstacle e-distance join ODJ (paper Fig. 10)."""

import random

import pytest

from repro.core import obstacle_distance_join
from repro.core.source import build_obstacle_index
from repro.errors import QueryError
from repro.geometry import Point, Rect
from repro.index import RStarTree, str_pack
from tests.conftest import (
    oracle_distance,
    random_disjoint_rects,
    random_free_points,
    rect_obstacle,
)


def _tree(points):
    tree = RStarTree(max_entries=8, min_entries=3)
    str_pack(tree, [(p, Rect.from_point(p)) for p in points])
    return tree


def _setup(seed, n_obs=12, n_s=15, n_t=12):
    rng = random.Random(seed)
    obstacles = random_disjoint_rects(rng, n_obs)
    s = random_free_points(rng, n_s, obstacles)
    t = random_free_points(rng, n_t, obstacles)
    idx = build_obstacle_index(obstacles, max_entries=8, min_entries=3)
    return obstacles, s, t, _tree(s), _tree(t), idx


class TestObstacleDistanceJoin:
    def test_negative_distance_rejected(self):
        __, __, __, ts, tt, idx = _setup(1)
        with pytest.raises(QueryError):
            obstacle_distance_join(ts, tt, idx, -5.0)

    def test_empty_result_when_far_apart(self):
        obstacles = [rect_obstacle(0, 40, 40, 50, 50)]
        idx = build_obstacle_index(obstacles, max_entries=8, min_entries=3)
        ts = _tree([Point(0, 0)])
        tt = _tree([Point(100, 100)])
        assert obstacle_distance_join(ts, tt, idx, 5.0) == []

    def test_matches_oracle(self):
        obstacles, s, t, ts, tt, idx = _setup(7)
        e = 30.0
        got = {(a, b): d for a, b, d in obstacle_distance_join(ts, tt, idx, e)}
        want = {}
        for a in s:
            for b in t:
                if a.distance(b) <= e:
                    d = oracle_distance(a, b, obstacles)
                    if d <= e:
                        want[(a, b)] = d
        assert set(got) == set(want)
        for pair, d in got.items():
            assert d == pytest.approx(want[pair])

    def test_orientation_preserved(self):
        # results must be (s, t) even when T provides the seeds
        obstacles = [rect_obstacle(0, 500, 500, 510, 510)]
        idx = build_obstacle_index(obstacles, max_entries=8, min_entries=3)
        s = [Point(i, 0) for i in range(10)]          # many distinct s
        t = [Point(0, 1)]                             # single t -> seed side
        got = obstacle_distance_join(_tree(s), _tree(t), idx, 5.0)
        assert got
        for a, b, __ in got:
            assert a in s and b in t

    def test_hilbert_off_same_result(self):
        obstacles, s, t, ts, tt, idx = _setup(13)
        e = 25.0
        with_h = {(a, b) for a, b, __ in obstacle_distance_join(ts, tt, idx, e)}
        without = {
            (a, b)
            for a, b, __ in obstacle_distance_join(
                ts, tt, idx, e, hilbert_order_seeds=False
            )
        }
        assert with_h == without

    def test_pairs_within_euclidean_bound(self):
        __, __, __, ts, tt, idx = _setup(21)
        e = 20.0
        for a, b, d in obstacle_distance_join(ts, tt, idx, e):
            assert a.distance(b) <= e + 1e-9
            assert a.distance(b) - 1e-9 <= d <= e + 1e-9

    def test_zero_distance_join(self):
        shared = Point(5, 5)
        obstacles = [rect_obstacle(0, 50, 50, 60, 60)]
        idx = build_obstacle_index(obstacles, max_entries=8, min_entries=3)
        ts = _tree([shared, Point(1, 1)])
        tt = _tree([shared, Point(9, 9)])
        got = obstacle_distance_join(ts, tt, idx, 0.0)
        assert got == [(shared, shared, 0.0)]
