"""Edge cases for the incremental obstructed streams (iONN / iOCP)."""

import itertools
import random

import pytest

from repro.core import (
    iter_obstacle_closest_pairs,
    iter_obstacle_nearest,
)
from repro.core.source import build_obstacle_index
from repro.geometry import Point, Rect
from repro.index import RStarTree, str_pack
from tests.conftest import (
    oracle_distance,
    random_disjoint_rects,
    random_free_points,
    rect_obstacle,
)


def _tree(points):
    tree = RStarTree(max_entries=8, min_entries=3)
    str_pack(tree, [(p, Rect.from_point(p)) for p in points])
    return tree


def _index(obstacles):
    return build_obstacle_index(obstacles, max_entries=8, min_entries=3)


class TestIncrementalNearestEdgeCases:
    def test_single_entity(self):
        idx = _index([rect_obstacle(0, 50, 50, 60, 60)])
        stream = iter_obstacle_nearest(_tree([Point(3, 4)]), idx, Point(0, 0))
        assert list(stream) == [(Point(3, 4), pytest.approx(5.0))]

    def test_entity_at_query_point(self):
        idx = _index([rect_obstacle(0, 50, 50, 60, 60)])
        stream = iter_obstacle_nearest(
            _tree([Point(0, 0), Point(1, 0)]), idx, Point(0, 0)
        )
        first = next(stream)
        assert first == (Point(0, 0), 0.0)

    def test_heavy_reordering_by_obstacles(self):
        # a wall makes the Euclidean order strongly disagree with the
        # obstructed order; the stream must still be sorted by d_O
        wall = rect_obstacle(0, 2, -20, 4, 20)
        entities = [Point(5, 0), Point(6, 0), Point(-1, 30), Point(0, -25)]
        idx = _index([wall])
        stream = iter_obstacle_nearest(_tree(entities), idx, Point(0, 0))
        dists = [d for __, d in stream]
        assert dists == sorted(dists)
        want = sorted(oracle_distance(Point(0, 0), p, [wall]) for p in entities)
        assert dists == pytest.approx(want)

    def test_partial_consumption_is_cheap_and_correct(self):
        rng = random.Random(77)
        obstacles = random_disjoint_rects(rng, 10)
        entities = random_free_points(rng, 20, obstacles)
        idx = _index(obstacles)
        q = random_free_points(random.Random(5), 1, obstacles)[0]
        stream = iter_obstacle_nearest(_tree(entities), idx, q)
        three = list(itertools.islice(stream, 3))
        want = sorted(oracle_distance(q, p, obstacles) for p in entities)[:3]
        assert [d for __, d in three] == pytest.approx(want)


class TestIncrementalClosestPairsEdgeCases:
    def test_single_pair(self):
        idx = _index([rect_obstacle(0, 50, 50, 60, 60)])
        stream = iter_obstacle_closest_pairs(
            _tree([Point(0, 0)]), _tree([Point(3, 4)]), idx
        )
        assert list(stream) == [(Point(0, 0), Point(3, 4), pytest.approx(5.0))]

    def test_coincident_pair_first(self):
        idx = _index([rect_obstacle(0, 50, 50, 60, 60)])
        shared = Point(5, 5)
        stream = iter_obstacle_closest_pairs(
            _tree([shared, Point(0, 0)]), _tree([shared, Point(9, 9)]), idx
        )
        s, t, d = next(stream)
        assert (s, t, d) == (shared, shared, 0.0)

    def test_wall_reorders_pairs(self):
        wall = rect_obstacle(0, 4, -10, 6, 10)
        s = [Point(3, 0), Point(0, 12)]
        t = [Point(7, 0), Point(2, 12)]
        idx = _index([wall])
        stream = iter_obstacle_closest_pairs(_tree(s), _tree(t), idx)
        pairs = list(stream)
        dists = [d for __, __, d in pairs]
        assert dists == sorted(dists)
        # Euclidean closest pair (3,0)-(7,0) is separated by the wall;
        # the top pair must be reported first
        assert pairs[0][0] == Point(0, 12)
        assert pairs[0][1] == Point(2, 12)

    def test_stream_restartable(self):
        rng = random.Random(31)
        obstacles = random_disjoint_rects(rng, 8)
        s = random_free_points(rng, 5, obstacles)
        t = random_free_points(rng, 4, obstacles)
        idx = _index(obstacles)
        first_run = [d for *__, d in iter_obstacle_closest_pairs(_tree(s), _tree(t), idx)]
        second_run = [d for *__, d in iter_obstacle_closest_pairs(_tree(s), _tree(t), idx)]
        assert first_run == pytest.approx(second_run)
