"""Dynamic obstacle updates: `insert_obstacle` / `delete_obstacle`.

The obstacle sets are versioned; every cached visibility graph carries
the version it was built against, so after a mutation the results of
OR / ONN / obstructed_distance must reflect the new obstacle set
immediately — a stale graph is never consulted.
"""

import math

import pytest

from repro import ObstacleDatabase, Point, Polygon, Rect
from repro.errors import DatasetError
from tests.conftest import oracle_distance, rect_obstacle


@pytest.fixture
def db():
    # One far-away obstacle so the scene starts effectively free.
    database = ObstacleDatabase(
        [Rect(100, 100, 102, 102)], max_entries=8, min_entries=3
    )
    database.add_entity_set("pois", [Point(0, 0), Point(10, 0), Point(0, 6)])
    return database


WALL = Rect(4, -10, 6, 10)


class TestInsertObstacle:
    def test_distance_reflects_new_wall(self, db):
        a, b = Point(0, 0), Point(10, 0)
        assert db.obstructed_distance(a, b) == pytest.approx(10.0)
        db.insert_obstacle(WALL)
        expected = oracle_distance(
            a, b, [rect_obstacle(9, WALL.minx, WALL.miny, WALL.maxx, WALL.maxy)]
        )
        assert db.obstructed_distance(a, b) == pytest.approx(expected)

    def test_nearest_reflects_new_wall(self, db):
        q = Point(10, 5)
        [(winner, __)] = db.nearest("pois", q, 1)
        assert winner == Point(10, 0)
        # Wall a ring around (10, 0): detours make (0, 6) closer? No —
        # use a wall that blocks the straight shot to (10, 0).
        db.insert_obstacle(Rect(7, -2, 13, 2))
        results = db.nearest("pois", q, 3)
        got = {p: d for p, d in results}
        oracle_obs = [rect_obstacle(9, 7, -2, 13, 2)]
        for p, d in got.items():
            if math.isinf(d):
                continue
            assert d == pytest.approx(oracle_distance(q, p, oracle_obs))

    def test_range_reflects_new_wall(self, db):
        q = Point(0, 3)
        before = dict(db.range("pois", q, 7.0))
        assert Point(0, 0) in before and Point(0, 6) in before
        db.insert_obstacle(Rect(-5, 1, 5, 2))  # cuts q off from (0, 0)
        after = dict(db.range("pois", q, 7.0))
        assert Point(0, 6) in after
        assert Point(0, 0) not in after

    def test_insert_returns_record_with_fresh_oid(self, db):
        record = db.insert_obstacle(WALL)
        assert record.oid == 1  # seed obstacle took 0
        other = db.insert_obstacle(Polygon.from_rect(Rect(20, 20, 21, 21)))
        assert other.oid == 2

    def test_mutation_repairs_cached_graph_in_place(self, db):
        """Repair-first: the insert patches the primed graph (one
        ``add_obstacle``) instead of invalidating it — the next query
        is a cache hit with zero additional builds."""
        a, b = Point(0, 0), Point(10, 0)
        db.obstructed_distance(a, b)  # primes the cache for b
        stats_before = db.runtime_stats()
        assert stats_before["graph_builds"] >= 1
        db.insert_obstacle(WALL)
        assert db.obstructed_distance(a, b) > 10.0
        stats_after = db.runtime_stats()
        assert (
            stats_after["graph_cache_repairs"]
            > stats_before["graph_cache_repairs"]
        )
        assert stats_after["graph_builds"] == stats_before["graph_builds"]
        assert stats_after["graph_rebuilds"] == stats_before["graph_rebuilds"]
        assert (
            stats_after["graph_cache_invalidations"]
            == stats_before["graph_cache_invalidations"]
        )

    def test_unknown_set_rejected(self, db):
        with pytest.raises(DatasetError):
            db.insert_obstacle(WALL, set_name="nope")


class TestDeleteObstacle:
    def test_delete_restores_straight_line(self, db):
        a, b = Point(0, 0), Point(10, 0)
        record = db.insert_obstacle(WALL)
        assert db.obstructed_distance(a, b) > 10.0
        assert db.delete_obstacle(record)
        assert db.obstructed_distance(a, b) == pytest.approx(10.0)

    def test_delete_by_oid(self, db):
        record = db.insert_obstacle(WALL)
        assert db.delete_obstacle(record.oid)
        assert db.obstructed_distance(Point(0, 0), Point(10, 0)) == (
            pytest.approx(10.0)
        )

    def test_delete_missing_returns_false(self, db):
        assert not db.delete_obstacle(12345)
        record = db.insert_obstacle(WALL)
        assert db.delete_obstacle(record)
        assert not db.delete_obstacle(record)

    def test_range_after_delete(self, db):
        record = db.insert_obstacle(Rect(-5, 1, 5, 2))
        q = Point(0, 3)
        assert Point(0, 0) not in dict(db.range("pois", q, 7.0))
        db.delete_obstacle(record)
        assert dict(db.range("pois", q, 7.0))[Point(0, 0)] == pytest.approx(3.0)


class TestNamedSets:
    def test_mutation_in_secondary_set(self, db):
        db.add_obstacle_set("fences", [Rect(200, 200, 201, 201)])
        a, b = Point(0, 0), Point(10, 0)
        assert db.obstructed_distance(a, b) == pytest.approx(10.0)
        record = db.insert_obstacle(WALL, set_name="fences")
        assert db.obstructed_distance(a, b) > 10.0
        assert db.delete_obstacle(record, set_name="fences")
        assert db.obstructed_distance(a, b) == pytest.approx(10.0)

    def test_adding_set_drops_cached_graphs(self, db):
        a, b = Point(0, 0), Point(10, 0)
        assert db.obstructed_distance(a, b) == pytest.approx(10.0)
        db.add_obstacle_set("walls", [WALL])
        assert db.obstructed_distance(a, b) > 10.0


class TestDirectTreeMutation:
    def test_bypassing_the_index_still_invalidates(self, db):
        """Mutating the public obstacle_tree directly (instead of going
        through insert_obstacle) resizes the tree, which the version
        fingerprint folds in — the cached graph must not survive."""
        from repro.model import Obstacle
        from repro.geometry import Polygon

        a, b = Point(0, 0), Point(10, 0)
        assert db.obstructed_distance(a, b) == pytest.approx(10.0)
        wall = Obstacle(999, Polygon.from_rect(WALL))
        db.obstacle_tree.insert(wall, wall.mbr)
        assert db.obstructed_distance(a, b) > 10.0


class TestHeldIteratorsAcrossMutation:
    def test_inearest_consumed_after_insert_sees_new_wall(self, db):
        """A live incremental iterator bound to a cached graph must not
        trust pre-mutation coverage: evaluations performed after the
        insert reflect the new obstacle set (regression: ensure_coverage
        skipped the version check on held entries)."""
        q = Point(0, 0)
        # Prime the cached graph for q with a large covered radius.
        db.range("pois", q, 30.0)
        stream = db.inearest("pois", q)
        first = next(stream)
        assert first == (Point(0, 0), 0.0)
        db.insert_obstacle(Rect(4, -10, 6, 10))  # blocks q -> (10, 0)
        rest = dict(stream)
        oracle_obs = [rect_obstacle(9, 4, -10, 6, 10)]
        assert rest[Point(10, 0)] == pytest.approx(
            oracle_distance(q, Point(10, 0), oracle_obs)
        )
        assert rest[Point(10, 0)] > 10.0

    def test_field_revalidates_after_delete(self, db):
        q = Point(0, 0)
        record = db.insert_obstacle(Rect(4, -10, 6, 10))
        field = db.context.field_for(q, radius=25.0)
        blocked = field.distance_to(Point(10, 0))
        assert blocked > 10.0
        db.delete_obstacle(record)
        assert field.distance_to(Point(10, 0)) == pytest.approx(10.0)


class TestInterleavedWorkload:
    def test_mutations_between_queries_always_consistent(self, db):
        """A mutation-heavy workload: after every step, results equal a
        from-scratch database over the same obstacle set."""
        a, b = Point(0, 0), Point(10, 0)
        live = [Rect(100, 100, 102, 102)]
        records = {}
        steps = [
            ("ins", Rect(4, -10, 6, 2)),
            ("ins", Rect(4, 3, 6, 12)),
            ("del", Rect(4, -10, 6, 2)),
            ("ins", Rect(2, -4, 3, 4)),
            ("del", Rect(4, 3, 6, 12)),
        ]
        for op, rect in steps:
            if op == "ins":
                records[rect] = db.insert_obstacle(rect)
                live.append(rect)
            else:
                assert db.delete_obstacle(records.pop(rect))
                live.remove(rect)
            reference = ObstacleDatabase(live, max_entries=8, min_entries=3)
            assert db.obstructed_distance(a, b) == pytest.approx(
                reference.obstructed_distance(a, b)
            )
