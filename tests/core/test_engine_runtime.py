"""The database's persistent query runtime: one context, shared cache."""

import random

import pytest

from repro import ObstacleDatabase, Point, Rect
from tests.conftest import random_disjoint_rects, random_free_points


@pytest.fixture
def scene_db():
    rng = random.Random(2004)
    obstacles = random_disjoint_rects(rng, 12)
    points = random_free_points(rng, 12, obstacles)
    db = ObstacleDatabase(
        [o.polygon for o in obstacles], max_entries=8, min_entries=3
    )
    db.add_entity_set("pois", points[4:])
    return db, points


class TestPersistentComputer:
    def test_repeated_distance_builds_one_graph(self, scene_db):
        db, points = scene_db
        target = points[0]
        db.reset_stats()
        values = [
            db.obstructed_distance(p, target)
            for __ in range(30)
            for p in points[1:4]
        ]
        stats = db.runtime_stats()
        # The seed rebuilt the computer (and graph) on every call; the
        # persistent context builds the graph for `target` exactly once.
        assert stats["distance_calls"] == 90
        assert stats["graph_builds"] == 1
        again = [
            db.obstructed_distance(p, target)
            for __ in range(30)
            for p in points[1:4]
        ]
        assert values == again

    def test_queries_prime_each_other(self, scene_db):
        db, points = scene_db
        q = points[0]
        db.reset_stats()
        db.nearest("pois", q, 2)
        builds_after_nearest = db.runtime_stats()["graph_builds"]
        db.range("pois", q, 10.0)
        db.obstructed_distance(points[1], q)
        # nearest() built the graph for q; range() and distance() reuse it.
        assert db.runtime_stats()["graph_builds"] == builds_after_nearest

    def test_runtime_stats_reset(self, scene_db):
        db, points = scene_db
        db.obstructed_distance(points[0], points[1])
        assert db.runtime_stats()["distance_calls"] >= 1
        db.reset_stats()
        assert db.runtime_stats()["distance_calls"] == 0

    def test_context_exposed(self, scene_db):
        db, __ = scene_db
        assert db.context.source is db.obstacle_index
        assert db.context.stats.snapshot() == db.runtime_stats()


class TestShortestPathViaContext:
    def test_path_matches_distance(self):
        db = ObstacleDatabase([Rect(4, -10, 6, 10)], max_entries=8, min_entries=3)
        a, b = Point(0, 0), Point(10, 0)
        d, path = db.shortest_path(a, b)
        assert d == pytest.approx(db.obstructed_distance(a, b))
        assert path[0] == a and path[-1] == b
        length = sum(u.distance(v) for u, v in zip(path, path[1:]))
        assert length == pytest.approx(d)
        # The transient start point must not linger in the cached graph.
        entry = db.context.cache.get(b, db.context.version)
        assert entry is not None and not entry.graph.has_node(a)
