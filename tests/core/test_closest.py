"""Tests for OCP and iOCP (paper Figs. 11-12)."""

import random

import pytest

from repro.core import iter_obstacle_closest_pairs, obstacle_closest_pairs
from repro.core.source import build_obstacle_index
from repro.errors import QueryError
from repro.geometry import Point, Rect
from repro.index import RStarTree, str_pack
from tests.conftest import (
    oracle_distance,
    random_disjoint_rects,
    random_free_points,
    rect_obstacle,
)


def _tree(points):
    tree = RStarTree(max_entries=8, min_entries=3)
    str_pack(tree, [(p, Rect.from_point(p)) for p in points])
    return tree


def _setup(seed, n_obs=10, n_s=12, n_t=10):
    rng = random.Random(seed)
    obstacles = random_disjoint_rects(rng, n_obs)
    s = random_free_points(rng, n_s, obstacles)
    t = random_free_points(rng, n_t, obstacles)
    idx = build_obstacle_index(obstacles, max_entries=8, min_entries=3)
    return obstacles, s, t, _tree(s), _tree(t), idx


class TestObstacleClosestPairs:
    def test_invalid_k(self):
        __, __, __, ts, tt, idx = _setup(1)
        with pytest.raises(QueryError):
            obstacle_closest_pairs(ts, tt, idx, 0)

    def test_empty_side(self):
        obstacles = [rect_obstacle(0, 0, 0, 1, 1)]
        idx = build_obstacle_index(obstacles, max_entries=8, min_entries=3)
        empty = RStarTree(max_entries=8)
        full = _tree([Point(5, 5)])
        assert obstacle_closest_pairs(empty, full, idx, 2) == []
        assert obstacle_closest_pairs(full, empty, idx, 2) == []

    def test_obstacle_changes_winner(self):
        # Euclidean closest pair separated by a wall; a slightly farther
        # pair wins under the obstructed metric.
        wall = rect_obstacle(0, 4, -5, 6, 5)
        s = [Point(3.5, 0), Point(0, 10)]
        t = [Point(6.5, 0), Point(2, 10)]
        idx = build_obstacle_index([wall], max_entries=8, min_entries=3)
        [(a, b, d)] = obstacle_closest_pairs(_tree(s), _tree(t), idx, 1)
        assert (a, b) == (Point(0, 10), Point(2, 10))
        assert d == pytest.approx(2.0)

    @pytest.mark.parametrize("k", [1, 4, 9])
    def test_matches_oracle(self, k):
        obstacles, s, t, ts, tt, idx = _setup(5)
        got = [d for __, __, d in obstacle_closest_pairs(ts, tt, idx, k)]
        want = sorted(oracle_distance(a, b, obstacles) for a in s for b in t)[:k]
        assert got == pytest.approx(want)

    def test_k_exceeds_pairs(self):
        obstacles = [rect_obstacle(0, 50, 50, 51, 51)]
        idx = build_obstacle_index(obstacles, max_entries=8, min_entries=3)
        res = obstacle_closest_pairs(_tree([Point(0, 0)]), _tree([Point(1, 1)]), idx, 10)
        assert len(res) == 1

    def test_ascending_order(self):
        obstacles, s, t, ts, tt, idx = _setup(31)
        res = obstacle_closest_pairs(ts, tt, idx, 8)
        dists = [d for __, __, d in res]
        assert dists == sorted(dists)

    def test_orientation(self):
        obstacles, s, t, ts, tt, idx = _setup(41)
        for a, b, __ in obstacle_closest_pairs(ts, tt, idx, 5):
            assert a in s and b in t


class TestIncrementalClosestPairs:
    def test_prefix_matches_batch(self):
        obstacles, s, t, ts, tt, idx = _setup(55)
        batch = obstacle_closest_pairs(ts, tt, idx, 6)
        stream = iter_obstacle_closest_pairs(ts, tt, idx)
        inc = [next(stream) for __ in range(6)]
        assert [d for __, __, d in inc] == pytest.approx(
            [d for __, __, d in batch]
        )

    def test_full_stream_complete_and_sorted(self):
        obstacles, s, t, ts, tt, idx = _setup(66, n_s=6, n_t=5)
        res = list(iter_obstacle_closest_pairs(ts, tt, idx))
        assert len(res) == len(s) * len(t)
        dists = [d for __, __, d in res]
        assert dists == sorted(dists)
        want = sorted(oracle_distance(a, b, obstacles) for a in s for b in t)
        assert dists == pytest.approx(want)

    def test_browsing_with_predicate(self):
        # The paper's motivating scenario: keep pulling pairs until one
        # satisfies an external condition.
        obstacles, s, t, ts, tt, idx = _setup(77)
        threshold = 15.0
        for a, b, d in iter_obstacle_closest_pairs(ts, tt, idx):
            if a.x > threshold:
                found = (a, b, d)
                break
        else:
            found = None
        if found is not None:
            a, b, d = found
            assert a.x > threshold
