"""Tests for moving-query nearest neighbours (paper future work)."""

import random

import pytest

from repro.core.continuous import PathNearestNeighbor, path_nearest
from repro.core.source import build_obstacle_index
from repro.errors import QueryError
from repro.geometry import Point, Rect
from repro.index import RStarTree, str_pack
from tests.conftest import (
    oracle_distance,
    random_disjoint_rects,
    random_free_points,
    rect_obstacle,
)


def _setup(obstacles, entities):
    tree = RStarTree(max_entries=8, min_entries=3)
    str_pack(tree, [(p, Rect.from_point(p)) for p in entities])
    return tree, build_obstacle_index(obstacles, max_entries=8, min_entries=3)


class TestValidation:
    def test_needs_two_waypoints(self):
        tree, idx = _setup([rect_obstacle(0, 0, 0, 1, 1)], [Point(5, 5)])
        with pytest.raises(QueryError):
            PathNearestNeighbor(tree, idx, [Point(0, 0)])

    def test_needs_positive_tolerance(self):
        tree, idx = _setup([rect_obstacle(0, 0, 0, 1, 1)], [Point(5, 5)])
        with pytest.raises(QueryError):
            PathNearestNeighbor(
                tree, idx, [Point(0, 0), Point(1, 0)], tolerance=0.0
            )

    def test_zero_length_route_rejected(self):
        tree, idx = _setup([rect_obstacle(0, 0, 0, 1, 1)], [Point(5, 5)])
        with pytest.raises(QueryError):
            PathNearestNeighbor(tree, idx, [Point(0, 0), Point(0, 0)])

    def test_empty_dataset(self):
        tree, idx = _setup([rect_obstacle(0, 0, 0, 1, 1)], [])
        nn = PathNearestNeighbor(tree, idx, [Point(0, 0), Point(1, 0)])
        with pytest.raises(QueryError):
            nn.nn_at(0.5)


class TestGeometryOfRoute:
    def test_point_at_endpoints(self):
        tree, idx = _setup([rect_obstacle(0, 50, 50, 51, 51)], [Point(5, 5)])
        nn = PathNearestNeighbor(tree, idx, [Point(0, 0), Point(10, 0)])
        assert nn.point_at(0.0) == Point(0, 0)
        assert nn.point_at(1.0) == Point(10, 0)
        assert nn.point_at(0.5) == Point(5, 0)

    def test_point_at_multi_segment(self):
        tree, idx = _setup([rect_obstacle(0, 50, 50, 51, 51)], [Point(5, 5)])
        nn = PathNearestNeighbor(
            tree, idx, [Point(0, 0), Point(10, 0), Point(10, 10)]
        )
        assert nn.point_at(0.25) == Point(5, 0)
        assert nn.point_at(0.75) == Point(10, 5)

    def test_point_at_clamped(self):
        tree, idx = _setup([rect_obstacle(0, 50, 50, 51, 51)], [Point(5, 5)])
        nn = PathNearestNeighbor(tree, idx, [Point(0, 0), Point(10, 0)])
        assert nn.point_at(-0.5) == Point(0, 0)
        assert nn.point_at(1.5) == Point(10, 0)


class TestProfile:
    def test_single_entity_single_interval(self):
        obstacles = [rect_obstacle(0, 50, 50, 60, 60)]
        tree, idx = _setup(obstacles, [Point(5, 5)])
        intervals = path_nearest(tree, idx, [Point(0, 0), Point(10, 0)])
        assert len(intervals) == 1
        assert intervals[0].neighbor == Point(5, 5)
        assert intervals[0].start == 0.0
        assert intervals[0].end == 1.0

    def test_handover_between_two_entities(self):
        # walking east between two POIs: the NN switches halfway
        obstacles = [rect_obstacle(0, 100, 100, 110, 110)]
        a, b = Point(0, 5), Point(20, 5)
        tree, idx = _setup(obstacles, [a, b])
        intervals = path_nearest(
            tree, idx, [Point(0, 0), Point(20, 0)], tolerance=1e-4
        )
        assert [iv.neighbor for iv in intervals] == [a, b]
        # switch near the midpoint
        assert intervals[0].end == pytest.approx(0.5, abs=1e-3)

    def test_obstacle_shifts_handover(self):
        # a wall near entity a makes it obstructed-farther, so b wins
        # earlier than the Euclidean midpoint
        wall = rect_obstacle(0, 2, -1, 4, 6)
        a, b = Point(0, 4), Point(20, 4)
        tree, idx = _setup([wall], [a, b])
        intervals = path_nearest(
            tree, idx, [Point(0, -5), Point(20, -5)], tolerance=1e-4
        )
        assert intervals[-1].neighbor == b
        switch = intervals[0].end
        assert switch < 0.5  # b takes over before the midpoint

    def test_profile_matches_dense_sampling(self):
        rng = random.Random(100)
        obstacles = random_disjoint_rects(rng, 8)
        entities = random_free_points(rng, 6, obstacles)
        waypoints = random_free_points(random.Random(5), 3, obstacles)
        tree, idx = _setup(obstacles, entities)
        pnn = PathNearestNeighbor(tree, idx, waypoints, tolerance=1e-3)
        intervals = pnn.profile()
        assert intervals[0].start == 0.0
        assert intervals[-1].end == pytest.approx(1.0)
        # intervals tile [0, 1] in order
        for prev, nxt in zip(intervals, intervals[1:]):
            assert prev.end == pytest.approx(nxt.start)
        # winner agrees with the oracle away from boundaries
        for iv in intervals:
            mid = (iv.start + iv.end) / 2.0
            if iv.end - iv.start < 0.01:
                continue
            q = pnn.point_at(mid)
            best = min(
                entities, key=lambda p: oracle_distance(q, p, obstacles)
            )
            d_best = oracle_distance(q, best, obstacles)
            d_winner = oracle_distance(q, iv.neighbor, obstacles)
            assert d_winner == pytest.approx(d_best)


class TestRuntimeWiring:
    """`path_nearest` over the database's shared runtime (PR 6)."""

    def _db(self, seed=600, *, shards=None, n_obstacles=8, n_points=8):
        rng = random.Random(seed)
        obstacles = random_disjoint_rects(rng, n_obstacles)
        points = random_free_points(rng, n_points, obstacles)
        from repro import ObstacleDatabase

        db = ObstacleDatabase(
            [o.polygon for o in obstacles],
            max_entries=8,
            min_entries=3,
            shards=shards,
            graph_cache_size=256,
        )
        db.add_entity_set("pois", points[3:])
        route = random_free_points(random.Random(seed + 1), 3, obstacles)
        return db, route, obstacles

    def test_database_profile_matches_private_context(self):
        db, route, __ = self._db(601)
        via_db = db.path_nearest("pois", route)
        direct = path_nearest(
            db.entity_tree("pois"), db.obstacle_index, route
        )
        assert via_db == direct

    def test_profile_uses_shared_cache(self):
        db, route, __ = self._db(602)
        db.path_nearest("pois", route)
        db.reset_stats()
        db.path_nearest("pois", route)
        # Every expansion centre of the second profile was cached by
        # the first: re-profiling an unchanged route builds nothing.
        assert db.runtime_stats()["graph_builds"] == 0

    def test_profile_after_mutation_matches_cold_database(self):
        db, route, obstacles = self._db(603)
        db.path_nearest("pois", route)  # populate the cache
        record = db.insert_obstacle(Rect(40, 40, 46, 46))
        repaired = db.path_nearest("pois", route)

        from repro import ObstacleDatabase

        cold = ObstacleDatabase(
            [o.polygon for o in obstacles] + [Rect(40, 40, 46, 46)],
            max_entries=8,
            min_entries=3,
            graph_cache_size=256,
        )
        cold.add_entity_set(
            "pois", [p for p, __r in db.entity_tree("pois").items()]
        )
        assert repaired == cold.path_nearest("pois", route)

        assert db.delete_obstacle(record)
        assert db.path_nearest("pois", route) == path_nearest(
            db.entity_tree("pois"), db.obstacle_index, route
        )

    def test_sharded_profile_matches_monolithic(self):
        db, route, obstacles = self._db(604, shards=4)
        mono, __route, __obs = self._db(604)
        assert db.path_nearest("pois", route) == mono.path_nearest(
            "pois", route
        )

    def test_tolerance_forwarded(self):
        db, route, __ = self._db(605)
        coarse = db.path_nearest("pois", route, tolerance=0.2)
        fine = db.path_nearest("pois", route, tolerance=1e-3)
        assert len(fine) >= len(coarse)
