"""Tests for obstacle sources (single and composite indexes)."""

import math
import random

import pytest

from repro.core.source import (
    CompositeObstacleIndex,
    ObstacleIndex,
    build_obstacle_index,
)
from repro.errors import DatasetError
from repro.geometry import Point
from tests.conftest import random_disjoint_rects, rect_obstacle


class TestObstacleIndex:
    def test_range_refined(self):
        obstacles = [rect_obstacle(0, 10, 0, 12, 2), rect_obstacle(1, 50, 50, 52, 52)]
        idx = build_obstacle_index(obstacles, max_entries=8, min_entries=3)
        got = idx.obstacles_in_range(Point(0, 0), 15.0)
        assert [o.oid for o in got] == [0]

    def test_infinite_range_returns_all(self):
        rng = random.Random(1)
        obstacles = random_disjoint_rects(rng, 8)
        idx = build_obstacle_index(obstacles, max_entries=8, min_entries=3)
        got = idx.obstacles_in_range(Point(0, 0), math.inf)
        assert {o.oid for o in got} == {o.oid for o in obstacles}

    def test_universe(self):
        obstacles = [rect_obstacle(0, 1, 2, 3, 4), rect_obstacle(1, 10, 10, 12, 14)]
        idx = build_obstacle_index(obstacles, max_entries=8, min_entries=3)
        u = idx.universe()
        assert (u.minx, u.miny, u.maxx, u.maxy) == (1, 2, 12, 14)

    def test_len(self):
        obstacles = random_disjoint_rects(random.Random(2), 5)
        idx = build_obstacle_index(obstacles, max_entries=8, min_entries=3)
        assert len(idx) == len(obstacles)

    def test_bulk_false_inserts_dynamically(self):
        obstacles = random_disjoint_rects(random.Random(3), 10)
        idx = build_obstacle_index(
            obstacles, bulk=False, max_entries=8, min_entries=3
        )
        assert len(idx) == len(obstacles)
        idx.tree.check_invariants()


class TestCompositeObstacleIndex:
    def test_requires_members(self):
        with pytest.raises(DatasetError):
            CompositeObstacleIndex([])

    def test_union_of_ranges(self):
        near = [rect_obstacle(0, 5, 0, 7, 2)]
        far = [rect_obstacle(100, 8, 8, 10, 10)]
        composite = CompositeObstacleIndex(
            [
                build_obstacle_index(near, max_entries=8, min_entries=3),
                build_obstacle_index(far, max_entries=8, min_entries=3),
            ]
        )
        got = {o.oid for o in composite.obstacles_in_range(Point(0, 0), 12.0)}
        assert got == {0, 100}

    def test_dedupes_by_oid(self):
        obs = [rect_obstacle(7, 0, 0, 2, 2)]
        idx = build_obstacle_index(obs, max_entries=8, min_entries=3)
        composite = CompositeObstacleIndex([idx, idx])
        got = composite.obstacles_in_range(Point(0, 0), 5.0)
        assert len(got) == 1

    def test_universe_union(self):
        a = build_obstacle_index(
            [rect_obstacle(0, 0, 0, 1, 1)], max_entries=8, min_entries=3
        )
        b = build_obstacle_index(
            [rect_obstacle(1, 10, 10, 20, 20)], max_entries=8, min_entries=3
        )
        u = CompositeObstacleIndex([a, b]).universe()
        assert (u.minx, u.miny, u.maxx, u.maxy) == (0, 0, 20, 20)

    def test_len_sums(self):
        a = build_obstacle_index(
            [rect_obstacle(0, 0, 0, 1, 1)], max_entries=8, min_entries=3
        )
        b = build_obstacle_index(
            [rect_obstacle(1, 5, 5, 6, 6), rect_obstacle(2, 8, 8, 9, 9)],
            max_entries=8,
            min_entries=3,
        )
        assert len(CompositeObstacleIndex([a, b])) == 3
