"""Tests for the obstacle range query OR (paper Fig. 5)."""

import random

import pytest

from repro.core import obstacle_range
from repro.core.source import build_obstacle_index
from repro.errors import QueryError
from repro.geometry import Point, Rect
from repro.index import RStarTree, str_pack
from tests.conftest import (
    oracle_distance,
    random_disjoint_rects,
    random_free_points,
    rect_obstacle,
)


def _setup(obstacles, entities):
    tree = RStarTree(max_entries=8, min_entries=3)
    str_pack(tree, [(p, Rect.from_point(p)) for p in entities])
    return tree, build_obstacle_index(obstacles, max_entries=8, min_entries=3)


class TestObstacleRange:
    def test_negative_range_rejected(self):
        tree, idx = _setup([rect_obstacle(0, 0, 0, 1, 1)], [Point(5, 5)])
        with pytest.raises(QueryError):
            obstacle_range(tree, idx, Point(0, 0), -1.0)

    def test_empty_entities(self):
        tree, idx = _setup([rect_obstacle(0, 0, 0, 1, 1)], [])
        assert obstacle_range(tree, idx, Point(0, 0), 10.0) == []

    def test_no_obstacles_equals_euclidean_range(self):
        entities = [Point(i, 0) for i in range(10)]
        tree, idx = _setup([rect_obstacle(0, 100, 100, 101, 101)], entities)
        got = {p for p, __ in obstacle_range(tree, idx, Point(0, 0), 4.5)}
        assert got == {Point(i, 0) for i in range(5)}

    def test_false_hit_eliminated(self):
        # entity Euclidean-near but behind a wall
        wall = rect_obstacle(0, 4, -10, 6, 10)
        near = Point(3, 0)          # visible, d = 3
        behind = Point(7, 0)        # d_E = 7 but d_O ~ 24
        tree, idx = _setup([wall], [near, behind])
        got = dict(obstacle_range(tree, idx, Point(0, 0), 8.0))
        assert near in got and behind not in got
        assert got[near] == pytest.approx(3.0)

    def test_results_sorted_by_distance(self):
        rng = random.Random(3)
        obstacles = random_disjoint_rects(rng, 12)
        entities = random_free_points(rng, 30, obstacles)
        tree, idx = _setup(obstacles, entities)
        q = random_free_points(random.Random(55), 1, obstacles)[0]
        res = obstacle_range(tree, idx, q, 40.0)
        dists = [d for __, d in res]
        assert dists == sorted(dists)

    def test_query_point_coincides_with_entity(self):
        entities = [Point(5, 5), Point(6, 6)]
        tree, idx = _setup([rect_obstacle(0, 50, 50, 60, 60)], entities)
        got = dict(obstacle_range(tree, idx, Point(5, 5), 3.0))
        assert got[Point(5, 5)] == 0.0

    def test_matches_oracle(self):
        rng = random.Random(9)
        obstacles = random_disjoint_rects(rng, 15)
        entities = random_free_points(rng, 40, obstacles)
        tree, idx = _setup(obstacles, entities)
        for qseed in (1, 2):
            q = random_free_points(random.Random(qseed * 100), 1, obstacles)[0]
            e = 35.0
            got = dict(obstacle_range(tree, idx, q, e))
            want = {}
            for p in entities:
                if p.distance(q) <= e:
                    d = oracle_distance(q, p, obstacles)
                    if d <= e:
                        want[p] = d
            assert set(got) == set(want)
            for p, d in got.items():
                assert d == pytest.approx(want[p])

    def test_result_is_subset_of_euclidean_range(self):
        rng = random.Random(17)
        obstacles = random_disjoint_rects(rng, 10)
        entities = random_free_points(rng, 25, obstacles)
        tree, idx = _setup(obstacles, entities)
        q = Point(50, 50)
        e = 30.0
        got = obstacle_range(tree, idx, q, e)
        for p, d in got:
            assert p.distance(q) <= e + 1e-9  # Euclidean lower bound
            assert d >= p.distance(q) - 1e-9
