"""Tests for ONN (paper Fig. 9) and its incremental variant."""

import math
import random

import pytest

from repro.core import iter_obstacle_nearest, obstacle_nearest
from repro.core.source import build_obstacle_index
from repro.errors import QueryError
from repro.geometry import Point, Rect
from repro.index import RStarTree, str_pack
from tests.conftest import (
    oracle_distance,
    random_disjoint_rects,
    random_free_points,
    rect_obstacle,
)


def _setup(obstacles, entities):
    tree = RStarTree(max_entries=8, min_entries=3)
    str_pack(tree, [(p, Rect.from_point(p)) for p in entities])
    return tree, build_obstacle_index(obstacles, max_entries=8, min_entries=3)


class TestObstacleNearest:
    def test_invalid_k(self):
        tree, idx = _setup([rect_obstacle(0, 0, 0, 1, 1)], [Point(5, 5)])
        with pytest.raises(QueryError):
            obstacle_nearest(tree, idx, Point(0, 0), 0)

    def test_empty_dataset(self):
        tree, idx = _setup([rect_obstacle(0, 0, 0, 1, 1)], [])
        assert obstacle_nearest(tree, idx, Point(0, 0), 3) == []

    def test_paper_figure1_scenario(self):
        # Euclidean NN is behind an obstacle; the true obstructed NN is
        # a slightly farther, unobstructed point (paper Fig. 1: a vs b).
        wall = rect_obstacle(0, 4, -5, 6, 5)
        a = Point(7, 0)    # Euclidean NN, blocked (d_E=7, d_O ~ 17)
        b = Point(1, 8)    # visible (d ~ 8.06)
        tree, idx = _setup([wall], [a, b])
        [(nn, d)] = obstacle_nearest(tree, idx, Point(0, 0), 1)
        assert nn == b
        assert d == pytest.approx(Point(0, 0).distance(b))

    def test_k_larger_than_dataset(self):
        entities = [Point(1, 0), Point(2, 0)]
        tree, idx = _setup([rect_obstacle(0, 50, 50, 51, 51)], entities)
        res = obstacle_nearest(tree, idx, Point(0, 0), 10)
        assert len(res) == 2

    def test_ascending_order(self):
        rng = random.Random(8)
        obstacles = random_disjoint_rects(rng, 12)
        entities = random_free_points(rng, 30, obstacles)
        tree, idx = _setup(obstacles, entities)
        q = random_free_points(random.Random(123), 1, obstacles)[0]
        res = obstacle_nearest(tree, idx, q, 10)
        dists = [d for __, d in res]
        assert dists == sorted(dists)

    @pytest.mark.parametrize("k", [1, 3, 7])
    def test_matches_oracle(self, k):
        rng = random.Random(44)
        obstacles = random_disjoint_rects(rng, 14)
        entities = random_free_points(rng, 25, obstacles)
        tree, idx = _setup(obstacles, entities)
        q = random_free_points(random.Random(321), 1, obstacles)[0]
        got = [d for __, d in obstacle_nearest(tree, idx, q, k)]
        want = sorted(oracle_distance(q, p, obstacles) for p in entities)[:k]
        assert got == pytest.approx(want)

    def test_query_at_entity_location(self):
        entities = [Point(5, 5), Point(9, 9)]
        tree, idx = _setup([rect_obstacle(0, 50, 50, 60, 60)], entities)
        [(nn, d)] = obstacle_nearest(tree, idx, Point(5, 5), 1)
        assert nn == Point(5, 5) and d == 0.0

    def test_result_at_least_euclidean(self):
        rng = random.Random(60)
        obstacles = random_disjoint_rects(rng, 10)
        entities = random_free_points(rng, 20, obstacles)
        tree, idx = _setup(obstacles, entities)
        q = random_free_points(random.Random(61), 1, obstacles)[0]
        for p, d in obstacle_nearest(tree, idx, q, 5):
            assert d >= p.distance(q) - 1e-9


class TestIncrementalNearest:
    def test_matches_batch(self):
        rng = random.Random(99)
        obstacles = random_disjoint_rects(rng, 12)
        entities = random_free_points(rng, 20, obstacles)
        tree, idx = _setup(obstacles, entities)
        q = random_free_points(random.Random(7), 1, obstacles)[0]
        batch = obstacle_nearest(tree, idx, q, 8)
        stream = iter_obstacle_nearest(tree, idx, q)
        inc = [next(stream) for __ in range(8)]
        assert [d for __, d in inc] == pytest.approx([d for __, d in batch])

    def test_full_stream_sorted_and_complete(self):
        rng = random.Random(101)
        obstacles = random_disjoint_rects(rng, 8)
        entities = random_free_points(rng, 15, obstacles)
        tree, idx = _setup(obstacles, entities)
        q = random_free_points(random.Random(11), 1, obstacles)[0]
        res = list(iter_obstacle_nearest(tree, idx, q))
        assert len(res) == len(entities)
        dists = [d for __, d in res]
        assert dists == sorted(dists)
        want = sorted(oracle_distance(q, p, obstacles) for p in entities)
        assert dists == pytest.approx(want)

    def test_empty_dataset_stream(self):
        tree, idx = _setup([rect_obstacle(0, 0, 0, 1, 1)], [])
        assert list(iter_obstacle_nearest(tree, idx, Point(0, 0))) == []
