"""White-box tests for ODJ internals: seed-side selection and the
per-seed graph reuse the paper motivates (Sec. 5's five-pairs example)."""

import pytest

from repro.core import obstacle_distance_join
from repro.core.source import build_obstacle_index
from repro.geometry import Point, Rect
from repro.index import RStarTree, str_pack
from tests.conftest import rect_obstacle


def _tree(points):
    tree = RStarTree(max_entries=8, min_entries=3)
    str_pack(tree, [(p, Rect.from_point(p)) for p in points])
    return tree


class TestSeedSideSelection:
    """The paper's example: five candidate pairs over two distinct
    s-objects need only two visibility graphs (seeded from S)."""

    def _paper_example(self):
        # s1 pairs with t1, t2, t3; s2 pairs with t1, t4 (as in Sec. 5)
        far = [rect_obstacle(0, 500, 500, 510, 510)]
        s1, s2 = Point(0, 0), Point(10, 0)
        t = [Point(5.5, 1), Point(0, 2), Point(-1, 1), Point(11, 1)]
        idx = build_obstacle_index(far, max_entries=8, min_entries=3)
        return _tree([s1, s2]), _tree(t), idx, (s1, s2), t

    def test_seeds_come_from_smaller_distinct_side(self):
        ts, tt, idx, (s1, s2), t = self._paper_example()
        # count obstacle range retrievals: one per seed => 2 when seeded
        # from S (|distinct S| = 2 < |distinct T| = 4)
        calls = []
        original = idx.obstacles_in_range

        def spy(center, radius):
            calls.append(center)
            return original(center, radius)

        idx.obstacles_in_range = spy  # type: ignore[assignment]
        result = obstacle_distance_join(ts, tt, idx, 6.0)
        assert {c for c in calls} <= {s1, s2}
        assert len(calls) == 2
        assert len(result) == 5

    def test_orientation_after_t_seeding(self):
        # invert the cardinalities so T provides the seeds
        far = [rect_obstacle(0, 500, 500, 510, 510)]
        s = [Point(float(i), 0.0) for i in range(6)]
        t = [Point(2.5, 1.0)]
        idx = build_obstacle_index(far, max_entries=8, min_entries=3)
        result = obstacle_distance_join(_tree(s), _tree(t), idx, 3.0)
        assert result
        for a, b, __ in result:
            assert a in s and b in t


class TestJoinDistances:
    def test_distances_exact_around_wall(self):
        wall = rect_obstacle(0, 4, -5, 6, 5)
        s = [Point(3, 0)]
        t = [Point(7, 0)]
        idx = build_obstacle_index([wall], max_entries=8, min_entries=3)
        detour = (
            Point(3, 0).distance(Point(4, 5))
            + 2.0
            + Point(6, 5).distance(Point(7, 0))
        )
        got = obstacle_distance_join(_tree(s), _tree(t), idx, detour + 0.01)
        assert len(got) == 1
        assert got[0][2] == pytest.approx(detour)
        # with the bound just below the detour, the pair is a false hit
        assert obstacle_distance_join(_tree(s), _tree(t), idx, detour - 0.01) == []
