"""Hypothesis strategies shared across property-based tests."""

from __future__ import annotations

from hypothesis import assume
from hypothesis import strategies as st

from repro.geometry import Point, Polygon, Rect
from repro.model import Obstacle

#: Bounded, finite coordinates: keeps geometry well-conditioned without
#: hiding interesting magnitudes.
coords = st.floats(
    min_value=-1000.0, max_value=1000.0, allow_nan=False, allow_infinity=False
)

points = st.builds(Point, coords, coords)


@st.composite
def rects(draw: st.DrawFn, min_extent: float = 0.0) -> Rect:
    """A valid Rect; ``min_extent`` forces positive width/height."""
    x0 = draw(coords)
    y0 = draw(coords)
    w = draw(st.floats(min_value=min_extent, max_value=500.0, allow_nan=False))
    h = draw(st.floats(min_value=min_extent, max_value=500.0, allow_nan=False))
    return Rect(x0, y0, x0 + w, y0 + h)


@st.composite
def disjoint_rect_obstacles(
    draw: st.DrawFn, max_count: int = 6, universe: float = 100.0
) -> list[Obstacle]:
    """A small set of pairwise-disjoint rectangle obstacles.

    Built on a coarse grid so disjointness holds by construction and
    shrinking stays effective.
    """
    cells = draw(
        st.lists(
            st.tuples(st.integers(0, 4), st.integers(0, 4)),
            min_size=1,
            max_size=max_count,
            unique=True,
        )
    )
    cell_size = universe / 5.0
    obstacles = []
    for oid, (i, j) in enumerate(cells):
        inset_x = draw(st.floats(min_value=0.05, max_value=0.3))
        inset_y = draw(st.floats(min_value=0.05, max_value=0.3))
        frac_w = draw(st.floats(min_value=0.2, max_value=0.6))
        frac_h = draw(st.floats(min_value=0.2, max_value=0.6))
        x0 = i * cell_size + inset_x * cell_size
        y0 = j * cell_size + inset_y * cell_size
        rect = Rect(x0, y0, x0 + frac_w * cell_size, y0 + frac_h * cell_size)
        obstacles.append(Obstacle(oid, Polygon.from_rect(rect)))
    return obstacles


@st.composite
def free_points(
    draw: st.DrawFn,
    obstacles: list[Obstacle],
    min_count: int = 1,
    max_count: int = 8,
    universe: float = 100.0,
) -> list[Point]:
    """Points guaranteed outside every obstacle (interior and boundary).

    Draws that leave fewer than ``min_count`` survivors after the
    obstacle filter are rejected (``assume``), so callers really do
    receive at least ``min_count`` points.
    """
    raw = draw(
        st.lists(
            st.tuples(
                st.floats(min_value=-5.0, max_value=universe + 5.0, allow_nan=False),
                st.floats(min_value=-5.0, max_value=universe + 5.0, allow_nan=False),
            ),
            min_size=min_count,
            max_size=max_count,
            unique=True,
        )
    )
    pts = []
    for x, y in raw:
        p = Point(x, y)
        if not any(o.polygon.contains_or_boundary(p) for o in obstacles):
            pts.append(p)
    assume(len(pts) >= min_count)
    return pts
