"""Unit tests for repro.geometry.circle."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry import Circle, Point, Polygon, Rect
from tests.strategies import points, rects


class TestCircleBasics:
    def test_negative_radius_rejected(self):
        with pytest.raises(GeometryError):
            Circle(Point(0, 0), -1.0)

    def test_zero_radius_allowed(self):
        c = Circle(Point(1, 1), 0.0)
        assert c.contains_point(Point(1, 1))
        assert not c.contains_point(Point(1, 1.001))

    def test_contains_point(self):
        c = Circle(Point(0, 0), 5.0)
        assert c.contains_point(Point(3, 4))  # on the boundary
        assert c.contains_point(Point(1, 1))
        assert not c.contains_point(Point(4, 4))

    def test_equality_hash(self):
        assert Circle(Point(0, 0), 2.0) == Circle(Point(0, 0), 2.0)
        assert hash(Circle(Point(0, 0), 2.0)) == hash(Circle(Point(0, 0), 2.0))

    def test_bounding_rect(self):
        r = Circle(Point(5, 5), 2.0).bounding_rect()
        assert r == Rect(3, 3, 7, 7)


class TestCircleRect:
    def test_intersects_overlapping(self):
        assert Circle(Point(0, 0), 5).intersects_rect(Rect(3, 3, 10, 10))

    def test_intersects_containing(self):
        assert Circle(Point(5, 5), 1).intersects_rect(Rect(0, 0, 10, 10))

    def test_disjoint_corner(self):
        # nearest corner at distance sqrt(2) * 4 > 5
        assert not Circle(Point(0, 0), 5).intersects_rect(Rect(4, 4, 10, 10))

    def test_touching(self):
        assert Circle(Point(0, 0), 4).intersects_rect(Rect(4, -1, 10, 1))

    @given(rects(), points, st.floats(0, 100))
    def test_consistent_with_mindist(self, r, p, radius):
        hit = Circle(p, radius).intersects_rect(r)
        md = r.mindist_point(p)
        if md < radius - 1e-9:
            assert hit
        elif md > radius + 1e-9:
            assert not hit


class TestCirclePolygon:
    def test_polygon_inside_circle(self):
        poly = Polygon.from_rect(Rect(1, 1, 2, 2))
        assert Circle(Point(0, 0), 10).intersects_polygon(poly)

    def test_center_inside_polygon(self):
        poly = Polygon.from_rect(Rect(0, 0, 10, 10))
        assert Circle(Point(5, 5), 0.1).intersects_polygon(poly)

    def test_disjoint(self):
        poly = Polygon.from_rect(Rect(10, 10, 12, 12))
        assert not Circle(Point(0, 0), 5).intersects_polygon(poly)

    def test_mbr_hit_polygon_miss(self):
        # triangle whose MBR intersects the circle but whose body does
        # not: nearest triangle point is on the chord x + y = 14, at
        # distance 14/sqrt(2) ~ 9.9, while the MBR corner is at ~5.66.
        tri = Polygon([Point(10, 4), Point(10, 10), Point(4, 10)])
        c = Circle(Point(0, 0), 7.0)
        assert c.intersects_rect(tri.mbr)
        assert not c.intersects_polygon(tri)
