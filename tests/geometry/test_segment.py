"""Unit and property tests for repro.geometry.segment predicates."""

import pytest
from hypothesis import given

from repro.geometry import (
    CCW,
    COLLINEAR,
    CW,
    Point,
    ccw,
    cross,
    on_segment,
    point_segment_distance,
    segment_intersection_params,
    segment_intersection_point,
    segments_intersect,
    segments_properly_intersect,
)
from tests.strategies import points

O = Point(0, 0)
X = Point(10, 0)
Y = Point(0, 10)


class TestOrientation:
    def test_ccw_left_turn(self):
        assert ccw(O, X, Point(5, 5)) == CCW

    def test_ccw_right_turn(self):
        assert ccw(O, X, Point(5, -5)) == CW

    def test_collinear(self):
        assert ccw(O, X, Point(20, 0)) == COLLINEAR
        assert ccw(O, X, Point(-7, 0)) == COLLINEAR

    def test_near_collinear_within_eps(self):
        assert ccw(O, Point(1000, 0), Point(500, 1e-8)) == COLLINEAR

    def test_cross_sign(self):
        assert cross(O, X, Y) > 0
        assert cross(O, Y, X) < 0

    @given(points, points, points)
    def test_antisymmetry(self, a, b, c):
        assert ccw(a, b, c) == -ccw(a, c, b)

    @given(points, points)
    def test_degenerate_is_collinear(self, a, b):
        assert ccw(a, a, b) == COLLINEAR
        assert ccw(a, b, b) == COLLINEAR


class TestOnSegment:
    def test_midpoint_on(self):
        assert on_segment(O, X, Point(5, 0))

    def test_endpoints_on(self):
        assert on_segment(O, X, O)
        assert on_segment(O, X, X)

    def test_beyond_not_on(self):
        assert not on_segment(O, X, Point(11, 0))
        assert not on_segment(O, X, Point(-1, 0))

    def test_off_line_not_on(self):
        assert not on_segment(O, X, Point(5, 1))

    @given(points, points)
    def test_midpoint_always_on(self, a, b):
        m = Point((a.x + b.x) / 2, (a.y + b.y) / 2)
        assert on_segment(a, b, m)


class TestProperIntersection:
    def test_crossing(self):
        assert segments_properly_intersect(
            Point(0, 0), Point(10, 10), Point(0, 10), Point(10, 0)
        )

    def test_t_junction_not_proper(self):
        # touches at an endpoint of the second segment
        assert not segments_properly_intersect(
            Point(0, 0), Point(10, 0), Point(5, 0), Point(5, 10)
        )

    def test_shared_endpoint_not_proper(self):
        assert not segments_properly_intersect(O, X, X, Point(20, 10))

    def test_collinear_overlap_not_proper(self):
        assert not segments_properly_intersect(O, X, Point(5, 0), Point(20, 0))

    def test_disjoint(self):
        assert not segments_properly_intersect(O, X, Point(0, 5), Point(10, 5))

    @given(points, points, points, points)
    def test_symmetry(self, a, b, c, d):
        assert segments_properly_intersect(a, b, c, d) == segments_properly_intersect(
            c, d, a, b
        )


class TestClosedIntersection:
    def test_touching_counts(self):
        assert segments_intersect(Point(0, 0), Point(10, 0), Point(5, 0), Point(5, 10))

    def test_shared_endpoint_counts(self):
        assert segments_intersect(O, X, X, Point(20, 10))

    def test_disjoint_parallel(self):
        assert not segments_intersect(O, X, Point(0, 5), Point(10, 5))

    @given(points, points, points, points)
    def test_symmetry(self, a, b, c, d):
        assert segments_intersect(a, b, c, d) == segments_intersect(c, d, a, b)

    @given(points, points)
    def test_self_intersection(self, a, b):
        assert segments_intersect(a, b, a, b)


class TestIntersectionParams:
    def test_proper_cross_param(self):
        params = segment_intersection_params(
            Point(0, 0), Point(10, 0), Point(5, -5), Point(5, 5)
        )
        assert params == [pytest.approx(0.5)]

    def test_no_intersection(self):
        assert (
            segment_intersection_params(O, X, Point(0, 1), Point(10, 1)) == []
        )

    def test_collinear_overlap_interval(self):
        params = segment_intersection_params(
            Point(0, 0), Point(10, 0), Point(4, 0), Point(20, 0)
        )
        assert params == [pytest.approx(0.4), pytest.approx(1.0)]

    def test_collinear_disjoint(self):
        assert (
            segment_intersection_params(O, X, Point(11, 0), Point(20, 0)) == []
        )

    def test_touch_at_endpoint(self):
        params = segment_intersection_params(O, X, X, Point(20, 5))
        assert params == [pytest.approx(1.0)]

    def test_degenerate_first_segment(self):
        assert segment_intersection_params(O, O, Point(-1, 0), Point(1, 0)) == [0.0]
        assert segment_intersection_params(O, O, Point(1, 1), Point(2, 2)) == []

    def test_intersection_point(self):
        ip = segment_intersection_point(
            Point(0, 0), Point(10, 10), Point(0, 10), Point(10, 0)
        )
        assert ip is not None
        assert ip.distance(Point(5, 5)) < 1e-9
        assert segment_intersection_point(O, X, Point(0, 5), Point(10, 5)) is None


class TestPointSegmentDistance:
    def test_projection_interior(self):
        assert point_segment_distance(Point(5, 3), O, X) == pytest.approx(3.0)

    def test_clamped_to_endpoint(self):
        assert point_segment_distance(Point(13, 4), O, X) == pytest.approx(5.0)

    def test_degenerate_segment(self):
        assert point_segment_distance(Point(3, 4), O, O) == pytest.approx(5.0)

    def test_on_segment_zero(self):
        assert point_segment_distance(Point(5, 0), O, X) == 0.0

    @given(points, points, points)
    def test_lower_bounds_endpoint_distance(self, p, a, b):
        d = point_segment_distance(p, a, b)
        assert d <= p.distance(a) + 1e-9
        assert d <= p.distance(b) + 1e-9
