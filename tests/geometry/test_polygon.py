"""Unit and property tests for repro.geometry.polygon."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry import Point, Polygon, Rect

SQUARE = Polygon.from_rect(Rect(0, 0, 10, 10))
L_SHAPE = Polygon(
    [Point(0, 0), Point(4, 0), Point(4, 2), Point(2, 2), Point(2, 4), Point(0, 4)]
)


class TestConstruction:
    def test_too_few_vertices(self):
        with pytest.raises(GeometryError):
            Polygon([Point(0, 0), Point(1, 1)])

    def test_repeated_vertex_rejected(self):
        with pytest.raises(GeometryError):
            Polygon([Point(0, 0), Point(0, 0), Point(1, 1), Point(0, 1)])

    def test_zero_area_rejected(self):
        with pytest.raises(GeometryError):
            Polygon([Point(0, 0), Point(5, 0), Point(10, 0)])

    def test_orientation_normalised_to_ccw(self):
        cw = Polygon([Point(0, 0), Point(0, 10), Point(10, 10), Point(10, 0)])
        assert cw.area() > 0

    def test_closing_vertex_dropped(self):
        p = Polygon([Point(0, 0), Point(4, 0), Point(4, 4), Point(0, 0)])
        assert len(p.vertices) == 3

    def test_from_rect_degenerate_rejected(self):
        with pytest.raises(GeometryError):
            Polygon.from_rect(Rect(0, 0, 0, 5))

    def test_regular_polygon(self):
        hexagon = Polygon.regular(Point(0, 0), 10, 6)
        assert len(hexagon.vertices) == 6
        assert hexagon.is_convex()
        with pytest.raises(GeometryError):
            Polygon.regular(Point(0, 0), 10, 2)
        with pytest.raises(GeometryError):
            Polygon.regular(Point(0, 0), -1, 5)

    def test_validate_simple_accepts_square(self):
        SQUARE.validate_simple()

    def test_zero_area_bowtie_rejected_at_construction(self):
        with pytest.raises(GeometryError):
            Polygon([Point(0, 0), Point(10, 10), Point(10, 0), Point(0, 10)])

    def test_validate_simple_rejects_self_intersection(self):
        # non-zero-area self-intersecting quad: edge 2 crosses edge 0
        crossed = Polygon(
            [Point(0, 0), Point(6, 0), Point(6, 6), Point(2, -2)]
        )
        with pytest.raises(GeometryError):
            crossed.validate_simple()


class TestMeasures:
    def test_square_area_perimeter(self):
        assert SQUARE.area() == pytest.approx(100.0)
        assert SQUARE.perimeter() == pytest.approx(40.0)

    def test_l_shape_area(self):
        assert L_SHAPE.area() == pytest.approx(12.0)

    def test_centroid_square(self):
        assert SQUARE.centroid().distance(Point(5, 5)) < 1e-9

    def test_convexity(self):
        assert SQUARE.is_convex()
        assert not L_SHAPE.is_convex()

    def test_mbr(self):
        assert L_SHAPE.mbr == Rect(0, 0, 4, 4)

    def test_edges_count(self):
        assert len(SQUARE.edges()) == 4
        assert len(L_SHAPE.edges()) == 6


class TestContainment:
    def test_interior(self):
        assert SQUARE.contains(Point(5, 5))

    def test_boundary_not_strict_interior(self):
        assert not SQUARE.contains(Point(0, 5))
        assert not SQUARE.contains(Point(10, 10))
        assert SQUARE.contains_or_boundary(Point(0, 5))

    def test_outside(self):
        assert not SQUARE.contains(Point(-1, 5))
        assert not SQUARE.contains_or_boundary(Point(11, 5))

    def test_l_shape_notch_outside(self):
        assert not L_SHAPE.contains(Point(3, 3))
        assert L_SHAPE.contains(Point(1, 1))

    def test_on_boundary(self):
        assert SQUARE.on_boundary(Point(5, 0))
        assert SQUARE.on_boundary(Point(10, 10))
        assert not SQUARE.on_boundary(Point(5, 5))

    def test_ray_through_vertex_counted_once(self):
        diamond = Polygon([Point(5, 0), Point(10, 5), Point(5, 10), Point(0, 5)])
        # horizontal ray from this point passes exactly through vertex (10, 5)
        assert diamond.contains(Point(5, 5))
        assert not diamond.contains(Point(-1, 5))

    @given(st.floats(0, 1), st.floats(0, 1))
    def test_boundary_point_at_is_on_boundary(self, s, t):
        p = L_SHAPE.boundary_point_at(s)
        assert L_SHAPE.on_boundary(p)
        q = SQUARE.boundary_point_at(t)
        assert SQUARE.on_boundary(q)


class TestCrossesInterior:
    def test_straight_through(self):
        assert SQUARE.crosses_interior(Point(-5, 5), Point(15, 5))

    def test_along_edge_is_grazing(self):
        assert not SQUARE.crosses_interior(Point(-5, 0), Point(15, 0))
        assert not SQUARE.crosses_interior(Point(0, 0), Point(10, 0))

    def test_diagonal_of_square(self):
        assert SQUARE.crosses_interior(Point(0, 0), Point(10, 10))

    def test_corner_graze(self):
        # passes exactly through corner (0, 10) staying outside
        assert not SQUARE.crosses_interior(Point(-5, 5), Point(5, 15))

    def test_corner_entering(self):
        # enters through corner (0, 0) diagonally
        assert SQUARE.crosses_interior(Point(-5, -5), Point(5, 5))

    def test_fully_outside(self):
        assert not SQUARE.crosses_interior(Point(-5, -5), Point(15, -5))

    def test_endpoint_on_boundary_leaving_outward(self):
        assert not SQUARE.crosses_interior(Point(5, 0), Point(5, -10))

    def test_endpoint_on_boundary_entering(self):
        assert SQUARE.crosses_interior(Point(5, 0), Point(5, 10 - 1e-6))

    def test_chord_between_boundary_points(self):
        assert SQUARE.crosses_interior(Point(0, 5), Point(10, 5))

    def test_l_shape_notch_pass(self):
        # passes through the notch region (outside the L)
        assert not L_SHAPE.crosses_interior(Point(3, 5), Point(5, 3))

    def test_l_shape_through_arm(self):
        assert L_SHAPE.crosses_interior(Point(-1, 1), Point(5, 1))

    def test_segment_far_away(self):
        assert not SQUARE.crosses_interior(Point(100, 100), Point(200, 200))


class TestDistanceToPoint:
    def test_inside_zero(self):
        assert SQUARE.distance_to_point(Point(5, 5)) == 0.0

    def test_boundary_zero(self):
        assert SQUARE.distance_to_point(Point(0, 5)) == 0.0

    def test_outside_axis(self):
        assert SQUARE.distance_to_point(Point(13, 5)) == pytest.approx(3.0)

    def test_outside_corner(self):
        assert SQUARE.distance_to_point(Point(13, 14)) == pytest.approx(5.0)


@given(st.integers(3, 12), st.floats(1.0, 50.0))
def test_regular_polygon_area_formula(sides, radius):
    poly = Polygon.regular(Point(0, 0), radius, sides)
    expected = 0.5 * sides * radius * radius * math.sin(2 * math.pi / sides)
    assert poly.area() == pytest.approx(expected, rel=1e-9)


@given(st.integers(3, 10))
def test_regular_polygon_centroid_is_center(sides):
    poly = Polygon.regular(Point(3, 7), 5.0, sides)
    assert poly.centroid().distance(Point(3, 7)) < 1e-9
