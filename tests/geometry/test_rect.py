"""Unit and property tests for repro.geometry.rect."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry import Point, Rect
from tests.strategies import points, rects


class TestConstruction:
    def test_invalid_raises(self):
        with pytest.raises(GeometryError):
            Rect(5, 0, 4, 1)
        with pytest.raises(GeometryError):
            Rect(0, 5, 1, 4)

    def test_degenerate_point_rect_allowed(self):
        r = Rect.from_point(Point(2, 3))
        assert r.area() == 0.0
        assert r.contains_point(Point(2, 3))

    def test_from_points(self):
        r = Rect.from_points([Point(1, 5), Point(3, 2), Point(2, 8)])
        assert (r.minx, r.miny, r.maxx, r.maxy) == (1, 2, 3, 8)

    def test_from_points_empty_raises(self):
        with pytest.raises(GeometryError):
            Rect.from_points([])

    def test_union_all(self):
        r = Rect.union_all([Rect(0, 0, 1, 1), Rect(5, 5, 6, 7)])
        assert (r.minx, r.miny, r.maxx, r.maxy) == (0, 0, 6, 7)

    def test_union_all_empty_raises(self):
        with pytest.raises(GeometryError):
            Rect.union_all([])

    def test_equality_and_hash(self):
        assert Rect(0, 0, 1, 1) == Rect(0, 0, 1, 1)
        assert hash(Rect(0, 0, 1, 1)) == hash(Rect(0, 0, 1, 1))
        assert Rect(0, 0, 1, 1) != Rect(0, 0, 1, 2)


class TestMeasures:
    def test_area_margin(self):
        r = Rect(0, 0, 4, 3)
        assert r.area() == 12.0
        assert r.margin() == 7.0
        assert r.width == 4.0 and r.height == 3.0

    def test_center_and_corners(self):
        r = Rect(0, 0, 4, 2)
        assert r.center() == Point(2, 1)
        assert len(r.corners()) == 4

    def test_expanded(self):
        r = Rect(1, 1, 3, 3).expanded(1)
        assert (r.minx, r.miny, r.maxx, r.maxy) == (0, 0, 4, 4)


class TestRelations:
    def test_intersects_overlapping(self):
        assert Rect(0, 0, 2, 2).intersects(Rect(1, 1, 3, 3))

    def test_intersects_touching_edge(self):
        assert Rect(0, 0, 2, 2).intersects(Rect(2, 0, 4, 2))

    def test_disjoint(self):
        assert not Rect(0, 0, 1, 1).intersects(Rect(2, 2, 3, 3))

    def test_contains(self):
        outer, inner = Rect(0, 0, 10, 10), Rect(2, 2, 5, 5)
        assert outer.contains_rect(inner)
        assert not inner.contains_rect(outer)
        assert outer.contains_point(Point(0, 0))  # boundary included
        assert not outer.contains_point(Point(-0.1, 5))

    def test_union_and_intersection_area(self):
        a, b = Rect(0, 0, 2, 2), Rect(1, 1, 3, 3)
        assert a.union(b) == Rect(0, 0, 3, 3)
        assert a.intersection_area(b) == pytest.approx(1.0)
        assert a.intersection_area(Rect(5, 5, 6, 6)) == 0.0

    def test_enlargement(self):
        a = Rect(0, 0, 2, 2)
        assert a.enlargement(Rect(1, 1, 2, 2)) == 0.0
        assert a.enlargement(Rect(0, 0, 4, 2)) == pytest.approx(4.0)


class TestDistanceMetrics:
    def test_mindist_point_inside_zero(self):
        assert Rect(0, 0, 4, 4).mindist_point(Point(2, 2)) == 0.0

    def test_mindist_point_axis(self):
        assert Rect(0, 0, 4, 4).mindist_point(Point(7, 2)) == pytest.approx(3.0)

    def test_mindist_point_corner(self):
        assert Rect(0, 0, 4, 4).mindist_point(Point(7, 8)) == pytest.approx(5.0)

    def test_maxdist_point(self):
        assert Rect(0, 0, 3, 4).maxdist_point(Point(0, 0)) == pytest.approx(5.0)

    def test_mindist_rect_zero_when_intersecting(self):
        assert Rect(0, 0, 2, 2).mindist_rect(Rect(1, 1, 3, 3)) == 0.0

    def test_mindist_rect_diagonal(self):
        assert Rect(0, 0, 1, 1).mindist_rect(Rect(4, 5, 6, 6)) == pytest.approx(5.0)

    @given(rects(), points)
    def test_mindist_lower_bounds_all_contained_points(self, r, p):
        # mindist to the rect never exceeds the distance to its corners
        # or center (all points of the rect).
        md = r.mindist_point(p)
        for corner in r.corners():
            assert md <= p.distance(corner) + 1e-6

    @given(rects(), points)
    def test_maxdist_upper_bounds_corners(self, r, p):
        xd = r.maxdist_point(p)
        for corner in r.corners():
            assert xd >= p.distance(corner) - 1e-6

    @given(rects(), rects())
    def test_mindist_rect_symmetric(self, a, b):
        assert a.mindist_rect(b) == pytest.approx(b.mindist_rect(a))

    @given(rects(), rects())
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        assert u.contains_rect(a) and u.contains_rect(b)

    @given(rects(), rects())
    def test_enlargement_nonnegative(self, a, b):
        assert a.enlargement(b) >= -1e-9

    @given(rects(), rects(), points)
    def test_mindist_rect_lower_bounds_point_pairs(self, a, b, p):
        # distance between the rects lower-bounds distance from any
        # point of a to any point of b; spot-check with corners.
        d = a.mindist_rect(b)
        for ca in a.corners():
            for cb in b.corners():
                assert d <= ca.distance(cb) + 1e-6
