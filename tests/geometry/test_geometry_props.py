"""Cross-cutting geometry property tests.

These pin down relationships *between* the primitives that the
visibility layer depends on (e.g. `crosses_interior` versus
containment and proper intersection), beyond the per-class unit tests.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.geometry import (
    Point,
    Polygon,
    Rect,
    midpoint,
    on_segment,
    segment_intersection_params,
    segments_properly_intersect,
)

SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

box_points = st.builds(
    Point,
    st.floats(-30, 30, allow_nan=False),
    st.floats(-30, 30, allow_nan=False),
)

SQUARE = Polygon.from_rect(Rect(0, 0, 10, 10))


@SETTINGS
@given(box_points, box_points)
def test_crosses_interior_symmetric(a, b):
    if a == b:
        return
    assert SQUARE.crosses_interior(a, b) == SQUARE.crosses_interior(b, a)


@SETTINGS
@given(box_points, box_points)
def test_both_strictly_inside_implies_crossing(a, b):
    if a == b:
        return
    if SQUARE.contains(a) and SQUARE.contains(b):
        assert SQUARE.crosses_interior(a, b)


@SETTINGS
@given(box_points, box_points)
def test_proper_edge_crossing_implies_interior_crossing(a, b):
    if a == b:
        return
    # The property holds only away from the polygon boundary: an
    # endpoint within tolerance scale of a vertex (e.g. Point(0, 4e-54)
    # next to the origin corner) or of an edge (e.g. Point(1, 3e-9)
    # just above the bottom edge) can properly cross an edge while its
    # interior excursion stays below tolerance — a graze, which the
    # tolerant crosses_interior rightly ignores.  EPS (1e-9) is
    # *relative* to segment lengths, which reach ~85 in this +-30 box
    # around the 10x10 square, so absolute tolerance distances reach
    # ~1e-7 here.
    from repro.geometry.segment import point_segment_distance

    if any(
        point_segment_distance(p, e1, e2) < 1e-7
        for e1, e2 in SQUARE.edges()
        for p in (a, b)
    ):
        return
    for e1, e2 in SQUARE.edges():
        if segments_properly_intersect(a, b, e1, e2):
            # crossing an edge transversally enters the interior
            assert SQUARE.crosses_interior(a, b)
            return


@SETTINGS
@given(box_points, box_points)
def test_interior_crossing_requires_boundary_contact_or_containment(a, b):
    if a == b:
        return
    if SQUARE.crosses_interior(a, b):
        touches = any(
            segment_intersection_params(a, b, e1, e2)
            for e1, e2 in SQUARE.edges()
        )
        inside = SQUARE.contains_or_boundary(a) or SQUARE.contains_or_boundary(b)
        assert touches or inside


@SETTINGS
@given(box_points, box_points)
def test_midpoint_on_segment(a, b):
    assert on_segment(a, b, midpoint(a, b))


@SETTINGS
@given(box_points, box_points, st.floats(0.0, 1.0, allow_nan=False))
def test_interpolated_point_on_segment(a, b, t):
    # For extreme t the interpolation can round one coordinate while the
    # other keeps a subnormal offset, yielding a point that is within
    # ~1e-77 of the segment in absolute terms but angularly far from it
    # (on_segment uses a relative, angle-based epsilon).  The invariant
    # is therefore: accepted by the predicate, or absolutely negligible
    # distance from the segment.
    from repro.geometry import point_segment_distance

    p = Point(a.x + t * (b.x - a.x), a.y + t * (b.y - a.y))
    assert on_segment(a, b, p) or point_segment_distance(p, a, b) < 1e-12


@SETTINGS
@given(
    st.floats(-20, 20, allow_nan=False),
    st.floats(-20, 20, allow_nan=False),
    st.floats(0.5, 15, allow_nan=False),
    st.floats(0.5, 15, allow_nan=False),
)
def test_rect_polygon_containment_agrees(x, y, w, h):
    rect = Rect(x, y, x + w, y + h)
    poly = Polygon.from_rect(rect)
    probe = Point(x + w / 3, y + h / 3)
    assert poly.contains(probe) == (
        rect.contains_point(probe)
        and probe.x not in (rect.minx, rect.maxx)
        and probe.y not in (rect.miny, rect.maxy)
    )


@SETTINGS
@given(box_points)
def test_distance_zero_iff_inside_or_boundary(p):
    d = SQUARE.distance_to_point(p)
    if SQUARE.contains_or_boundary(p):
        assert d == 0.0
    else:
        assert d > 0.0


@SETTINGS
@given(st.integers(3, 9), st.floats(1.0, 10.0, allow_nan=False))
def test_regular_polygon_boundary_points_on_boundary(sides, radius):
    poly = Polygon.regular(Point(0, 0), radius, sides)
    for i in range(8):
        p = poly.boundary_point_at(i / 8.0)
        assert poly.on_boundary(p)
        assert not poly.contains(p)
