"""Unit and property tests for repro.geometry.point."""

import math

import pytest
from hypothesis import given

from repro.geometry import Point, distance, distance_sq, midpoint
from tests.strategies import points


class TestPointBasics:
    def test_coordinates_are_floats(self):
        p = Point(1, 2)
        assert isinstance(p.x, float)
        assert isinstance(p.y, float)

    def test_equality_is_exact(self):
        assert Point(1.0, 2.0) == Point(1.0, 2.0)
        assert Point(1.0, 2.0) != Point(1.0, 2.0000001)

    def test_hashable_and_usable_as_dict_key(self):
        d = {Point(1, 2): "a", Point(3, 4): "b"}
        assert d[Point(1, 2)] == "a"

    def test_immutable(self):
        p = Point(1, 2)
        with pytest.raises(AttributeError):
            p.x = 5.0

    def test_ordering_lexicographic(self):
        assert Point(1, 5) < Point(2, 0)
        assert Point(1, 2) < Point(1, 3)
        assert not Point(2, 0) < Point(1, 5)

    def test_iteration_and_tuple(self):
        p = Point(3, 4)
        assert tuple(p) == (3.0, 4.0)
        assert p.as_tuple() == (3.0, 4.0)

    def test_repr_contains_coordinates(self):
        assert "3" in repr(Point(3, 4)) and "4" in repr(Point(3, 4))

    def test_not_equal_to_other_types(self):
        assert Point(1, 2) != (1.0, 2.0)


class TestPointArithmetic:
    def test_add_sub(self):
        assert Point(1, 2) + Point(3, 4) == Point(4, 6)
        assert Point(3, 4) - Point(1, 2) == Point(2, 2)

    def test_scalar_multiplication(self):
        assert Point(1, 2) * 3 == Point(3, 6)
        assert 3 * Point(1, 2) == Point(3, 6)

    def test_norm(self):
        assert Point(3, 4).norm() == pytest.approx(5.0)


class TestDistances:
    def test_distance_345(self):
        assert Point(0, 0).distance(Point(3, 4)) == pytest.approx(5.0)

    def test_distance_sq(self):
        assert Point(0, 0).distance_sq(Point(3, 4)) == pytest.approx(25.0)

    def test_module_level_helpers(self):
        a, b = Point(1, 1), Point(4, 5)
        assert distance(a, b) == pytest.approx(5.0)
        assert distance_sq(a, b) == pytest.approx(25.0)

    def test_midpoint(self):
        assert midpoint(Point(0, 0), Point(2, 4)) == Point(1, 2)

    @given(points, points)
    def test_distance_symmetry(self, a, b):
        assert a.distance(b) == pytest.approx(b.distance(a))

    @given(points)
    def test_distance_to_self_zero(self, p):
        assert p.distance(p) == 0.0

    @given(points, points, points)
    def test_triangle_inequality(self, a, b, c):
        assert a.distance(c) <= a.distance(b) + b.distance(c) + 1e-9

    @given(points, points)
    def test_distance_sq_consistent(self, a, b):
        assert math.sqrt(distance_sq(a, b)) == pytest.approx(distance(a, b))
