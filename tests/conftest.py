"""Shared fixtures and oracles for the repro test suite."""

from __future__ import annotations

import random

import pytest

from repro.geometry import Point, Polygon, Rect
from repro.index import RStarTree
from repro.model import Obstacle
from repro.visibility import VisibilityGraph, shortest_path_dist


def rect_obstacle(oid: int, x0: float, y0: float, x1: float, y1: float) -> Obstacle:
    """Convenience: a rectangular obstacle."""
    return Obstacle(oid, Polygon.from_rect(Rect(x0, y0, x1, y1)))


def random_disjoint_rects(
    rng: random.Random,
    count: int,
    universe: float = 100.0,
    min_size: float = 2.0,
    max_size: float = 15.0,
    gap: float = 0.5,
) -> list[Obstacle]:
    """Up to ``count`` disjoint rectangle obstacles via rejection sampling."""
    placed: list[Rect] = []
    obstacles: list[Obstacle] = []
    for __ in range(count):
        for __attempt in range(50):
            x0 = rng.uniform(0, universe * 0.8)
            y0 = rng.uniform(0, universe * 0.8)
            w = rng.uniform(min_size, max_size)
            h = rng.uniform(min_size, max_size)
            rect = Rect(x0, y0, x0 + w, y0 + h)
            if all(not rect.expanded(gap).intersects(p) for p in placed):
                placed.append(rect)
                obstacles.append(rect_obstacle(len(obstacles), x0, y0, x0 + w, y0 + h))
                break
    return obstacles


def random_free_points(
    rng: random.Random,
    count: int,
    obstacles: list[Obstacle],
    universe: float = 100.0,
) -> list[Point]:
    """Points outside every obstacle's closed region."""
    points: list[Point] = []
    while len(points) < count:
        p = Point(rng.uniform(-5, universe + 5), rng.uniform(-5, universe + 5))
        if not any(o.polygon.contains_or_boundary(p) for o in obstacles):
            points.append(p)
    return points


def oracle_distance(a: Point, b: Point, obstacles: list[Obstacle]) -> float:
    """Ground-truth obstructed distance via a *global* visibility graph."""
    graph = VisibilityGraph.build([a, b], obstacles)
    return shortest_path_dist(graph, a, b)


def small_tree(points: list[Point], *, max_entries: int = 8) -> RStarTree:
    """An R*-tree with tiny fanout (deep trees from few points)."""
    tree = RStarTree(max_entries=max_entries, min_entries=max(2, max_entries // 3))
    for p in points:
        tree.insert(p, Rect.from_point(p))
    return tree


@pytest.fixture
def paper_scene() -> tuple[list[Obstacle], list[Point]]:
    """A hand-checked scene in the spirit of the paper's Fig. 4.

    Universe roughly 20 x 20; three rectangular obstacles around the
    origin-side query point, entities sprinkled on both sides.
    """
    obstacles = [
        rect_obstacle(0, 4.0, 2.0, 6.0, 8.0),
        rect_obstacle(1, 8.0, 5.0, 14.0, 7.0),
        rect_obstacle(2, 3.0, 11.0, 9.0, 13.0),
    ]
    entities = [
        Point(2.0, 5.0),
        Point(7.0, 3.0),
        Point(7.0, 9.5),
        Point(10.0, 4.0),
        Point(12.0, 8.0),
        Point(5.0, 14.0),
        Point(16.0, 6.0),
    ]
    return obstacles, entities


@pytest.fixture
def dense_scene() -> tuple[list[Obstacle], list[Point]]:
    """A larger randomized-but-deterministic scene for integration tests."""
    rng = random.Random(20040314)  # EDBT 2004 conference date
    obstacles = random_disjoint_rects(rng, 25)
    entities = random_free_points(rng, 40, obstacles)
    return obstacles, entities
