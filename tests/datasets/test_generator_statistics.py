"""Statistical properties of the workload generators.

The benchmarks' validity rests on the generators actually having the
properties DESIGN.md claims (hotspot bias, entities tracking the
obstacle distribution); these tests measure them.
"""

import math
import random

from repro.datasets import (
    clustered_obstacles,
    entities_following_obstacles,
    street_grid_obstacles,
    uniform_obstacles,
)
from repro.geometry import Point, Rect


def _density_in(rect, obstacles):
    return sum(1 for o in obstacles if rect.contains_point(o.mbr.center()))


class TestHotspotBias:
    def test_hotspots_concentrate_streets(self):
        universe = Rect(0, 0, 10_000, 10_000)
        biased = street_grid_obstacles(
            800, universe=universe, seed=3, hotspots=1, hotspot_bias=8.0
        )
        flat = street_grid_obstacles(
            800, universe=universe, seed=3, hotspots=0
        )
        # variance of per-quadrant counts should be higher with a hotspot
        def quadrant_counts(obs):
            mid_x, mid_y = 5000, 5000
            quads = [0, 0, 0, 0]
            for o in obs:
                c = o.mbr.center()
                quads[(c.x >= mid_x) * 2 + (c.y >= mid_y)] += 1
            return quads

        def variance(xs):
            mean = sum(xs) / len(xs)
            return sum((x - mean) ** 2 for x in xs) / len(xs)

        assert variance(quadrant_counts(biased)) > variance(quadrant_counts(flat))


class TestEntityDistributionTracking:
    def test_entities_denser_where_obstacles_denser(self):
        universe = Rect(0, 0, 10_000, 10_000)
        obstacles = street_grid_obstacles(
            600, universe=universe, seed=11, hotspots=1, hotspot_bias=8.0
        )
        entities = entities_following_obstacles(2000, obstacles, seed=12)
        # split universe into 4 quadrants; entity share should track
        # obstacle share within a loose factor
        for quad in (
            Rect(0, 0, 5000, 5000),
            Rect(5000, 0, 10_000, 5000),
            Rect(0, 5000, 5000, 10_000),
            Rect(5000, 5000, 10_000, 10_000),
        ):
            obs_share = _density_in(quad, obstacles) / len(obstacles)
            ent_share = sum(1 for p in entities if quad.contains_point(p)) / len(
                entities
            )
            assert abs(obs_share - ent_share) < 0.12

    def test_boundary_fraction_honoured(self):
        obstacles = street_grid_obstacles(100, seed=21)
        entities = entities_following_obstacles(
            400, obstacles, seed=22, on_boundary_fraction=0.5
        )
        on_boundary = sum(
            1
            for p in entities
            if any(o.polygon.on_boundary(p) for o in obstacles)
        )
        # rejection re-draws blur the ratio; expect it in a wide band
        assert 0.3 <= on_boundary / len(entities) <= 0.75


class TestGeneratorsScale:
    def test_uniform_density_spread(self):
        obstacles = uniform_obstacles(300, seed=5)
        xs = sorted(o.mbr.center().x for o in obstacles)
        # roughly uniform: the median should sit near the universe middle
        median = xs[len(xs) // 2]
        assert 3000 < median < 7000

    def test_clustered_more_concentrated_than_uniform(self):
        uniform = uniform_obstacles(300, seed=6)
        clustered = clustered_obstacles(300, seed=6, clusters=2, spread=0.05)

        def mean_nn_dist(obs, sample=60):
            rng = random.Random(1)
            centers = [o.mbr.center() for o in obs]
            picks = rng.sample(centers, sample)
            total = 0.0
            for p in picks:
                total += min(
                    p.distance(c) for c in centers if c != p
                )
            return total / sample

        assert mean_nn_dist(clustered) < mean_nn_dist(uniform)
