"""Tests for dataset persistence round-trips."""

import pytest

from repro.datasets import (
    load_obstacles,
    load_points,
    save_obstacles,
    save_points,
    street_grid_obstacles,
)
from repro.datasets.io import content_hash
from repro.errors import DatasetError
from repro.geometry import Point


class TestPointsIO:
    def test_roundtrip(self, tmp_path):
        pts = [Point(1.5, 2.25), Point(-3.125, 4.0), Point(0.1, 0.2)]
        path = tmp_path / "points.txt"
        save_points(path, pts)
        assert load_points(path) == pts

    def test_exact_float_roundtrip(self, tmp_path):
        pts = [Point(1 / 3, 2 / 7)]
        path = tmp_path / "points.txt"
        save_points(path, pts)
        assert load_points(path) == pts  # repr() round-trips floats

    def test_blank_lines_and_comments_skipped(self, tmp_path):
        path = tmp_path / "points.txt"
        path.write_text("# header\n\n1.0 2.0\n")
        assert load_points(path) == [Point(1, 2)]

    def test_malformed_rejected(self, tmp_path):
        path = tmp_path / "points.txt"
        path.write_text("1.0 2.0 3.0\n")
        with pytest.raises(DatasetError):
            load_points(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "points.txt"
        path.write_text("")
        assert load_points(path) == []


class TestObstaclesIO:
    def test_roundtrip(self, tmp_path):
        obstacles = street_grid_obstacles(12, seed=3)
        path = tmp_path / "obstacles.txt"
        save_obstacles(path, obstacles)
        loaded = load_obstacles(path)
        assert len(loaded) == len(obstacles)
        for a, b in zip(loaded, obstacles):
            assert a.oid == b.oid
            assert a.polygon.vertices == b.polygon.vertices

    def test_malformed_rejected(self, tmp_path):
        path = tmp_path / "obstacles.txt"
        path.write_text("0 1.0 2.0\n")  # too few coordinates
        with pytest.raises(DatasetError):
            load_obstacles(path)

    def test_even_field_count_rejected(self, tmp_path):
        path = tmp_path / "obstacles.txt"
        path.write_text("0 1.0 2.0 3.0 4.0 5.0 6.0 7.0\n")  # 7 coords
        with pytest.raises(DatasetError):
            load_obstacles(path)


class TestContentHash:
    def test_stable_across_save(self, tmp_path):
        """Saving the same data twice yields the same content hash —
        the property snapshot dataset refs rely on."""
        obstacles = street_grid_obstacles(8, seed=5)
        a = tmp_path / "a.txt"
        b = tmp_path / "b.txt"
        save_obstacles(a, obstacles)
        save_obstacles(b, obstacles)
        assert content_hash(a) == content_hash(b)

    def test_snapshot_roundtrip_verifies_by_hash(self, tmp_path):
        """A snapshot referencing a dataset file reloads by content
        hash: mtime changes are ignored, content changes refused."""
        import os

        from repro import ObstacleDatabase

        obstacles = street_grid_obstacles(8, seed=5)
        data = tmp_path / "obstacles.txt"
        save_obstacles(data, obstacles)
        db = ObstacleDatabase(load_obstacles(data))
        snap = tmp_path / "scene.snap"
        db.save(snap, dataset_refs={"obstacles": data})
        os.utime(data, (1, 1))
        loaded = ObstacleDatabase.load(snap)
        assert len(loaded.obstacle_index) == len(obstacles)
        data.write_text(data.read_text().replace("0 ", "9 ", 1))
        with pytest.raises(DatasetError):
            ObstacleDatabase.load(snap)
