"""Tests for the synthetic workload generators."""

import random

import pytest

from repro.datasets import (
    clustered_obstacles,
    entities_following_obstacles,
    make_workload,
    query_points,
    street_grid_obstacles,
    uniform_obstacles,
)
from repro.errors import DatasetError
from repro.geometry import Rect


def _pairwise_disjoint(obstacles):
    rects = [o.mbr for o in obstacles]
    for i, a in enumerate(rects):
        for b in rects[i + 1 :]:
            if a.expanded(-1e-9).intersects(b.expanded(-1e-9)):
                return False
    return True


class TestStreetGrid:
    def test_count_and_ids(self):
        obs = street_grid_obstacles(50, seed=1)
        assert len(obs) == 50
        assert sorted(o.oid for o in obs) == list(range(50))

    def test_disjoint(self):
        obs = street_grid_obstacles(120, seed=2)
        assert _pairwise_disjoint(obs)

    def test_deterministic(self):
        a = street_grid_obstacles(30, seed=3)
        b = street_grid_obstacles(30, seed=3)
        assert [o.mbr for o in a] == [o.mbr for o in b]

    def test_different_seeds_differ(self):
        a = street_grid_obstacles(30, seed=3)
        b = street_grid_obstacles(30, seed=4)
        assert [o.mbr for o in a] != [o.mbr for o in b]

    def test_elongated_streets(self):
        obs = street_grid_obstacles(80, seed=5)
        elongated = sum(
            1
            for o in obs
            if max(o.mbr.width, o.mbr.height) > 3 * min(o.mbr.width, o.mbr.height)
        )
        assert elongated > len(obs) * 0.9  # streets are thin

    def test_within_universe(self):
        universe = Rect(0, 0, 500, 500)
        obs = street_grid_obstacles(40, universe=universe, seed=6)
        for o in obs:
            assert universe.contains_rect(o.mbr)

    def test_invalid_n(self):
        with pytest.raises(DatasetError):
            street_grid_obstacles(0)

    def test_impossible_density(self):
        with pytest.raises(DatasetError):
            street_grid_obstacles(10_000, universe=Rect(0, 0, 10, 10),
                                  street_width=(5.0, 6.0))


class TestUniformAndClustered:
    def test_uniform_disjoint(self):
        obs = uniform_obstacles(60, seed=1)
        assert len(obs) == 60
        assert _pairwise_disjoint(obs)

    def test_clustered_disjoint(self):
        obs = clustered_obstacles(60, seed=1, clusters=4)
        assert len(obs) == 60
        assert _pairwise_disjoint(obs)

    def test_validation(self):
        with pytest.raises(DatasetError):
            uniform_obstacles(0)
        with pytest.raises(DatasetError):
            clustered_obstacles(5, clusters=0)

    def test_unachievable_density_raises(self):
        with pytest.raises(DatasetError):
            uniform_obstacles(
                1000,
                universe=Rect(0, 0, 10, 10),
                size_range=(5.0, 8.0),
                max_attempts_factor=5,
            )


class TestEntitySampler:
    def test_never_inside_obstacles(self):
        obs = street_grid_obstacles(60, seed=7)
        pts = entities_following_obstacles(200, obs, seed=8)
        assert len(pts) == 200
        for p in pts:
            assert not any(o.polygon.contains(p) for o in obs)

    def test_follows_obstacle_distribution(self):
        # each point must be near some obstacle (the sampler anchors on
        # boundaries)
        obs = street_grid_obstacles(60, seed=9)
        pts = entities_following_obstacles(100, obs, seed=10)
        for p in pts:
            nearest = min(o.polygon.distance_to_point(p) for o in obs)
            size = max(max(o.mbr.width, o.mbr.height) for o in obs)
            assert nearest <= size

    def test_boundary_fraction_one_puts_all_on_boundaries(self):
        obs = street_grid_obstacles(20, seed=11)
        pts = entities_following_obstacles(
            50, obs, seed=12, on_boundary_fraction=1.0
        )
        for p in pts:
            assert any(o.polygon.on_boundary(p) for o in obs)

    def test_requires_obstacles(self):
        with pytest.raises(DatasetError):
            entities_following_obstacles(5, [], seed=1)

    def test_zero_entities(self):
        obs = street_grid_obstacles(10, seed=13)
        assert entities_following_obstacles(0, obs) == []

    def test_query_points_outside_interiors(self):
        obs = street_grid_obstacles(30, seed=14)
        qs = query_points(40, obs, seed=15)
        assert len(qs) == 40
        for q in qs:
            assert not any(o.polygon.contains(q) for o in obs)


class TestWorkload:
    def test_make_workload(self):
        w = make_workload(40, {"s": 20, "t": 10}, 5, seed=3)
        assert len(w.obstacles) == 40
        assert len(w.entity_sets["s"]) == 20
        assert len(w.entity_sets["t"]) == 10
        assert len(w.queries) == 5
        assert w.universe.area() > 0

    def test_workload_deterministic(self):
        w1 = make_workload(20, {"s": 10}, 3, seed=5)
        w2 = make_workload(20, {"s": 10}, 3, seed=5)
        assert w1.entity_sets["s"] == w2.entity_sets["s"]
        assert w1.queries == w2.queries
