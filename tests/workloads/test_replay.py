"""Trace replay: answer alignment, parity across configs, bookkeeping."""

import math

import pytest

from repro.errors import DatasetError
from repro.geometry.rect import Rect
from repro.workloads.profiles import generate_trace
from repro.workloads.replay import (
    database_for_trace,
    replay_events,
    replay_trace,
    scene_for,
)
from repro.workloads.trace import WorkloadEvent

SCENE = {"n_obstacles": 40, "n_entities": 30}

METRIC_KEYS = {
    "events", "cpu_ms_total", "cpu_ms", "graph_builds", "cache_hits",
    "cache_misses", "hit_rate", "promotions", "policy_adjustments",
}


class TestReplay:
    def test_scene_is_cached_and_deterministic(self):
        a = scene_for(40, 7, 30)
        b = scene_for(40, 7, 30)
        assert a is b  # lru-cached: one geometry build per recipe
        obstacles, entities = a
        assert len(obstacles) == 40
        assert len(entities) == 30

    def test_answers_are_index_aligned(self):
        trace = generate_trace("churn-heavy", seed=2, n_events=48, **SCENE)
        answers, metrics = replay_trace(trace)
        assert len(answers) == len(trace.events)
        assert metrics["events"] == len(trace.events)
        for ev, answer in zip(trace.events, answers):
            if ev.kind in ("insert", "delete"):
                assert answer is None
            elif ev.kind == "distance":
                assert isinstance(answer, float)
                assert math.isfinite(answer)
            else:  # nearest / range
                assert isinstance(answer, list)

    def test_metrics_keys_complete(self):
        trace = generate_trace("uniform", seed=2, n_events=24, **SCENE)
        __, metrics = replay_trace(trace)
        assert set(metrics) == METRIC_KEYS
        assert metrics["graph_builds"] > 0
        assert 0.0 <= metrics["hit_rate"] <= 1.0

    def test_parity_across_cache_configs(self):
        # The headline invariant: snap quantum, capacity, and policy
        # are performance knobs — answers must compare equal bitwise.
        trace = generate_trace("zipf-hotspot", seed=5, n_events=64, **SCENE)
        exact, __ = replay_trace(trace, graph_cache_snap=0.0)
        snapped, __m = replay_trace(trace, graph_cache_snap=40.0)
        adaptive, __a = replay_trace(trace, cache_policy="adaptive")
        assert exact == snapped == adaptive

    def test_duplicate_insert_tag_rejected(self):
        trace = generate_trace("uniform", seed=2, n_events=8, **SCENE)
        db = database_for_trace(trace)
        rect_a = Rect(1.0, 1.0, 3.0, 3.0)
        rect_b = Rect(9990.0, 9990.0, 9992.0, 9992.0)
        events = [
            WorkloadEvent("insert", tag=1, rect=rect_a),
            WorkloadEvent("insert", tag=1, rect=rect_b),
        ]
        try:
            with pytest.raises(DatasetError, match="duplicate insert tag"):
                replay_events(db, events)
        finally:
            db.close()

    def test_delete_of_unknown_tag_rejected(self):
        trace = generate_trace("uniform", seed=2, n_events=8, **SCENE)
        db = database_for_trace(trace)
        try:
            with pytest.raises(DatasetError, match="unknown tag"):
                replay_events(db, [WorkloadEvent("delete", tag=99)])
        finally:
            db.close()

    def test_unknown_event_kind_rejected(self):
        trace = generate_trace("uniform", seed=2, n_events=8, **SCENE)
        db = database_for_trace(trace)
        try:
            with pytest.raises(DatasetError, match="unknown event kind"):
                replay_events(db, [WorkloadEvent("teleport")])
        finally:
            db.close()
