"""The ``repro-workloads`` CLI, driven through ``main(argv)``."""

import json

import pytest

from repro.workloads.cli import main
from repro.workloads.profiles import profile_names

GEN_ARGS = ["--seed", "3", "--events", "24", "--obstacles", "40",
            "--entities", "30"]


def _generate(tmp_path, profile="uniform", name="trace.wtrc", extra=()):
    path = tmp_path / name
    assert main(["generate", profile, "-o", str(path), *GEN_ARGS, *extra]) == 0
    return path


class TestList:
    def test_lists_every_profile_with_summary(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in profile_names():
            assert name in out
        assert "default events" in out


class TestGenerate:
    def test_writes_a_replayable_file(self, tmp_path, capsys):
        path = _generate(tmp_path)
        out = capsys.readouterr().out
        assert "wrote" in out and "24 event(s)" in out
        assert path.exists()

    def test_byte_identical_per_seed(self, tmp_path):
        a = _generate(tmp_path, name="a.wtrc")
        b = _generate(tmp_path, name="b.wtrc")
        assert a.read_bytes() == b.read_bytes()

    def test_unknown_profile_is_a_usage_error(self, tmp_path):
        with pytest.raises(SystemExit):  # argparse choices
            main(["generate", "rush-hour", "-o", str(tmp_path / "t.wtrc")])

    def test_bad_event_count_exits_one(self, tmp_path, capsys):
        path = tmp_path / "t.wtrc"
        code = main(
            ["generate", "uniform", "-o", str(path), "--events", "0"]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err
        assert not path.exists()


class TestDescribe:
    def test_plain_summary(self, tmp_path, capsys):
        path = _generate(tmp_path, profile="zipf-hotspot")
        capsys.readouterr()
        assert main(["describe", str(path)]) == 0
        out = capsys.readouterr().out
        assert "zipf-hotspot" in out
        assert "40 obstacle(s)" in out

    def test_json_summary(self, tmp_path, capsys):
        path = _generate(tmp_path)
        capsys.readouterr()
        assert main(["describe", str(path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["profile"] == "uniform"
        assert doc["events"] == 24
        assert sum(doc["kinds"].values()) == 24

    def test_missing_file_exits_one(self, tmp_path, capsys):
        assert main(["describe", str(tmp_path / "nope.wtrc")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_corrupt_file_exits_one(self, tmp_path, capsys):
        path = _generate(tmp_path)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        capsys.readouterr()
        assert main(["describe", str(path)]) == 1
        assert "checksum" in capsys.readouterr().err


class TestReplay:
    def test_replay_reports_cache_metrics(self, tmp_path, capsys):
        path = _generate(tmp_path)
        capsys.readouterr()
        assert main(["replay", str(path)]) == 0
        out = capsys.readouterr().out
        assert "graph builds" in out and "hit rate" in out

    def test_json_metrics(self, tmp_path, capsys):
        path = _generate(tmp_path)
        capsys.readouterr()
        assert main(["replay", str(path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["events"] == 24.0
        assert doc["graph_builds"] > 0

    def test_policy_and_snap_flags(self, tmp_path, capsys):
        path = _generate(tmp_path, profile="zipf-hotspot")
        capsys.readouterr()
        assert main(["replay", str(path), "--snap", "40"]) == 0
        assert main(["replay", str(path), "--policy", "adaptive"]) == 0
        out = capsys.readouterr().out
        assert "policy adjustment" in out

    def test_unknown_policy_exits_one(self, tmp_path, capsys):
        path = _generate(tmp_path)
        capsys.readouterr()
        assert main(["replay", str(path), "--policy", "learned"]) == 1
        assert "error:" in capsys.readouterr().err
