"""The named workload profiles: determinism, event mixes, free centres."""

import pytest

from repro.datasets.synthetic import DEFAULT_UNIVERSE
from repro.errors import DatasetError
from repro.workloads.profiles import (
    NEAREST_EVERY,
    PROFILES,
    RANGE_EVERY,
    _is_free,
    generate_trace,
    profile_names,
)
from repro.workloads.replay import scene_for
from repro.workloads.trace import encode_trace

#: Small scene + short streams keep the whole module fast.
SCENE = {"n_obstacles": 40, "n_entities": 30}


def _trace(profile, seed=3, n_events=48):
    return generate_trace(profile, seed=seed, n_events=n_events, **SCENE)


class TestGenerate:
    def test_profile_names_in_definition_order(self):
        assert profile_names() == list(PROFILES)
        assert set(profile_names()) == {
            "uniform", "zipf-hotspot", "commuter", "flash-crowd",
            "churn-heavy",
        }

    def test_unknown_profile_fails_fast(self):
        with pytest.raises(DatasetError, match="unknown workload profile"):
            generate_trace("rush-hour")

    def test_event_count_validation(self):
        with pytest.raises(DatasetError, match="n_events"):
            generate_trace("uniform", n_events=0)

    @pytest.mark.parametrize("profile", list(PROFILES))
    def test_deterministic_per_seed(self, profile):
        assert encode_trace(_trace(profile)) == encode_trace(_trace(profile))

    def test_seed_changes_the_stream(self):
        a = _trace("uniform", seed=1)
        b = _trace("uniform", seed=2)
        assert encode_trace(a) != encode_trace(b)
        assert a.scene_seed != b.scene_seed  # scene follows the seed

    def test_recipe_recorded(self):
        trace = _trace("zipf-hotspot", seed=9)
        assert trace.profile == "zipf-hotspot"
        assert trace.seed == 9
        assert trace.scene_seed == 9 ^ 0x5EED
        assert trace.n_obstacles == SCENE["n_obstacles"]
        assert trace.n_entities == SCENE["n_entities"]
        assert trace.set_name == "P1"

    def test_default_event_counts(self):
        for name, (__, default_events) in PROFILES.items():
            trace = generate_trace(name, seed=1, **SCENE)
            assert len(trace.events) >= default_events, name


class TestStreams:
    @pytest.mark.parametrize("profile", list(PROFILES))
    def test_centres_and_sources_in_free_space(self, profile):
        trace = _trace(profile)
        obstacles, entities = scene_for(
            trace.n_obstacles, trace.scene_seed, trace.n_entities
        )
        for ev in trace.events:
            if ev.center is not None:
                assert _is_free(ev.center, obstacles)
            if ev.kind == "distance":
                assert ev.source in entities

    def test_query_mix_cadence(self):
        trace = _trace("uniform", n_events=64)
        kinds = [ev.kind for ev in trace.events]
        for i, kind in enumerate(kinds):
            if i % RANGE_EVERY == RANGE_EVERY - 1:
                assert kind == "range"
            elif i % NEAREST_EVERY == NEAREST_EVERY - 1:
                assert kind == "nearest"
            else:
                assert kind == "distance"

    def test_commuter_clients_advance_in_small_steps(self):
        trace = _trace("commuter", n_events=60)
        n_clients = 6
        centres = [ev.center for ev in trace.events]
        for client in range(n_clients):
            path = centres[client::n_clients]
            steps = [a.distance(b) for a, b in zip(path, path[1:])]
            assert steps  # every client got ticks
            step = 0.0004 * DEFAULT_UNIVERSE.width
            assert all(s == pytest.approx(step) for s in steps)

    def test_churn_inserts_and_deletes_balance(self):
        trace = _trace("churn-heavy", n_events=64)
        counts = trace.kind_counts()
        assert counts["insert"] > 0
        assert counts["insert"] == counts["delete"]
        inserted, deleted = [], []
        for ev in trace.events:
            if ev.kind == "insert":
                assert ev.tag not in inserted
                inserted.append(ev.tag)
            elif ev.kind == "delete":
                assert ev.tag in inserted  # never deletes before insert
                assert ev.tag not in deleted
                deleted.append(ev.tag)
        assert sorted(inserted) == sorted(deleted)

    def test_churn_rects_avoid_obstacles_and_entities(self):
        trace = _trace("churn-heavy", n_events=64)
        obstacles, entities = scene_for(
            trace.n_obstacles, trace.scene_seed, trace.n_entities
        )
        for ev in trace.events:
            if ev.kind != "insert":
                continue
            assert not any(ev.rect.intersects(o.mbr) for o in obstacles)
            assert not any(ev.rect.contains_point(e) for e in entities)

    def test_flash_crowd_collapses_in_the_middle(self):
        trace = _trace("flash-crowd", n_events=120)
        centres = [ev.center for ev in trace.events]
        lead, tail = 120 // 10, 120 // 15
        middle = centres[lead : 120 - tail]

        def spread(points):
            xs = [p.x for p in points]
            ys = [p.y for p in points]
            return max(max(xs) - min(xs), max(ys) - min(ys))

        assert spread(middle) < spread(centres) / 4
