"""The workload-trace codec: round-trips, framing, corruption."""

import struct
import zlib

import pytest

from repro.errors import DatasetError
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.workloads.trace import (
    EVENT_KINDS,
    TRACE_HEADER_SIZE,
    TRACE_MAGIC,
    TRACE_VERSION,
    Trace,
    WorkloadEvent,
    decode_trace,
    encode_trace,
    read_trace,
    write_trace,
)


def _sample_trace() -> Trace:
    """One event of every kind, with non-default field values."""
    return Trace(
        profile="zipf-hotspot",
        seed=42,
        n_obstacles=80,
        scene_seed=42 ^ 0x5EED,
        n_entities=60,
        set_name="pois",
        events=[
            WorkloadEvent("nearest", center=Point(1.5, -2.25), k=4),
            WorkloadEvent("range", center=Point(10.0, 20.0), e=3.5),
            WorkloadEvent(
                "distance", source=Point(0.0, 0.0), center=Point(7.0, 8.0)
            ),
            WorkloadEvent(
                "insert", tag=3, rect=Rect(1.0, 2.0, 3.0, 4.0)
            ),
            WorkloadEvent("delete", tag=3),
        ],
    )


class TestCodec:
    def test_encode_decode_round_trip(self):
        trace = _sample_trace()
        decoded = decode_trace(encode_trace(trace))
        assert decoded == trace

    def test_encode_is_deterministic(self):
        assert encode_trace(_sample_trace()) == encode_trace(_sample_trace())

    def test_empty_event_stream_round_trips(self):
        trace = Trace("uniform", 0, 10, 0x5EED, 5)
        assert decode_trace(encode_trace(trace)) == trace

    def test_unknown_kind_fails_to_encode(self):
        trace = Trace("uniform", 0, 10, 0x5EED, 5)
        trace.events.append(WorkloadEvent("teleport", center=Point(0, 0)))
        with pytest.raises(DatasetError, match="teleport"):
            encode_trace(trace)

    def test_unknown_kind_code_fails_to_decode(self):
        trace = Trace("uniform", 0, 10, 0x5EED, 5)
        trace.events.append(WorkloadEvent("delete", tag=0))
        payload = bytearray(encode_trace(trace))
        # The kind byte of the single event is 8 tag bytes from the end.
        payload[-9] = len(EVENT_KINDS) + 1
        with pytest.raises(DatasetError, match="unknown workload event kind"):
            decode_trace(bytes(payload))

    def test_kind_counts(self):
        counts = _sample_trace().kind_counts()
        assert counts == dict.fromkeys(EVENT_KINDS, 1)


class TestFile:
    def _path(self, tmp_path):
        return tmp_path / "trace.wtrc"

    def test_write_read_round_trip(self, tmp_path):
        path = self._path(tmp_path)
        trace = _sample_trace()
        write_trace(path, trace)
        assert read_trace(path) == trace

    def test_file_is_byte_deterministic(self, tmp_path):
        a, b = tmp_path / "a.wtrc", tmp_path / "b.wtrc"
        write_trace(a, _sample_trace())
        write_trace(b, _sample_trace())
        assert a.read_bytes() == b.read_bytes()

    def test_no_tmp_file_left_behind(self, tmp_path):
        write_trace(self._path(tmp_path), _sample_trace())
        assert [p.name for p in tmp_path.iterdir()] == ["trace.wtrc"]

    def test_header_starts_with_magic(self, tmp_path):
        path = self._path(tmp_path)
        write_trace(path, _sample_trace())
        blob = path.read_bytes()
        assert blob[:8] == TRACE_MAGIC
        assert len(blob) > TRACE_HEADER_SIZE

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError, match="cannot read trace"):
            read_trace(tmp_path / "nope.wtrc")

    def test_truncated_header(self, tmp_path):
        path = self._path(tmp_path)
        path.write_bytes(b"RPRO")
        with pytest.raises(DatasetError, match="truncated trace header"):
            read_trace(path)

    def test_bad_magic(self, tmp_path):
        path = self._path(tmp_path)
        write_trace(path, _sample_trace())
        blob = bytearray(path.read_bytes())
        blob[:8] = b"RPROSNAP"
        path.write_bytes(bytes(blob))
        with pytest.raises(DatasetError, match="bad magic at offset 0"):
            read_trace(path)

    def test_header_checksum_mismatch(self, tmp_path):
        path = self._path(tmp_path)
        write_trace(path, _sample_trace())
        blob = bytearray(path.read_bytes())
        blob[12] ^= 0xFF  # flip a payload-length byte, keep the CRC
        path.write_bytes(bytes(blob))
        with pytest.raises(DatasetError, match="header checksum mismatch"):
            read_trace(path)

    def test_version_too_new_rejected(self, tmp_path):
        path = self._path(tmp_path)
        payload = encode_trace(_sample_trace())
        head = struct.pack(
            "<8sIQI",
            TRACE_MAGIC,
            TRACE_VERSION + 1,
            len(payload),
            zlib.crc32(payload),
        )
        path.write_bytes(
            head + struct.pack("<I", zlib.crc32(head)) + payload
        )
        with pytest.raises(DatasetError, match="newer than the supported"):
            read_trace(path)

    def test_truncated_payload(self, tmp_path):
        path = self._path(tmp_path)
        write_trace(path, _sample_trace())
        path.write_bytes(path.read_bytes()[:-10])
        with pytest.raises(DatasetError, match="truncated trace payload"):
            read_trace(path)

    def test_payload_checksum_mismatch(self, tmp_path):
        path = self._path(tmp_path)
        write_trace(path, _sample_trace())
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(DatasetError, match="payload checksum mismatch"):
            read_trace(path)

    def test_errors_name_the_path(self, tmp_path):
        path = self._path(tmp_path)
        write_trace(path, _sample_trace())
        blob = bytearray(path.read_bytes())
        blob[0] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(DatasetError, match="trace.wtrc"):
            read_trace(path)
