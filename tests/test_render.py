"""Tests for the SVG renderer."""

import xml.etree.ElementTree as ET

from repro.geometry import Point
from repro.render import save_svg, scene_to_svg
from tests.conftest import rect_obstacle

_SVG_NS = "{http://www.w3.org/2000/svg}"


def _parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


class TestSceneToSvg:
    def test_empty_scene_valid(self):
        root = _parse(scene_to_svg([]))
        assert root.tag == f"{_SVG_NS}svg"

    def test_obstacles_rendered_as_polygons(self):
        svg = scene_to_svg([rect_obstacle(0, 0, 0, 10, 10)])
        root = _parse(svg)
        polygons = root.findall(f"{_SVG_NS}polygon")
        assert len(polygons) == 1
        assert len(polygons[0].get("points").split()) == 4

    def test_entities_query_highlights(self):
        svg = scene_to_svg(
            [rect_obstacle(0, 0, 0, 5, 5)],
            entities=[Point(10, 10), Point(20, 20)],
            highlights=[Point(10, 10)],
            query=Point(0, -5),
        )
        root = _parse(svg)
        circles = root.findall(f"{_SVG_NS}circle")
        assert len(circles) == 4  # 2 entities + 1 highlight + 1 query

    def test_paths_and_ranges(self):
        svg = scene_to_svg(
            [rect_obstacle(0, 0, 0, 5, 5)],
            paths=[[Point(0, 0), Point(5, 8), Point(9, 9)]],
            ranges=[(Point(0, 0), 4.0)],
        )
        root = _parse(svg)
        assert len(root.findall(f"{_SVG_NS}polyline")) == 1
        circles = root.findall(f"{_SVG_NS}circle")
        assert any(c.get("fill") == "none" for c in circles)  # the range

    def test_y_axis_flipped(self):
        # the higher point must have the smaller SVG y
        svg = scene_to_svg([], entities=[Point(0, 0), Point(0, 100)])
        root = _parse(svg)
        circles = root.findall(f"{_SVG_NS}circle")
        ys = sorted(float(c.get("cy")) for c in circles)
        assert ys[0] < ys[1]

    def test_save_svg(self, tmp_path):
        out = tmp_path / "scene.svg"
        save_svg(str(out), scene_to_svg([rect_obstacle(0, 0, 0, 1, 1)]))
        assert out.exists()
        _parse(out.read_text())

    def test_custom_width(self):
        root = _parse(scene_to_svg([rect_obstacle(0, 0, 0, 2, 1)], width=400))
        assert root.get("width") == "400"
