"""Legacy setup shim.

The execution environment ships an older setuptools without the
``bdist_wheel``-based editable path, so ``pip install -e .`` falls back
to ``setup.py develop`` via ``--no-use-pep517``.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
