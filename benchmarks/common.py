"""Shared benchmark infrastructure.

The paper's setup (Sec. 7): |O| = 131,461 LA street MBRs, synthetic
entity sets with |P| from 0.01|O| to 10|O| following the obstacle
distribution, workloads of 200 queries, R*-trees with 4 KB pages and
LRU buffers of 10 % per tree.

Scaled-down defaults keep the pure-Python benches tractable; the
scaling preserves the paper's *regimes*:

* ``REPRO_BENCH_O`` (default 2,000) — obstacle cardinality.  Query
  ranges given as a fraction of the universe side are multiplied by
  ``sqrt(131461 / |O|)`` so the expected number of obstacles/entities
  per query disk matches the paper's.
* ``REPRO_BENCH_QUERIES`` (default 8) — queries per workload (the paper
  uses 200; the shapes stabilise far earlier).
* ``REPRO_BENCH_PAGE_ENTRIES`` (default 64) — R-tree fanout.  The
  paper's 204-entry nodes would make a 2,000-object tree two levels
  deep everywhere; 64 restores the multi-level structure that makes
  page-access curves meaningful at small scale.

Every metric dict produced here uses the same keys, so the pytest
benches and the standalone ``run_all.py`` share one code path.
"""

from __future__ import annotations

import math
import os
from functools import lru_cache

from repro.core.engine import ObstacleDatabase
from repro.datasets.synthetic import (
    DEFAULT_UNIVERSE,
    Workload,
    entities_following_obstacles,
    query_points,
    street_grid_obstacles,
)
from repro.geometry.point import Point
from repro.obs.timing import Timer
from repro.workloads.replay import database_for_trace, replay_events, replay_trace
from repro.workloads.trace import WorkloadEvent

#: The paper's obstacle cardinality (LA streets).
PAPER_OBSTACLES = 131_461

BENCH_O = int(os.environ.get("REPRO_BENCH_O", "2000"))
BENCH_QUERIES = int(os.environ.get("REPRO_BENCH_QUERIES", "8"))
BENCH_PAGE_ENTRIES = int(os.environ.get("REPRO_BENCH_PAGE_ENTRIES", "64"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "7"))

#: The x-axis values of the paper's figures.
CARDINALITY_RATIOS = (0.1, 0.5, 1.0, 2.0, 10.0)
JOIN_RATIOS = (0.01, 0.05, 0.1, 0.5, 1.0)
RANGE_FRACTIONS = (0.0001, 0.0005, 0.001, 0.005, 0.01)
JOIN_RANGE_FRACTIONS = (0.00001, 0.00005, 0.0001, 0.0005, 0.001)
K_VALUES = (1, 4, 16, 64, 256)


def scale_factor() -> float:
    """Range multiplier keeping per-disk object counts at paper levels."""
    return math.sqrt(PAPER_OBSTACLES / BENCH_O)


def scaled_range(fraction: float) -> float:
    """A query range given as a fraction of the universe side, rescaled
    for the reduced obstacle cardinality.

    Per-query disks: the sqrt scaling keeps the expected number of
    obstacles and entities per disk at the paper's levels (both scale
    with cardinality x area).
    """
    side = DEFAULT_UNIVERSE.width
    return fraction * side * scale_factor()


def scaled_join_range(fraction: float) -> float:
    """Join distance rescaled for the reduced cardinalities.

    Join outputs scale with |S| x |T| x e^2; both cardinalities shrink
    by ``PAPER_OBSTACLES / BENCH_O``, so ``e`` must grow *linearly* by
    the same factor to preserve the paper's result sizes (and with
    them the number of obstructed-distance evaluations).
    """
    side = DEFAULT_UNIVERSE.width
    return fraction * side * (PAPER_OBSTACLES / BENCH_O)


@lru_cache(maxsize=4)
def bench_workload(
    n_obstacles: int, entity_spec: tuple[tuple[str, int], ...], n_queries: int
) -> Workload:
    """Deterministic workload, cached across parameterized bench cases."""
    obstacles = street_grid_obstacles(n_obstacles, seed=BENCH_SEED)
    entity_sets = {
        name: entities_following_obstacles(
            count,
            obstacles,
            seed=BENCH_SEED * 10_007 + 31 * i,
            # Paper setup: entities hug obstacle boundaries (may lie on
            # them), which is what makes obstructed >> Euclidean for
            # points on opposite sides of a street.
            on_boundary_fraction=0.5,
            offset_fraction=0.15,
        )
        for i, (name, count) in enumerate(entity_spec)
    }
    queries = query_points(n_queries, obstacles, seed=BENCH_SEED * 7 + 3)
    return Workload(obstacles=obstacles, entity_sets=entity_sets, queries=queries)


@lru_cache(maxsize=4)
def bench_db(
    n_obstacles: int, entity_spec: tuple[tuple[str, int], ...], n_queries: int
) -> tuple[ObstacleDatabase, Workload]:
    """Workload plus a fully indexed ObstacleDatabase."""
    workload = bench_workload(n_obstacles, entity_spec, n_queries)
    db = ObstacleDatabase(
        workload.obstacles,
        max_entries=BENCH_PAGE_ENTRIES,
        min_entries=max(2, int(BENCH_PAGE_ENTRIES * 0.4)),
    )
    for name, points in workload.entity_sets.items():
        db.add_entity_set(name, points)
    return db, workload


def cardinality_spec() -> tuple[tuple[str, int], ...]:
    """Entity sets for the |P|/|O| sweeps (figs. 13, 15a, 16, 18a)."""
    return tuple(
        (f"P{ratio:g}", max(1, int(ratio * BENCH_O)))
        for ratio in CARDINALITY_RATIOS
    )


def join_spec() -> tuple[tuple[str, int], ...]:
    """Entity sets for the join/CP sweeps (figs. 19-22): S at several
    cardinalities plus the fixed T = 0.1|O|."""
    sets = [(f"S{ratio:g}", max(1, int(ratio * BENCH_O))) for ratio in JOIN_RATIOS]
    sets.append(("T", max(1, int(0.1 * BENCH_O))))
    return tuple(sets)


# --------------------------------------------------------------- measurements
def run_or_workload(
    db: ObstacleDatabase,
    workload: Workload,
    set_name: str,
    queries: list[Point],
    e: float,
) -> dict[str, float]:
    """Execute an OR workload; return the paper's fig. 13-15 metrics."""
    points = workload.entity_sets[set_name]
    db.reset_stats(clear_buffers=True)
    timer = Timer()
    results = []
    for q in queries:
        with timer:
            results.append(db.range(set_name, q, e))
    stats = db.stats()
    n = len(queries)
    false_hits = 0
    hits = 0
    for q, res in zip(queries, results):
        candidates = sum(1 for p in points if p.distance(q) <= e)
        false_hits += candidates - len(res)
        hits += len(res)
    return {
        "entity_pa": stats[f"entities:{set_name}"]["misses"] / n,
        "obstacle_pa": stats["obstacles:obstacles"]["misses"] / n,
        "cpu_ms": timer.elapsed_ms / n,
        "false_hit_ratio": false_hits / hits if hits else 0.0,
        "result_size": hits / n,
    }


def run_onn_workload(
    db: ObstacleDatabase,
    workload: Workload,
    set_name: str,
    queries: list[Point],
    k: int,
) -> dict[str, float]:
    """Execute an ONN workload; return the paper's fig. 16-18 metrics."""
    points = workload.entity_sets[set_name]
    db.reset_stats(clear_buffers=True)
    timer = Timer()
    results = []
    for q in queries:
        with timer:
            results.append(db.nearest(set_name, q, k))
    stats = db.stats()
    n = len(queries)
    false_hits = 0
    for q, res in zip(queries, results):
        euclid_knn = set(sorted(points, key=lambda p: p.distance_sq(q))[:k])
        obstructed = {p for p, __ in res}
        false_hits += len(euclid_knn - obstructed)
    return {
        "entity_pa": stats[f"entities:{set_name}"]["misses"] / n,
        "obstacle_pa": stats["obstacles:obstacles"]["misses"] / n,
        "cpu_ms": timer.elapsed_ms / n,
        "false_hit_ratio": false_hits / (k * n),
    }


def run_odj(
    db: ObstacleDatabase,
    s_name: str,
    t_name: str,
    e: float,
    *,
    hilbert: bool = True,
) -> dict[str, float]:
    """Execute one ODJ; return the paper's fig. 19-20 metrics."""
    db.reset_stats(clear_buffers=True)
    timer = Timer()
    with timer:
        result = db.distance_join(s_name, t_name, e, hilbert_order_seeds=hilbert)
    stats = db.stats()
    entity_pa = (
        stats[f"entities:{s_name}"]["misses"] + stats[f"entities:{t_name}"]["misses"]
    )
    return {
        "entity_pa": float(entity_pa),
        "obstacle_pa": float(stats["obstacles:obstacles"]["misses"]),
        "obstacle_reads": float(stats["obstacles:obstacles"]["reads"]),
        "cpu_s": timer.elapsed,
        "result_size": float(len(result)),
    }


def run_ocp(
    db: ObstacleDatabase, s_name: str, t_name: str, k: int
) -> dict[str, float]:
    """Execute one OCP; return the paper's fig. 21-22 metrics."""
    db.reset_stats(clear_buffers=True)
    timer = Timer()
    with timer:
        result = db.closest_pairs(s_name, t_name, k)
    stats = db.stats()
    entity_pa = (
        stats[f"entities:{s_name}"]["misses"] + stats[f"entities:{t_name}"]["misses"]
    )
    return {
        "entity_pa": float(entity_pa),
        "obstacle_pa": float(stats["obstacles:obstacles"]["misses"]),
        "cpu_s": timer.elapsed,
        "result_size": float(len(result)),
    }


def queries_for(cost_class: int) -> int:
    """Workload size per cost class (1 = cheap ... 4 = very expensive).

    Keeps total bench time bounded while leaving the cheap
    configurations statistically meaningful.
    """
    return max(2, BENCH_QUERIES // cost_class)


def run_repeated_distance(
    db: ObstacleDatabase,
    pairs: list[tuple[Point, Point]],
    *,
    persistent: bool = True,
) -> dict[str, float]:
    """Execute a repeated obstructed-distance workload.

    ``persistent=True`` routes every pair through the database's
    shared :class:`~repro.runtime.context.QueryContext` (graphs cached
    across calls); ``persistent=False`` reproduces the seed behaviour
    — a fresh computer, and therefore a fresh visibility graph, per
    call.  The returned ``graph_builds`` counter is the headline
    metric: the cache's whole purpose is to push it far below the
    number of calls.
    """
    from repro.runtime.context import QueryContext

    db.reset_stats(clear_buffers=True)
    timer = Timer()
    if persistent:
        with timer:
            for a, b in pairs:
                db.obstructed_distance(a, b)
        graph_builds = db.runtime_stats()["graph_builds"]
    else:
        builds = 0
        with timer:
            for a, b in pairs:
                context = QueryContext(db.obstacle_index)
                context.distance(a, b)
                builds += context.stats.graph_builds
        graph_builds = builds
    stats = db.stats()
    n = len(pairs)
    return {
        "obstacle_pa": stats["obstacles:obstacles"]["misses"] / n,
        "obstacle_reads": stats["obstacles:obstacles"]["reads"] / n,
        "cpu_ms": timer.elapsed_ms / n,
        "graph_builds": float(graph_builds),
    }


@lru_cache(maxsize=4)
def batch_bench_db(
    n_obstacles: int,
    entity_spec: tuple[tuple[str, int], ...],
    n_queries: int,
    shards: int | None = None,
) -> tuple[ObstacleDatabase, Workload]:
    """Like :func:`bench_db`, with optional sharded obstacle storage.

    Cached separately per ``shards`` value so sharded/monolithic
    comparisons run on the *same* workload object.
    """
    workload = bench_workload(n_obstacles, entity_spec, n_queries)
    db = ObstacleDatabase(
        workload.obstacles,
        max_entries=BENCH_PAGE_ENTRIES,
        min_entries=max(2, int(BENCH_PAGE_ENTRIES * 0.4)),
        shards=shards,
    )
    for name, points in workload.entity_sets.items():
        db.add_entity_set(name, points)
    return db, workload


def run_batch_nearest(
    db: ObstacleDatabase,
    set_name: str,
    queries: list[Point],
    k: int,
    *,
    workers: int = 0,
    mode: str | None = None,
) -> tuple[list, dict[str, float]]:
    """Execute one ``batch_nearest`` workload; returns (results, metrics).

    ``workers=0`` is the sequential single-context path; ``workers>=2``
    exercises the parallel batch engine.  Metrics report wall-clock and
    the runtime's parallel/memo counters (page accesses are only
    meaningful for the sequential path — fork workers keep theirs).
    """
    db.reset_stats(clear_buffers=True)
    timer = Timer()
    with timer:
        results = db.batch_nearest(
            set_name, queries, k, workers=workers, mode=mode
        )
    runtime = db.runtime_stats()
    return results, {
        "cpu_s": timer.elapsed,
        "workers": float(workers),
        "parallel_batches": float(runtime["parallel_batches"]),
        "batch_memo_hits": float(runtime["batch_memo_hits"]),
    }


def parallel_speedup_target(
    workers: int,
    *,
    full: float = 2.0,
    reduced: float = 1.3,
    min_full_cores: int = 4,
) -> float | None:
    """The wall-clock speedup bar a ``workers``-worker pool must clear
    on this machine — or ``None`` when no parallel speedup is
    observable at all (fewer than 2 cores: parity-only runners).

    Every ``>= Nx`` parallel-speedup assertion in the benches and CI
    legs must route through this gate: on 2-3 cores a ``workers``-wide
    pool cannot reach the full bar by arithmetic, so the requirement
    drops to "clearly parallel", and on a single core it vanishes.
    """
    cores = os.cpu_count() or 1
    if cores < 2:
        return None
    return full if cores >= min(workers, min_full_cores) else reduced


# ----------------------------------------------------- moving-query workload
#: Steps of the moving-query benchmark path.
BENCH_MOVING_STEPS = int(os.environ.get("REPRO_BENCH_MOVING_STEPS", "48"))

#: Spatial cache quantum of the moving-query comparison, as a fraction
#: of the universe side.
MOVING_SNAP_FRACTION = 0.004

#: Per-step displacement of the moving query point, as a fraction of
#: the universe side (an order of magnitude below the snap quantum:
#: the near-duplicate-centre regime the spatial key targets).
MOVING_STEP_FRACTION = 0.0004


def moving_snap() -> float:
    """The spatial-key quantum used by the moving-query benches."""
    return DEFAULT_UNIVERSE.width * MOVING_SNAP_FRACTION


def moving_query_path(workload: Workload, n_steps: int) -> list[Point]:
    """A straight free-space trajectory of ``n_steps`` query positions.

    Starting from a workload query point, the path advances by
    ``MOVING_STEP_FRACTION`` of the universe side per step — a
    continuous-query client reporting its position every tick.  The
    anchor and direction are chosen so every position stays outside
    obstacle interiors (street-grid scenes have straight corridors): a
    centre *inside* an obstacle is disconnected from everything, and
    proving those ``inf`` distances would measure full-universe
    retrievals instead of cache behaviour.
    """
    step = DEFAULT_UNIVERSE.width * MOVING_STEP_FRACTION
    obstacles = workload.obstacles
    candidates = [
        [
            Point(q0.x + i * step * dx, q0.y + i * step * dy)
            for i in range(n_steps)
        ]
        for q0 in workload.queries
        for dx, dy in ((1.0, 0.0), (0.0, 1.0), (1.0, 0.6), (-1.0, 0.0))
    ]
    for path in candidates:
        if all(
            not (
                obs.mbr.contains_point(p)
                and obs.polygon.contains_or_boundary(p)
            )
            for p in path
            for obs in obstacles
        ):
            return path
    return candidates[0]  # no fully-free line: degrade gracefully


def moving_query_db(
    n_obstacles: int, snap: float, *, shards: int | None = None
) -> tuple[ObstacleDatabase, Workload]:
    """A database (with the given graph-cache snap quantum) over the
    standard bench workload, plus that workload."""
    workload = bench_workload(n_obstacles, (("P1", n_obstacles),), 8)
    db = ObstacleDatabase(
        workload.obstacles,
        max_entries=BENCH_PAGE_ENTRIES,
        min_entries=max(2, int(BENCH_PAGE_ENTRIES * 0.4)),
        graph_cache_snap=snap,
        shards=shards,
    )
    for name, points in workload.entity_sets.items():
        db.add_entity_set(name, points)
    return db, workload


def run_moving_query(
    db: ObstacleDatabase,
    workload: Workload,
    path: list[Point],
    *,
    set_name: str = "P1",
    n_sources: int = 4,
    cold: bool = True,
) -> tuple[list[list[float]], dict[str, float]]:
    """Execute a moving-query workload; returns (answers, metrics).

    At every path step the obstructed distances from the query's
    ``n_sources`` Euclidean-nearest entities are evaluated — the
    continuous-ONN inner loop.  ``graph_builds`` is the headline
    metric: with exact cache keys every step's centre is new (one full
    build per step); with a spatial key consecutive steps share
    coverage-guarded graphs.  ``cold=False`` keeps the graph cache and
    page buffers (counters are still zeroed) — the warm-start leg of
    the snapshot benchmark, where the cache arrived from disk.

    The execution engine is the shared workload-replay loop
    (:func:`repro.workloads.replay.replay_events`): the trajectory is
    lowered to ``distance`` events, replayed, and regrouped per step.
    """
    entities = workload.entity_sets[set_name]
    events = [
        WorkloadEvent("distance", center=q, source=p)
        for q in path
        for p in sorted(entities, key=q.distance)[:n_sources]
    ]
    flat, metrics = replay_events(
        db, events, set_name=set_name, clear_buffers=cold
    )
    answers = [
        flat[i : i + n_sources] for i in range(0, len(flat), n_sources)
    ]
    return answers, {
        "cpu_ms": metrics["cpu_ms_total"] / len(path),
        "graph_builds": metrics["graph_builds"],
        "cache_hits": metrics["cache_hits"],
        "cache_misses": metrics["cache_misses"],
        "promotions": metrics["promotions"],
    }


def snapshot_warm_comparison(
    n_obstacles: int, steps: int, snapshot_path: str
) -> tuple[bool, dict[str, float]]:
    """Cold-start vs snapshot warm-start on the moving-query workload.

    Runs the trajectory on a cold database (exact cache keys, so every
    step costs one full graph build), snapshots the now-warm database,
    restores it from disk, and replays the identical trajectory on the
    restored runtime.  Returns ``(answers_match, metrics)`` where the
    metrics carry the headline ``builds_cold`` / ``builds_warm`` pair
    (the acceptance bar: warm must build >= 3x fewer full graphs) plus
    snapshot size and save/load wall-clock.
    """
    db, workload = moving_query_db(n_obstacles, 0.0)
    path = moving_query_path(workload, steps)
    cold_answers, cold_metrics = run_moving_query(db, workload, path)
    save_timer = Timer()
    with save_timer:
        db.save(snapshot_path)
    load_timer = Timer()
    with load_timer:
        warm_db = ObstacleDatabase.load(snapshot_path)
    warm_answers, warm_metrics = run_moving_query(
        warm_db, workload, path, cold=False
    )
    builds_cold = cold_metrics["graph_builds"]
    builds_warm = warm_metrics["graph_builds"]
    reduction = builds_cold / builds_warm if builds_warm else float("inf")
    return cold_answers == warm_answers, {
        "builds_cold": builds_cold,
        "builds_warm": builds_warm,
        "build_reduction": reduction,
        "cold_ms": cold_metrics["cpu_ms"],
        "warm_ms": warm_metrics["cpu_ms"],
        "snapshot_bytes": float(os.path.getsize(snapshot_path)),
        "save_s": save_timer.elapsed,
        "load_s": load_timer.elapsed,
    }


# ------------------------------------------------- sustained serving workload
#: Steps (batches) of the sustained-serving benchmark.
BENCH_SERVE_STEPS = int(os.environ.get("REPRO_BENCH_SERVE_STEPS", "12"))

#: Moving clients served per step (one query per client per batch).
BENCH_SERVE_CLIENTS = 4


def serve_bench_db(
    n_obstacles: int, *, snap: float | None = None
) -> tuple[ObstacleDatabase, Workload]:
    """A *fresh* (never cached) database over the standard workload.

    The sustained-serving benches mutate their databases mid-run, so
    sharing the ``lru_cache``-backed :func:`bench_db` instances would
    poison every later bench on the same workload.  The workload object
    itself is still shared — only the indexes are rebuilt.
    """
    workload = bench_workload(n_obstacles, (("P1", n_obstacles),), 8)
    db = ObstacleDatabase(
        workload.obstacles,
        max_entries=BENCH_PAGE_ENTRIES,
        min_entries=max(2, int(BENCH_PAGE_ENTRIES * 0.4)),
        graph_cache_snap=moving_snap() if snap is None else snap,
    )
    for name, points in workload.entity_sets.items():
        db.add_entity_set(name, points)
    return db, workload


def serve_client_paths(
    workload: Workload, n_clients: int, n_steps: int
) -> list[list[Point]]:
    """Free-space trajectories for ``n_clients`` moving clients.

    Each client advances ``MOVING_STEP_FRACTION`` of the universe side
    per step from its own anchor query point — the near-duplicate-
    centre regime where a warm worker's snapped graph cache keeps
    serving without new builds, while a fork-per-batch child (whose
    cache updates die with it) rebuilds every step.  Clients with no
    obstacle-free straight line degrade to a stationary client.
    """
    step = DEFAULT_UNIVERSE.width * MOVING_STEP_FRACTION
    obstacles = workload.obstacles
    paths: list[list[Point]] = []
    for q0 in workload.queries:
        if len(paths) == n_clients:
            break
        for dx, dy in ((1.0, 0.0), (0.0, 1.0), (-1.0, 0.0), (0.0, -1.0)):
            path = [
                Point(q0.x + i * step * dx, q0.y + i * step * dy)
                for i in range(n_steps)
            ]
            if all(
                not (
                    obs.mbr.contains_point(p)
                    and obs.polygon.contains_or_boundary(p)
                )
                for p in path
                for obs in obstacles
            ):
                paths.append(path)
                break
        else:
            paths.append([q0] * n_steps)
    while len(paths) < n_clients:
        paths.append(list(paths[len(paths) % max(1, len(paths))]))
    return paths


def serve_mutation_schedule(
    workload: Workload, n_steps: int, *, period: int = 4
):
    """Per-step mutation actions for the mixed serving load.

    Every ``period`` steps a small free-space rectangle is inserted;
    two steps later it is deleted again, so the scene ends where it
    started and every (insert, delete) pair exercises the pool's
    replayable delta feed plus the cache's repair-first path.  Entries
    are ``("insert", tag, Rect)`` / ``("delete", tag)`` / ``None``.
    """
    from repro.geometry.rect import Rect

    side = DEFAULT_UNIVERSE.width * 0.002
    free_rects = []
    for q in workload.queries:
        r = Rect(q.x - 3 * side, q.y - 3 * side, q.x - 2 * side, q.y - 2 * side)
        if all(not r.intersects(obs.mbr) for obs in workload.obstacles):
            free_rects.append(r)
    schedule: list[tuple | None] = [None] * n_steps
    tag = 0
    for step in range(1, n_steps - 2, period):
        if tag >= len(free_rects):
            break
        schedule[step] = ("insert", tag, free_rects[tag])
        schedule[step + 2] = ("delete", tag)
        tag += 1
    return schedule


def run_sustained_serve(
    db: ObstacleDatabase,
    paths: list[list[Point]],
    schedule,
    *,
    set_name: str = "P1",
    k: int = 2,
    workers: int = 0,
    pool: str | None = None,
) -> tuple[list, dict[str, float]]:
    """Drive a mixed mutate/query/moving-client load; returns
    ``(answers, metrics)``.

    Each step applies that step's mutation (if any) and then serves one
    ``batch_nearest`` holding every client's current position, through
    the engine selected by ``workers``/``pool`` (sequential,
    fork-per-batch, or the persistent pool).  Metrics report sustained
    throughput (``qps``), per-batch latency percentiles from a
    :class:`~repro.serve.stats.LatencyHistogram` (``p50_ms`` /
    ``p99_ms``), and the deterministic ``graph_builds`` /
    ``pool_batches`` counters that explain *why* the engines differ.
    """
    from repro.serve.stats import LatencyHistogram

    db.reset_stats(clear_buffers=True)
    hist = LatencyHistogram()
    records: dict[int, object] = {}
    answers = []
    total = Timer()
    n_steps = len(paths[0])
    for step in range(n_steps):
        action = schedule[step] if step < len(schedule) else None
        if action is not None:
            if action[0] == "insert":
                __, tag, rect = action
                records[tag] = db.insert_obstacle(rect)
            else:
                db.delete_obstacle(records.pop(action[1]))
        batch = [path[step] for path in paths]
        step_timer = Timer()
        with step_timer, total:
            answers.append(
                db.batch_nearest(set_name, batch, k, workers=workers, pool=pool)
            )
        hist.record(step_timer.elapsed)
    runtime = db.runtime_stats()
    n_queries = n_steps * len(paths)
    return answers, {
        "qps": n_queries / total.elapsed if total.elapsed else float("inf"),
        "elapsed_s": total.elapsed,
        "p50_ms": hist.percentile(50) * 1000.0,
        "p99_ms": hist.percentile(99) * 1000.0,
        "graph_builds": float(runtime["graph_builds"]),
        "pool_batches": float(runtime["pool_batches"]),
        "parallel_batches": float(runtime["parallel_batches"]),
    }


def serve_warm_start_builds(
    db: ObstacleDatabase,
    centres: list[Point],
    *,
    set_name: str = "P1",
    k: int = 2,
    workers: int = 4,
) -> float:
    """Graph builds observed while warm workers serve covered centres.

    The parent first answers the batch sequentially (warming its
    snapped graph cache at every centre), counters are zeroed, and the
    persistent pool — whose workers boot from a snapshot *including*
    that warm cache — serves the identical batch.  Workers ship their
    runtime counters back on every reply, so the parent's
    ``graph_builds`` counts worker builds too; the acceptance bar is
    exactly ``0.0``.
    """
    db.batch_nearest(set_name, centres, k)
    db.reset_stats()
    db.batch_nearest(set_name, centres, k, workers=workers, pool="persistent")
    return float(db.runtime_stats()["graph_builds"])


def timed_graph_build(
    n_rects: int, method: str, seed: int = 7
) -> tuple[float, int]:
    """Build a full visibility graph over a street-grid scene with the
    given visibility backend; returns ``(seconds, edge_count)``."""
    from repro.datasets.synthetic import street_grid_obstacles
    from repro.visibility import VisibilityGraph

    obstacles = street_grid_obstacles(n_rects, seed=seed)
    timer = Timer()
    with timer:
        graph = VisibilityGraph.build([], obstacles, method=method)
    return timer.elapsed, graph.edge_count


# --------------------------------------------------------- tracing overhead
def trace_overhead_comparison(
    n_obstacles: int,
    *,
    rounds: int = 5,
    passes: int = 3,
    sample: float = 0.25,
) -> dict[str, float]:
    """Wall-clock cost of the tracing instrumentation on a warm
    nearest-query workload.

    Three timed configurations, best-of-``rounds`` each (minimum, not
    mean — scheduler noise only ever adds time):

    - ``stub``: the tracer's entry points replaced with bare lambdas,
      the cheapest the call sites can possibly be (the baseline a
      build without instrumentation would approach);
    - ``disabled``: the real tracer at sample rate 0 — the shipped
      default no-op fast path;
    - ``sampled``: sample rate ``sample``, slow log parked far above
      any real latency so the sink never fires.

    Each round replays the moving-query path ``passes`` times against
    the warmed cache, so the tracer call sites dominate proportionally
    to their true per-query density.  Returns the three timings plus
    the derived overhead ratios against the stub baseline.
    """
    import time

    from repro.obs.slowlog import SLOW_LOG
    from repro.obs.trace import NULL_SPAN, TRACER

    db, workload = moving_query_db(n_obstacles, moving_snap())
    probes = moving_query_path(workload, 12)

    def run() -> None:
        for __ in range(passes):
            for q in probes:
                db.nearest("P1", q, 4)

    def best_of(fn) -> float:
        best = float("inf")
        for __ in range(rounds):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    run()  # warm-up: graphs built, buffers resident
    prev_rate = TRACER.sample_rate
    prev_threshold = SLOW_LOG.threshold_ms
    try:
        # Stub baseline: shadow the instance methods with bare no-ops.
        TRACER.span = lambda name, **attrs: NULL_SPAN  # type: ignore[method-assign]
        TRACER.count = lambda name, n=1: None  # type: ignore[method-assign]
        TRACER.tracing = lambda: False  # type: ignore[method-assign]
        TRACER.graft = lambda payload: None  # type: ignore[method-assign]
        try:
            t_stub = best_of(run)
        finally:
            del TRACER.span, TRACER.count, TRACER.tracing, TRACER.graft
        TRACER.configure(0.0)
        t_disabled = best_of(run)
        SLOW_LOG.threshold_ms = 1e9
        TRACER.configure(sample)
        t_sampled = best_of(run)
    finally:
        TRACER.configure(prev_rate)
        TRACER.last_root = None
        SLOW_LOG.threshold_ms = prev_threshold
        SLOW_LOG.clear()
    return {
        "stub_s": t_stub,
        "disabled_s": t_disabled,
        "sampled_s": t_sampled,
        "sample_rate": sample,
        "queries_per_round": float(passes * len(probes)),
        "disabled_overhead": t_disabled / t_stub - 1.0,
        "sampled_overhead": t_sampled / t_stub - 1.0,
    }


def kernel_comparison(n_rects: int) -> dict[str, float]:
    """Visibility-backend comparison on one scene: per-backend build
    times, the numpy kernel's speedup, and an edge-parity flag."""
    results: dict[str, float] = {}
    edges = {}
    for method in ("python-sweep", "numpy-kernel"):
        seconds, edge_count = timed_graph_build(n_rects, method)
        results[f"{method}_s"] = seconds
        edges[method] = edge_count
    results["speedup"] = results["python-sweep_s"] / results["numpy-kernel_s"]
    results["edges"] = float(edges["python-sweep"])
    results["edges_match"] = float(
        edges["python-sweep"] == edges["numpy-kernel"]
    )
    return results


def field_engine_comparison(
    n_obstacles: int, rounds: int, *, n_queries: int = 4
) -> dict[str, float]:
    """Warm-cache range+nearest streams under each distance-field
    engine (``REPRO_FIELD_ENGINE=python`` vs ``csr``).

    The stream revisits a handful of centres ``rounds`` times — the
    serving steady state the CSR engine targets: after the first visit
    the frozen arrays and the per-source distance field are cached, so
    repeat visits reduce to int indexing plus one vectorized last leg,
    while the reference engine re-runs a dict Dijkstra per query.
    Returns per-engine CPU time, the speedup, and two exactness flags:
    ``parity`` (bit-identical answer streams) and ``counters_match``
    (identical graph-build counts and R-tree page traffic).
    """
    from repro.runtime.field import FIELD_ENGINE_ENV

    workload = bench_workload(
        n_obstacles, (("P1", n_obstacles),), n_queries
    )
    e = scaled_range(0.001) * math.sqrt(BENCH_O / n_obstacles)
    saved = os.environ.get(FIELD_ENGINE_ENV)
    runs: dict[str, tuple[list, dict[str, float]]] = {}
    try:
        for engine in ("python", "csr"):
            os.environ[FIELD_ENGINE_ENV] = engine
            db = ObstacleDatabase(
                workload.obstacles,
                max_entries=BENCH_PAGE_ENTRIES,
                min_entries=max(2, int(BENCH_PAGE_ENTRIES * 0.4)),
            )
            db.add_entity_set("P1", workload.entity_sets["P1"])
            events = [
                WorkloadEvent(kind, center=q, k=4, e=e)
                for __ in range(rounds)
                for q in workload.queries
                for kind in ("range", "nearest")
            ]
            answers, metrics = replay_events(db, events, set_name="P1")
            runtime = db.runtime_stats()
            pages = db.stats()["obstacles:obstacles"]
            runs[engine] = (
                answers,
                {
                    "cpu_s": metrics["cpu_ms_total"] / 1000.0,
                    "graph_builds": float(runtime["graph_builds"]),
                    "field_freezes": float(runtime["field_freezes"]),
                    "obstacle_reads": float(pages["reads"]),
                },
            )
    finally:
        if saved is None:
            os.environ.pop(FIELD_ENGINE_ENV, None)
        else:
            os.environ[FIELD_ENGINE_ENV] = saved
    py_answers, py = runs["python"]
    csr_answers, csr = runs["csr"]
    speedup = py["cpu_s"] / csr["cpu_s"] if csr["cpu_s"] else math.inf
    return {
        "python_cpu_s": py["cpu_s"],
        "csr_cpu_s": csr["cpu_s"],
        "speedup": speedup,
        # The wall-clock verdict, evaluated where it was measured (the
        # raw speedup rides in the JSON ungated, like the obs bars).
        "speedup_ok": float(speedup >= 3.0),
        "queries": float(2 * rounds * len(workload.queries)),
        "graph_builds": csr["graph_builds"],
        "field_freezes": csr["field_freezes"],
        "parity": float(py_answers == csr_answers),
        "counters_match": float(
            py["graph_builds"] == csr["graph_builds"]
            and py["obstacle_reads"] == csr["obstacle_reads"]
        ),
    }


# ---------------------------------------------------- adaptive cache policy
#: Profiles of the adaptive-policy comparison, in reporting order.
POLICY_PROFILES = (
    "uniform",
    "zipf-hotspot",
    "commuter",
    "flash-crowd",
    "churn-heavy",
)

#: A profile is a *win* when adaptive beats the best static config by
#: this factor on graph builds or hit rate...
POLICY_WIN_RATIO = 1.3
#: ...and a *loss* when adaptive needs more than this multiple of the
#: best static config's graph builds.
POLICY_LOSS_TOLERANCE = 1.05

#: Scene size of the policy comparison (kept below the other benches:
#: fifteen hundred replayed events dominate, not the scene).
POLICY_BENCH_OBSTACLES = 120
POLICY_BENCH_ENTITIES = 120

#: Events per profile trace; 0 keeps each profile's own default count
#: (the committed-baseline configuration).
BENCH_POLICY_EVENTS = int(os.environ.get("REPRO_BENCH_POLICY_EVENTS", "0"))


def adaptive_policy_comparison(
    n_obstacles: int = POLICY_BENCH_OBSTACLES,
    *,
    seed: int = BENCH_SEED,
    n_entities: int = POLICY_BENCH_ENTITIES,
) -> dict[str, object]:
    """Adaptive policy vs the best static knob, per workload profile.

    Every profile trace is replayed three times on identical scenes:
    exact keys (``snap=0``), the hand-tuned moving-query quantum
    (:func:`moving_snap`), and ``REPRO_CACHE_POLICY=adaptive`` learning
    its own knobs.  "Best static" is picked per profile *after the
    fact* — the strongest possible opponent.  The acceptance gate:
    adaptive wins (``>= POLICY_WIN_RATIO`` fewer graph builds or higher
    hit rate) on at least two profiles, and never needs more than
    ``POLICY_LOSS_TOLERANCE`` times the best static's builds on any.
    Answers must be bit-identical across all three replays (the
    coverage guard makes every snap/capacity decision
    answer-preserving), and generating a trace twice from one seed
    must be byte-identical (``trace_deterministic``).
    """
    from repro.workloads.profiles import generate_trace
    from repro.workloads.trace import encode_trace

    results: dict[str, object] = {}
    wins = 0
    losses = 0
    parity_all = True
    deterministic_all = True
    adjustments = 0.0
    n_events = BENCH_POLICY_EVENTS or None
    for profile in POLICY_PROFILES:
        trace = generate_trace(
            profile, seed=seed, n_events=n_events,
            n_obstacles=n_obstacles, n_entities=n_entities,
        )
        again = generate_trace(
            profile, seed=seed, n_events=n_events,
            n_obstacles=n_obstacles, n_entities=n_entities,
        )
        deterministic = encode_trace(trace) == encode_trace(again)
        a_exact, m_exact = replay_trace(trace, graph_cache_snap=0.0)
        a_snap, m_snap = replay_trace(trace, graph_cache_snap=moving_snap())
        a_adapt, m_adapt = replay_trace(trace, cache_policy="adaptive")
        parity = a_exact == a_snap == a_adapt
        best_builds = min(m_exact["graph_builds"], m_snap["graph_builds"])
        best_hit = max(m_exact["hit_rate"], m_snap["hit_rate"])
        build_ratio = best_builds / max(1.0, m_adapt["graph_builds"])
        if best_hit > 0.0:
            hit_ratio = m_adapt["hit_rate"] / best_hit
        else:
            hit_ratio = math.inf if m_adapt["hit_rate"] > 0.0 else 1.0
        win = build_ratio >= POLICY_WIN_RATIO or hit_ratio >= POLICY_WIN_RATIO
        loss = m_adapt["graph_builds"] > best_builds * POLICY_LOSS_TOLERANCE
        wins += win
        losses += loss
        parity_all &= parity
        deterministic_all &= deterministic
        adjustments += m_adapt["policy_adjustments"]
        results[profile] = {
            "events": m_adapt["events"],
            "builds_exact": m_exact["graph_builds"],
            "builds_snapped": m_snap["graph_builds"],
            "builds_adaptive": m_adapt["graph_builds"],
            "build_ratio": build_ratio,
            "hit_rate_static": best_hit,
            "hit_rate_adaptive": m_adapt["hit_rate"],
            "hit_ratio": hit_ratio,
            "adjustments": m_adapt["policy_adjustments"],
            "win": float(win),
            "loss": float(loss),
            "parity": float(parity),
        }
    results["wins"] = float(wins)
    results["losses"] = float(losses)
    results["parity"] = float(parity_all)
    results["trace_deterministic"] = float(deterministic_all)
    results["policy_adjustments"] = adjustments
    results["gate_ok"] = float(wins >= 2 and losses == 0 and parity_all)
    return results


# ---------------------------------------------- journal durability comparison
#: Scene/trace size of the durability comparison.  ``churn-heavy`` is
#: the mutation-dense profile — the workload a write-ahead journal
#: exists for.
JOURNAL_BENCH_OBSTACLES = 120
JOURNAL_BENCH_ENTITIES = 120

#: The acceptance bar: journaling a mutation must cost at least this
#: many times fewer durable bytes than re-writing the full snapshot
#: after every mutation.
JOURNAL_BYTES_RATIO_BAR = 5.0


def journal_durability_comparison(
    workdir: str,
    *,
    seed: int = BENCH_SEED,
    n_obstacles: int = JOURNAL_BENCH_OBSTACLES,
    n_entities: int = JOURNAL_BENCH_ENTITIES,
) -> dict[str, float]:
    """Write-ahead journaling vs full-snapshot-per-save on a churn trace.

    One churn-heavy trace is replayed twice on identical scenes.  The
    *durable* side opens the database with ``durable=`` and anchors a
    base snapshot, so every mutation appends one fsynced journal
    record; the *rewrite* side models durability-by-checkpoint — it
    saves the entire snapshot after every mutation, the only
    durability story the engine had before the journal.  Compared on
    durable bytes written per mutation (``bytes_ratio``, gated at
    ``>= JOURNAL_BYTES_RATIO_BAR``) and wall-clock per durable
    mutation (``save_speedup``).

    Also verified here, because the benchmark has the journal at a
    realistic size: crash-recovery parity (reopen base + journal as a
    restarted process would; every query event must answer
    bit-identically) and compaction (fold + truncate leaves an empty
    journal and a loadable base).  ``write_amplification`` is physical
    durable bytes over appended journal bytes during the replay — 1.0
    unless auto-compaction rewrote the base mid-replay.
    """
    from repro.persist.journal import MutationJournal
    from repro.workloads.profiles import generate_trace

    trace = generate_trace(
        "churn-heavy",
        seed=seed,
        n_obstacles=n_obstacles,
        n_entities=n_entities,
    )
    mutation_kinds = ("insert", "delete")
    query_events = [
        ev for ev in trace.events if ev.kind not in mutation_kinds
    ][:30]

    # -- durable side: journal-per-mutation --------------------------------
    journal_path = os.path.join(workdir, "bench.journal")
    base_path = os.path.join(workdir, "base.snap")
    db = database_for_trace(trace, durable=journal_path)
    db.save(base_path)
    base_bytes = float(os.path.getsize(base_path))
    replay_events(db, trace.events, set_name=trace.set_name)
    stats = db.runtime_stats()
    journal_appends = float(stats["journal_appends"])
    journal_bytes = float(stats["journal_bytes"])
    write_amplification = (
        journal_bytes + float(stats["compaction_bytes"])
    ) / max(1.0, journal_bytes)
    with open(journal_path, "rb") as fh:
        journal_blob = fh.read()

    # -- crash-recovery parity ---------------------------------------------
    recovered = ObstacleDatabase.load(base_path, durable=journal_path)
    live_answers, __ = replay_events(db, query_events, set_name=trace.set_name)
    rec_answers, __ = replay_events(
        recovered, query_events, set_name=trace.set_name
    )
    recovery_parity = float(live_answers == rec_answers)
    recovered.journal.close()
    recovered.close()

    # -- incremental append cost (isolated from query work) ----------------
    copy_path = os.path.join(workdir, "copy.journal")
    with open(copy_path, "wb") as fh:
        fh.write(journal_blob)
    probe, entries = MutationJournal.recover(copy_path)
    probe.close()
    scratch = MutationJournal.create(os.path.join(workdir, "scratch.journal"))
    incr_timer = Timer()
    with incr_timer:
        for __seq, record in entries:
            scratch.append(record)
    scratch.close()
    incr_ms_per_mutation = incr_timer.elapsed_ms / max(1, len(entries))

    # -- compaction ---------------------------------------------------------
    db.compact()
    compaction_ok = float(
        db.journal.record_count == 0
        and db.runtime_stats()["compactions"] >= 1
        and os.path.getsize(base_path) > 0
    )
    db.journal.close()
    db.close()

    # -- rewrite side: full snapshot after every mutation -------------------
    db2 = database_for_trace(trace)
    snap2 = os.path.join(workdir, "rewrite.snap")
    db2.save(snap2)
    inserted = {}
    full_bytes = 0.0
    n_mutations = 0
    full_timer = Timer()
    for ev in trace.events:
        if ev.kind == "insert":
            inserted[ev.tag] = db2.insert_obstacle(ev.rect)
        elif ev.kind == "delete":
            db2.delete_obstacle(inserted.pop(ev.tag))
        else:
            continue
        n_mutations += 1
        with full_timer:
            db2.save(snap2)
        full_bytes += float(os.path.getsize(snap2))
    db2.close()
    full_ms_per_mutation = full_timer.elapsed_ms / max(1, n_mutations)
    full_bytes_per_mutation = full_bytes / max(1, n_mutations)
    journal_bytes_per_mutation = journal_bytes / max(1.0, journal_appends)
    bytes_ratio = full_bytes_per_mutation / max(1.0, journal_bytes_per_mutation)
    save_speedup = full_ms_per_mutation / max(1e-9, incr_ms_per_mutation)
    return {
        "events": float(len(trace.events)),
        "mutations": float(n_mutations),
        "journal_appends": journal_appends,
        "journal_bytes": journal_bytes,
        "base_bytes": base_bytes,
        "journal_bytes_per_mutation": journal_bytes_per_mutation,
        "full_bytes_per_mutation": full_bytes_per_mutation,
        "bytes_ratio": bytes_ratio,
        "incremental_ok": float(bytes_ratio >= JOURNAL_BYTES_RATIO_BAR),
        "write_amplification": write_amplification,
        "recovery_parity": recovery_parity,
        "compaction_ok": compaction_ok,
        "incr_ms_per_mutation": incr_ms_per_mutation,
        "full_ms_per_mutation": full_ms_per_mutation,
        "save_speedup": save_speedup,
        # The raw speedup is wall-clock (runner-dependent); the gated
        # verdict only asks for >= 2x, far under the measured ~10x.
        "save_speedup_ok": float(save_speedup >= 2.0),
    }
