"""Ablation — tangent visibility graph [PV95] vs the full graph.

For convex obstacles the tangent graph preserves shortest paths while
holding far fewer edges (paper Sec. 2.3).  This bench measures the
edge reduction and the resulting Dijkstra speedup, and verifies
distance preservation on a sample of node pairs.
"""

import pytest

from benchmarks.common import BENCH_SEED
from repro.datasets.synthetic import (
    entities_following_obstacles,
    street_grid_obstacles,
)
from repro.visibility.graph import VisibilityGraph
from repro.visibility.shortest_path import shortest_path_dist
from repro.visibility.tangent import prune_to_tangent


@pytest.mark.parametrize("variant", ["full", "tangent"])
def test_ablation_tangent_graph(benchmark, variant):
    obstacles = street_grid_obstacles(40, seed=BENCH_SEED)
    points = entities_following_obstacles(20, obstacles, seed=BENCH_SEED + 5)

    def build():
        graph = VisibilityGraph.build(points, obstacles)
        if variant == "tangent":
            prune_to_tangent(graph)
        # representative query load: all-pairs distances over the
        # free points
        total = 0.0
        for a in points[:6]:
            for b in points[6:12]:
                total += shortest_path_dist(graph, a, b)
        return graph, total

    graph, total = benchmark.pedantic(build, rounds=1, iterations=1)
    benchmark.extra_info["variant"] = variant
    benchmark.extra_info["edges"] = graph.edge_count
    benchmark.extra_info["distance_checksum"] = round(total, 6)

    # Distances must be identical across variants.
    reference = VisibilityGraph.build(points, obstacles)
    ref_total = 0.0
    for a in points[:6]:
        for b in points[6:12]:
            ref_total += shortest_path_dist(reference, a, b)
    assert total == pytest.approx(ref_total)
