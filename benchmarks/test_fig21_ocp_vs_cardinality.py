"""Fig. 21 — OCP cost vs |S|/|O| (k = 16, |T| = 0.1 |O|).

Paper: entity-tree page accesses grow with |S| (driven by the Euclidean
closest-pair algorithm), obstacle-tree accesses stay comparatively
stable (denser S means closer pairs and smaller ranges), and CPU time
grows — dominated by the Euclidean CP computation.
"""

import pytest

from benchmarks.common import (
    BENCH_O,
    BENCH_QUERIES,
    JOIN_RATIOS,
    bench_db,
    join_spec,
    run_ocp,
)


@pytest.mark.parametrize("ratio", JOIN_RATIOS)
def test_fig21_ocp_vs_cardinality(benchmark, ratio):
    db, __ = bench_db(BENCH_O, join_spec(), BENCH_QUERIES)
    metrics = benchmark.pedantic(
        run_ocp, args=(db, f"S{ratio:g}", "T", 16), rounds=1, iterations=1
    )
    benchmark.extra_info.update(metrics)
    benchmark.extra_info["ratio"] = ratio
    assert metrics["entity_pa"] >= 0
