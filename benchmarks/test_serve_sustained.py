"""Sustained serving benchmark: persistent pool vs fork-per-batch.

Not a paper figure — this measures the serving tier on a mixed
mutate/query/moving-client load shaped like a continuous-query
deployment: every step, each moving client reports a new position one
small displacement from the last, the batch is answered by one of the
three engines, and every few steps an obstacle is inserted (then later
deleted) mid-stream through the mutation feed.

The engines differ in *where graph work survives*:

* **sequential** — one context, cache warms in place (the parity
  oracle);
* **fork-per-batch** — ``workers`` children forked per step; each
  child's cache updates die with it, so near-duplicate centres are
  rebuilt every single step, plus the per-step fork/join tax;
* **persistent pool** — workers spawned once from a snapshot carrying
  the parent's warm cache, mutations replayed as deltas; consecutive
  steps hit each worker's private snapped cache.

Acceptance bars:

* answers bit-identical across all three engines, mutations included;
* warm workers serve covered centres with **zero** graph builds;
* sustained throughput of the persistent pool at least **2x**
  fork-per-batch at 4 workers (via
  :func:`benchmarks.common.parallel_speedup_target`: reduced on 2-3
  cores, skipped on single-core or fork-less runners — parity is
  asserted everywhere, always), with p50/p99 batch latency reported.

Scale knobs: ``REPRO_BENCH_O`` (obstacles, capped at 400 here),
``REPRO_BENCH_SERVE_STEPS``.  Set ``REPRO_BENCH_SERVE_JSON=path`` to
dump every measured metric set as one JSON document (the CI artifact).
"""

from __future__ import annotations

import json
import os

import pytest

from benchmarks.common import (
    BENCH_O,
    BENCH_SERVE_CLIENTS,
    BENCH_SERVE_STEPS,
    parallel_speedup_target,
    run_sustained_serve,
    serve_bench_db,
    serve_client_paths,
    serve_mutation_schedule,
    serve_warm_start_builds,
)
from repro.runtime.executor import fork_available

#: Obstacle cardinality: enough graph work per step to dominate
#: dispatch overhead, small enough to keep fork-per-batch in seconds.
SERVE_O = min(BENCH_O, 400)

#: Worker count of the acceptance run (the issue's 4-worker bar).
WORKERS = 4

#: Metric sets collected across tests, dumped by the session fixture
#: when ``REPRO_BENCH_SERVE_JSON`` is set.
COLLECTED: dict[str, dict[str, float]] = {}


@pytest.fixture(scope="session", autouse=True)
def _dump_metrics():
    """Write every collected metric set to the CI artifact path."""
    yield
    path = os.environ.get("REPRO_BENCH_SERVE_JSON")
    if path and COLLECTED:
        with open(path, "w") as fh:
            json.dump(COLLECTED, fh, indent=2, sort_keys=True)
            fh.write("\n")


def _load():
    workload = serve_bench_db(SERVE_O)[1]
    paths = serve_client_paths(workload, BENCH_SERVE_CLIENTS, BENCH_SERVE_STEPS)
    schedule = serve_mutation_schedule(workload, BENCH_SERVE_STEPS)
    return paths, schedule


class TestSustainedServe:
    def test_persistent_parity_with_mutations(self):
        """Pool answers match sequential across the mutating load."""
        paths, schedule = _load()
        assert any(schedule), "schedule must exercise the mutation feed"
        seq_db, __ = serve_bench_db(SERVE_O)
        pool_db, __ = serve_bench_db(SERVE_O)
        try:
            sequential, __ = run_sustained_serve(seq_db, paths, schedule)
            pooled, metrics = run_sustained_serve(
                pool_db, paths, schedule, workers=WORKERS, pool="persistent"
            )
            assert pooled == sequential
            assert metrics["pool_batches"] == float(BENCH_SERVE_STEPS)
            COLLECTED["parity persistent"] = metrics
        finally:
            pool_db.close()

    def test_fork_parity_with_mutations(self):
        """Fork-per-batch answers match sequential on the same load."""
        if not fork_available():
            pytest.skip("needs the fork start method")
        paths, schedule = _load()
        seq_db, __ = serve_bench_db(SERVE_O)
        fork_db, __ = serve_bench_db(SERVE_O)
        sequential, __ = run_sustained_serve(seq_db, paths, schedule)
        forked, metrics = run_sustained_serve(
            fork_db, paths, schedule, workers=WORKERS, pool="fork"
        )
        assert forked == sequential
        assert metrics["pool_batches"] == 0.0
        COLLECTED["parity fork"] = metrics

    def test_warm_workers_build_zero_graphs(self):
        """Covered centres are served from the shipped cache: 0 builds."""
        paths, __ = _load()
        db, __ = serve_bench_db(SERVE_O)
        try:
            builds = serve_warm_start_builds(
                db, [p[0] for p in paths], workers=WORKERS
            )
            assert builds == 0.0
            COLLECTED["warm start"] = {"graph_builds": builds}
        finally:
            db.close()

    def test_persistent_throughput_acceptance(self):
        """>= 2x sustained qps over fork-per-batch at 4 workers.

        The gap is architectural, not scheduling luck: the persistent
        workers' snapped caches retain every build across steps while
        fork children start from the parent's never-warmed cache each
        batch — so the bar holds wherever fork mode itself runs.
        """
        target = parallel_speedup_target(WORKERS)
        if target is None:
            pytest.skip("needs >= 2 cores for a meaningful throughput race")
        if not fork_available():
            pytest.skip("needs the fork start method for the baseline")
        paths, schedule = _load()
        fork_db, __ = serve_bench_db(SERVE_O)
        pool_db, __ = serve_bench_db(SERVE_O)
        try:
            forked, fork_metrics = run_sustained_serve(
                fork_db, paths, schedule, workers=WORKERS, pool="fork"
            )
            pooled, pool_metrics = run_sustained_serve(
                pool_db, paths, schedule, workers=WORKERS, pool="persistent"
            )
            assert pooled == forked  # bit-identical under either engine
            assert pool_metrics["p99_ms"] > 0.0
            COLLECTED["throughput fork"] = fork_metrics
            COLLECTED["throughput persistent"] = pool_metrics
            speedup = pool_metrics["qps"] / fork_metrics["qps"]
            COLLECTED["throughput"] = {"speedup": speedup, "target": target}
            assert speedup >= target, (
                f"persistent pool sustained {pool_metrics['qps']:.1f} qps "
                f"(p99 {pool_metrics['p99_ms']:.1f} ms) vs fork-per-batch "
                f"{fork_metrics['qps']:.1f} qps (p99 "
                f"{fork_metrics['p99_ms']:.1f} ms): {speedup:.2f}x is below "
                f"the {target}x bar on {os.cpu_count() or 1} cores"
            )
        finally:
            pool_db.close()
