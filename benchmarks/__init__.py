"""Benchmark harness reproducing the paper's evaluation (Sec. 7)."""
