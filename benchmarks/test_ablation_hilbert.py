"""Ablation — ODJ seed ordering: Hilbert order vs arbitrary order.

The paper sorts join seeds by Hilbert value "to maximise locality"
between successive obstacle R-tree accesses (Sec. 5).  The observable
is buffer effectiveness: with a small LRU buffer, Hilbert-ordered seeds
should incur no more (and typically fewer) obstacle-tree misses.
"""

import pytest

from benchmarks.common import (
    BENCH_O,
    BENCH_QUERIES,
    bench_db,
    join_spec,
    run_odj,
    scaled_join_range,
)


@pytest.mark.parametrize("hilbert", [True, False], ids=["hilbert", "unsorted"])
def test_ablation_hilbert_seed_order(benchmark, hilbert):
    db, __ = bench_db(BENCH_O, join_spec(), BENCH_QUERIES)
    e = scaled_join_range(0.0001)
    metrics = benchmark.pedantic(
        run_odj,
        args=(db, "S1", "T", e),
        kwargs={"hilbert": hilbert},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(metrics)
    benchmark.extra_info["hilbert"] = hilbert
    assert metrics["result_size"] >= 0
