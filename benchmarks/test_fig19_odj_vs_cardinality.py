"""Fig. 19 — ODJ cost vs |S|/|O| (e = 0.01 %, |T| = 0.1 |O|).

Paper: entity-tree page accesses grow slowly (the Euclidean join is not
very density-sensitive), while obstacle-tree accesses and CPU time grow
fast with |S| — the join output drives the number of obstructed
distance evaluations.
"""

import pytest

from benchmarks.common import (
    BENCH_O,
    BENCH_QUERIES,
    JOIN_RATIOS,
    bench_db,
    join_spec,
    run_odj,
    scaled_join_range,
)


@pytest.mark.parametrize("ratio", JOIN_RATIOS)
def test_fig19_odj_vs_cardinality(benchmark, ratio):
    db, __ = bench_db(BENCH_O, join_spec(), BENCH_QUERIES)
    e = scaled_join_range(0.0001)
    metrics = benchmark.pedantic(
        run_odj, args=(db, f"S{ratio:g}", "T", e), rounds=1, iterations=1
    )
    benchmark.extra_info.update(metrics)
    benchmark.extra_info["ratio"] = ratio
    assert metrics["entity_pa"] >= 0
