"""Tracing-overhead benchmark: instrumentation must be near-free.

Not a paper figure — this measures the cost of the ``repro.obs``
tracing call sites on a warm nearest-query workload, against a
baseline where the tracer's entry points are stubbed out entirely
(the cheapest the instrumented code paths can possibly be).

Acceptance bars (CI-enforced):

- **disabled** tracing (the shipped default, sample rate 0) costs at
  most **5 %** over the stub baseline;
- **sampled** tracing (rate 0.25, the flight-recorder setting) costs
  at most **15 %**.

Timings are best-of-rounds minima, so the bars hold on noisy shared
runners; the same comparison at smoke scale feeds the boolean gates
in ``BENCH_smoke.json``.

Scale knobs: ``REPRO_BENCH_O`` (obstacles), ``REPRO_BENCH_PAGE_ENTRIES``.
"""

from __future__ import annotations

import pytest

from benchmarks.common import BENCH_O, trace_overhead_comparison

#: Maximum tolerated slowdown with tracing disabled (the default).
DISABLED_BAR = 0.05

#: Maximum tolerated slowdown at the 0.25 sampling rate.
SAMPLED_BAR = 0.15

#: Obstacle cardinality: enough per-query work for honest ratios,
#: small enough that five timed rounds stay fast.
TRACE_O = min(BENCH_O, 400)


@pytest.fixture(scope="module")
def overhead() -> dict[str, float]:
    return trace_overhead_comparison(TRACE_O)


class TestTraceOverhead:
    def test_disabled_tracing_within_5_percent(self, overhead):
        assert overhead["disabled_overhead"] <= DISABLED_BAR, (
            f"disabled tracing costs {overhead['disabled_overhead']:.1%} "
            f"over the stub baseline ({overhead['stub_s'] * 1000:.1f} ms "
            f"-> {overhead['disabled_s'] * 1000:.1f} ms); bar is "
            f"{DISABLED_BAR:.0%}"
        )

    def test_sampled_tracing_within_15_percent(self, overhead):
        assert overhead["sampled_overhead"] <= SAMPLED_BAR, (
            f"sampled tracing (rate {overhead['sample_rate']:g}) costs "
            f"{overhead['sampled_overhead']:.1%} over the stub baseline "
            f"({overhead['stub_s'] * 1000:.1f} ms -> "
            f"{overhead['sampled_s'] * 1000:.1f} ms); bar is "
            f"{SAMPLED_BAR:.0%}"
        )
