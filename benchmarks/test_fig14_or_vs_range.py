"""Fig. 14 — OR cost vs e (|P| = |O|).

Paper: I/O grows ~quadratically with e (disk area), CPU grows even
faster (O(n^2 log n) graph construction on a quadratically growing n).
"""

import pytest

from benchmarks.common import (
    BENCH_O,
    BENCH_QUERIES,
    RANGE_FRACTIONS,
    bench_db,
    cardinality_spec,
    queries_for,
    run_or_workload,
    scaled_range,
)


@pytest.mark.parametrize("fraction", RANGE_FRACTIONS)
def test_fig14_or_vs_range(benchmark, fraction):
    db, workload = bench_db(BENCH_O, cardinality_spec(), BENCH_QUERIES)
    e = scaled_range(fraction)
    cost = 1 if fraction <= 0.001 else (2 if fraction <= 0.005 else 4)
    queries = workload.queries[: queries_for(cost)]

    metrics = benchmark.pedantic(
        run_or_workload, args=(db, workload, "P1", queries, e),
        rounds=1, iterations=1,
    )
    benchmark.extra_info.update(metrics)
    benchmark.extra_info["e_fraction"] = fraction
    assert metrics["entity_pa"] >= 0
