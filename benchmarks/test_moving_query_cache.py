"""Cache-effectiveness benchmark: the moving-query workload.

Not a paper figure — this measures the coverage-aware spatial cache
key on the workload it targets (the paper's continuous/moving-query
motivation): a query point advancing in small steps, each step
evaluating obstructed distances to its nearest entities.

Acceptance bar: with the spatial key the workload performs **>= 3x
fewer full graph builds** than with exact centre keys, while returning
**bit-identical** answers (the coverage guard makes off-centre reuse
lossless).  The bar is deterministic (build counters, not wall-clock),
so it is enforced unconditionally — including single-core CI runners.

Scale knobs: ``REPRO_BENCH_O`` (obstacles), ``REPRO_BENCH_MOVING_STEPS``
(path length), ``REPRO_BENCH_PAGE_ENTRIES``.
"""

from __future__ import annotations

from benchmarks.common import (
    BENCH_MOVING_STEPS,
    BENCH_O,
    moving_query_db,
    moving_query_path,
    moving_snap,
    run_moving_query,
)

#: Required reduction in full graph builds (the acceptance bar).
BUILD_REDUCTION_TARGET = 3.0

#: Obstacle cardinality: enough structure for real graphs, small
#: enough to keep the exact-key baseline (one build per step) fast.
MOVING_O = min(BENCH_O, 500)


class TestMovingQueryCache:
    def test_spatial_key_builds_fewer_graphs_with_identical_answers(self):
        exact_db, workload = moving_query_db(MOVING_O, 0.0)
        snapped_db, __ = moving_query_db(MOVING_O, moving_snap())
        path = moving_query_path(workload, BENCH_MOVING_STEPS)

        exact_answers, exact_metrics = run_moving_query(
            exact_db, workload, path
        )
        snapped_answers, snapped_metrics = run_moving_query(
            snapped_db, workload, path
        )

        assert snapped_answers == exact_answers, (
            "spatial cache key changed query answers"
        )
        builds_exact = exact_metrics["graph_builds"]
        builds_snapped = snapped_metrics["graph_builds"]
        assert builds_snapped > 0
        reduction = builds_exact / builds_snapped
        assert reduction >= BUILD_REDUCTION_TARGET, (
            f"spatial key reduced full builds only {reduction:.2f}x "
            f"({builds_exact:.0f} -> {builds_snapped:.0f}) over "
            f"{len(path)} steps; bar is {BUILD_REDUCTION_TARGET}x"
        )

    def test_sharded_storage_composes_with_spatial_key(self):
        """Sharding underneath the snapped cache: answers still match
        the exact-key monolithic baseline bit for bit."""
        exact_db, workload = moving_query_db(MOVING_O, 0.0)
        snapped_db, __ = moving_query_db(MOVING_O, moving_snap(), shards=16)
        path = moving_query_path(workload, max(8, BENCH_MOVING_STEPS // 4))
        exact_answers, __ = run_moving_query(exact_db, workload, path)
        snapped_answers, metrics = run_moving_query(
            snapped_db, workload, path
        )
        assert snapped_answers == exact_answers
        assert metrics["graph_builds"] < len(path)
