"""Sharded storage + parallel batch benchmark.

Not a paper figure — this measures the PR's two architectural changes
on the paper's workload shape (a 200-query ONN batch):

* **sharded retrieval**: a database with spatially sharded obstacle
  storage answers every query identically to the monolithic layout,
  while each obstacle retrieval fans out only to the shards whose
  cells intersect the query disk;
* **parallel batches**: a 4-worker ``batch_nearest`` returns results
  identical to sequential execution, and (given the cores to do it)
  at least a 2x wall-clock speedup.

The speedup assertion needs real parallel hardware: every ``>= Nx``
bar routes through :func:`benchmarks.common.parallel_speedup_target`,
which returns ``None`` on single-core runners (skip — parity only), a
reduced bar on 2-3 cores, and the full bar at >= 4 cores; thread mode
is additionally skipped (CPython's GIL).  Result parity is asserted
everywhere, always.

Scale knobs: ``REPRO_BENCH_O`` (obstacles; the 200-query count is
fixed by the paper's setup), ``REPRO_BENCH_PAGE_ENTRIES``.
"""

from __future__ import annotations

import os

import pytest

from benchmarks.common import (
    BENCH_O,
    batch_bench_db,
    parallel_speedup_target,
    run_batch_nearest,
)
from repro.runtime.executor import fork_available

#: The paper's workload size (Sec. 7: 200 queries per workload).
BATCH_QUERIES = 200

#: Worker count of the acceptance run.
WORKERS = 4

#: Obstacle cardinality for the batch runs: enough work per query to
#: dominate the pool's fork/join overhead, small enough to keep the
#: sequential baseline in seconds.
BATCH_O = min(BENCH_O, 500)

#: Target shard count for the sharded layout.
SHARDS = 16


def _workload(shards=None):
    db, workload = batch_bench_db(
        BATCH_O, (("P1", BATCH_O),), BATCH_QUERIES, shards
    )
    return db, workload.queries[:BATCH_QUERIES]


class TestShardedRetrieval:
    def test_sharded_matches_monolithic_answers(self):
        mono, queries = _workload()
        sharded, __ = _workload(SHARDS)
        sample = queries[:: max(1, len(queries) // 20)]
        assert sharded.batch_nearest("P1", sample, 4) == mono.batch_nearest(
            "P1", sample, 4
        )

    def test_retrieval_fans_out_to_few_shards(self):
        sharded, queries = _workload(SHARDS)
        index = sharded.obstacle_index
        assert index.shard_count > 4
        for tree in index.trees():
            tree.reset_stats()
        # A per-query-disk retrieval touches a strict subset of shards.
        radius = sharded.universe().width * 0.05
        index.obstacles_in_range(queries[0], radius)
        touched = sum(
            1 for t in index.trees() if t.counter.snapshot()["reads"] > 0
        )
        assert 0 < touched < index.shard_count


class TestParallelBatch:
    def test_parallel_results_identical_to_sequential(self):
        db, queries = _workload()
        sequential, __ = run_batch_nearest(db, "P1", queries, 4)
        parallel, metrics = run_batch_nearest(
            db, "P1", queries, 4, workers=WORKERS
        )
        assert parallel == sequential
        assert metrics["parallel_batches"] == 1.0

    def test_parallel_speedup_acceptance(self, benchmark=None):
        """>= 2x wall-clock on the 200-query workload with 4 workers.

        Needs >= 2 physical cores and the fork start method; the
        *correctness* of the parallel path is covered above and in
        tier-1 — this asserts the performance claim where the hardware
        can express it.
        """
        cores = os.cpu_count() or 1
        target = parallel_speedup_target(WORKERS)
        if target is None:
            pytest.skip(f"needs >= 2 cores for a speedup (have {cores})")
        if not fork_available():
            pytest.skip("needs the fork start method (GIL bars thread mode)")
        db, queries = _workload()
        __, warm = run_batch_nearest(db, "P1", queries[:8], 4)  # warm caches
        sequential, seq_metrics = run_batch_nearest(db, "P1", queries, 4)
        parallel, par_metrics = run_batch_nearest(
            db, "P1", queries, 4, workers=WORKERS, mode="fork"
        )
        assert parallel == sequential
        speedup = seq_metrics["cpu_s"] / par_metrics["cpu_s"]
        assert speedup >= target, (
            f"4-worker batch speedup {speedup:.2f}x below the "
            f"{target}x bar on {cores} cores "
            f"(seq {seq_metrics['cpu_s']:.2f}s, par {par_metrics['cpu_s']:.2f}s)"
        )

    def test_sharded_parallel_composes(self):
        """Sharding and the worker pool stack: identical answers again."""
        sharded, queries = _workload(SHARDS)
        sample = queries[:40]
        sequential, __ = run_batch_nearest(sharded, "P1", sample, 4)
        parallel, __ = run_batch_nearest(
            sharded, "P1", sample, 4, workers=WORKERS
        )
        assert parallel == sequential
