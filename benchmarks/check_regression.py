"""Benchmark-regression gate over the committed smoke baseline.

Compares a fresh ``run_all.py --smoke --json`` document against the
``BENCH_smoke.json`` baseline committed at the repo root, and fails
(exit 1) when any *gated* metric regresses by more than the threshold
(default 30 %).

Only deterministic metrics are gated — page-access counters, graph
build counts, result sizes, parity flags.  Wall-clock metrics
(``cpu_ms``, ``qps``, ``p99_ms``...) vary with the runner and are
recorded for the trajectory but never gated here; the wall-clock bars
live in the dedicated pytest benches where core counts gate them.

Usage::

    python benchmarks/run_all.py --smoke --json BENCH_current.json
    python benchmarks/check_regression.py BENCH_smoke.json BENCH_current.json

Refreshing the baseline after an intentional change::

    python benchmarks/run_all.py --smoke --json BENCH_smoke.json
"""

from __future__ import annotations

import json
import sys

#: Relative regression tolerated on ``lower``/``higher`` gates.
DEFAULT_THRESHOLD = 0.30

#: Gated metrics: a path into the ``results`` document plus a
#: direction.  ``lower`` fails when the current value exceeds baseline
#: by more than the threshold (improvements always pass); ``higher``
#: is the mirror image; ``exact`` fails on any change (parity flags).
GATES: tuple[tuple[tuple[str, ...], str], ...] = (
    (("smoke", "OR", "entity_pa"), "lower"),
    (("smoke", "OR", "obstacle_pa"), "lower"),
    (("smoke", "OR", "result_size"), "exact"),
    (("smoke", "OR", "false_hit_ratio"), "lower"),
    (("smoke", "ONN (k=4)", "entity_pa"), "lower"),
    (("smoke", "ONN (k=4)", "obstacle_pa"), "lower"),
    (("smoke", "ODJ", "obstacle_pa"), "lower"),
    (("smoke", "ODJ", "result_size"), "exact"),
    (("smoke", "OCP (k=4)", "entity_pa"), "lower"),
    (("smoke", "OCP (k=4)", "result_size"), "exact"),
    (("smoke repeated d_O", "fresh", "graph_builds"), "lower"),
    (("smoke repeated d_O", "cached", "graph_builds"), "lower"),
    (("smoke moving-query cache", "exact", "graph_builds"), "lower"),
    (("smoke moving-query cache", "snapped", "graph_builds"), "lower"),
    (("smoke snapshot warm-start", "builds_cold"), "lower"),
    (("smoke snapshot warm-start", "builds_warm"), "lower"),
    (("smoke snapshot warm-start", "build_reduction"), "higher"),
    (("smoke kernel", "edges_match"), "exact"),
    (("smoke serve", "parity"), "exact"),
    (("smoke serve", "warm_builds"), "lower"),
    (("smoke serve", "persistent", "graph_builds"), "lower"),
    (("smoke serve", "persistent", "pool_batches"), "exact"),
    # Observability: boolean verdicts only — the raw overhead ratios
    # are wall-clock and ride in the JSON ungated; the bars themselves
    # (disabled <= 5%, sampled <= 15%, best-of-rounds) are evaluated
    # inside the smoke run where they were measured.
    (("smoke obs", "disabled_overhead_ok"), "exact"),
    (("smoke obs", "sampled_overhead_ok"), "exact"),
    (("smoke obs", "trace_parity"), "exact"),
    (("smoke obs", "pool_trace_merged"), "exact"),
    (("smoke obs", "registry_complete"), "exact"),
    (("smoke obs", "prometheus_parses"), "exact"),
)


def _lookup(results: dict, path: tuple[str, ...]):
    node = results
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node


def compare(
    baseline: dict,
    current: dict,
    *,
    threshold: float = DEFAULT_THRESHOLD,
) -> list[str]:
    """Violation messages for every gated metric that regressed.

    ``baseline`` and ``current`` are full ``--json`` documents (or bare
    ``results`` mappings).  A gate whose metric is missing from the
    baseline is skipped (new benchmark, no history yet); one missing
    from the current run is itself a violation — a benchmark silently
    disappearing must not read as a pass.
    """
    base_results = baseline.get("results", baseline)
    cur_results = current.get("results", current)
    violations = []
    for path, direction in GATES:
        label = " / ".join(path)
        base = _lookup(base_results, path)
        if base is None:
            continue
        cur = _lookup(cur_results, path)
        if cur is None:
            violations.append(f"{label}: missing from the current run")
            continue
        if direction == "exact":
            if abs(cur - base) > 1e-9:
                violations.append(f"{label}: expected {base!r}, got {cur!r}")
        elif direction == "lower":
            if cur > base * (1.0 + threshold) + 1e-9:
                violations.append(
                    f"{label}: {cur!r} exceeds baseline {base!r} "
                    f"by more than {threshold:.0%}"
                )
        else:  # higher
            if cur < base * (1.0 - threshold) - 1e-9:
                violations.append(
                    f"{label}: {cur!r} fell below baseline {base!r} "
                    f"by more than {threshold:.0%}"
                )
    return violations


def main(argv: list[str]) -> int:
    """CLI entry point: ``check_regression.py BASELINE CURRENT``."""
    argv = list(argv)
    threshold = DEFAULT_THRESHOLD
    if "--threshold" in argv:
        flag = argv.index("--threshold")
        try:
            threshold = float(argv[flag + 1])
        except (IndexError, ValueError):
            print("--threshold needs a float argument", file=sys.stderr)
            return 2
        del argv[flag : flag + 2]
    if len(argv) != 2:
        print(
            "usage: check_regression.py [--threshold F] BASELINE CURRENT",
            file=sys.stderr,
        )
        return 2
    with open(argv[0]) as fh:
        baseline = json.load(fh)
    with open(argv[1]) as fh:
        current = json.load(fh)
    violations = compare(baseline, current, threshold=threshold)
    if violations:
        print(f"{len(violations)} benchmark regression(s):")
        for message in violations:
            print(f"  - {message}")
        return 1
    print(f"benchmark gates clean ({len(GATES)} metrics, {threshold:.0%} threshold)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
