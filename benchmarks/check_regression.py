"""Benchmark-regression gate over the committed smoke baseline.

Compares a fresh ``run_all.py --smoke --json`` document against the
``BENCH_smoke.json`` baseline committed at the repo root, and fails
(exit 1) when any *gated* metric regresses by more than the threshold
(default 30 %).

Only deterministic metrics are gated — page-access counters, graph
build counts, result sizes, parity flags.  Wall-clock metrics
(``cpu_ms``, ``qps``, ``p99_ms``...) vary with the runner and are
recorded for the trajectory but never gated here; the wall-clock bars
live in the dedicated pytest benches where core counts gate them.

Usage::

    python benchmarks/run_all.py --smoke --json BENCH_current.json
    python benchmarks/check_regression.py BENCH_smoke.json BENCH_current.json

Refreshing the baseline after an intentional change::

    python benchmarks/run_all.py --smoke --json BENCH_smoke.json
"""

from __future__ import annotations

import json
import sys

#: Relative regression tolerated on ``lower``/``higher`` gates.
DEFAULT_THRESHOLD = 0.30

#: Gated metrics: a path into the ``results`` document plus a
#: direction.  ``lower`` fails when the current value exceeds baseline
#: by more than the threshold (improvements always pass); ``higher``
#: is the mirror image; ``exact`` fails on any change (parity flags).
GATES: tuple[tuple[tuple[str, ...], str], ...] = (
    (("smoke", "OR", "entity_pa"), "lower"),
    (("smoke", "OR", "obstacle_pa"), "lower"),
    (("smoke", "OR", "result_size"), "exact"),
    (("smoke", "OR", "false_hit_ratio"), "lower"),
    (("smoke", "ONN (k=4)", "entity_pa"), "lower"),
    (("smoke", "ONN (k=4)", "obstacle_pa"), "lower"),
    (("smoke", "ODJ", "obstacle_pa"), "lower"),
    (("smoke", "ODJ", "result_size"), "exact"),
    (("smoke", "OCP (k=4)", "entity_pa"), "lower"),
    (("smoke", "OCP (k=4)", "result_size"), "exact"),
    (("smoke repeated d_O", "fresh", "graph_builds"), "lower"),
    (("smoke repeated d_O", "cached", "graph_builds"), "lower"),
    (("smoke moving-query cache", "exact", "graph_builds"), "lower"),
    (("smoke moving-query cache", "snapped", "graph_builds"), "lower"),
    (("smoke snapshot warm-start", "builds_cold"), "lower"),
    (("smoke snapshot warm-start", "builds_warm"), "lower"),
    (("smoke snapshot warm-start", "build_reduction"), "higher"),
    (("smoke kernel", "edges_match"), "exact"),
    (("smoke serve", "parity"), "exact"),
    (("smoke serve", "warm_builds"), "lower"),
    (("smoke serve", "persistent", "graph_builds"), "lower"),
    (("smoke serve", "persistent", "pool_batches"), "exact"),
    # Observability: boolean verdicts only — the raw overhead ratios
    # are wall-clock and ride in the JSON ungated; the bars themselves
    # (disabled <= 5%, sampled <= 15%, best-of-rounds) are evaluated
    # inside the smoke run where they were measured.
    (("smoke obs", "disabled_overhead_ok"), "exact"),
    (("smoke obs", "sampled_overhead_ok"), "exact"),
    (("smoke obs", "trace_parity"), "exact"),
    (("smoke obs", "pool_trace_merged"), "exact"),
    (("smoke obs", "registry_complete"), "exact"),
    (("smoke obs", "prometheus_parses"), "exact"),
    # Distance-field engine: exactness flags (bit-identical answers,
    # identical counters, the >= 3x bar evaluated in the smoke) plus
    # the deterministic freeze/build counters.
    (("smoke field engine", "parity"), "exact"),
    (("smoke field engine", "counters_match"), "exact"),
    (("smoke field engine", "speedup_ok"), "exact"),
    (("smoke field engine", "graph_builds"), "lower"),
    (("smoke field engine", "field_freezes"), "lower"),
    # Adaptive cache policy: the acceptance verdict (>= 2 wins, no
    # losses, bit-identical answers), the deterministic trace check,
    # and the build counters of the two headline-win profiles.
    (("smoke adaptive policy", "gate_ok"), "exact"),
    (("smoke adaptive policy", "parity"), "exact"),
    (("smoke adaptive policy", "trace_deterministic"), "exact"),
    (("smoke adaptive policy", "wins"), "higher"),
    (("smoke adaptive policy", "losses"), "lower"),
    (("smoke adaptive policy", "zipf-hotspot", "builds_adaptive"), "lower"),
    (("smoke adaptive policy", "churn-heavy", "builds_adaptive"), "lower"),
    # Write-ahead journal durability: the crash-recovery and compaction
    # verdicts, the bytes-per-mutation advantage over rewriting the
    # snapshot, and write amplification (journal + compaction bytes
    # over appended bytes — 1.0 while no auto-compaction triggers).
    # The incremental-save speedup is gated through its >= 2x verdict;
    # the raw wall-clock ratio rides in the JSON ungated.
    (("smoke journal", "recovery_parity"), "exact"),
    (("smoke journal", "compaction_ok"), "exact"),
    (("smoke journal", "incremental_ok"), "exact"),
    (("smoke journal", "save_speedup_ok"), "exact"),
    (("smoke journal", "bytes_ratio"), "higher"),
    (("smoke journal", "write_amplification"), "lower"),
)


def _lookup(results: dict, path: tuple[str, ...]):
    node = results
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node


def delta_rows(
    baseline: dict,
    current: dict,
    *,
    threshold: float = DEFAULT_THRESHOLD,
) -> list[tuple[str, str, float, object, float | None, str]]:
    """One row per gate: ``(label, direction, old, new, delta, verdict)``.

    ``delta`` is the relative change in percent (``None`` when the
    baseline is zero, infinite, or the metric is missing); ``verdict``
    is ``"ok"``, ``"FAIL"``, or ``"skipped"`` (no baseline history).
    ``baseline`` and ``current`` are full ``--json`` documents (or bare
    ``results`` mappings).
    """
    base_results = baseline.get("results", baseline)
    cur_results = current.get("results", current)
    rows = []
    for path, direction in GATES:
        label = " / ".join(path)
        base = _lookup(base_results, path)
        if base is None:
            # No baseline history; the current value still rides in the
            # row so the CLI can flag a stale baseline (exit 3).
            cur = _lookup(cur_results, path)
            rows.append((label, direction, base, cur, None, "skipped"))
            continue
        cur = _lookup(cur_results, path)
        delta = None
        if (
            cur is not None
            and base not in (0, 0.0)
            and abs(base) != float("inf")
        ):
            delta = (cur - base) / base * 100.0
        if cur is None:
            verdict = "FAIL"
        elif direction == "exact":
            verdict = "FAIL" if abs(cur - base) > 1e-9 else "ok"
        elif direction == "lower":
            verdict = (
                "FAIL" if cur > base * (1.0 + threshold) + 1e-9 else "ok"
            )
        else:  # higher
            verdict = (
                "FAIL" if cur < base * (1.0 - threshold) - 1e-9 else "ok"
            )
        rows.append((label, direction, base, cur, delta, verdict))
    return rows


def compare(
    baseline: dict,
    current: dict,
    *,
    threshold: float = DEFAULT_THRESHOLD,
) -> list[str]:
    """Violation messages for every gated metric that regressed.

    A gate whose metric is missing from the baseline is skipped (new
    benchmark, no history yet); one missing from the current run is
    itself a violation — a benchmark silently disappearing must not
    read as a pass.
    """
    violations = []
    for label, direction, base, cur, __, verdict in delta_rows(
        baseline, current, threshold=threshold
    ):
        if verdict != "FAIL":
            continue
        if cur is None:
            violations.append(f"{label}: missing from the current run")
        elif direction == "exact":
            violations.append(f"{label}: expected {base!r}, got {cur!r}")
        elif direction == "lower":
            violations.append(
                f"{label}: {cur!r} exceeds baseline {base!r} "
                f"by more than {threshold:.0%}"
            )
        else:  # higher
            violations.append(
                f"{label}: {cur!r} fell below baseline {base!r} "
                f"by more than {threshold:.0%}"
            )
    return violations


def _cell(value) -> str:
    if value is None:
        return "—"
    return f"{value:g}"


def _delta_cell(delta) -> str:
    if delta is None:
        return "—"
    return f"{delta:+.1f}%"


def format_delta_table(rows, *, failures_only: bool = False) -> str:
    """The per-metric delta table as aligned plain text."""
    shown = [
        r for r in rows if not failures_only or r[5] == "FAIL"
    ]
    header = ("metric", "gate", "old", "new", "Δ%", "verdict")
    cells = [header] + [
        (label, direction, _cell(base), _cell(cur), _delta_cell(delta), verdict)
        for label, direction, base, cur, delta, verdict in shown
    ]
    widths = [max(len(row[i]) for row in cells) for i in range(len(header))]
    lines = []
    for i, row in enumerate(cells):
        lines.append(
            "  ".join(col.ljust(w) for col, w in zip(row, widths)).rstrip()
        )
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_markdown_summary(rows, *, threshold: float) -> str:
    """The delta table as GitHub-flavored markdown (CI step summary)."""
    failed = sum(1 for r in rows if r[5] == "FAIL")
    verdict = (
        f"**{failed} regression(s)**" if failed else "all gates clean"
    )
    lines = [
        "## Benchmark regression gate",
        "",
        f"{len(rows)} gated metrics, {threshold:.0%} threshold — {verdict}.",
        "",
        "| metric | gate | old | new | Δ% | verdict |",
        "| --- | --- | --- | --- | --- | --- |",
    ]
    for label, direction, base, cur, delta, row_verdict in rows:
        mark = {"ok": "✅", "FAIL": "❌", "skipped": "⏭️"}[row_verdict]
        lines.append(
            f"| {label} | {direction} | {_cell(base)} | {_cell(cur)} "
            f"| {_delta_cell(delta)} | {mark} {row_verdict} |"
        )
    return "\n".join(lines) + "\n"


def main(argv: list[str]) -> int:
    """CLI entry point:
    ``check_regression.py [--threshold F] [--summary PATH] BASELINE CURRENT``.

    ``--summary`` writes the full delta table as markdown (intended for
    ``$GITHUB_STEP_SUMMARY``), pass or fail.  On failure the plain-text
    table is also printed so the log shows old/new/Δ% for every gate,
    not just the violated ones.

    Exit codes: ``0`` clean, ``1`` regression, ``2`` bad usage, ``3``
    stale baseline — the current run emits a gated metric the baseline
    has no history for (a new benchmark landed without refreshing
    ``BENCH_smoke.json``); the fix-it command is printed.
    """
    argv = list(argv)
    threshold = DEFAULT_THRESHOLD
    summary_path = None
    if "--threshold" in argv:
        flag = argv.index("--threshold")
        try:
            threshold = float(argv[flag + 1])
        except (IndexError, ValueError):
            print("--threshold needs a float argument", file=sys.stderr)
            return 2
        del argv[flag : flag + 2]
    if "--summary" in argv:
        flag = argv.index("--summary")
        try:
            summary_path = argv[flag + 1]
        except IndexError:
            print("--summary needs a file path argument", file=sys.stderr)
            return 2
        del argv[flag : flag + 2]
    if len(argv) != 2:
        print(
            "usage: check_regression.py [--threshold F] [--summary PATH] "
            "BASELINE CURRENT",
            file=sys.stderr,
        )
        return 2
    with open(argv[0]) as fh:
        baseline = json.load(fh)
    with open(argv[1]) as fh:
        current = json.load(fh)
    rows = delta_rows(baseline, current, threshold=threshold)
    violations = compare(baseline, current, threshold=threshold)
    if summary_path is not None:
        with open(summary_path, "a") as fh:
            fh.write(format_markdown_summary(rows, threshold=threshold))
    if violations:
        print(f"{len(violations)} benchmark regression(s):")
        for message in violations:
            print(f"  - {message}")
        print()
        print(format_delta_table(rows))
        return 1
    stale = [r for r in rows if r[5] == "skipped" and r[3] is not None]
    if stale:
        print(
            f"{len(stale)} gate(s) missing from the baseline but emitted "
            "by the current run:"
        )
        for label, *__ in stale:
            print(f"  - {label}")
        print()
        print(
            "the committed baseline predates these gates; refresh it with:"
        )
        print("  python benchmarks/run_all.py --smoke --json BENCH_smoke.json")
        return 3
    print(f"benchmark gates clean ({len(GATES)} metrics, {threshold:.0%} threshold)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
