"""Runtime-cache benchmark: repeated queries vs per-call rebuild.

Not a paper figure — this measures the PR's architectural change: a
workload of repeated obstructed-distance evaluations against shared
target points, executed (a) through the database's persistent
:class:`~repro.runtime.context.QueryContext` and (b) seed-style, with
a fresh context (hence fresh visibility graphs) per call.  The
persistent path must build dramatically fewer graphs and touch fewer
obstacle pages.
"""

import random

import pytest

from benchmarks.common import BENCH_O, bench_db, cardinality_spec, run_repeated_distance


def _repeated_pairs(workload, n_targets=3, n_sources=12):
    """Pairs sharing few targets: the production 'hot key' shape.

    Sources are each target's Euclidean-nearest entities, keeping the
    local graphs small — the benchmark measures redundant *rebuilds*,
    not long-range path extraction.
    """
    targets = workload.queries[:n_targets]
    entities = workload.entity_sets["P1"]
    pairs = []
    for t in targets:
        near = sorted(entities, key=t.distance)[:n_sources]
        pairs.extend((s, t) for s in near)
    return pairs


@pytest.mark.parametrize("persistent", [True, False])
def test_repeated_distance(benchmark, persistent):
    db, workload = bench_db(BENCH_O, cardinality_spec(), 8)
    pairs = _repeated_pairs(workload)

    metrics = benchmark.pedantic(
        run_repeated_distance,
        args=(db, pairs),
        kwargs={"persistent": persistent},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(metrics)
    benchmark.extra_info["persistent"] = persistent

    if persistent:
        # One graph per distinct target, not one per call.
        assert metrics["graph_builds"] <= len({t for __, t in pairs})
    else:
        assert metrics["graph_builds"] >= len(pairs)


def test_cache_reduces_graph_builds():
    """The acceptance check, independent of wall-clock: the persistent
    cache performs strictly fewer visibility-graph builds than the
    seed's per-call rebuild on the same workload."""
    db, workload = bench_db(BENCH_O, cardinality_spec(), 8)
    pairs = _repeated_pairs(workload)
    fresh = run_repeated_distance(db, pairs, persistent=False)
    cached = run_repeated_distance(db, pairs, persistent=True)
    assert cached["graph_builds"] < fresh["graph_builds"] / 10
    assert cached["obstacle_reads"] <= fresh["obstacle_reads"]
