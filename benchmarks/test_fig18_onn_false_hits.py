"""Fig. 18 — ONN false-hit ratio vs |P|/|O| (a) and vs k (b).

Paper: the ratio falls as density grows (Euclidean and obstructed
orders converge), and over k it peaks around k ~ 4 before declining —
for large k the Euclidean and obstructed k-NN *sets* largely coincide
even when their internal orders differ.
"""

import pytest

from benchmarks.common import (
    BENCH_O,
    BENCH_QUERIES,
    CARDINALITY_RATIOS,
    K_VALUES,
    bench_db,
    cardinality_spec,
    queries_for,
    run_onn_workload,
)


@pytest.mark.parametrize("ratio", CARDINALITY_RATIOS)
def test_fig18a_false_hits_vs_cardinality(benchmark, ratio):
    db, workload = bench_db(BENCH_O, cardinality_spec(), BENCH_QUERIES)
    cost = 2 if ratio >= 1 else 3
    queries = workload.queries[: queries_for(cost)]
    metrics = benchmark.pedantic(
        run_onn_workload,
        args=(db, workload, f"P{ratio:g}", queries, 16),
        rounds=1, iterations=1,
    )
    benchmark.extra_info.update(metrics)
    benchmark.extra_info["ratio"] = ratio
    assert 0.0 <= metrics["false_hit_ratio"] <= 1.0


@pytest.mark.parametrize("k", K_VALUES)
def test_fig18b_false_hits_vs_k(benchmark, k):
    db, workload = bench_db(BENCH_O, cardinality_spec(), BENCH_QUERIES)
    cost = 1 if k <= 16 else (2 if k <= 64 else 4)
    queries = workload.queries[: queries_for(cost)]
    metrics = benchmark.pedantic(
        run_onn_workload, args=(db, workload, "P1", queries, k),
        rounds=1, iterations=1,
    )
    benchmark.extra_info.update(metrics)
    benchmark.extra_info["k"] = k
    assert 0.0 <= metrics["false_hit_ratio"] <= 1.0
