"""Fig. 15 — OR false-hit ratio vs |P|/|O| (a) and vs e (b).

Paper: the ratio is roughly flat across cardinalities (~4-6 %) and
grows with e (more obstacles per disk deviate obstructed from Euclidean
distances).
"""

import pytest

from benchmarks.common import (
    BENCH_O,
    BENCH_QUERIES,
    CARDINALITY_RATIOS,
    RANGE_FRACTIONS,
    bench_db,
    cardinality_spec,
    queries_for,
    run_or_workload,
    scaled_range,
)


@pytest.mark.parametrize("ratio", CARDINALITY_RATIOS)
def test_fig15a_false_hits_vs_cardinality(benchmark, ratio):
    db, workload = bench_db(BENCH_O, cardinality_spec(), BENCH_QUERIES)
    e = scaled_range(0.001)
    metrics = benchmark.pedantic(
        run_or_workload,
        args=(db, workload, f"P{ratio:g}", workload.queries, e),
        rounds=1, iterations=1,
    )
    benchmark.extra_info.update(metrics)
    benchmark.extra_info["ratio"] = ratio
    assert 0.0 <= metrics["false_hit_ratio"]


@pytest.mark.parametrize("fraction", RANGE_FRACTIONS)
def test_fig15b_false_hits_vs_range(benchmark, fraction):
    db, workload = bench_db(BENCH_O, cardinality_spec(), BENCH_QUERIES)
    e = scaled_range(fraction)
    cost = 1 if fraction <= 0.001 else (2 if fraction <= 0.005 else 4)
    queries = workload.queries[: queries_for(cost)]
    metrics = benchmark.pedantic(
        run_or_workload, args=(db, workload, "P1", queries, e),
        rounds=1, iterations=1,
    )
    benchmark.extra_info.update(metrics)
    benchmark.extra_info["e_fraction"] = fraction
    assert 0.0 <= metrics["false_hit_ratio"]
