"""Snapshot warm-start benchmark: cold build cost paid once, on disk.

Not a paper figure — this measures the persistence subsystem on the
moving-query workload: a cold database pays one full visibility-graph
build per trajectory step (exact cache keys); a database restored from
a snapshot of the warmed runtime replays the identical trajectory out
of its restored cache.

Acceptance bar (CI-enforced): the warm start performs **>= 3x fewer
full graph builds** than the cold start, with **bit-identical**
answers.  Deterministic (build counters, not wall-clock), so it is
enforced unconditionally, including on single-core runners.

Scale knobs: ``REPRO_BENCH_O`` (obstacles), ``REPRO_BENCH_MOVING_STEPS``
(path length), ``REPRO_BENCH_PAGE_ENTRIES``.
"""

from __future__ import annotations

from benchmarks.common import (
    BENCH_MOVING_STEPS,
    BENCH_O,
    snapshot_warm_comparison,
)

#: Required reduction in full graph builds (the acceptance bar).
WARM_START_TARGET = 3.0

#: Obstacle cardinality: enough structure for real graphs, small
#: enough to keep the cold baseline (one build per step) fast.
SNAPSHOT_O = min(BENCH_O, 500)


class TestSnapshotWarmStart:
    def test_warm_start_builds_3x_fewer_graphs(self, tmp_path):
        answers_match, metrics = snapshot_warm_comparison(
            SNAPSHOT_O, BENCH_MOVING_STEPS, str(tmp_path / "warm.snap")
        )
        assert answers_match, "restored database changed moving-query answers"
        builds_cold = metrics["builds_cold"]
        builds_warm = metrics["builds_warm"]
        assert builds_cold >= WARM_START_TARGET, (
            f"cold baseline too small to measure: {builds_cold:.0f} builds"
        )
        assert builds_warm * WARM_START_TARGET <= builds_cold, (
            f"warm start avoided too few builds: {builds_cold:.0f} cold -> "
            f"{builds_warm:.0f} warm over {BENCH_MOVING_STEPS} steps; bar "
            f"is {WARM_START_TARGET}x"
        )
