"""Fig. 22 — OCP cost vs k (|S| = |T| = 0.1 |O|).

Paper: entity-tree page accesses stay almost constant (the k closest
pairs are usually in the heap once the first pair is found), while
obstacle-tree accesses and CPU time grow with k — more visibility
graphs are built for the extra obstructed evaluations.
"""

import pytest

from benchmarks.common import (
    BENCH_O,
    BENCH_QUERIES,
    K_VALUES,
    bench_db,
    join_spec,
    run_ocp,
)


@pytest.mark.parametrize("k", K_VALUES)
def test_fig22_ocp_vs_k(benchmark, k):
    db, __ = bench_db(BENCH_O, join_spec(), BENCH_QUERIES)
    metrics = benchmark.pedantic(
        run_ocp, args=(db, "S0.1", "T", k), rounds=1, iterations=1
    )
    benchmark.extra_info.update(metrics)
    benchmark.extra_info["k"] = k
    assert metrics["entity_pa"] >= 0
