"""Fig. 16 — ONN cost vs |P|/|O| (k = 16).

Paper: entity-tree page accesses grow slowly with density (the NN
search radius shrinks as |P| grows) and CPU time *drops* significantly
with density — fewer obstacles participate in the distance
computations.
"""

import pytest

from benchmarks.common import (
    BENCH_O,
    BENCH_QUERIES,
    CARDINALITY_RATIOS,
    bench_db,
    cardinality_spec,
    queries_for,
    run_onn_workload,
)


@pytest.mark.parametrize("ratio", CARDINALITY_RATIOS)
def test_fig16_onn_vs_cardinality(benchmark, ratio):
    db, workload = bench_db(BENCH_O, cardinality_spec(), BENCH_QUERIES)
    cost = 2 if ratio >= 1 else 3  # sparse sets need wider searches
    queries = workload.queries[: queries_for(cost)]
    metrics = benchmark.pedantic(
        run_onn_workload,
        args=(db, workload, f"P{ratio:g}", queries, 16),
        rounds=1, iterations=1,
    )
    benchmark.extra_info.update(metrics)
    benchmark.extra_info["ratio"] = ratio
    assert metrics["entity_pa"] >= 0
