"""Fig. 17 — ONN cost vs k (|P| = |O|).

Paper: both I/O and CPU grow with k (larger search radii, more
obstacles in the local graph, more distance evaluations).
"""

import pytest

from benchmarks.common import (
    BENCH_O,
    BENCH_QUERIES,
    K_VALUES,
    bench_db,
    cardinality_spec,
    queries_for,
    run_onn_workload,
)


@pytest.mark.parametrize("k", K_VALUES)
def test_fig17_onn_vs_k(benchmark, k):
    db, workload = bench_db(BENCH_O, cardinality_spec(), BENCH_QUERIES)
    cost = 1 if k <= 16 else (2 if k <= 64 else 4)
    queries = workload.queries[: queries_for(cost)]
    metrics = benchmark.pedantic(
        run_onn_workload, args=(db, workload, "P1", queries, k),
        rounds=1, iterations=1,
    )
    benchmark.extra_info.update(metrics)
    benchmark.extra_info["k"] = k
    assert metrics["entity_pa"] >= 0
