"""Compiled distance-field engine benchmark: CSR vs the reference path.

Not a paper figure — this measures the query-side steady state the CSR
engine targets: a warm-cache stream of range and nearest queries
revisiting a handful of centres.  The reference (``python``) engine
re-runs a dict-adjacency Dijkstra and a visibility sweep per query;
the compiled (``csr``) engine freezes each cached graph once per
structure revision and amortizes the per-source distance field and the
per-candidate last-leg geometry across the whole stream.

Acceptance bar (CI-enforced): **>= 3x** CPU speedup on the warm
stream, with **bit-identical** answers and identical graph-build and
R-tree page counters.  Deterministic answers and counters are enforced
unconditionally; the wall-clock bar uses generous rounds so it holds
on slow CI boxes too.

Scale knobs: ``REPRO_BENCH_O`` (obstacles), ``REPRO_BENCH_FIELD_ROUNDS``
(stream length).
"""

from __future__ import annotations

import os

from benchmarks.common import BENCH_O, field_engine_comparison

#: Required warm-stream CPU speedup of the CSR engine (the bar).
FIELD_ENGINE_TARGET = 3.0

#: Obstacle cardinality: real graphs, fast reference baseline.
FIELD_O = min(BENCH_O, 500)

#: Stream length: enough revisits that the one-off freeze cost is
#: amortized the way a serving steady state amortizes it.
FIELD_ROUNDS = int(os.environ.get("REPRO_BENCH_FIELD_ROUNDS", "24"))


class TestFieldEngine:
    def test_csr_engine_3x_on_warm_streams(self):
        metrics = field_engine_comparison(FIELD_O, FIELD_ROUNDS)
        assert metrics["parity"], (
            "CSR engine changed range/nearest answers"
        )
        assert metrics["counters_match"], (
            "CSR engine changed graph-build or page counters"
        )
        assert metrics["field_freezes"] >= 1.0
        assert metrics["speedup"] >= FIELD_ENGINE_TARGET, (
            f"CSR engine too slow: {metrics['python_cpu_s'] * 1e3:.0f} ms "
            f"(python) vs {metrics['csr_cpu_s'] * 1e3:.0f} ms (csr) over "
            f"{metrics['queries']:.0f} queries = {metrics['speedup']:.2f}x; "
            f"bar is {FIELD_ENGINE_TARGET}x"
        )
