"""Ablation — OR's single shared expansion vs per-candidate distances.

Fig. 5's key design choice: one Dijkstra-style expansion from the query
point serves *all* candidates.  The naive alternative evaluates
``compute_obstructed_distance`` per candidate.  Both must agree on the
result; the shared expansion should be faster once candidates are
plentiful.
"""

import pytest

from benchmarks.common import (
    BENCH_O,
    BENCH_QUERIES,
    bench_db,
    cardinality_spec,
    queries_for,
    scaled_range,
)
from repro.core.distance import compute_obstructed_distance
from repro.core.range import obstacle_range
from repro.euclidean.range import entities_in_range
from repro.visibility.graph import VisibilityGraph


def _or_per_candidate(entity_tree, obstacle_index, q, e):
    """The strawman OR: one obstructed-distance evaluation per candidate."""
    candidates = entities_in_range(entity_tree, q, e)
    if not candidates:
        return []
    relevant = obstacle_index.obstacles_in_range(q, e)
    graph = VisibilityGraph.build([q], relevant)
    out = []
    for p in candidates:
        added = graph.add_entity(p)
        d = compute_obstructed_distance(graph, p, q, obstacle_index)
        if added:
            graph.delete_entity(p)
        if d <= e:
            out.append((p, d))
    out.sort(key=lambda pd: pd[1])
    return out


@pytest.mark.parametrize("variant", ["shared-expansion", "per-candidate"])
def test_ablation_or_expansion(benchmark, variant):
    db, workload = bench_db(BENCH_O, cardinality_spec(), BENCH_QUERIES)
    e = scaled_range(0.001)
    tree = db.entity_tree("P2")
    idx = db.obstacle_index
    queries = workload.queries[: queries_for(2)]

    def run_shared():
        return [obstacle_range(tree, idx, q, e) for q in queries]

    def run_naive():
        return [_or_per_candidate(tree, idx, q, e) for q in queries]

    run = run_shared if variant == "shared-expansion" else run_naive
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["variant"] = variant
    benchmark.extra_info["avg_results"] = sum(len(r) for r in results) / len(results)

    # Equivalence check against the other variant on the first query.
    other = (run_naive if variant == "shared-expansion" else run_shared)()
    got = {p for p, __ in results[0]}
    want = {p for p, __ in other[0]}
    assert got == want
