"""Adaptive cache policy benchmark: learned knobs vs the best static.

Not a paper figure — this measures the claim behind
``REPRO_CACHE_POLICY=adaptive``: a policy that learns the snap
quantum, LRU capacity, and guest admission from the observed centre
stream beats any fixed knob setting across workload regimes, because
no fixed setting is right for all of them.

Each named workload profile (uniform scatter, Zipf hotspots, commuter
streams, a flash crowd, mutation churn) is generated as a
deterministic trace and replayed three times on identical scenes:
exact cache keys, the hand-tuned moving-query quantum, and the
adaptive policy.  "Best static" is chosen per profile after the fact
— the strongest opponent the policy can face.

Acceptance bar (CI-enforced): the adaptive policy **wins on >= 2 of
the 5 profiles** (>= 1.3x fewer graph builds or >= 1.3x higher hit
rate than the best static config) and **never needs more than 1.05x**
the best static config's graph builds on any profile.  Answers must
be **bit-identical** across all three replays — the coverage guard
makes every snap/capacity decision answer-preserving — and trace
generation must be byte-deterministic per seed.

All verdicts here are counter-based (no wall-clock), so the bar holds
on any runner.
"""

from __future__ import annotations

from functools import lru_cache

from benchmarks.common import (
    POLICY_LOSS_TOLERANCE,
    POLICY_PROFILES,
    POLICY_WIN_RATIO,
    adaptive_policy_comparison,
)


@lru_cache(maxsize=1)
def _comparison() -> dict:
    """One comparison shared by every assertion (15 trace replays)."""
    return adaptive_policy_comparison()


class TestAdaptivePolicy:
    def setup_method(self):
        self.metrics = _comparison()

    def test_answers_bit_identical_under_every_policy(self):
        for profile in POLICY_PROFILES:
            assert self.metrics[profile]["parity"], (
                f"{profile}: a cache policy changed query answers"
            )

    def test_trace_generation_deterministic(self):
        assert self.metrics["trace_deterministic"], (
            "generating a trace twice from one seed was not byte-identical"
        )

    def test_adaptive_wins_at_least_two_profiles(self):
        rows = {
            profile: self.metrics[profile]["build_ratio"]
            for profile in POLICY_PROFILES
        }
        assert self.metrics["wins"] >= 2, (
            f"adaptive won {self.metrics['wins']:.0f} of "
            f"{len(POLICY_PROFILES)} profiles (bar: 2 wins at "
            f">= {POLICY_WIN_RATIO}x); best-static/adaptive build "
            f"ratios: {rows}"
        )

    def test_adaptive_never_loses_beyond_tolerance(self):
        losers = [
            profile
            for profile in POLICY_PROFILES
            if self.metrics[profile]["loss"]
        ]
        assert not losers, (
            f"adaptive needed more than {POLICY_LOSS_TOLERANCE}x the best "
            f"static config's graph builds on: {losers}"
        )

    def test_policy_actually_adjusted(self):
        # A policy that never retunes anything "wins" vacuously when
        # the static configs stumble; require real adjustments on the
        # winning profiles.
        for profile in POLICY_PROFILES:
            row = self.metrics[profile]
            if row["win"]:
                assert row["adjustments"] >= 1, (
                    f"{profile}: adaptive won without a single applied "
                    "adjustment"
                )
