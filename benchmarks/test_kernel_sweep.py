"""Kernel sweep benchmark: vectorized numpy backend vs python sweep.

Not a paper figure — this measures the visibility kernel subsystem:
full visibility-graph construction (one rotational sweep per node, the
dominant cost in every figure benchmark) across obstacle
cardinalities, once per backend.  The acceptance bar for the numpy
kernel is a >= 3x build speedup on a 1,000-vertex scene with a
bit-identical resulting graph.

Run standalone (pytest-benchmark)::

    PYTHONPATH=src python -m pytest benchmarks/test_kernel_sweep.py

or as part of the CI smoke pass (``python benchmarks/run_all.py
--smoke``), which uses a smaller scene and only sanity-checks that the
kernel wins at all.
"""

from __future__ import annotations

import pytest

from benchmarks.common import kernel_comparison
from repro.datasets.synthetic import street_grid_obstacles
from repro.visibility import VisibilityGraph

#: Rectangle counts per measured scene (4 vertices each).
KERNEL_CARDINALITIES = (32, 96, 250)

#: The acceptance scene: 250 rectangles = 1,000 obstacle vertices.
ACCEPTANCE_RECTS = 250

#: Required build-time speedup of ``numpy-kernel`` over
#: ``python-sweep`` on the acceptance scene.
SPEEDUP_TARGET = 3.0

_BACKENDS = ("python-sweep", "numpy-kernel")


@pytest.mark.parametrize("method", _BACKENDS)
@pytest.mark.parametrize("n_rects", KERNEL_CARDINALITIES)
def test_graph_build(benchmark, n_rects, method):
    if method == "numpy-kernel":
        pytest.importorskip("numpy")
    obstacles = street_grid_obstacles(n_rects, seed=7)

    graphs = []

    def build():
        graphs.append(VisibilityGraph.build([], obstacles, method=method))

    benchmark.pedantic(build, rounds=1, iterations=1)
    benchmark.extra_info["n_vertices"] = 4 * n_rects
    benchmark.extra_info["backend"] = method
    benchmark.extra_info["edges"] = graphs[-1].edge_count


def test_kernel_speedup_acceptance():
    """The acceptance check: >= 3x faster construction on 1k vertices,
    with both backends producing the same graph."""
    pytest.importorskip("numpy")
    metrics = kernel_comparison(ACCEPTANCE_RECTS)
    assert metrics["edges_match"] == 1.0
    assert metrics["speedup"] >= SPEEDUP_TARGET, (
        f"numpy-kernel speedup {metrics['speedup']:.2f}x "
        f"below the {SPEEDUP_TARGET}x acceptance bar"
    )
