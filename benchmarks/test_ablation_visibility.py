"""Ablation — [SS84] rotational sweep vs naive O(n^2 E) construction.

The paper adopts the rotational plane sweep for visibility-graph
construction (Sec. 2.3); this bench quantifies what that choice buys
over the naive all-pairs checker at growing scene sizes.
"""

import pytest

from benchmarks.common import BENCH_SEED
from repro.datasets.synthetic import (
    entities_following_obstacles,
    street_grid_obstacles,
)
from repro.visibility.graph import VisibilityGraph

SCENE_SIZES = (10, 30, 60)


@pytest.mark.parametrize("n_obstacles", SCENE_SIZES)
@pytest.mark.parametrize("method", ["sweep", "naive"])
def test_ablation_visibility_construction(benchmark, method, n_obstacles):
    obstacles = street_grid_obstacles(n_obstacles, seed=BENCH_SEED)
    points = entities_following_obstacles(
        2 * n_obstacles, obstacles, seed=BENCH_SEED + 1
    )

    graph = benchmark.pedantic(
        VisibilityGraph.build,
        args=(points, obstacles),
        kwargs={"method": method},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["method"] = method
    benchmark.extra_info["n_obstacles"] = n_obstacles
    benchmark.extra_info["nodes"] = graph.node_count
    benchmark.extra_info["edges"] = graph.edge_count
    assert graph.node_count >= 4 * n_obstacles


@pytest.mark.parametrize("n_obstacles", SCENE_SIZES[:2])
def test_ablation_visibility_equivalence(benchmark, n_obstacles):
    """Both kernels must produce the identical graph (checked while
    timing the sweep)."""
    obstacles = street_grid_obstacles(n_obstacles, seed=BENCH_SEED + 2)
    points = entities_following_obstacles(
        n_obstacles, obstacles, seed=BENCH_SEED + 3
    )
    sweep = benchmark.pedantic(
        VisibilityGraph.build,
        args=(points, obstacles),
        kwargs={"method": "sweep"},
        rounds=1,
        iterations=1,
    )
    naive = VisibilityGraph.build(points, obstacles, method="naive")
    sweep_adj = {(u, v) for u in sweep.nodes() for v in sweep.neighbors(u)}
    naive_adj = {(u, v) for u in naive.nodes() for v in naive.neighbors(u)}
    assert sweep_adj == naive_adj
