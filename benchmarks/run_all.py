"""Standalone experiment harness: regenerate every paper figure.

Prints one text table per figure (13-22), in the same layout as the
paper's plots: the x-axis parameter against the plotted series (page
accesses per tree, CPU time, false-hit ratios).

Usage::

    python benchmarks/run_all.py                      # all figures
    python benchmarks/run_all.py 13 17 21             # a subset
    python benchmarks/run_all.py --smoke              # CI: tiny fixed-size run
    python benchmarks/run_all.py --json BENCH_x.json  # + machine-readable dump

``--json PATH`` (composable with every other mode) writes one JSON
document with the run configuration and the per-benchmark metric rows
— the machine-readable perf trajectory tracked across PRs.

Environment knobs are shared with the pytest benches (see
``benchmarks/common.py``): REPRO_BENCH_O, REPRO_BENCH_QUERIES,
REPRO_BENCH_PAGE_ENTRIES.
"""

from __future__ import annotations

import json
import math
import os
import platform
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import (  # noqa: E402
    BENCH_O,
    BENCH_QUERIES,
    CARDINALITY_RATIOS,
    JOIN_RANGE_FRACTIONS,
    JOIN_RATIOS,
    K_VALUES,
    RANGE_FRACTIONS,
    bench_db,
    cardinality_spec,
    join_spec,
    queries_for,
    run_ocp,
    run_odj,
    run_onn_workload,
    run_or_workload,
    run_repeated_distance,
    scale_factor,
    scaled_join_range,
    scaled_range,
)
from repro.obs.experiment import ExperimentSeries, format_table


#: Per-benchmark metric rows of the current run, keyed by benchmark
#: title — dumped verbatim by ``--json``.
RESULTS: dict[str, object] = {}


def _record(title: str, x_label: str, rows: list[tuple[float, dict]]) -> None:
    RESULTS[title] = {
        "x_label": x_label,
        "rows": [{"x": x, **metrics} for x, metrics in rows],
    }


def _print(title: str, x_label: str, rows: list[tuple[float, dict]], keys: list[tuple[str, str]]) -> None:
    _record(title, x_label, rows)
    series = [ExperimentSeries(label) for __, label in keys]
    for x, metrics in rows:
        for s, (key, __) in zip(series, keys):
            s.add(x, metrics[key])
    print(format_table(title, x_label, series))
    print()


def fig13() -> None:
    db, wl = bench_db(BENCH_O, cardinality_spec(), BENCH_QUERIES)
    e = scaled_range(0.001)
    rows = []
    for ratio in CARDINALITY_RATIOS:
        rows.append(
            (ratio, run_or_workload(db, wl, f"P{ratio:g}", wl.queries, e))
        )
    _print(
        "Fig. 13 - OR cost vs |P|/|O| (e=0.1%)",
        "|P|/|O|",
        rows,
        [("entity_pa", "data R-tree PA"), ("obstacle_pa", "obstacle R-tree PA"),
         ("cpu_ms", "CPU (ms)")],
    )


def fig14() -> None:
    db, wl = bench_db(BENCH_O, cardinality_spec(), BENCH_QUERIES)
    rows = []
    for fraction in RANGE_FRACTIONS:
        cost = 1 if fraction <= 0.001 else (2 if fraction <= 0.005 else 4)
        queries = wl.queries[: queries_for(cost)]
        rows.append(
            (fraction * 100, run_or_workload(db, wl, "P1", queries, scaled_range(fraction)))
        )
    _print(
        "Fig. 14 - OR cost vs e (|P|=|O|)",
        "e (% of side)",
        rows,
        [("entity_pa", "data R-tree PA"), ("obstacle_pa", "obstacle R-tree PA"),
         ("cpu_ms", "CPU (ms)")],
    )


def fig15() -> None:
    db, wl = bench_db(BENCH_O, cardinality_spec(), BENCH_QUERIES)
    e = scaled_range(0.001)
    rows_a = [
        (ratio, run_or_workload(db, wl, f"P{ratio:g}", wl.queries, e))
        for ratio in CARDINALITY_RATIOS
    ]
    _print(
        "Fig. 15a - OR false-hit ratio vs |P|/|O| (e=0.1%)",
        "|P|/|O|",
        rows_a,
        [("false_hit_ratio", "false-hit ratio")],
    )
    rows_b = []
    for fraction in RANGE_FRACTIONS:
        cost = 1 if fraction <= 0.001 else (2 if fraction <= 0.005 else 4)
        queries = wl.queries[: queries_for(cost)]
        rows_b.append(
            (fraction * 100, run_or_workload(db, wl, "P1", queries, scaled_range(fraction)))
        )
    _print(
        "Fig. 15b - OR false-hit ratio vs e (|P|=|O|)",
        "e (% of side)",
        rows_b,
        [("false_hit_ratio", "false-hit ratio")],
    )


def fig16() -> None:
    db, wl = bench_db(BENCH_O, cardinality_spec(), BENCH_QUERIES)
    rows = []
    for ratio in CARDINALITY_RATIOS:
        cost = 2 if ratio >= 1 else 3
        queries = wl.queries[: queries_for(cost)]
        rows.append((ratio, run_onn_workload(db, wl, f"P{ratio:g}", queries, 16)))
    _print(
        "Fig. 16 - ONN cost vs |P|/|O| (k=16)",
        "|P|/|O|",
        rows,
        [("entity_pa", "data R-tree PA"), ("obstacle_pa", "obstacle R-tree PA"),
         ("cpu_ms", "CPU (ms)")],
    )


def fig17() -> None:
    db, wl = bench_db(BENCH_O, cardinality_spec(), BENCH_QUERIES)
    rows = []
    for k in K_VALUES:
        cost = 1 if k <= 16 else (2 if k <= 64 else 4)
        queries = wl.queries[: queries_for(cost)]
        rows.append((k, run_onn_workload(db, wl, "P1", queries, k)))
    _print(
        "Fig. 17 - ONN cost vs k (|P|=|O|)",
        "k",
        rows,
        [("entity_pa", "data R-tree PA"), ("obstacle_pa", "obstacle R-tree PA"),
         ("cpu_ms", "CPU (ms)")],
    )


def fig18() -> None:
    db, wl = bench_db(BENCH_O, cardinality_spec(), BENCH_QUERIES)
    rows_a = []
    for ratio in CARDINALITY_RATIOS:
        cost = 2 if ratio >= 1 else 3
        queries = wl.queries[: queries_for(cost)]
        rows_a.append((ratio, run_onn_workload(db, wl, f"P{ratio:g}", queries, 16)))
    _print(
        "Fig. 18a - ONN false-hit ratio vs |P|/|O| (k=16)",
        "|P|/|O|",
        rows_a,
        [("false_hit_ratio", "false-hit ratio")],
    )
    rows_b = []
    for k in K_VALUES:
        cost = 1 if k <= 16 else (2 if k <= 64 else 4)
        queries = wl.queries[: queries_for(cost)]
        rows_b.append((k, run_onn_workload(db, wl, "P1", queries, k)))
    _print(
        "Fig. 18b - ONN false-hit ratio vs k (|P|=|O|)",
        "k",
        rows_b,
        [("false_hit_ratio", "false-hit ratio")],
    )


def fig19() -> None:
    db, __ = bench_db(BENCH_O, join_spec(), BENCH_QUERIES)
    e = scaled_join_range(0.0001)
    rows = [(r, run_odj(db, f"S{r:g}", "T", e)) for r in JOIN_RATIOS]
    _print(
        "Fig. 19 - ODJ cost vs |S|/|O| (e=0.01%, |T|=0.1|O|)",
        "|S|/|O|",
        rows,
        [("entity_pa", "data R-trees PA"), ("obstacle_pa", "obstacle R-tree PA"),
         ("cpu_s", "CPU (s)"), ("result_size", "result pairs")],
    )


def fig20() -> None:
    db, __ = bench_db(BENCH_O, join_spec(), BENCH_QUERIES)
    rows = [
        (f * 100, run_odj(db, "S0.1", "T", scaled_join_range(f)))
        for f in JOIN_RANGE_FRACTIONS
    ]
    _print(
        "Fig. 20 - ODJ cost vs e (|S|=|T|=0.1|O|)",
        "e (% of side)",
        rows,
        [("entity_pa", "data R-trees PA"), ("obstacle_pa", "obstacle R-tree PA"),
         ("cpu_s", "CPU (s)"), ("result_size", "result pairs")],
    )


def fig21() -> None:
    db, __ = bench_db(BENCH_O, join_spec(), BENCH_QUERIES)
    rows = [(r, run_ocp(db, f"S{r:g}", "T", 16)) for r in JOIN_RATIOS]
    _print(
        "Fig. 21 - OCP cost vs |S|/|O| (k=16, |T|=0.1|O|)",
        "|S|/|O|",
        rows,
        [("entity_pa", "data R-trees PA"), ("obstacle_pa", "obstacle R-tree PA"),
         ("cpu_s", "CPU (s)")],
    )


def fig22() -> None:
    db, __ = bench_db(BENCH_O, join_spec(), BENCH_QUERIES)
    rows = [(k, run_ocp(db, "S0.1", "T", k)) for k in K_VALUES]
    _print(
        "Fig. 22 - OCP cost vs k (|S|=|T|=0.1|O|)",
        "k",
        rows,
        [("entity_pa", "data R-trees PA"), ("obstacle_pa", "obstacle R-tree PA"),
         ("cpu_s", "CPU (s)")],
    )


FIGURES = {
    "13": fig13, "14": fig14, "15": fig15, "16": fig16, "17": fig17,
    "18": fig18, "19": fig19, "20": fig20, "21": fig21, "22": fig22,
}


def smoke() -> int:
    """A tiny fixed-cardinality pass over every query type plus the
    runtime-cache comparison — seconds, not minutes; exercised by CI.

    The sizes are hard-coded (not env-driven) so the run is
    reproducible regardless of the REPRO_BENCH_* knobs.
    """
    n_obstacles = 200
    db, wl = bench_db(n_obstacles, (("P1", n_obstacles), ("T", 40)), 2)
    # Undo the env-driven scaling baked into scaled_range/scaled_join_range
    # so the smoke's effective ranges depend only on the hard-coded
    # cardinality (sqrt for per-disk counts, linear for join output).
    e = scaled_range(0.001) * math.sqrt(BENCH_O / n_obstacles)
    e_join = scaled_join_range(0.00002) * (BENCH_O / n_obstacles)
    queries = wl.queries[:2]
    rows = [
        ("OR", run_or_workload(db, wl, "P1", queries, e)),
        ("ONN (k=4)", run_onn_workload(db, wl, "P1", queries, 4)),
        ("ODJ", run_odj(db, "P1", "T", e_join)),
        ("OCP (k=4)", run_ocp(db, "P1", "T", 4)),
    ]
    print(f"# smoke: |O|={n_obstacles}, 2 queries\n")
    RESULTS["smoke"] = {name: metrics for name, metrics in rows}
    for name, metrics in rows:
        cells = ", ".join(f"{k}={v:.3g}" for k, v in sorted(metrics.items()))
        print(f"{name:10s} {cells}")

    targets = queries
    entities = wl.entity_sets["P1"]
    pairs = [
        (s, t) for t in targets for s in sorted(entities, key=t.distance)[:8]
    ]
    fresh = run_repeated_distance(db, pairs, persistent=False)
    cached = run_repeated_distance(db, pairs, persistent=True)
    RESULTS["smoke repeated d_O"] = {"fresh": fresh, "cached": cached}
    print(
        f"\nrepeated d_O ({len(pairs)} calls, {len(targets)} targets): "
        f"graph builds {fresh['graph_builds']:.0f} -> "
        f"{cached['graph_builds']:.0f} with persistent cache"
    )
    if cached["graph_builds"] >= fresh["graph_builds"]:
        print("FAIL: persistent cache did not reduce graph builds")
        return 1
    code = smoke_kernel()
    if code:
        return code
    code = smoke_moving_cache()
    if code:
        return code
    code = smoke_snapshot()
    if code:
        return code
    code = smoke_shard_parallel()
    if code:
        return code
    code = smoke_serve()
    if code:
        return code
    code = smoke_obs()
    if code:
        return code
    code = smoke_field_engine()
    if code:
        return code
    code = smoke_policy()
    if code:
        return code
    return smoke_journal()


def smoke_kernel() -> int:
    """Visibility-kernel smoke: both backends build the same graph on a
    small scene, and the numpy kernel must not lose to the python
    sweep.  (The full >= 3x acceptance bar on 1,000 vertices lives in
    ``benchmarks/test_kernel_sweep.py``.)"""
    try:
        import numpy  # noqa: F401
    except ImportError:
        print("\nkernel smoke: numpy unavailable, skipped")
        return 0
    from benchmarks.common import kernel_comparison

    n_rects = 48
    metrics = kernel_comparison(n_rects)
    RESULTS["smoke kernel"] = metrics
    print(
        f"\nkernel smoke ({4 * n_rects} vertices): "
        f"python-sweep {metrics['python-sweep_s'] * 1000:.0f} ms, "
        f"numpy-kernel {metrics['numpy-kernel_s'] * 1000:.0f} ms "
        f"({metrics['speedup']:.1f}x), edges={metrics['edges']:.0f}"
    )
    if metrics["edges_match"] != 1.0:
        print("FAIL: backends disagree on the visibility graph")
        return 1
    if metrics["speedup"] < 1.0:
        print("FAIL: numpy kernel slower than the python sweep")
        return 1
    return 0


def smoke_moving_cache() -> int:
    """Cache-effectiveness smoke: a moving-query workload on a fixed
    small scene, comparing the exact-key cache against the spatial
    (snapped) key.  The regression bar on full-builds-avoided: the
    spatial key must avoid at least 2/3 of the exact key's graph
    builds (the full >= 3x acceptance bar at benchmark scale lives in
    ``benchmarks/test_moving_query_cache.py``), with bit-identical
    answers.  Deterministic (build counters), so it runs everywhere
    including single-core boxes."""
    from benchmarks.common import (
        moving_query_db,
        moving_query_path,
        moving_snap,
        run_moving_query,
    )

    n = 200
    steps = 24
    exact_db, workload = moving_query_db(n, 0.0)
    snapped_db, __ = moving_query_db(n, moving_snap())
    path = moving_query_path(workload, steps)
    exact_answers, exact_metrics = run_moving_query(exact_db, workload, path)
    snapped_answers, snapped_metrics = run_moving_query(
        snapped_db, workload, path
    )
    RESULTS["smoke moving-query cache"] = {
        "exact": exact_metrics,
        "snapped": snapped_metrics,
    }
    builds_exact = exact_metrics["graph_builds"]
    builds_snapped = snapped_metrics["graph_builds"]
    avoided = 1.0 - builds_snapped / builds_exact if builds_exact else 0.0
    print(
        f"\nmoving-query cache ({steps} steps, |O|={n}): graph builds "
        f"{builds_exact:.0f} (exact key) -> {builds_snapped:.0f} "
        f"(spatial key), {avoided:.0%} of full builds avoided"
    )
    if snapped_answers != exact_answers:
        print("FAIL: spatial cache key changed moving-query answers")
        return 1
    if avoided < 2 / 3:
        print("FAIL: spatial key avoided fewer than 2/3 of full builds")
        return 1
    return 0


def smoke_snapshot() -> int:
    """Snapshot warm-start smoke: the moving-query trajectory runs on a
    cold database (one graph build per step, exact keys), the warmed
    database is saved and restored from disk, and the identical
    trajectory replays on the restored runtime.  Bars (both enforced):
    bit-identical answers, and >= 3x fewer full graph builds warm than
    cold (the benchmark-scale bar lives in
    ``benchmarks/test_snapshot_warm.py``).  Deterministic (build
    counters), so it runs everywhere including single-core boxes."""
    import tempfile

    from benchmarks.common import snapshot_warm_comparison

    n = 200
    steps = 24
    with tempfile.TemporaryDirectory() as td:
        answers_match, metrics = snapshot_warm_comparison(
            n, steps, os.path.join(td, "warm.snap")
        )
    RESULTS["smoke snapshot warm-start"] = metrics
    print(
        f"\nsnapshot warm-start ({steps} steps, |O|={n}): graph builds "
        f"{metrics['builds_cold']:.0f} (cold) -> "
        f"{metrics['builds_warm']:.0f} (restored), snapshot "
        f"{metrics['snapshot_bytes'] / 1024:.0f} KiB, save "
        f"{metrics['save_s'] * 1000:.0f} ms, load "
        f"{metrics['load_s'] * 1000:.0f} ms"
    )
    if not answers_match:
        print("FAIL: restored database changed moving-query answers")
        return 1
    if metrics["builds_cold"] < 3:
        print("FAIL: cold baseline too small to measure warm-start gain")
        return 1
    if metrics["builds_warm"] * 3 > metrics["builds_cold"]:
        print("FAIL: warm start avoided fewer than 2/3 of full builds")
        return 1
    return 0


def smoke_shard_parallel() -> int:
    """Shard/parallel smoke: sharded storage answers like monolithic,
    and a 4-worker batch returns results identical to sequential.
    Wall-clock speedup is *reported* but not enforced here (CI smoke
    boxes may be single-core); the benchmark bar lives in
    ``benchmarks/test_shard_parallel.py``."""
    import os

    from benchmarks.common import batch_bench_db, run_batch_nearest

    n = 200
    mono, workload = batch_bench_db(n, (("P1", n),), 24)
    sharded, __ = batch_bench_db(n, (("P1", n),), 24, 16)
    queries = workload.queries[:24]
    index = sharded.obstacle_index
    print(
        f"\nshard smoke: |O|={n} over {index.shard_count} shards "
        f"(grid order {index.grid.order})"
    )
    seq, seq_metrics = run_batch_nearest(mono, "P1", queries, 4)
    shard_seq, __ = run_batch_nearest(sharded, "P1", queries, 4)
    if shard_seq != seq:
        print("FAIL: sharded storage changed batch answers")
        return 1
    par, par_metrics = run_batch_nearest(mono, "P1", queries, 4, workers=4)
    if par != seq:
        print("FAIL: 4-worker batch diverged from sequential")
        return 1
    print(
        f"batch_nearest x{len(queries)}: sequential "
        f"{seq_metrics['cpu_s'] * 1000:.0f} ms, 4-worker "
        f"{par_metrics['cpu_s'] * 1000:.0f} ms "
        f"({seq_metrics['cpu_s'] / par_metrics['cpu_s']:.2f}x, "
        f"{os.cpu_count() or 1} cores)"
    )
    RESULTS["smoke shard+parallel"] = {
        "sequential": seq_metrics,
        "parallel": par_metrics,
    }
    return 0


def smoke_serve() -> int:
    """Serving-tier smoke: the mixed mutate/query/moving-client load on
    a fixed small scene, sequential vs the persistent pool.  Gated on
    the *deterministic* half of the serving claims — bit-identical
    answers under mutations, one pool batch per step, and zero graph
    builds when warm workers serve covered centres — while throughput
    and p99 are reported for the JSON trajectory (the wall-clock >= 2x
    bar vs fork-per-batch lives in
    ``benchmarks/test_serve_sustained.py``, where core counts gate
    it).  Runs everywhere including single-core boxes."""
    from benchmarks.common import (
        run_sustained_serve,
        serve_bench_db,
        serve_client_paths,
        serve_mutation_schedule,
        serve_warm_start_builds,
    )

    n = 200
    steps = 8
    clients = 4
    workload = serve_bench_db(n)[1]
    paths = serve_client_paths(workload, clients, steps)
    schedule = serve_mutation_schedule(workload, steps)
    seq_db, __ = serve_bench_db(n)
    pool_db, __ = serve_bench_db(n)
    try:
        sequential, seq_metrics = run_sustained_serve(seq_db, paths, schedule)
        pooled, pool_metrics = run_sustained_serve(
            pool_db, paths, schedule, workers=2, pool="persistent"
        )
    finally:
        pool_db.close()
    warm_db, __ = serve_bench_db(n)
    try:
        warm_builds = serve_warm_start_builds(
            warm_db, [p[0] for p in paths], workers=2
        )
    finally:
        warm_db.close()
    parity = pooled == sequential
    RESULTS["smoke serve"] = {
        "sequential": seq_metrics,
        "persistent": pool_metrics,
        "parity": float(parity),
        "warm_builds": warm_builds,
    }
    print(
        f"\nserve smoke ({steps} steps x {clients} clients, |O|={n}, "
        f"mutations on): sequential {seq_metrics['qps']:.0f} qps, "
        f"persistent pool {pool_metrics['qps']:.0f} qps "
        f"(p99 {pool_metrics['p99_ms']:.0f} ms), graph builds "
        f"{seq_metrics['graph_builds']:.0f} -> "
        f"{pool_metrics['graph_builds']:.0f}, warm-start builds "
        f"{warm_builds:.0f}"
    )
    if not parity:
        print("FAIL: persistent pool diverged from sequential answers")
        return 1
    if pool_metrics["pool_batches"] != float(steps):
        print("FAIL: not every step was served by the persistent pool")
        return 1
    if warm_builds != 0.0:
        print("FAIL: warm workers built graphs for covered centres")
        return 1
    return 0


def smoke_obs() -> int:
    """Observability smoke: the tracing-overhead bars (disabled <= 5%,
    sampled <= 15%, both over a stubbed-out tracer, best-of-rounds), a
    traced persistent-pool batch whose merged tree must carry the
    workers' span subtrees with answers identical to the untraced run,
    and a metrics-registry snapshot that must cover every runtime
    counter and export as parseable Prometheus text.  The boolean
    verdicts land in the JSON trajectory (gated exactly by
    ``check_regression.py``); the raw wall-clock ratios ride along
    ungated.  The benchmark-scale overhead bars live in
    ``benchmarks/test_trace_overhead.py``."""
    import re

    from benchmarks.common import batch_bench_db, trace_overhead_comparison
    from repro.obs.trace import TRACER
    from repro.runtime.stats import RuntimeStats

    overhead = trace_overhead_comparison(200, rounds=3)
    disabled_ok = overhead["disabled_overhead"] <= 0.05
    sampled_ok = overhead["sampled_overhead"] <= 0.15
    print(
        f"\nobs smoke: tracing overhead vs stub baseline "
        f"({overhead['stub_s'] * 1000:.0f} ms/round): disabled "
        f"{overhead['disabled_overhead']:+.1%} (bar 5%), sampled@"
        f"{overhead['sample_rate']:g} {overhead['sampled_overhead']:+.1%} "
        f"(bar 15%)"
    )

    n = 200
    db, wl = batch_bench_db(n, (("P1", n),), 8)
    queries = wl.queries[:8]
    prev = TRACER.sample_rate
    try:
        TRACER.configure(0.0)
        baseline = db.batch_nearest(
            "P1", queries, 4, workers=2, pool="persistent"
        )
        TRACER.configure(1.0)
        traced = db.batch_nearest(
            "P1", queries, 4, workers=2, pool="persistent"
        )
        root = TRACER.last_root
        registry = db.metrics()
        doc = registry.snapshot()
        prom = registry.to_prometheus()
    finally:
        TRACER.configure(prev)
        TRACER.last_root = None
        db.close()

    workers = (
        [s for s in root.walk() if s.name == "pool.worker"] if root else []
    )
    parity = traced == baseline
    merged = bool(workers)
    runtime_keys = set(doc.get("runtime", {}))
    registry_complete = set(RuntimeStats.__slots__) <= runtime_keys
    sample_line = re.compile(
        r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
        r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"(,[a-zA-Z_][a-zA-Z0-9_]*='
        r'"[^"\\]*")*\})? -?[0-9].*$'
    )
    body = [ln for ln in prom.splitlines() if ln and not ln.startswith("#")]
    prometheus_parses = bool(body) and all(
        sample_line.match(ln) for ln in body
    )
    print(
        f"traced pool batch: parity={parity}, worker span trees "
        f"grafted={len(workers)}; registry groups "
        f"{sorted(doc)} ({len(body)} prometheus samples)"
    )
    RESULTS["smoke obs"] = {
        "trace_overhead": overhead,
        "disabled_overhead_ok": float(disabled_ok),
        "sampled_overhead_ok": float(sampled_ok),
        "trace_parity": float(parity),
        "pool_trace_merged": float(merged),
        "worker_spans": float(len(workers)),
        "registry_complete": float(registry_complete),
        "prometheus_parses": float(prometheus_parses),
    }
    if not disabled_ok:
        print("FAIL: disabled tracing costs more than 5% over the stub")
        return 1
    if not sampled_ok:
        print("FAIL: sampled tracing costs more than 15% over the stub")
        return 1
    if not parity:
        print("FAIL: tracing changed persistent-pool batch answers")
        return 1
    if not merged:
        print("FAIL: worker span trees were not grafted into the root")
        return 1
    if not registry_complete:
        missing = sorted(set(RuntimeStats.__slots__) - runtime_keys)
        print(f"FAIL: metrics registry misses runtime counters: {missing}")
        return 1
    if not prometheus_parses:
        print("FAIL: prometheus exposition did not parse")
        return 1
    return 0


def smoke_field_engine() -> int:
    """Distance-field engine smoke: the warm-cache range+nearest stream
    under the compiled CSR engine vs the reference python engine.
    Gated on all three acceptance claims: bit-identical answers,
    identical graph-build/page counters, and >= 3x CPU speedup (the
    benchmark-scale bar lives in ``benchmarks/test_field_engine.py``)."""
    from benchmarks.common import field_engine_comparison
    from repro.visibility.kernel.backend import numpy_available

    if not numpy_available():
        print("\nfield engine: numpy unavailable, CSR engine not measurable")
        return 0
    metrics = field_engine_comparison(200, 24)
    RESULTS["smoke field engine"] = metrics
    print(
        f"\nfield engine ({metrics['queries']:.0f} warm queries, |O|=200): "
        f"python {metrics['python_cpu_s'] * 1000:.0f} ms, csr "
        f"{metrics['csr_cpu_s'] * 1000:.0f} ms "
        f"({metrics['speedup']:.2f}x), "
        f"{metrics['field_freezes']:.0f} freezes"
    )
    if not metrics["parity"]:
        print("FAIL: CSR engine changed range/nearest answers")
        return 1
    if not metrics["counters_match"]:
        print("FAIL: CSR engine changed graph-build or page counters")
        return 1
    if metrics["speedup"] < 3.0:
        print("FAIL: CSR engine under 3x on the warm stream")
        return 1
    return 0


def smoke_policy() -> int:
    """Adaptive-cache-policy smoke: replay every workload profile under
    exact keys, the hand-tuned snap quantum, and the adaptive policy.
    Gated on the acceptance claims: adaptive wins on >= 2 of 5 profiles
    (>= 1.3x fewer graph builds or higher hit rate), never needs more
    than 1.05x the best static's builds, answers stay bit-identical
    under every policy, and trace generation is deterministic."""
    from benchmarks.common import (
        POLICY_PROFILES,
        adaptive_policy_comparison,
    )

    metrics = adaptive_policy_comparison()
    RESULTS["smoke adaptive policy"] = metrics
    print("\nadaptive cache policy vs best static knob:")
    for profile in POLICY_PROFILES:
        row = metrics[profile]
        verdict = (
            "WIN" if row["win"] else ("LOSS" if row["loss"] else "par")
        )
        print(
            f"  {profile:13} {verdict:4} builds exact/snapped/adaptive = "
            f"{row['builds_exact']:.0f}/{row['builds_snapped']:.0f}/"
            f"{row['builds_adaptive']:.0f} "
            f"(best-static/adaptive {row['build_ratio']:.2f}x), hit rate "
            f"{row['hit_rate_static']:.2f} -> {row['hit_rate_adaptive']:.2f}"
        )
    print(
        f"  {metrics['wins']:.0f} win(s), {metrics['losses']:.0f} loss(es), "
        f"{metrics['policy_adjustments']:.0f} policy adjustment(s)"
    )
    if not metrics["parity"]:
        print("FAIL: a cache policy changed query answers")
        return 1
    if not metrics["trace_deterministic"]:
        print("FAIL: trace generation is not deterministic")
        return 1
    if metrics["wins"] < 2:
        print("FAIL: adaptive policy won fewer than 2 of 5 profiles")
        return 1
    if metrics["losses"]:
        print("FAIL: adaptive policy lost > 5% on some profile")
        return 1
    return 0


def smoke_journal() -> int:
    """Durability smoke: replay one churn-heavy trace with a
    write-ahead journal and once with full-snapshot-per-mutation (the
    pre-journal durability story).  Gated on the deterministic claims:
    durable bytes per mutation at least ``JOURNAL_BYTES_RATIO_BAR``
    times smaller, write amplification of 1 (no mid-replay base
    rewrites at this trace size), crash-recovery parity (base + torn
    journal reload answers bit-identically), a clean compaction fold,
    and the >= 2x incremental-save speedup verdict — the raw
    wall-clock ratio rides in the JSON ungated."""
    import tempfile

    from benchmarks.common import (
        JOURNAL_BYTES_RATIO_BAR,
        journal_durability_comparison,
    )

    with tempfile.TemporaryDirectory() as td:
        metrics = journal_durability_comparison(td)
    RESULTS["smoke journal"] = metrics
    print(
        f"\njournal smoke ({metrics['mutations']:.0f} mutations over "
        f"{metrics['events']:.0f} churn events): "
        f"{metrics['journal_bytes_per_mutation']:.0f} B/mutation "
        f"journaled vs {metrics['full_bytes_per_mutation']:.0f} B "
        f"re-snapshotted ({metrics['bytes_ratio']:.0f}x less), "
        f"write amplification {metrics['write_amplification']:.2f}, "
        f"save {metrics['full_ms_per_mutation']:.2f} ms -> "
        f"{metrics['incr_ms_per_mutation']:.3f} ms "
        f"({metrics['save_speedup']:.1f}x)"
    )
    if not metrics["recovery_parity"]:
        print("FAIL: crash recovery changed replayed answers")
        return 1
    if not metrics["compaction_ok"]:
        print("FAIL: compaction left records or an unloadable base")
        return 1
    if metrics["bytes_ratio"] < JOURNAL_BYTES_RATIO_BAR:
        print(
            f"FAIL: journaling wrote fewer than "
            f"{JOURNAL_BYTES_RATIO_BAR:.0f}x less bytes per mutation"
        )
        return 1
    if not metrics["save_speedup_ok"]:
        print("FAIL: incremental save under 2x faster than full snapshot")
        return 1
    return 0


def write_json(path: str) -> None:
    """Dump the run's configuration and every recorded benchmark's
    metric rows to ``path`` (the perf trajectory tracked across PRs)."""
    document = {
        "config": {
            "bench_o": BENCH_O,
            "bench_queries": BENCH_QUERIES,
            "range_scale_factor": scale_factor(),
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "results": RESULTS,
    }
    with open(path, "w") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {len(RESULTS)} benchmark result set(s) to {path}")


def main(argv: list[str]) -> int:
    argv = list(argv)
    json_path = None
    if "--json" in argv:
        flag = argv.index("--json")
        try:
            json_path = argv[flag + 1]
        except IndexError:
            print("--json needs a file path argument", file=sys.stderr)
            return 2
        del argv[flag : flag + 2]
    if "--smoke" in argv:
        code = smoke()
        if json_path is not None:
            write_json(json_path)
        return code
    wanted = argv or sorted(FIGURES)
    print(
        f"# |O|={BENCH_O}, queries={BENCH_QUERIES}, "
        f"range scale factor={scale_factor():.2f}\n"
    )
    for fig in wanted:
        fn = FIGURES.get(fig)
        if fn is None:
            print(f"unknown figure: {fig}", file=sys.stderr)
            return 2
        fn()
    if json_path is not None:
        write_json(json_path)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
