"""Fig. 13 — OR cost vs |P|/|O| (e = 0.1 %).

Paper's findings to reproduce in shape: entity R-tree page accesses
grow with |P|/|O|; obstacle R-tree page accesses stay flat; CPU time
grows superlinearly (O(n^2 log n) visibility-graph construction).
"""

import pytest

from benchmarks.common import (
    BENCH_O,
    BENCH_QUERIES,
    CARDINALITY_RATIOS,
    bench_db,
    cardinality_spec,
    run_or_workload,
    scaled_range,
)


@pytest.mark.parametrize("ratio", CARDINALITY_RATIOS)
def test_fig13_or_vs_cardinality(benchmark, ratio):
    db, workload = bench_db(BENCH_O, cardinality_spec(), BENCH_QUERIES)
    e = scaled_range(0.001)
    set_name = f"P{ratio:g}"
    queries = workload.queries

    metrics = benchmark.pedantic(
        run_or_workload, args=(db, workload, set_name, queries, e),
        rounds=1, iterations=1,
    )
    benchmark.extra_info.update(metrics)
    benchmark.extra_info["ratio"] = ratio

    # Shape assertions (loose: they encode the paper's qualitative claims).
    assert metrics["entity_pa"] >= 0
    assert metrics["obstacle_pa"] >= 0
