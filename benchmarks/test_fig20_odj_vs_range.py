"""Fig. 20 — ODJ cost vs e (|S| = |T| = 0.1 |O|).

Paper: entity-tree page accesses barely move (node extents dominate the
range), while the Euclidean join output — and with it obstacle-tree
accesses and CPU time — grows rapidly with e.
"""

import pytest

from benchmarks.common import (
    BENCH_O,
    BENCH_QUERIES,
    JOIN_RANGE_FRACTIONS,
    bench_db,
    join_spec,
    run_odj,
    scaled_join_range,
)


@pytest.mark.parametrize("fraction", JOIN_RANGE_FRACTIONS)
def test_fig20_odj_vs_range(benchmark, fraction):
    db, __ = bench_db(BENCH_O, join_spec(), BENCH_QUERIES)
    e = scaled_join_range(fraction)
    metrics = benchmark.pedantic(
        run_odj, args=(db, "S0.1", "T", e), rounds=1, iterations=1
    )
    benchmark.extra_info.update(metrics)
    benchmark.extra_info["e_fraction"] = fraction
    assert metrics["entity_pa"] >= 0
