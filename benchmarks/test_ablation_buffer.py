"""Ablation — page accesses vs LRU buffer fraction.

The paper fixes the buffer at 10 % of each R-tree.  This bench sweeps
the fraction to show how sensitive the reported I/O metric is to that
choice (misses fall monotonically as the buffer grows).
"""

import pytest

from benchmarks.common import (
    BENCH_O,
    BENCH_PAGE_ENTRIES,
    BENCH_QUERIES,
    bench_workload,
    cardinality_spec,
    scaled_range,
)
from repro.core.engine import ObstacleDatabase

FRACTIONS = (0.02, 0.1, 0.5)


@pytest.mark.parametrize("fraction", FRACTIONS)
def test_ablation_buffer_fraction(benchmark, fraction):
    workload = bench_workload(BENCH_O, cardinality_spec(), BENCH_QUERIES)
    db = ObstacleDatabase(
        workload.obstacles,
        max_entries=BENCH_PAGE_ENTRIES,
        min_entries=max(2, int(BENCH_PAGE_ENTRIES * 0.4)),
        buffer_fraction=fraction,
    )
    db.add_entity_set("P", workload.entity_sets["P1"])
    e = scaled_range(0.001)

    def run():
        db.reset_stats(clear_buffers=True)
        for q in workload.queries:
            db.range("P", q, e)
        return db.stats()

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    n = len(workload.queries)
    benchmark.extra_info["fraction"] = fraction
    benchmark.extra_info["entity_pa"] = stats["entities:P"]["misses"] / n
    benchmark.extra_info["obstacle_pa"] = stats["obstacles:obstacles"]["misses"] / n
    assert stats["entities:P"]["misses"] <= stats["entities:P"]["reads"]
