"""The replayable workload-trace format.

A trace is one file capturing everything needed to re-run a workload
bit-for-bit on any host: the scene *parameters* (the synthetic
generators are deterministic, so the scene is stored by recipe, not by
geometry), and the full event stream — query kind, centre, parameters,
and obstacle mutations, in order.  Framing mirrors the snapshot codec
(:mod:`repro.persist.codec`): explicit little-endian records, a
checksummed header, CRC-32 over the payload, fail-fast
:class:`~repro.errors.DatasetError` naming the path and offset on any
corruption, and version-too-new rejection — but under its own magic
and version, because traces and snapshots evolve independently.

File layout::

    offset 0   magic            8 bytes  (``b"RPROTRCE"``)
    offset 8   format version   u32
    offset 12  payload length   u64
    offset 20  payload crc32    u32
    offset 24  header crc32     u32      (over bytes [0, 24))
    offset 28  payload

The payload is the trace header (profile name, seed, scene recipe)
followed by the length-prefixed event list; every event starts with a
one-byte kind code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import DatasetError
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.persist import framing
from repro.persist.codec import BinaryReader, BinaryWriter

#: First 8 bytes of every trace file.
TRACE_MAGIC = b"RPROTRCE"

#: The trace format this build writes (and the newest it reads).
#: Version history:
#:
#: 1. header (profile, seed, scene recipe), event stream
#:    (nearest / range / distance / insert / delete).
TRACE_VERSION = 1

#: Total trace header size; the payload starts at this file offset.
#: The header layout and verification are shared with snapshots and
#: the mutation journal (:mod:`repro.persist.framing`).
TRACE_HEADER_SIZE = framing.HEADER_SIZE

#: Event kinds, in wire-code order (codes are 1-based; the kind byte
#: is the index+1 into this tuple).
EVENT_KINDS = ("nearest", "range", "distance", "insert", "delete")
_KIND_CODE = {kind: i + 1 for i, kind in enumerate(EVENT_KINDS)}


@dataclass(frozen=True)
class WorkloadEvent:
    """One replayable workload event.

    ``kind`` selects which fields matter:

    * ``nearest`` — ONN at ``center`` with ``k`` neighbours;
    * ``range`` — OR at ``center`` with radius ``e``;
    * ``distance`` — obstructed distance from ``source`` to ``center``
      (the centre is the graph-cache key, exactly as
      ``obstructed_distance(p, q)`` caches per ``q``);
    * ``insert`` — insert the free-space rectangle ``rect`` as an
      obstacle, remembered under ``tag``;
    * ``delete`` — delete the obstacle inserted under ``tag``.
    """

    kind: str
    center: Point | None = None
    k: int = 0
    e: float = 0.0
    source: Point | None = None
    rect: Rect | None = None
    tag: int = -1


@dataclass
class Trace:
    """One workload trace: scene recipe plus the event stream.

    The scene is reproduced from ``(n_obstacles, scene_seed,
    n_entities)`` through the deterministic synthetic generators (see
    :func:`repro.workloads.replay.scene_for`); ``profile`` and ``seed``
    record how the events were generated, so ``repro-workloads
    generate`` with the same arguments reproduces the file
    byte-for-byte.
    """

    profile: str
    seed: int
    n_obstacles: int
    scene_seed: int
    n_entities: int
    set_name: str = "P1"
    events: list[WorkloadEvent] = field(default_factory=list)

    def kind_counts(self) -> dict[str, int]:
        """Event count per kind (describe/CLI summary)."""
        counts = dict.fromkeys(EVENT_KINDS, 0)
        for ev in self.events:
            counts[ev.kind] += 1
        return counts


def _write_point(w: BinaryWriter, p: Point) -> None:
    w.f64(p.x)
    w.f64(p.y)


def _read_point(r: BinaryReader) -> Point:
    return Point(r.f64(), r.f64())


def encode_trace(trace: Trace) -> bytes:
    """The trace's payload bytes (header + event stream, unframed)."""
    w = BinaryWriter()
    w.str_(trace.profile)
    w.u64(trace.seed)
    w.u32(trace.n_obstacles)
    w.u64(trace.scene_seed)
    w.u32(trace.n_entities)
    w.str_(trace.set_name)
    w.u32(len(trace.events))
    for ev in trace.events:
        code = _KIND_CODE.get(ev.kind)
        if code is None:
            raise DatasetError(
                f"cannot encode workload event of unknown kind {ev.kind!r}"
            )
        w.u8(code)
        if ev.kind == "nearest":
            _write_point(w, ev.center)
            w.u32(ev.k)
        elif ev.kind == "range":
            _write_point(w, ev.center)
            w.f64(ev.e)
        elif ev.kind == "distance":
            _write_point(w, ev.source)
            _write_point(w, ev.center)
        elif ev.kind == "insert":
            w.i64(ev.tag)
            w.f64(ev.rect.minx)
            w.f64(ev.rect.miny)
            w.f64(ev.rect.maxx)
            w.f64(ev.rect.maxy)
        else:  # delete
            w.i64(ev.tag)
    return w.getvalue()


def decode_trace(payload: bytes, *, path: str | Path = "<trace>") -> Trace:
    """Decode a trace payload (inverse of :func:`encode_trace`)."""
    r = BinaryReader(payload, path=path, base_offset=TRACE_HEADER_SIZE)
    trace = Trace(
        profile=r.str_(),
        seed=r.u64(),
        n_obstacles=r.u32(),
        scene_seed=r.u64(),
        n_entities=r.u32(),
        set_name=r.str_(),
    )
    n_events = r.u32()
    for __ in range(n_events):
        code = r.u8()
        if not 1 <= code <= len(EVENT_KINDS):
            raise DatasetError(
                f"{path}: unknown workload event kind {code} at offset "
                f"{r.offset - 1}"
            )
        kind = EVENT_KINDS[code - 1]
        if kind == "nearest":
            ev = WorkloadEvent(kind, center=_read_point(r), k=r.u32())
        elif kind == "range":
            ev = WorkloadEvent(kind, center=_read_point(r), e=r.f64())
        elif kind == "distance":
            ev = WorkloadEvent(
                kind, source=_read_point(r), center=_read_point(r)
            )
        elif kind == "insert":
            tag = r.i64()
            ev = WorkloadEvent(
                kind,
                tag=tag,
                rect=Rect(r.f64(), r.f64(), r.f64(), r.f64()),
            )
        else:  # delete
            ev = WorkloadEvent(kind, tag=r.i64())
        trace.events.append(ev)
    r.expect_end()
    return trace


def write_trace(path: str | Path, trace: Trace) -> None:
    """Frame and write ``trace`` (durable atomic replace, like
    snapshots — see :func:`repro.persist.framing.atomic_write_bytes`)."""
    framing.write_framed(path, TRACE_MAGIC, TRACE_VERSION, encode_trace(trace))


def read_trace(path: str | Path) -> Trace:
    """Read and verify a trace file.

    Verification order matches the snapshot codec: magic, header
    checksum, format version, payload length, payload checksum — each
    failure raises :class:`~repro.errors.DatasetError` naming ``path``
    and the byte offset, before any event is decoded.
    """
    __, payload = framing.read_framed(
        path,
        magic=TRACE_MAGIC,
        max_version=TRACE_VERSION,
        kind="trace",
        what="repro workload trace",
    )
    return decode_trace(payload, path=path)
