"""Workload harness: named query-stream profiles, a replayable trace
format, and the replay loop driving a database from a trace.

* :mod:`~repro.workloads.trace` — the versioned, checksummed trace
  file format (``b"RPROTRCE"``) and its event model;
* :mod:`~repro.workloads.profiles` — the five named profiles
  (``uniform``, ``zipf-hotspot``, ``commuter``, ``flash-crowd``,
  ``churn-heavy``) as deterministic, seedable generators;
* :mod:`~repro.workloads.replay` — scene reconstruction and the
  shared replay loop (also the engine of the moving-query benches);
* :mod:`~repro.workloads.cli` — the ``repro-workloads`` command
  (generate / describe / replay / list).
"""

from repro.workloads.profiles import (
    PROFILES,
    generate_trace,
    profile_names,
)
from repro.workloads.replay import (
    database_for_trace,
    replay_events,
    replay_trace,
    scene_for,
)
from repro.workloads.trace import (
    EVENT_KINDS,
    TRACE_MAGIC,
    TRACE_VERSION,
    Trace,
    WorkloadEvent,
    decode_trace,
    encode_trace,
    read_trace,
    write_trace,
)

__all__ = [
    "PROFILES",
    "generate_trace",
    "profile_names",
    "database_for_trace",
    "replay_events",
    "replay_trace",
    "scene_for",
    "EVENT_KINDS",
    "TRACE_MAGIC",
    "TRACE_VERSION",
    "Trace",
    "WorkloadEvent",
    "decode_trace",
    "encode_trace",
    "read_trace",
    "write_trace",
]
