"""``repro-workloads`` — generate, describe and replay workload traces.

Usage::

    repro-workloads list
    repro-workloads generate PROFILE -o trace.wtrc [--seed N]
        [--events N] [--obstacles N] [--entities N] [--set-name NAME]
    repro-workloads describe trace.wtrc [--json]
    repro-workloads replay trace.wtrc [--snap QUANTUM]
        [--policy static|adaptive] [--cache-size N] [--shards N]
        [--json]

``generate`` materialises a named profile (see ``list``) as a
versioned, checksummed trace file — byte-identical for identical
arguments, on any host.  ``describe`` prints a trace's recipe and
event mix without touching a database.  ``replay`` reconstructs the
scene from the recipe, drives a database through the event stream
under the requested cache configuration, and reports the
cache-behaviour metrics (graph builds, hit rate, policy adjustments).

Also runnable without installation as ``python -m repro.workloads.cli``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.errors import ReproError
from repro.workloads.profiles import (
    PROFILES,
    generate_trace,
    profile_names,
)
from repro.workloads.replay import replay_trace
from repro.workloads.trace import read_trace, write_trace


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-workloads",
        description="Generate, describe and replay workload traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the available workload profiles")

    gen = sub.add_parser(
        "generate", help="generate a named profile as a trace file"
    )
    gen.add_argument("profile", choices=profile_names())
    gen.add_argument(
        "-o", "--out", required=True, metavar="FILE", help="trace file to write"
    )
    gen.add_argument("--seed", type=int, default=0, help="stream seed (default 0)")
    gen.add_argument(
        "--events",
        type=int,
        default=None,
        metavar="N",
        help="event count (default: per-profile)",
    )
    gen.add_argument(
        "--obstacles", type=int, default=None, metavar="N",
        help="scene obstacle count",
    )
    gen.add_argument(
        "--entities", type=int, default=None, metavar="N",
        help="scene entity count",
    )
    gen.add_argument(
        "--set-name", default="P1", help="entity set name (default P1)"
    )

    desc = sub.add_parser(
        "describe", help="print a trace's recipe and event mix"
    )
    desc.add_argument("file", help="trace file")
    desc.add_argument("--json", action="store_true", help="machine-readable")

    rep = sub.add_parser(
        "replay", help="replay a trace and report cache metrics"
    )
    rep.add_argument("file", help="trace file")
    rep.add_argument(
        "--snap",
        type=float,
        default=0.0,
        help="graph-cache snap quantum (default 0: exact keys)",
    )
    rep.add_argument(
        "--policy",
        default=None,
        help="cache policy (static | adaptive; default: REPRO_CACHE_POLICY)",
    )
    rep.add_argument(
        "--cache-size", type=int, default=64, help="LRU capacity (default 64)"
    )
    rep.add_argument(
        "--shards", type=int, default=None, help="spatial shard fan-out"
    )
    rep.add_argument("--json", action="store_true", help="machine-readable")
    return parser


def _trace_summary(path: str) -> dict:
    trace = read_trace(path)
    return {
        "profile": trace.profile,
        "seed": trace.seed,
        "n_obstacles": trace.n_obstacles,
        "scene_seed": trace.scene_seed,
        "n_entities": trace.n_entities,
        "set_name": trace.set_name,
        "events": len(trace.events),
        "kinds": trace.kind_counts(),
    }


def _cmd_list(args: argparse.Namespace) -> int:
    for name, (builder, default_events) in PROFILES.items():
        doc = (builder.__doc__ or "").strip().splitlines()
        summary = doc[0] if doc else ""
        print(f"{name:14} default events {default_events:4}  {summary}".rstrip())
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    kwargs = {}
    if args.obstacles is not None:
        kwargs["n_obstacles"] = args.obstacles
    if args.entities is not None:
        kwargs["n_entities"] = args.entities
    trace = generate_trace(
        args.profile,
        seed=args.seed,
        n_events=args.events,
        set_name=args.set_name,
        **kwargs,
    )
    write_trace(args.out, trace)
    counts = ", ".join(
        f"{kind}={n}" for kind, n in trace.kind_counts().items() if n
    )
    print(
        f"wrote {args.out}: {args.profile} seed={args.seed} "
        f"{len(trace.events)} event(s) ({counts})"
    )
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    summary = _trace_summary(args.file)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    print(f"{args.file}: profile {summary['profile']} seed {summary['seed']}")
    print(
        f"  scene: {summary['n_obstacles']} obstacle(s) seed "
        f"{summary['scene_seed']}, {summary['n_entities']} entities "
        f"in set {summary['set_name']!r}"
    )
    kinds = ", ".join(
        f"{kind}={n}" for kind, n in summary["kinds"].items() if n
    )
    print(f"  events: {summary['events']} ({kinds})")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    trace = read_trace(args.file)
    answers, metrics = replay_trace(
        trace,
        graph_cache_snap=args.snap,
        cache_policy=args.policy,
        graph_cache_size=args.cache_size,
        shards=args.shards,
    )
    if args.json:
        print(json.dumps(metrics, indent=2, sort_keys=True))
        return 0
    print(
        f"replayed {args.file}: {int(metrics['events'])} event(s) in "
        f"{metrics['cpu_ms_total']:.1f} ms"
    )
    print(
        f"  graph builds {int(metrics['graph_builds'])}, hit rate "
        f"{metrics['hit_rate']:.2f} ({int(metrics['cache_hits'])} hits / "
        f"{int(metrics['cache_misses'])} misses), "
        f"{int(metrics['promotions'])} promotion(s), "
        f"{int(metrics['policy_adjustments'])} policy adjustment(s)"
    )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(args)
        if args.command == "generate":
            return _cmd_generate(args)
        if args.command == "describe":
            return _cmd_describe(args)
        return _cmd_replay(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
