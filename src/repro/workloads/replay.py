"""Trace replay: drive an :class:`ObstacleDatabase` with a recorded
event stream.

The replay loop is the single execution path shared by the
``repro-workloads`` CLI, the adaptive-policy benchmark, and the
moving-query benches: one event in, one answer out, with the
runtime-stats counters snapshotted at the end.  Because every query
event is answered through the public engine API, replaying one trace
on two databases (different snap quanta, different cache policies)
and comparing the answer streams is a *bit-identical* equivalence
check — the same guarantee the snapped-key parity tests rely on.

The scene is reconstructed from the trace's recipe via
:func:`scene_for`; the synthetic generators are deterministic, so the
recipe pins the exact obstacle and entity geometry without shipping
it in the trace file.
"""

from __future__ import annotations

from functools import lru_cache
from typing import TYPE_CHECKING

from repro.core.engine import ObstacleDatabase
from repro.datasets.synthetic import (
    entities_following_obstacles,
    street_grid_obstacles,
)
from repro.errors import DatasetError
from repro.obs.timing import Timer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.model import Obstacle
    from repro.geometry.point import Point
    from repro.workloads.trace import Trace, WorkloadEvent


@lru_cache(maxsize=8)
def scene_for(
    n_obstacles: int, scene_seed: int, n_entities: int
) -> tuple[list["Obstacle"], list["Point"]]:
    """The deterministic (obstacles, entities) scene of a trace recipe.

    Same street-grid recipe as the bench workloads: entities hug
    obstacle boundaries, which is what makes obstructed distances
    diverge from Euclidean ones.
    """
    obstacles = street_grid_obstacles(n_obstacles, seed=scene_seed)
    entities = entities_following_obstacles(
        n_entities,
        obstacles,
        seed=scene_seed * 10_007 + 31,
        on_boundary_fraction=0.5,
        offset_fraction=0.15,
    )
    return obstacles, entities


def database_for_trace(
    trace: "Trace",
    *,
    graph_cache_snap: float = 0.0,
    cache_policy=None,
    graph_cache_size: int = 64,
    shards: int | None = None,
    max_entries: int = 64,
    durable=None,
) -> ObstacleDatabase:
    """A fully indexed database over the trace's scene.

    The cache knobs are parameters (not trace content) on purpose: one
    trace is replayed under several configurations and the answer
    streams must agree bitwise.  ``durable`` attaches a write-ahead
    mutation journal (the durability benchmark replays one trace
    journaled and one not).
    """
    obstacles, entities = scene_for(
        trace.n_obstacles, trace.scene_seed, trace.n_entities
    )
    db = ObstacleDatabase(
        obstacles,
        max_entries=max_entries,
        min_entries=max(2, int(max_entries * 0.4)),
        graph_cache_snap=graph_cache_snap,
        graph_cache_size=graph_cache_size,
        shards=shards,
        cache_policy=cache_policy,
        durable=durable,
    )
    db.add_entity_set(trace.set_name, entities)
    return db


def replay_events(
    db: ObstacleDatabase,
    events: list["WorkloadEvent"],
    *,
    set_name: str = "P1",
    reset: bool = True,
    clear_buffers: bool = True,
) -> tuple[list, dict[str, float]]:
    """Replay an event stream; returns ``(answers, metrics)``.

    ``answers`` has one element per event, index-aligned with
    ``events``: the result list for ``nearest`` / ``range``, the float
    for ``distance``, and ``None`` for mutations — so two replays are
    answer-equivalent iff the lists compare equal.  The timer covers
    exactly the engine calls (query *and* mutation), not the
    replay bookkeeping; ``reset=False`` keeps previously accumulated
    counters, ``clear_buffers=False`` keeps the warm caches (the
    warm-start benchmark leg).
    """
    if reset:
        db.reset_stats(clear_buffers=clear_buffers)
    inserted: dict[int, "Obstacle"] = {}
    timer = Timer()
    answers: list = []
    for ev in events:
        if ev.kind == "nearest":
            with timer:
                answers.append(db.nearest(set_name, ev.center, ev.k))
        elif ev.kind == "range":
            with timer:
                answers.append(db.range(set_name, ev.center, ev.e))
        elif ev.kind == "distance":
            with timer:
                answers.append(db.obstructed_distance(ev.source, ev.center))
        elif ev.kind == "insert":
            if ev.tag in inserted:
                raise DatasetError(
                    f"workload replay: duplicate insert tag {ev.tag}"
                )
            with timer:
                inserted[ev.tag] = db.insert_obstacle(ev.rect)
            answers.append(None)
        elif ev.kind == "delete":
            record = inserted.pop(ev.tag, None)
            if record is None:
                raise DatasetError(
                    f"workload replay: delete of unknown tag {ev.tag}"
                )
            with timer:
                db.delete_obstacle(record)
            answers.append(None)
        else:  # unreachable through the trace codec
            raise DatasetError(
                f"workload replay: unknown event kind {ev.kind!r}"
            )
    stats = db.runtime_stats()
    n = max(1, len(events))
    hits = float(stats["graph_cache_hits"])
    misses = float(stats["graph_cache_misses"])
    return answers, {
        "events": float(len(events)),
        "cpu_ms_total": timer.elapsed_ms,
        "cpu_ms": timer.elapsed_ms / n,
        "graph_builds": float(stats["graph_builds"]),
        "cache_hits": hits,
        "cache_misses": misses,
        "hit_rate": hits / max(1.0, hits + misses),
        "promotions": float(stats["graph_cache_promotions"]),
        "policy_adjustments": float(stats["policy_adjustments"]),
    }


def replay_trace(
    trace: "Trace",
    *,
    graph_cache_snap: float = 0.0,
    cache_policy=None,
    graph_cache_size: int = 64,
    shards: int | None = None,
) -> tuple[list, dict[str, float]]:
    """Build the trace's database and replay its events."""
    db = database_for_trace(
        trace,
        graph_cache_snap=graph_cache_snap,
        cache_policy=cache_policy,
        graph_cache_size=graph_cache_size,
        shards=shards,
    )
    try:
        return replay_events(db, trace.events, set_name=trace.set_name)
    finally:
        db.close()
