"""Named workload profiles: deterministic, seedable event streams.

Each profile distils one production access pattern into a replayable
:class:`~repro.workloads.trace.Trace` over a street-grid scene (stored
by recipe — the synthetic generators are deterministic):

* ``uniform`` — centres scattered uniformly over free space: no
  spatial locality at all, the regime where exact cache keys are
  optimal and any snapping is pure overhead.
* ``zipf-hotspot`` — a handful of anchor points drawn on a Zipf law,
  each query jittered around its anchor by *more* than the hand-tuned
  moving-query snap quantum: a static quantum shatters every hotspot
  into dozens of cells, while the right quantum covers each hotspot
  with one or two.
* ``commuter`` — interleaved moving clients advancing a fixed small
  step per tick (the continuous-query stream the static quantum was
  hand-tuned on — the profile an adaptive policy must *match*, not
  beat).
* ``flash-crowd`` — a uniform background that collapses onto one
  sudden hotspot and disperses again: the quantum that is right
  mid-run is wrong at both ends.
* ``churn-heavy`` — hotspot queries interleaved with obstacle
  insert/delete pairs, exercising the repair-first mutation path under
  every policy decision.

Every query centre (and every mutation rectangle) is sampled in free
space — a centre inside an obstacle is disconnected from everything,
and proving those ``inf`` distances would measure full-universe
retrievals instead of cache behaviour.  Most events are
``distance`` evaluations from the centre's Euclidean-nearest entity
(the continuous-ONN inner loop, with naturally bounded graph radii);
``nearest`` and ``range`` events are mixed in at a fixed cadence so
every query family rides the same cache.
"""

from __future__ import annotations

import random

from repro.datasets.synthetic import DEFAULT_UNIVERSE
from repro.errors import DatasetError
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.workloads.replay import scene_for
from repro.workloads.trace import Trace, WorkloadEvent

#: Default scene size (obstacles / entities) for generated traces.
DEFAULT_OBSTACLES = 160
DEFAULT_ENTITIES = 150

#: Hotspot jitter radii as fractions of the universe side.  All are
#: *larger* than the hand-tuned moving-query snap fraction (0.004), so
#: a static quantum splits each hotspot into many cells.
HOTSPOT_JITTER_FRACTION = 0.010
CROWD_JITTER_FRACTION = 0.008
CHURN_JITTER_FRACTION = 0.006

#: Per-tick displacement of a commuter client (fraction of the
#: universe side) — matches the moving-query benches' step.
COMMUTER_STEP_FRACTION = 0.0004

#: Query-mix cadence: every ``NEAREST_EVERY``-th event is an ONN,
#: every ``RANGE_EVERY``-th an OR; the rest are distance evaluations.
NEAREST_EVERY = 8
RANGE_EVERY = 16
RANGE_FRACTION = 0.004  # OR radius as a fraction of the universe side


def _is_free(p: Point, obstacles) -> bool:
    return all(
        not (
            obs.mbr.contains_point(p)
            and obs.polygon.contains_or_boundary(p)
        )
        for obs in obstacles
    )


def _free_point(rng: random.Random, obstacles, universe) -> Point:
    while True:
        p = Point(
            rng.uniform(universe.minx, universe.maxx),
            rng.uniform(universe.miny, universe.maxy),
        )
        if _is_free(p, obstacles):
            return p


def _free_jitter(
    rng: random.Random, anchor: Point, jitter: float, obstacles, universe
) -> Point:
    while True:
        p = Point(
            min(
                max(anchor.x + rng.uniform(-jitter, jitter), universe.minx),
                universe.maxx,
            ),
            min(
                max(anchor.y + rng.uniform(-jitter, jitter), universe.miny),
                universe.maxy,
            ),
        )
        if _is_free(p, obstacles):
            return p


def _query_event(i: int, center: Point, entities, universe) -> WorkloadEvent:
    """The mixed-cadence query event at stream position ``i``: mostly
    distance evaluations from the Euclidean-nearest entity, with ONN /
    OR events every few ticks."""
    if i % RANGE_EVERY == RANGE_EVERY - 1:
        return WorkloadEvent(
            "range", center=center, e=RANGE_FRACTION * universe.width
        )
    if i % NEAREST_EVERY == NEAREST_EVERY - 1:
        return WorkloadEvent("nearest", center=center, k=2)
    source = min(entities, key=center.distance)
    return WorkloadEvent("distance", center=center, source=source)


def _uniform(rng, obstacles, entities, n_events, universe):
    """Centres uniform over free space: zero locality, exact keys win."""
    return [
        _query_event(i, _free_point(rng, obstacles, universe), entities, universe)
        for i in range(n_events)
    ]


def _zipf_hotspot(rng, obstacles, entities, n_events, universe):
    """Zipf-weighted hotspot anchors with wide jitter around each."""
    n_anchors = 6
    anchors = [_free_point(rng, obstacles, universe) for __ in range(n_anchors)]
    weights = [1.0 / (rank + 1) ** 1.1 for rank in range(n_anchors)]
    jitter = HOTSPOT_JITTER_FRACTION * universe.width
    events = []
    for i in range(n_events):
        anchor = rng.choices(anchors, weights=weights)[0]
        center = _free_jitter(rng, anchor, jitter, obstacles, universe)
        events.append(_query_event(i, center, entities, universe))
    return events


def _commuter(rng, obstacles, entities, n_events, universe):
    """Interleaved moving clients advancing a small fixed step per tick."""
    n_clients = 6
    step = COMMUTER_STEP_FRACTION * universe.width
    steps_per_client = (n_events + n_clients - 1) // n_clients
    paths: list[list[Point]] = []
    while len(paths) < n_clients:
        anchor = _free_point(rng, obstacles, universe)
        for dx, dy in ((1.0, 0.0), (0.0, 1.0), (-1.0, 0.0), (0.0, -1.0)):
            path = [
                Point(anchor.x + t * step * dx, anchor.y + t * step * dy)
                for t in range(steps_per_client)
            ]
            if all(_is_free(p, obstacles) for p in path):
                paths.append(path)
                break
        # No free straight line from this anchor: draw another one.
    events = []
    for i in range(n_events):
        client = i % n_clients
        center = paths[client][i // n_clients]
        events.append(_query_event(i, center, entities, universe))
    return events


def _flash_crowd(rng, obstacles, entities, n_events, universe):
    """Uniform background collapsing onto one sudden crowd, then back."""
    lead = n_events // 10
    tail = n_events // 15
    anchor = _free_point(rng, obstacles, universe)
    jitter = CROWD_JITTER_FRACTION * universe.width
    events = []
    for i in range(n_events):
        if i < lead or i >= n_events - tail:
            center = _free_point(rng, obstacles, universe)
        else:
            center = _free_jitter(rng, anchor, jitter, obstacles, universe)
        events.append(_query_event(i, center, entities, universe))
    return events


def _churn_heavy(rng, obstacles, entities, n_events, universe):
    """Hotspot queries interleaved with obstacle insert/delete pairs."""
    n_anchors = 2
    anchors = [_free_point(rng, obstacles, universe) for __ in range(n_anchors)]
    jitter = CHURN_JITTER_FRACTION * universe.width
    side = 0.002 * universe.width
    clearance = 0.05 * universe.width

    def churn_rect() -> Rect:
        """A small free rectangle well away from the query anchors (so
        no jittered centre can ever fall inside it) containing no
        entity (an entity swallowed by an insert would be unreachable,
        turning later queries into full-universe proofs of ``inf``)."""
        while True:
            p = _free_point(rng, obstacles, universe)
            if any(p.distance(a) < clearance for a in anchors):
                continue
            rect = Rect(p.x, p.y, p.x + side, p.y + side)
            if rect.maxx > universe.maxx or rect.maxy > universe.maxy:
                continue
            if any(rect.intersects(obs.mbr) for obs in obstacles):
                continue
            if any(rect.contains_point(e) for e in entities):
                continue
            return rect

    events = []
    tag = 0
    pending: list[tuple[int, int]] = []  # (delete-at index, tag)
    for i in range(n_events):
        if pending and pending[0][0] == i:
            __, done_tag = pending.pop(0)
            events.append(WorkloadEvent("delete", tag=done_tag))
            continue
        if i % 8 == 4 and i + 4 < n_events:
            events.append(WorkloadEvent("insert", tag=tag, rect=churn_rect()))
            pending.append((i + 4, tag))
            tag += 1
            continue
        anchor = anchors[i % n_anchors]
        center = _free_jitter(rng, anchor, jitter, obstacles, universe)
        events.append(_query_event(i, center, entities, universe))
    # Anything still pending is deleted at the end: the scene finishes
    # where it started.
    for __, done_tag in pending:
        events.append(WorkloadEvent("delete", tag=done_tag))
    return events


#: Profile name -> (builder, default event count).
PROFILES = {
    "uniform": (_uniform, 160),
    "zipf-hotspot": (_zipf_hotspot, 200),
    "commuter": (_commuter, 480),
    "flash-crowd": (_flash_crowd, 240),
    "churn-heavy": (_churn_heavy, 200),
}


def profile_names() -> list[str]:
    """The available profile names, in definition order."""
    return list(PROFILES)


def generate_trace(
    profile: str,
    *,
    seed: int = 0,
    n_events: int | None = None,
    n_obstacles: int = DEFAULT_OBSTACLES,
    n_entities: int = DEFAULT_ENTITIES,
    set_name: str = "P1",
) -> Trace:
    """Generate a named profile as a replayable trace.

    Fully deterministic in its arguments: the same call produces a
    byte-identical trace file on any host (the CI determinism gate
    generates every profile twice and compares the encodings).
    """
    try:
        builder, default_events = PROFILES[profile]
    except KeyError:
        raise DatasetError(
            f"unknown workload profile {profile!r}: expected one of "
            f"{', '.join(PROFILES)}"
        ) from None
    if n_events is None:
        n_events = default_events
    if n_events < 1:
        raise DatasetError(f"need n_events >= 1, got {n_events}")
    scene_seed = seed ^ 0x5EED
    obstacles, entities = scene_for(n_obstacles, scene_seed, n_entities)
    rng = random.Random(seed)
    events = builder(rng, obstacles, entities, n_events, DEFAULT_UNIVERSE)
    return Trace(
        profile=profile,
        seed=seed,
        n_obstacles=n_obstacles,
        scene_seed=scene_seed,
        n_entities=n_entities,
        set_name=set_name,
        events=events,
    )
