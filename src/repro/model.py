"""Shared data model: the obstacle record.

Entities are plain :class:`~repro.geometry.point.Point` objects (the
paper's entities are points of interest).  Obstacles pair a polygon
with a stable id so that visibility graphs can track which obstacles
they already contain (paper Fig. 8 keeps the set ``O'`` of obstacles in
the current graph).
"""

from __future__ import annotations

from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect


class Obstacle:
    """A polygonal obstacle with a dataset-stable identifier."""

    __slots__ = ("oid", "polygon")

    def __init__(self, oid: int, polygon: Polygon) -> None:
        self.oid = int(oid)
        self.polygon = polygon

    @property
    def mbr(self) -> Rect:
        """The polygon's minimum bounding rectangle."""
        return self.polygon.mbr

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Obstacle):
            return NotImplemented
        return self.oid == other.oid

    def __hash__(self) -> int:
        return hash(self.oid)

    def __repr__(self) -> str:
        return f"Obstacle(oid={self.oid}, {len(self.polygon.vertices)} vertices)"
