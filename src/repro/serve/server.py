"""The asyncio serving front-end: microbatch coalescing over the runtime.

:class:`QueryServer` turns the library's batch entry points into a
request/response service shape: concurrent clients ``await`` single
nearest/range/distance requests, the server coalesces compatible
requests into microbatches (closed by a time window or a size cap,
whichever first), dispatches each batch through the database — and
therefore through the persistent warm worker pool when one is selected
— and resolves every awaiting client with its own answer.  Coalescing
is what converts high concurrency into the batch shapes the runtime
amortizes best: duplicate points collapse into the batch memo, distinct
points share one guarded dispatch, and per-request overhead (pipe
round-trips under the persistent pool, forks under the per-batch pool)
is paid once per microbatch instead of once per request.

Latency is tracked per *request*, admission to settlement, in the
:class:`~repro.serve.stats.ServeStats` histograms — so the p99 a
benchmark gates on includes the coalescing delay, not just compute.

The server is single-loop asyncio: request handlers run on the event
loop, microbatch dispatches run on a default-executor thread serialized
by one lock (the shared :class:`~repro.runtime.context.QueryContext`
is not concurrency-safe), which keeps the loop free to keep admitting
and coalescing requests while a batch computes.
"""

from __future__ import annotations

import asyncio
import time
from typing import Sequence

from repro.errors import QueryError
from repro.geometry.point import Point
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TRACER
from repro.serve.stats import ServeStats


class _MicroBatch:
    """One open coalescing window for a single batch key."""

    __slots__ = ("key", "items", "futures", "admitted", "timer")

    def __init__(self, key: tuple) -> None:
        self.key = key
        self.items: list = []
        self.futures: list[asyncio.Future] = []
        #: Admission timestamps (perf_counter), for per-request latency.
        self.admitted: list[float] = []
        self.timer: asyncio.TimerHandle | None = None


class QueryServer:
    """An asyncio front-end serving one :class:`ObstacleDatabase`.

    Parameters
    ----------
    db:
        The database to serve.
    workers, mode, pool:
        Forwarded to the database batch methods per microbatch —
        ``pool="persistent"`` (or ``REPRO_BATCH_POOL=persistent``)
        with ``workers >= 2`` serves batches from the warm persistent
        pool.  ``workers=None`` defers to ``REPRO_BATCH_WORKERS``.
    coalesce_window:
        Seconds an open microbatch waits for company before dispatch
        (default 2 ms).  ``0`` dispatches every request immediately —
        no added latency, no coalescing wins.
    max_batch:
        Requests that close a microbatch early (default 64).

    Use as an async context manager, or call :meth:`close` — pending
    microbatches are flushed, then the database's serving pool is left
    to the database's own lifecycle (:meth:`ObstacleDatabase.close`).
    """

    def __init__(
        self,
        db,
        *,
        workers: int | None = None,
        mode: str | None = None,
        pool: str | None = None,
        coalesce_window: float = 0.002,
        max_batch: int = 64,
    ) -> None:
        if coalesce_window < 0:
            raise QueryError(
                f"coalesce_window must be >= 0, got {coalesce_window}"
            )
        if max_batch < 1:
            raise QueryError(f"max_batch must be >= 1, got {max_batch}")
        self._db = db
        self._workers = workers
        self._mode = mode
        self._pool = pool
        self.coalesce_window = coalesce_window
        self.max_batch = max_batch
        self.stats = ServeStats(db.context.stats)
        self._open: dict[tuple, _MicroBatch] = {}
        self._dispatch_lock = asyncio.Lock()
        self._closed = False
        self._metrics: MetricsRegistry | None = None

    @property
    def db(self):
        """The served database."""
        return self._db

    def metrics(self) -> MetricsRegistry:
        """The unified metrics registry over this server: the served
        database's groups plus ``serve`` (front-end counters) and
        ``serve_latency`` (per-kind histograms)."""
        if self._metrics is None:
            self._metrics = MetricsRegistry.for_server(self)
        return self._metrics

    # ------------------------------------------------------------- requests
    async def nearest(
        self, set_name: str, point: Point, k: int = 1
    ) -> list[tuple[Point, float]]:
        """The ``k`` obstructed NNs of ``point`` (one awaited request)."""
        return await self._submit(("nearest", set_name, k), point)

    async def range(
        self, set_name: str, point: Point, e: float
    ) -> list[tuple[Point, float]]:
        """Entities within obstructed distance ``e`` (one awaited request)."""
        return await self._submit(("range", set_name, e), point)

    async def distance(self, a: Point, b: Point) -> float:
        """The obstructed distance between two points (one awaited
        request; pairs coalesce into ``batch_distance`` microbatches)."""
        return await self._submit(("distance",), (a, b))

    # ------------------------------------------------------------ lifecycle
    async def drain(self) -> None:
        """Flush every open microbatch now and await its completion."""
        pending = [b for b in self._open.values()]
        for batch in pending:
            self._close_batch(batch)
        tasks = [
            asyncio.gather(*batch.futures, return_exceptions=True)
            for batch in pending
            if batch.futures
        ]
        for coro in tasks:
            await coro

    async def close(self) -> None:
        """Refuse new requests, flush open microbatches, detach."""
        if self._closed:
            return
        await self.drain()
        self._closed = True

    async def __aenter__(self) -> "QueryServer":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------ internals
    async def _submit(self, key: tuple, item):
        if self._closed:
            raise QueryError("QueryServer is closed")
        loop = asyncio.get_running_loop()
        batch = self._open.get(key)
        joined = batch is not None
        if batch is None:
            batch = self._open[key] = _MicroBatch(key)
            if self.coalesce_window > 0:
                batch.timer = loop.call_later(
                    self.coalesce_window, self._close_batch, batch
                )
        future: asyncio.Future = loop.create_future()
        batch.items.append(item)
        batch.futures.append(future)
        batch.admitted.append(time.perf_counter())
        self.stats.admit(joined_open_batch=joined)
        if len(batch.items) >= self.max_batch or self.coalesce_window == 0:
            self._close_batch(batch)
        return await future

    def _close_batch(self, batch: _MicroBatch) -> None:
        """Seal one microbatch and schedule its dispatch."""
        if self._open.get(batch.key) is batch:
            del self._open[batch.key]
        if batch.timer is not None:
            batch.timer.cancel()
            batch.timer = None
        if batch.futures:
            asyncio.ensure_future(self._dispatch(batch))

    async def _dispatch(self, batch: _MicroBatch) -> None:
        loop = asyncio.get_running_loop()
        async with self._dispatch_lock:
            try:
                results = await loop.run_in_executor(
                    None,
                    self._run_batch,
                    batch.key,
                    batch.items,
                    batch.admitted[0] if batch.admitted else None,
                )
            except BaseException as exc:
                self.stats.batches += 1
                now = time.perf_counter()
                for future, t0 in zip(batch.futures, batch.admitted):
                    self.stats.settle(batch.key[0], now - t0, failed=True)
                    if not future.done():
                        future.set_exception(
                            exc
                            if isinstance(exc, Exception)
                            else QueryError(repr(exc))
                        )
                return
        self.stats.batches += 1
        now = time.perf_counter()
        for future, result, t0 in zip(batch.futures, results, batch.admitted):
            self.stats.settle(batch.key[0], now - t0)
            if not future.done():
                future.set_result(result)

    def _run_batch(
        self, key: tuple, items: Sequence, first_admitted: float | None = None
    ) -> list:
        """Executed on the executor thread: one database batch call.

        Opens the serve-side root span: ``serve.batch`` carries the
        microbatch phases — the queue wait of its oldest request (time
        from admission to dispatch start, i.e. coalescing delay plus
        dispatch-lock contention) as an attribute, and the database
        batch work as child spans.
        """
        kind = key[0]
        with TRACER.span("serve.batch", kind=kind, n=len(items)) as span:
            if first_admitted is not None:
                span.set_attr(
                    "queue_wait_ms",
                    (time.perf_counter() - first_admitted) * 1000.0,
                )
            if kind == "nearest":
                __, set_name, k = key
                return self._db.batch_nearest(
                    set_name,
                    items,
                    k,
                    workers=self._workers,
                    mode=self._mode,
                    pool=self._pool,
                )
            if kind == "range":
                __, set_name, e = key
                return self._db.batch_range(
                    set_name,
                    items,
                    e,
                    workers=self._workers,
                    mode=self._mode,
                    pool=self._pool,
                )
            if kind == "distance":
                return self._db.batch_distance(
                    items, workers=self._workers, pool=self._pool
                )
            raise QueryError(f"unknown request kind {kind!r}")

    def __repr__(self) -> str:
        return (
            f"QueryServer(window={self.coalesce_window}, "
            f"max_batch={self.max_batch}, requests={self.stats.requests})"
        )
