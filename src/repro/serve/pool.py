"""The persistent, snapshot-warm-started worker pool.

:class:`~repro.runtime.executor.BatchExecutor` forks a fresh process
pool *per batch*: every worker pays the fork plus cold visibility-graph
builds for every centre in its chunk, then dies — throwing away exactly
the warm state the spatial cache and the snapshot store work to create.
:class:`PersistentWorkerPool` inverts that lifecycle:

* **spawned once** — workers are long-lived processes serving many
  requests over a pipe protocol, surviving across batches with their
  private graph caches intact;
* **warm-started** — each worker boots by *loading a snapshot*
  (:meth:`~repro.core.engine.ObstacleDatabase.load`) written by the
  parent at pool creation, not by inheriting pickled parent state.
  Because snapshots carry the graph cache, a worker performs **zero**
  cold graph builds for centres the parent had already covered;
* **delta-fed** — the pool subscribes to the parent's mutation feeds
  (obstacle inserts/deletes and entity updates) and records them as
  :class:`~repro.persist.journal.MutationRecord` entries — the same
  unit the write-ahead mutation journal persists, applied by the same
  :func:`~repro.persist.journal.apply_record`; each worker replays its
  outstanding suffix before serving a request, and replay routes
  through the worker's own repair-first runtime, so answers stay
  bit-identical to a monolithic sequential context at every point in
  time.

Out-of-band edits (mutations applied behind the feeds' backs, e.g.
direct tree writes) are caught by a version/size signature check
before every dispatch: on drift the pool discards its workers and
respawns from a fresh snapshot rather than serving stale answers.

Worker runtime counters and per-tree simulated page counters travel
back with every reply and are merged into the parent database, so
``db.runtime_stats()`` / ``db.stats()`` account pool work exactly as
they account sequential work.

Workers inherit the parent's environment, including
``REPRO_FIELD_ENGINE`` (see :mod:`repro.runtime.field`): under the
CSR engine, a long-lived worker amortizes frozen-CSR adjacency and
per-source distance fields across every batch it serves — snapshot
format v3 even ships the frozen arrays in the warm-start snapshot, so
workers boot with them installed.  The new ``field_freezes`` /
``field_batch_evals`` counters merge like every other runtime stat.
"""

from __future__ import annotations

import os
import tempfile
import weakref
from typing import TYPE_CHECKING, Sequence

from repro.errors import QueryError
from repro.geometry.point import Point
from repro.model import Obstacle
from repro.obs.trace import TRACER
from repro.persist.journal import (
    MutationRecord,
    apply_record,
    entity_record,
    obstacle_record,
)
from repro.runtime.executor import _chunk_ranges

if TYPE_CHECKING:  # pragma: no cover - typing only
    from multiprocessing.connection import Connection

    from repro.core.engine import ObstacleDatabase


def _tree_counters(db: "ObstacleDatabase") -> dict[str, tuple[int, int, int]]:
    """Per-tree page counters keyed by (unique) tree name."""
    counters: dict[str, tuple[int, int, int]] = {}
    for idx in db._obstacle_indexes.values():
        for tree in idx.trees():
            c = tree.counter
            counters[tree.name] = (c.reads, c.misses, c.writes)
    for tree in db._entity_trees.values():
        c = tree.counter
        counters[tree.name] = (c.reads, c.misses, c.writes)
    return counters


def _merge_tree_counters(
    db: "ObstacleDatabase", deltas: dict[str, tuple[int, int, int]]
) -> None:
    """Add worker page-counter deltas onto the parent's same-named trees.

    A tree name the parent no longer knows (possible only across an
    invalidation race) is dropped — counters are reporting, never
    correctness.
    """
    trees = {}
    for idx in db._obstacle_indexes.values():
        for tree in idx.trees():
            trees[tree.name] = tree
    for tree in db._entity_trees.values():
        trees[tree.name] = tree
    for name, (reads, misses, writes) in deltas.items():
        tree = trees.get(name)
        if tree is None:
            continue
        tree.counter.reads += reads
        tree.counter.misses += misses
        tree.counter.writes += writes


def _evaluate(db: "ObstacleDatabase", command: tuple, items: Sequence) -> list:
    """Serve one chunk inside a worker, through the worker's shared
    context and the *same* per-point evaluators the batch engine uses
    sequentially — which is what makes pool answers bit-identical to a
    monolithic context."""
    from repro.runtime.metric import ObstructedMetric
    from repro.runtime.queries import metric_nearest, metric_range

    kind = command[0]
    if kind == "distance":
        metric = ObstructedMetric(db.context)
        return [metric.distance(a, b) for a, b in items]
    if kind == "nearest":
        __, set_name, k, prune_bound = command
        tree = db.entity_tree(set_name)
        metric = ObstructedMetric(db.context)
        return [
            list(metric_nearest(tree, metric, q, k, prune_bound=prune_bound))
            for q in items
        ]
    if kind == "range":
        __, set_name, e = command
        tree = db.entity_tree(set_name)
        metric = ObstructedMetric(db.context)
        return [list(metric_range(tree, metric, q, e)) for q in items]
    raise QueryError(f"unknown pool command {kind!r}")


def _worker_main(
    conn: "Connection",
    snapshot_path: str,
    backend: str | None,
    cache_policy: str | None = None,
) -> None:
    """The worker process body: load the snapshot (warm start), then
    serve ``(deltas, command, items)`` requests until shutdown.

    Every reply carries the runtime-stats and page-counter deltas of
    the work it performed (counters are zeroed between requests, so
    deltas are exact); failures are reported as ``("error", repr)``
    instead of killing the worker, keeping the pipe protocol in sync.
    """
    from repro.core.engine import ObstacleDatabase

    try:
        db = ObstacleDatabase.load(
            snapshot_path, backend=backend, cache_policy=cache_policy
        )
    except BaseException as exc:  # startup must never hang the parent
        try:
            conn.send(("boot-error", repr(exc)))
        finally:
            conn.close()
        return
    db.reset_stats()  # page/runtime counters to zero; caches stay warm
    conn.send(("ready",))
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message[0] == "shutdown":
            conn.send(("bye",))
            break
        __, deltas, command, items, trace = message
        span = None
        if trace:
            # The parent sampled this batch: trace the worker's share
            # under a detached root and ship the tree back for the
            # parent to graft into its own span.
            TRACER.reset_thread()
            span = TRACER.detached(
                "pool.worker", kind=command[0], items=len(items)
            )
        try:
            if span is not None:
                with span:
                    for delta in deltas:
                        apply_record(db, delta)
                    results = _evaluate(db, command, items)
            else:
                for delta in deltas:
                    apply_record(db, delta)
                results = _evaluate(db, command, items)
        except BaseException as exc:
            conn.send(("error", repr(exc)))
            db.reset_stats()
            continue
        conn.send(
            (
                "ok",
                results,
                db.runtime_stats(),
                _tree_counters(db),
                span.to_dict() if span is not None else None,
            )
        )
        db.reset_stats()
    conn.close()


class _Worker:
    """One pool member: its process, pipe end, and delta cursor."""

    __slots__ = ("process", "conn", "cursor", "index")

    def __init__(self, process, conn, index: int) -> None:
        self.process = process
        self.conn = conn
        self.index = index
        #: Offset into the pool's delta log of the first delta this
        #: worker has not yet replayed.
        self.cursor = 0


class PersistentWorkerPool:
    """A long-lived pool of snapshot-warm-started query workers.

    Parameters
    ----------
    db:
        The parent database.  The pool snapshots it at (lazy) startup,
        subscribes to its obstacle mutation feeds, and merges worker
        stats back into it.
    workers:
        Worker process count (>= 1; batch routing only engages a pool
        from ``workers >= 2``).
    snapshot_path:
        Where to write the warm-start snapshot.  Default: a temporary
        file, deleted as soon as every worker has loaded it.  An
        explicit path is left on disk (callers may want to inspect or
        reuse it).

    The pool is a context manager; :meth:`shutdown` is idempotent and
    safe to call from ``finally`` blocks and finalizers.
    """

    def __init__(
        self,
        db: "ObstacleDatabase",
        workers: int,
        *,
        snapshot_path: "str | os.PathLike[str] | None" = None,
    ) -> None:
        if workers < 1:
            raise QueryError(f"pool needs >= 1 worker, got {workers}")
        # Held weakly: the pool must not keep its database alive (the
        # database registers a finalizer shutting the pool down when
        # it is collected; a strong reference here would defeat it).
        self._dbref = weakref.ref(db)
        self.workers = workers
        self._snapshot_path = (
            os.fspath(snapshot_path) if snapshot_path is not None else None
        )
        self._members: list[_Worker] = []
        self._log: list[MutationRecord] = []
        self._expected: dict[tuple[str, str], int] = {}
        self._subscribed = False
        self._shut = False
        #: Requests served and workers (re)spawned, for observability.
        self.batches_served = 0
        self.spawns = 0

    @property
    def _db(self) -> "ObstacleDatabase":
        db = self._dbref()
        if db is None:  # pragma: no cover - use-after-collect guard
            raise QueryError("the database owning this pool was collected")
        return db

    # ------------------------------------------------------------- lifecycle
    @property
    def alive(self) -> bool:
        """True when worker processes are currently running."""
        return bool(self._members)

    def __enter__(self) -> "PersistentWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def _signature(self) -> dict[tuple[str, str], int]:
        """Version/size signature of the parent state the workers
        mirror: obstacle-set versions plus entity-tree sizes.  Drift
        against the expectation means an out-of-band edit."""
        db = self._db
        sig: dict[tuple[str, str], int] = {}
        for name, idx in db._obstacle_indexes.items():
            sig[("obstacles", name)] = idx.version
        for name, tree in db._entity_trees.items():
            sig[("entities", name)] = len(tree)
        return sig

    def _subscribe_feeds(self) -> None:
        """Attach the delta recorders to every obstacle set's feed.

        Subscriptions are per obstacle *set* (the feed callback does
        not carry the set name) and installed once — they survive
        worker invalidation, so no mutation can slip between a respawn
        and a re-subscribe.
        """
        if self._subscribed:
            return
        for name, idx in self._db._obstacle_indexes.items():
            idx.subscribe(self._recorder_for(name))
        self._subscribed = True

    def _recorder_for(self, set_name: str):
        def record(kind: str, obstacle: Obstacle) -> None:
            if kind.startswith("pre-"):
                return
            self._log.append(obstacle_record(kind, set_name, obstacle))
            self._expected[("obstacles", set_name)] = self._db._obstacle_indexes[
                set_name
            ].version

        return record

    def note_entity(self, op: str, set_name: str, point: Point) -> None:
        """Record one entity mutation (called by the parent database
        *after* applying it) for replay in the workers."""
        self._log.append(entity_record(op, set_name, point))
        self._expected[("entities", set_name)] = len(
            self._db._entity_trees[set_name]
        )

    def _spawn(self) -> None:
        """Snapshot the parent and boot the workers from it."""
        import multiprocessing

        method = (
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        ctx = multiprocessing.get_context(method)
        path = self._snapshot_path
        ephemeral = path is None
        if ephemeral:
            fd, path = tempfile.mkstemp(suffix=".snap", prefix="repro-pool-")
            os.close(fd)
        # Straight through the store, NOT ``db.save``: the warm-start
        # snapshot is pool plumbing, and must never re-anchor a durable
        # database's journal to an (often ephemeral) path.
        from repro.persist.store import save_database

        save_database(self._db, path, include_cache=True)
        backend = self._db.context.backend.name
        from repro.visibility.kernel.backend import available_backends

        if backend not in available_backends():
            backend = None
        # Workers inherit the parent's cache policy *kind* by name (not
        # its estimator state): each adapts to the stream it serves.
        cache_policy = self._db.cache_policy
        members: list[_Worker] = []
        try:
            for i in range(self.workers):
                parent_conn, child_conn = ctx.Pipe()
                process = ctx.Process(
                    target=_worker_main,
                    args=(child_conn, path, backend, cache_policy),
                    daemon=True,
                    name=f"repro-pool-{i}",
                )
                process.start()
                child_conn.close()  # keep exactly one handle per end
                members.append(_Worker(process, parent_conn, i))
            for member in members:
                try:
                    reply = member.conn.recv()
                except (EOFError, OSError):
                    raise QueryError(
                        f"pool worker {member.index} died during warm start"
                    ) from None
                if reply[0] != "ready":
                    raise QueryError(
                        f"pool worker {member.index} failed to load the "
                        f"warm-start snapshot: {reply[1]}"
                    )
        except BaseException:
            for member in members:
                member.conn.close()
                member.process.terminate()
                member.process.join(timeout=5)
            raise
        finally:
            if ephemeral:
                try:
                    os.unlink(path)
                except OSError:  # pragma: no cover - best-effort cleanup
                    pass
        # Workers mirror the parent as of this snapshot: outstanding
        # log entries predate it and must never be replayed into them.
        for member in members:
            member.cursor = len(self._log)
        self._members = members
        self._expected = self._signature()
        self.spawns += 1

    def _ensure_workers(self) -> None:
        if self._shut:
            raise QueryError("persistent pool is shut down")
        self._subscribe_feeds()
        if self._members and self._expected != self._signature():
            # Out-of-band edit: the feeds missed a mutation, so delta
            # replay can no longer reproduce the parent.  Respawn from
            # a fresh snapshot instead of serving stale answers.
            self._stop_workers()
        if not self._members:
            self._spawn()

    def invalidate(self) -> None:
        """Discard the workers; the next dispatch respawns them from a
        fresh snapshot.  Used by the parent when it changes shape in
        ways the delta feed cannot express (new datasets)."""
        self._stop_workers()
        self._log.clear()

    def _stop_workers(self) -> None:
        members, self._members = self._members, []
        for member in members:
            try:
                member.conn.send(("shutdown",))
            except (OSError, ValueError):
                pass
        for member in members:
            try:
                if member.conn.poll(1.0):
                    member.conn.recv()
            except (EOFError, OSError):
                pass
            member.conn.close()
            member.process.join(timeout=5)
            if member.process.is_alive():  # pragma: no cover - stuck worker
                member.process.terminate()
                member.process.join(timeout=5)

    def shutdown(self) -> None:
        """Stop every worker.  Idempotent; safe after partial failures
        (and called automatically when the owning database is
        garbage-collected)."""
        if self._shut:
            return
        self._shut = True
        self._stop_workers()

    # -------------------------------------------------------------- serving
    def run_batch(self, command: tuple, items: Sequence) -> list:
        """Fan ``items`` over the workers under ``command``; returns
        per-item results in order.

        Outstanding mutation deltas ride along with each worker's
        request, so every answer reflects the parent's current state.
        Worker stats are merged into the parent database on join.  A
        worker dying mid-chunk raises :class:`QueryError` naming the
        chunk; the pool is torn down so the next dispatch respawns
        cleanly.
        """
        if not items:
            return []
        self._ensure_workers()
        chunks = _chunk_ranges(len(items), min(self.workers, len(items)))
        with TRACER.span(
            "pool.batch", kind=command[0], n=len(items)
        ) as batch_span:
            # A real span here means this batch is being traced (the
            # sampling decision is the parent's); the flag rides the
            # pipe protocol and each worker's span tree rides back.
            trace = bool(batch_span)
            dispatched: list[tuple[_Worker, tuple[int, int]]] = []
            failure: QueryError | None = None
            for member, chunk in zip(self._members, chunks):
                deltas = self._log[member.cursor :]
                try:
                    member.conn.send(
                        (
                            "serve",
                            deltas,
                            command,
                            items[chunk[0] : chunk[1]],
                            trace,
                        )
                    )
                except (OSError, ValueError):
                    failure = QueryError(
                        f"pool worker {member.index} died before serving chunk "
                        f"[{chunk[0]}:{chunk[1]}) of a {command[0]!r} batch"
                    )
                    break
                member.cursor = len(self._log)
                dispatched.append((member, chunk))
            results: list = [None] * len(items)
            for member, (start, stop) in dispatched:
                try:
                    reply = member.conn.recv()
                except (EOFError, OSError):
                    failure = failure or QueryError(
                        f"pool worker {member.index} died serving chunk "
                        f"[{start}:{stop}) of a {command[0]!r} batch"
                    )
                    continue
                if reply[0] != "ok":
                    failure = failure or QueryError(
                        f"pool worker {member.index} failed on chunk "
                        f"[{start}:{stop}) of a {command[0]!r} batch: {reply[1]}"
                    )
                    continue
                __, chunk_results, runtime_snapshot, page_deltas, span_doc = reply
                results[start:stop] = chunk_results
                self._db.context.stats.merge(runtime_snapshot)
                _merge_tree_counters(self._db, page_deltas)
                TRACER.graft(span_doc)
            if failure is not None:
                # The pipe protocol may be out of sync with the dead or
                # failed worker's peers mid-batch; restart from scratch.
                self._stop_workers()
                raise failure
        self.batches_served += 1
        return results

    def batch_nearest(
        self,
        set_name: str,
        points: Sequence[Point],
        k: int,
        *,
        prune_bound: bool = True,
    ) -> list:
        """k-NN per point, fanned over the warm workers."""
        return self.run_batch(("nearest", set_name, k, prune_bound), points)

    def batch_range(
        self, set_name: str, points: Sequence[Point], e: float
    ) -> list:
        """Range result per point, fanned over the warm workers."""
        return self.run_batch(("range", set_name, e), points)

    def batch_distance(
        self, pairs: Sequence[tuple[Point, Point]]
    ) -> list[float]:
        """Obstructed distance per pair, fanned over the warm workers."""
        return self.run_batch(("distance",), pairs)

    def __repr__(self) -> str:
        state = "shut" if self._shut else ("warm" if self.alive else "idle")
        return (
            f"PersistentWorkerPool(workers={self.workers}, {state}, "
            f"batches_served={self.batches_served}, spawns={self.spawns})"
        )
