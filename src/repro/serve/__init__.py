"""The serving tier: persistent warm workers, asyncio front-end,
continuous queries.

Three layers, composable but independently usable:

:mod:`repro.serve.pool`
    :class:`PersistentWorkerPool` — long-lived worker processes
    warm-started from a snapshot (zero cold graph builds for covered
    centres), kept current by a replayable mutation-delta feed, and
    reused across batches.  Engaged by the database batch methods via
    ``pool="persistent"`` / ``REPRO_BATCH_POOL=persistent``.

:mod:`repro.serve.server`
    :class:`QueryServer` — an asyncio front-end coalescing concurrent
    nearest/range/distance requests into microbatches and tracking
    per-request latency histograms (:class:`ServeStats`).

:mod:`repro.serve.continuous`
    :class:`ContinuousQueryHub` — standing queries for moving clients,
    answered as incremental :class:`ResultDelta` streams on movement
    and obstacle mutation, filtered and served through the repair-first
    graph cache.
"""

from repro.serve.continuous import ContinuousQueryHub, ResultDelta, Subscription
from repro.serve.pool import PersistentWorkerPool
from repro.serve.server import QueryServer
from repro.serve.stats import LatencyHistogram, ServeStats

__all__ = [
    "ContinuousQueryHub",
    "LatencyHistogram",
    "PersistentWorkerPool",
    "QueryServer",
    "ResultDelta",
    "ServeStats",
    "Subscription",
]
