"""Serving-tier observability: latency histograms over the runtime counters.

The library-call layers report *work* (graph builds, page accesses,
sweeps — :class:`~repro.runtime.stats.RuntimeStats`); a serving tier
must additionally report *latency* as experienced by clients, which is
a distribution, not a counter.  :class:`LatencyHistogram` is a
log-bucketed histogram cheap enough to tick on every request;
:class:`ServeStats` groups one histogram per request kind with the
front-end's coalescing/in-flight counters and the underlying
:class:`RuntimeStats`, so one snapshot answers both "how slow was p99"
and "how much work did that traffic cost".
"""

from __future__ import annotations

import math

from repro.errors import QueryError
from repro.runtime.stats import RuntimeStats

#: Lower edge of the first histogram bucket (seconds): 1 microsecond.
_FLOOR = 1e-6

#: Geometric bucket growth factor.  With a 1.25x ratio the relative
#: error of any reported percentile is bounded by 25% — tight enough
#: for p99 regression gating, at 80 buckets per 1e6x dynamic range.
_RATIO = 1.25


class LatencyHistogram:
    """A log-bucketed latency histogram with percentile queries.

    Samples are assigned to geometric buckets (ratio 1.25 above a 1 us
    floor); :meth:`percentile` answers from the bucket upper edges, so
    reported quantiles overestimate by at most one bucket ratio.
    Constant memory, O(1) record, no sample retention — safe to leave
    on under production traffic.
    """

    __slots__ = ("_buckets", "count", "total", "max")

    def __init__(self) -> None:
        self._buckets: dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    @staticmethod
    def _bucket(seconds: float) -> int:
        if seconds <= _FLOOR:
            return 0
        return 1 + int(math.log(seconds / _FLOOR) / math.log(_RATIO))

    @staticmethod
    def _upper_edge(bucket: int) -> float:
        return _FLOOR * _RATIO**bucket

    def record(self, seconds: float) -> None:
        """Add one latency sample (in seconds)."""
        if seconds < 0:
            raise QueryError(f"latency cannot be negative, got {seconds}")
        b = self._bucket(seconds)
        self._buckets[b] = self._buckets.get(b, 0) + 1
        self.count += 1
        self.total += seconds
        if seconds > self.max:
            self.max = seconds

    def percentile(self, p: float) -> float:
        """The latency at quantile ``p`` in ``(0, 100]`` (0.0 if empty)."""
        if not 0 < p <= 100:
            raise QueryError(f"percentile must be in (0, 100], got {p}")
        if self.count == 0:
            return 0.0
        rank = math.ceil(self.count * p / 100.0)
        seen = 0
        for bucket in sorted(self._buckets):
            seen += self._buckets[bucket]
            if seen >= rank:
                return min(self._upper_edge(bucket), self.max)
        return self.max

    @property
    def mean(self) -> float:
        """Arithmetic mean of the recorded samples (0.0 if empty)."""
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram's samples into this one."""
        for bucket, n in other._buckets.items():
            self._buckets[bucket] = self._buckets.get(bucket, 0) + n
        self.count += other.count
        self.total += other.total
        if other.max > self.max:
            self.max = other.max

    def snapshot(self) -> dict[str, float]:
        """Headline quantiles and moments as a plain dict."""
        return {
            "count": float(self.count),
            "mean_s": self.mean,
            "p50_s": self.percentile(50),
            "p95_s": self.percentile(95),
            "p99_s": self.percentile(99),
            "max_s": self.max,
        }

    def __repr__(self) -> str:
        return (
            f"LatencyHistogram(count={self.count}, "
            f"p50={self.percentile(50) * 1000:.2f}ms, "
            f"p99={self.percentile(99) * 1000:.2f}ms)"
        )


class ServeStats:
    """Counters and latency distributions of one serving front-end.

    One per :class:`~repro.serve.server.QueryServer`.  ``runtime`` is
    the served database's shared :class:`RuntimeStats`, included in
    :meth:`snapshot` so a single document carries request latency
    *and* the runtime work it caused.
    """

    def __init__(self, runtime: RuntimeStats | None = None) -> None:
        self.runtime = runtime
        self.histograms: dict[str, LatencyHistogram] = {}
        #: Requests accepted / completed / failed.
        self.requests = 0
        self.completed = 0
        self.failed = 0
        #: Microbatches dispatched, and requests that joined a batch
        #: already open when they arrived (the coalescing win).
        self.batches = 0
        self.coalesced = 0
        #: Requests currently admitted and not yet answered, and the
        #: high-water mark of that depth.
        self.in_flight = 0
        self.in_flight_peak = 0

    def histogram(self, kind: str) -> LatencyHistogram:
        """The latency histogram for one request kind (creating it)."""
        hist = self.histograms.get(kind)
        if hist is None:
            hist = self.histograms[kind] = LatencyHistogram()
        return hist

    def admit(self, joined_open_batch: bool = False) -> None:
        """Book one accepted request (optionally a coalesced one)."""
        self.requests += 1
        if joined_open_batch:
            self.coalesced += 1
        self.in_flight += 1
        if self.in_flight > self.in_flight_peak:
            self.in_flight_peak = self.in_flight

    def settle(self, kind: str, seconds: float, *, failed: bool = False) -> None:
        """Book one finished request with its end-to-end latency."""
        self.in_flight -= 1
        if failed:
            self.failed += 1
        else:
            self.completed += 1
        self.histogram(kind).record(seconds)

    def snapshot(self) -> dict[str, object]:
        """Counters, per-kind latency quantiles, and the runtime's
        work counters, as one plain dict."""
        doc: dict[str, object] = {
            "requests": self.requests,
            "completed": self.completed,
            "failed": self.failed,
            "batches": self.batches,
            "coalesced": self.coalesced,
            "in_flight": self.in_flight,
            "in_flight_peak": self.in_flight_peak,
            "latency": {
                kind: hist.snapshot() for kind, hist in self.histograms.items()
            },
        }
        if self.runtime is not None:
            doc["runtime"] = self.runtime.snapshot()
        return doc

    def __repr__(self) -> str:
        kinds = ", ".join(
            f"{kind}: {hist!r}" for kind, hist in self.histograms.items()
        )
        return (
            f"ServeStats(requests={self.requests}, batches={self.batches}, "
            f"{kinds})"
        )
