"""Continuous query subscriptions for moving clients.

The paper closes by flagging queries for *moving* entities as future
work (Sec. 8); :mod:`repro.core.continuous` answers the offline
version (the constant-NN partition of a whole known route).  This
module serves the *online* version: a client registers a standing
nearest-k or range query at its current position, then receives
**incremental result deltas** — not full result lists — whenever

* the client moves (:meth:`ContinuousQueryHub.move`), or
* an obstacle is inserted or deleted (the hub subscribes to the
  obstacle sets' mutation feeds and re-evaluates exactly the
  subscriptions whose current result could change).

Re-evaluation runs through the database's shared runtime context, so
it is driven by the repair-first cache: a mutation patches the cached
graphs once, and every affected subscription's refresh is served from
the patched graphs instead of cold rebuilds, while *unaffected*
subscriptions are filtered out geometrically and do no work at all.
The filter is sound by the disk argument used throughout the runtime:
any obstructed path of length ``d`` from position ``q`` stays inside
the disk of radius ``d`` around ``q``, so an obstacle that stays
outside the subscription's result disk (kth distance for nearest-k,
``e`` for range) cannot change which entities are reachable within it.
A nearest-k subscription with fewer than ``k`` reachable entities has
an unbounded result disk and always refreshes.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field

from repro.errors import QueryError
from repro.geometry.point import Point
from repro.model import Obstacle


@dataclass(frozen=True)
class ResultDelta:
    """The incremental change between two published result states.

    ``added``/``removed`` are ``(entity, distance)`` pairs entering or
    leaving the result; ``changed`` are entities that stay in the
    result at a different obstructed distance (reported with the new
    distance).  Empty deltas (``bool(delta) is False``) mean the
    published state is already current.
    """

    added: tuple[tuple[Point, float], ...]
    removed: tuple[tuple[Point, float], ...]
    changed: tuple[tuple[Point, float], ...]

    def __bool__(self) -> bool:
        return bool(self.added or self.removed or self.changed)


@dataclass
class Subscription:
    """One standing continuous query registered with the hub."""

    sid: int
    kind: str  # "nearest" | "range"
    set_name: str
    position: Point
    k: int = 0
    e: float = 0.0
    #: The result the client last saw (via :meth:`ContinuousQueryHub.poll`).
    published: list[tuple[Point, float]] = field(default_factory=list)
    #: The result at the current position/obstacle state.
    current: list[tuple[Point, float]] = field(default_factory=list)
    #: Full query evaluations performed for this subscription — the
    #: number the mutation filter keeps small.
    reevaluations: int = 0
    active: bool = True

    def result_radius(self) -> float:
        """Radius of the disk that bounds this subscription's result.

        Obstacles farther from the position cannot affect the result;
        ``inf`` when the result is unbounded (nearest-k holding fewer
        than ``k`` entities, i.e. some entities are unreachable).
        """
        if self.kind == "range":
            return self.e
        if len(self.current) < self.k:
            return math.inf
        return self.current[-1][1]


class ContinuousQueryHub:
    """Registry and delta engine for continuous queries over one database.

    Register with :meth:`nearest` / :meth:`range`, drive with
    :meth:`move`, consume with :meth:`poll`; obstacle mutations on the
    database refresh affected subscriptions automatically through the
    mutation feeds (the same feeds the graph cache repairs from, so a
    refresh lands on already-patched graphs).
    """

    def __init__(self, db) -> None:
        self._db = db
        self._subs: dict[int, Subscription] = {}
        self._ids = itertools.count()
        # One recorder per obstacle set, like the cache and the pool.
        # The feed holds plain functions strongly; keep the hub's own
        # handle so subscribing twice per set is impossible.
        self._recorders: dict[str, object] = {}
        self._subscribe_feeds()

    def _subscribe_feeds(self) -> None:
        for name, index in self._db._obstacle_indexes.items():
            if name in self._recorders:
                continue

            def on_mutation(kind: str, obstacle: Obstacle) -> None:
                if not kind.startswith("pre-"):
                    self._on_obstacle_mutation(obstacle)

            index.subscribe(on_mutation)
            self._recorders[name] = on_mutation

    # -------------------------------------------------------- registration
    def nearest(
        self, set_name: str, position: Point, k: int = 1
    ) -> Subscription:
        """Register a continuous nearest-``k`` query at ``position``.

        The initial result is computed immediately and is pending for
        the first :meth:`poll` (published as all-``added``).
        """
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        sub = Subscription(
            sid=next(self._ids),
            kind="nearest",
            set_name=set_name,
            position=position,
            k=k,
        )
        self._subs[sub.sid] = sub
        self._refresh(sub)
        return sub

    def range(self, set_name: str, position: Point, e: float) -> Subscription:
        """Register a continuous range query of radius ``e``."""
        if e < 0:
            raise QueryError(f"range radius must be >= 0, got {e}")
        sub = Subscription(
            sid=next(self._ids),
            kind="range",
            set_name=set_name,
            position=position,
            e=e,
        )
        self._subs[sub.sid] = sub
        self._refresh(sub)
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        """Deactivate one subscription (idempotent)."""
        sub.active = False
        self._subs.pop(sub.sid, None)

    # ------------------------------------------------------------- driving
    def move(self, sub: Subscription, position: Point) -> ResultDelta:
        """Move one client and return the delta against its published
        state (the published state advances, as with :meth:`poll`)."""
        self._require_active(sub)
        sub.position = position
        self._refresh(sub)
        return self.poll(sub)

    def poll(self, sub: Subscription) -> ResultDelta:
        """The delta between the client's published and current result;
        publishes the current result."""
        self._require_active(sub)
        delta = _diff(sub.published, sub.current)
        sub.published = list(sub.current)
        return delta

    def refresh(self, sub: Subscription) -> None:
        """Force one full re-evaluation (entity mutations have no feed,
        so callers changing entity sets refresh affected clients)."""
        self._require_active(sub)
        self._refresh(sub)

    # ----------------------------------------------------------- internals
    def _require_active(self, sub: Subscription) -> None:
        if not sub.active or self._subs.get(sub.sid) is not sub:
            raise QueryError(f"subscription {sub.sid} is not active")

    def _refresh(self, sub: Subscription) -> None:
        if sub.kind == "nearest":
            sub.current = list(
                self._db.nearest(sub.set_name, sub.position, sub.k)
            )
        else:
            sub.current = list(
                self._db.range(sub.set_name, sub.position, sub.e)
            )
        sub.reevaluations += 1

    def _on_obstacle_mutation(self, obstacle: Obstacle) -> None:
        for sub in list(self._subs.values()):
            radius = sub.result_radius()
            if math.isinf(radius) or (
                obstacle.mbr.mindist_point(sub.position) <= radius
            ):
                self._refresh(sub)

    def __len__(self) -> int:
        return len(self._subs)

    def __repr__(self) -> str:
        return f"ContinuousQueryHub(subscriptions={len(self._subs)})"


def _diff(
    published: list[tuple[Point, float]], current: list[tuple[Point, float]]
) -> ResultDelta:
    """Set-diff two result lists into a :class:`ResultDelta`."""
    old = dict(published)
    new = dict(current)
    added = tuple((p, d) for p, d in current if p not in old)
    removed = tuple((p, d) for p, d in published if p not in new)
    changed = tuple(
        (p, d) for p, d in current if p in old and old[p] != d
    )
    return ResultDelta(added=added, removed=removed, changed=changed)
