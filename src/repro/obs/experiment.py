"""Experiment series: the rows/columns the paper's figures plot.

Each benchmark produces one :class:`ExperimentSeries` per plotted line
(e.g. "obstacle R-tree page accesses" vs the x-axis parameter) and the
harness renders them in the same layout as the paper's figures.
(Previously ``repro.stats.experiment``; that path is a deprecated
shim.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["ExperimentSeries", "format_table"]


@dataclass
class ExperimentSeries:
    """One plotted line: a name plus ``(x, y)`` samples."""

    name: str
    xs: list[float] = field(default_factory=list)
    ys: list[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        """Append one sample."""
        self.xs.append(x)
        self.ys.append(y)

    def as_rows(self) -> list[tuple[float, float]]:
        """Samples as ``(x, y)`` tuples."""
        return list(zip(self.xs, self.ys))


def format_table(
    title: str,
    x_label: str,
    series: Sequence[ExperimentSeries],
    x_format: str = "{:g}",
    y_format: str = "{:.3f}",
) -> str:
    """Render series in a paper-figure-like text table.

    All series must share the same x samples (the figure's x-axis).
    """
    if not series:
        return f"== {title} ==\n(no data)"
    xs = series[0].xs
    for s in series:
        if s.xs != xs:
            raise ValueError(f"series {s.name!r} has mismatched x samples")
    headers = [x_label] + [s.name for s in series]
    rows = [headers]
    for i, x in enumerate(xs):
        row = [x_format.format(x)]
        row.extend(y_format.format(s.ys[i]) for s in series)
        rows.append(row)
    widths = [max(len(r[c]) for r in rows) for c in range(len(headers))]
    lines = [f"== {title} =="]
    for r_i, row in enumerate(rows):
        line = "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
        lines.append(line)
        if r_i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
