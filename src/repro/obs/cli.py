"""``repro-obs`` — export metrics, pretty-print traces, watch a server.

Usage::

    repro-obs export (--snapshot scene.snap | --obstacles obstacles.txt
        [--entities NAME=FILE ...]) [--probe N] [--format json|prometheus]
        [--trace-out trace.json] [--sample RATE]
    repro-obs trace trace.json
    repro-obs top (--snapshot scene.snap | --obstacles obstacles.txt
        [--entities NAME=FILE ...]) [--ticks N] [--interval S]
        [--workers W] [--pool fork|persistent]

``export`` assembles a database (from a snapshot or plain-text dataset
files), optionally replays ``--probe N`` deterministic queries so the
counters show real work, and dumps the unified
:class:`~repro.obs.metrics.MetricsRegistry` snapshot as JSON or
Prometheus text exposition.  With ``--trace-out`` the probe run is
traced (``--sample`` sets the rate, default 1.0) and the last root
span tree is written as JSON — ready for ``repro-obs trace``.

``trace`` pretty-prints a span-tree JSON file (one written by
``--trace-out``, the slow-query log, or any
:meth:`~repro.obs.trace.Span.to_dict` dump): an indented tree with
durations, attributes and hot-layer counters.

``top`` serves a probe workload through an asyncio
:class:`~repro.serve.server.QueryServer` (and therefore through the
persistent worker pool when selected) and redraws a one-line stats
summary per tick — requests, batches, latency percentiles, cache and
page counters.

Also runnable without installation as ``python -m repro.obs.cli``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Sequence

from repro.errors import ReproError


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description=(
            "Export unified metrics, pretty-print query traces, and "
            "watch a serving database."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    export = sub.add_parser(
        "export", help="dump the metrics registry as JSON or Prometheus text"
    )
    _add_source_args(export)
    export.add_argument(
        "--probe",
        type=int,
        default=0,
        metavar="N",
        help="replay N deterministic queries before exporting",
    )
    export.add_argument(
        "--format",
        choices=("json", "prometheus"),
        default="json",
        help="output format (default json)",
    )
    export.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="trace the probe run and write the last span tree as JSON",
    )
    export.add_argument(
        "--sample",
        type=float,
        default=1.0,
        help="trace sampling rate for --trace-out (default 1.0)",
    )

    trace = sub.add_parser("trace", help="pretty-print a span-tree JSON file")
    trace.add_argument("file", help="span-tree JSON file ('-' for stdin)")

    top = sub.add_parser(
        "top", help="serve a probe workload and print per-tick stats"
    )
    _add_source_args(top)
    top.add_argument(
        "--ticks",
        type=int,
        default=5,
        help="summary lines to print before exiting (default 5)",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=0.0,
        help="seconds to sleep between ticks (default 0)",
    )
    top.add_argument(
        "--workers",
        type=int,
        default=None,
        help="batch workers per microbatch (default: REPRO_BATCH_WORKERS)",
    )
    top.add_argument(
        "--pool",
        choices=("fork", "persistent"),
        default=None,
        help="batch pool kind (default: REPRO_BATCH_POOL)",
    )
    return parser


def _add_source_args(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument(
        "--snapshot", default=None, help="load the database from a snapshot"
    )
    cmd.add_argument(
        "--obstacles",
        default=None,
        help="obstacle dataset file (one 'oid x1 y1 ...' per line)",
    )
    cmd.add_argument(
        "--entities",
        action="append",
        default=[],
        metavar="NAME=FILE",
        help="entity dataset as NAME=FILE (one 'x y' per line); repeatable",
    )


def _load_db(args: argparse.Namespace):
    """Assemble the database named by the source arguments."""
    from repro.core.engine import ObstacleDatabase
    from repro.datasets.io import load_obstacles, load_points

    if (args.snapshot is None) == (args.obstacles is None):
        print(
            "exactly one of --snapshot / --obstacles is required",
            file=sys.stderr,
        )
        return None
    if args.snapshot is not None:
        if args.entities:
            print("--entities needs --obstacles", file=sys.stderr)
            return None
        return ObstacleDatabase.load(args.snapshot)
    db = ObstacleDatabase(load_obstacles(args.obstacles))
    for spec in args.entities:
        name, sep, file_path = spec.partition("=")
        if not sep or not name or not file_path:
            print(f"--entities needs NAME=FILE, got {spec!r}", file=sys.stderr)
            return None
        db.add_entity_set(name, load_points(file_path))
    return db


def _probe_workload(db) -> tuple[str | None, list]:
    """A deterministic probe workload over ``db``: nearest queries
    anchored at the first entity set's points when one exists, else
    obstructed distances along the universe diagonal.  Returns
    ``(entity_set_name, probes)`` where probes are points (nearest) or
    point pairs (distance)."""
    from repro.geometry.point import Point

    names = sorted(db._entity_trees)
    if names:
        name = names[0]
        points = sorted(p for p, __ in db.entity_tree(name).items())
        return name, points
    universe = db.universe()
    if universe is None:
        return None, []
    pairs = []
    for i in range(8):
        t0 = (i + 1) / 10.0
        t1 = (i + 2) / 11.0
        pairs.append(
            (
                Point(
                    universe.minx + t0 * universe.width,
                    universe.miny + t0 * universe.height,
                ),
                Point(
                    universe.minx + t1 * universe.width,
                    universe.miny + t1 * universe.height,
                ),
            )
        )
    return None, pairs


def _run_probes(db, n: int) -> None:
    set_name, probes = _probe_workload(db)
    if not probes:
        return
    for i in range(n):
        probe = probes[i % len(probes)]
        if set_name is not None:
            db.nearest(set_name, probe, 1)
        else:
            db.obstructed_distance(*probe)


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.obs.trace import TRACER

    db = _load_db(args)
    if db is None:
        return 2
    trace_doc = None
    if args.trace_out is not None:
        previous = TRACER.sample_rate
        TRACER.configure(args.sample)
        try:
            _run_probes(db, max(args.probe, 1))
        finally:
            TRACER.configure(previous)
        root = TRACER.last_root
        if root is None:
            print(
                "no query was sampled; raise --sample or --probe",
                file=sys.stderr,
            )
            return 1
        trace_doc = root.to_dict()
    elif args.probe > 0:
        _run_probes(db, args.probe)
    registry = db.metrics()
    if args.format == "prometheus":
        sys.stdout.write(registry.to_prometheus())
    else:
        print(registry.to_json())
    if trace_doc is not None:
        with open(args.trace_out, "w", encoding="utf-8") as fh:
            json.dump(trace_doc, fh, indent=2, sort_keys=True)
        print(f"wrote trace to {args.trace_out}", file=sys.stderr)
    return 0


def format_span_tree(doc: dict[str, Any]) -> str:
    """Render one :meth:`~repro.obs.trace.Span.to_dict` tree as an
    indented, human-readable listing."""
    lines: list[str] = []

    def render(node: dict[str, Any], depth: int) -> None:
        indent = "  " * depth
        duration_ms = float(node.get("duration_s", 0.0)) * 1000.0
        lines.append(f"{indent}{node.get('name', '?')}  {duration_ms:.3f} ms")
        attrs = node.get("attrs") or {}
        for key in sorted(attrs):
            value = attrs[key]
            shown = f"{value:.3f}" if isinstance(value, float) else value
            lines.append(f"{indent}  · {key}={shown}")
        counters = node.get("counters") or {}
        for key in sorted(counters):
            lines.append(f"{indent}  # {key}={counters[key]}")
        if node.get("dropped"):
            lines.append(f"{indent}  ! {node['dropped']} child span(s) dropped")
        for child in node.get("children", []):
            render(child, depth + 1)

    render(doc, 0)
    return "\n".join(lines)


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.file == "-":
        raw = sys.stdin.read()
    else:
        with open(args.file, "r", encoding="utf-8") as fh:
            raw = fh.read()
    try:
        doc = json.loads(raw)
    except ValueError as exc:
        print(f"error: {args.file}: not JSON ({exc})", file=sys.stderr)
        return 1
    # Accept both a bare span tree and a slow-query-log entry list.
    if isinstance(doc, list):
        for i, entry in enumerate(doc):
            tree = entry.get("trace", entry) if isinstance(entry, dict) else {}
            if i:
                print()
            print(format_span_tree(tree))
        return 0
    if not isinstance(doc, dict):
        print(f"error: {args.file}: not a span tree", file=sys.stderr)
        return 1
    print(format_span_tree(doc.get("trace", doc) if "trace" in doc else doc))
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    import asyncio

    db = _load_db(args)
    if db is None:
        return 2
    if args.ticks < 1:
        print("--ticks must be >= 1", file=sys.stderr)
        return 2
    set_name, probes = _probe_workload(db)
    if not probes:
        print("database is empty; nothing to serve", file=sys.stderr)
        return 1
    return asyncio.run(_top_loop(db, set_name, probes, args))


async def _top_loop(db, set_name, probes, args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve.server import QueryServer

    async with QueryServer(
        db, workers=args.workers, pool=args.pool
    ) as server:
        registry = server.metrics()
        print(
            f"{'tick':>4}  {'reqs':>6}  {'batches':>7}  {'p50 ms':>8}  "
            f"{'p95 ms':>8}  {'cache hit':>9}  {'cache miss':>10}  "
            f"{'pg reads':>8}  {'pg misses':>9}"
        )
        for tick in range(args.ticks):
            if set_name is not None:
                await asyncio.gather(
                    *(server.nearest(set_name, p, 1) for p in probes)
                )
            else:
                await asyncio.gather(
                    *(server.distance(a, b) for a, b in probes)
                )
            doc = registry.snapshot()
            serve = doc.get("serve", {})
            runtime = doc.get("runtime", {})
            latency = doc.get("serve_latency", {}).get("nearest") or doc.get(
                "serve_latency", {}
            ).get("distance", {})
            pages = doc.get("pages", {})
            reads = sum(tree.get("reads", 0) for tree in pages.values())
            misses = sum(tree.get("misses", 0) for tree in pages.values())
            print(
                f"{tick:>4}  {serve.get('requests', 0):>6}  "
                f"{serve.get('batches', 0):>7}  "
                f"{latency.get('p50_s', 0.0) * 1000.0:>8.2f}  "
                f"{latency.get('p95_s', 0.0) * 1000.0:>8.2f}  "
                f"{runtime.get('graph_cache_hits', 0):>9}  "
                f"{runtime.get('graph_cache_misses', 0):>10}  "
                f"{reads:>8}  {misses:>9}"
            )
            if args.interval > 0 and tick + 1 < args.ticks:
                await asyncio.sleep(args.interval)
    db.close()
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "export":
            return _cmd_export(args)
        if args.command == "trace":
            return _cmd_trace(args)
        return _cmd_top(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
