"""Low-overhead query tracing: nested span trees over monotonic clocks.

One global :data:`TRACER` is threaded through the hot layers.  A *span*
is one timed operation (a query skeleton, a graph build, a rotational
sweep, a serve microbatch); spans nest into a tree rooted at the query
entry point.  Layers too hot for a span of their own (R*-tree page
fetches, cache hit/miss decisions) tick *counters* on whatever span is
currently open — aggregate accounting at near-zero cost.

Sampling
--------
``REPRO_TRACE_SAMPLE`` sets the root-span sampling rate: ``0`` (the
default) disables tracing entirely, ``1`` traces every query, ``0.25``
every fourth.  Sampling is a deterministic accumulator, not a RNG, so
runs are reproducible.  When tracing is off, :meth:`Tracer.span`
returns a shared no-op span and :meth:`Tracer.count` returns after two
attribute lookups — the fast path allocates nothing.

Cross-process traces
--------------------
Worker processes (the persistent pool, the fork executor) cannot share
the parent's span stack.  They open a *detached* root via
:meth:`Tracer.detached`, serialise it with :meth:`Span.to_dict`, ship
the dict back inside their reply, and the parent grafts it into its
active span with :meth:`Tracer.graft` — one merged tree per query, no
matter how many processes it crossed.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Callable, Iterator

__all__ = ["Span", "Tracer", "TRACER"]

#: Children kept per span before further child spans are dropped (and
#: accounted in ``Span.dropped``) — bounds trace memory under
#: pathological fan-out.
MAX_CHILDREN = 256

_ENV_SAMPLE = "REPRO_TRACE_SAMPLE"


def _env_sample_rate() -> float:
    raw = os.environ.get(_ENV_SAMPLE, "").strip()
    if not raw:
        return 0.0
    try:
        rate = float(raw)
    except ValueError:
        return 0.0
    return min(max(rate, 0.0), 1.0)


class Span:
    """One timed operation in a trace tree.

    Entered as a context manager (the tracer hands these out via
    :meth:`Tracer.span`); ``start``/``end`` are ``perf_counter``
    readings, ``counters`` holds aggregate ticks from layers too hot
    for child spans, ``dropped`` counts children discarded past
    :data:`MAX_CHILDREN`.
    """

    __slots__ = (
        "name",
        "attrs",
        "start",
        "end",
        "children",
        "counters",
        "dropped",
        "_tracer",
        "_root",
    )

    def __init__(
        self,
        name: str,
        attrs: dict[str, Any] | None = None,
        *,
        tracer: "Tracer | None" = None,
        root: bool = False,
    ) -> None:
        self.name = name
        self.attrs = attrs or {}
        self.start = 0.0
        self.end = 0.0
        self.children: list[Span] = []
        self.counters: dict[str, int] = {}
        self.dropped = 0
        self._tracer = tracer
        self._root = root

    @property
    def duration(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        return self.end - self.start if self.end else 0.0

    def set_attr(self, key: str, value: Any) -> None:
        """Attach one attribute to the span."""
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        if self._tracer is not None:
            self._tracer._stack().append(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.end = time.perf_counter()
        tracer = self._tracer
        if tracer is not None:
            stack = tracer._stack()
            if stack and stack[-1] is self:
                stack.pop()
            if self._root:
                tracer._finish_root(self)

    def to_dict(self) -> dict[str, Any]:
        """The finished span tree as plain JSON-serialisable data.

        The transport format for pipe replies, the slow-query log and
        ``repro-obs trace`` files.
        """
        doc: dict[str, Any] = {
            "name": self.name,
            "start": self.start,
            "duration_s": self.duration,
        }
        if self.attrs:
            doc["attrs"] = dict(self.attrs)
        if self.counters:
            doc["counters"] = dict(self.counters)
        if self.dropped:
            doc["dropped"] = self.dropped
        if self.children:
            doc["children"] = [c.to_dict() for c in self.children]
        return doc

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "Span":
        """Rebuild a span tree from :meth:`to_dict` output."""
        span = cls(str(doc.get("name", "?")), dict(doc.get("attrs", {})))
        span.start = float(doc.get("start", 0.0))
        span.end = span.start + float(doc.get("duration_s", 0.0))
        span.counters = {
            str(k): int(v) for k, v in dict(doc.get("counters", {})).items()
        }
        span.dropped = int(doc.get("dropped", 0))
        span.children = [cls.from_dict(c) for c in doc.get("children", [])]
        return span

    def walk(self) -> Iterator["Span"]:
        """Depth-first iteration over the span and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def total_counters(self) -> dict[str, int]:
        """Counters summed over the whole subtree."""
        totals: dict[str, int] = {}
        for span in self.walk():
            for name, value in span.counters.items():
                totals[name] = totals.get(name, 0) + value
        return totals

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, {self.duration * 1000:.3f}ms, "
            f"children={len(self.children)})"
        )


class _NullSpan:
    """The shared no-op span returned when tracing is off.

    Supports the same surface as :class:`Span` so call sites never
    branch; every method is a no-op and ``with`` costs two calls.
    """

    __slots__ = ()

    name = ""
    attrs: dict[str, Any] = {}
    counters: dict[str, int] = {}
    children: list[Span] = []
    start = 0.0
    end = 0.0
    dropped = 0
    duration = 0.0

    def set_attr(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass

    def __bool__(self) -> bool:
        return False

    def __repr__(self) -> str:
        return "Span(<off>)"


#: The shared disabled span — identity-comparable (``span is NULL_SPAN``).
NULL_SPAN = _NullSpan()


class Tracer:
    """Produces and stacks spans; one global instance serves the process.

    Thread-safe by construction: each thread has its own span stack,
    so concurrently served queries produce independent trees.  Only
    the sampling accumulator and the root-sink list are shared (both
    lock-guarded, both touched only at root-span boundaries).
    """

    def __init__(self, sample_rate: float | None = None) -> None:
        self._local = threading.local()
        self._lock = threading.Lock()
        self._acc = 0.0
        self._sinks: list[Callable[[Span], None]] = []
        self.last_root: Span | None = None
        self.sample_rate = (
            _env_sample_rate() if sample_rate is None else sample_rate
        )

    # -- configuration -------------------------------------------------

    @property
    def enabled(self) -> bool:
        """Whether any query can currently be traced."""
        return self.sample_rate > 0.0

    def configure(self, sample_rate: float) -> None:
        """Set the root sampling rate (clamped to ``[0, 1]``)."""
        self.sample_rate = min(max(float(sample_rate), 0.0), 1.0)
        with self._lock:
            self._acc = 0.0

    def reload_env(self) -> None:
        """Re-read ``REPRO_TRACE_SAMPLE`` (tests flip it mid-process)."""
        self.configure(_env_sample_rate())

    def add_root_sink(self, sink: Callable[[Span], None]) -> None:
        """Register a callback invoked with every finished root span."""
        if sink not in self._sinks:
            self._sinks.append(sink)

    # -- span production -----------------------------------------------

    def _stack(self) -> list[Span]:
        try:
            return self._local.stack
        except AttributeError:
            stack: list[Span] = []
            self._local.stack = stack
            return stack

    def _admit_root(self) -> bool:
        rate = self.sample_rate
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        with self._lock:
            self._acc += rate
            if self._acc >= 1.0:
                self._acc -= 1.0
                return True
        return False

    def span(self, name: str, **attrs: Any) -> "Span | _NullSpan":
        """Open a span (use as a context manager).

        With an active parent on this thread the span always becomes
        its child; with no parent it is a *root* candidate and the
        sampling decision applies.  Returns :data:`NULL_SPAN` when not
        admitted — callers never branch.
        """
        stack = self._stack()
        if stack:
            parent = stack[-1]
            if len(parent.children) >= MAX_CHILDREN:
                parent.dropped += 1
                return NULL_SPAN
            child = Span(name, attrs or None, tracer=self)
            parent.children.append(child)
            return child
        if not self._admit_root():
            return NULL_SPAN
        return Span(name, attrs or None, tracer=self, root=True)

    def detached(self, name: str, **attrs: Any) -> Span:
        """A forced root span that bypasses sampling and sinks.

        Worker processes use this when the parent has already made the
        sampling decision: the worker traces unconditionally, ships
        :meth:`Span.to_dict` back, and the parent :meth:`graft`\\ s it.
        """
        return Span(name, attrs or None, tracer=self, root=False)

    def count(self, name: str, n: int = 1) -> None:
        """Tick an aggregate counter on the innermost open span.

        The hot-path primitive: when no span is open (tracing off or
        unsampled query) this is two attribute lookups and a return.
        """
        try:
            stack = self._local.stack
        except AttributeError:
            return
        if not stack:
            return
        counters = stack[-1].counters
        counters[name] = counters.get(name, 0) + n

    def current(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def tracing(self) -> bool:
        """Whether a span is open on this thread right now.

        Dispatch layers use this to decide whether to ask workers for
        their span trees (the cross-process sampling decision).
        """
        try:
            return bool(self._local.stack)
        except AttributeError:
            return False

    def reset_thread(self) -> None:
        """Clear this thread's span stack.

        Fork children inherit the forking thread's stack copy-on-write;
        a worker calls this before opening its detached root so stale
        parent spans can neither receive its counters nor leak into
        its tree.
        """
        self._local.stack = []

    def graft(self, payload: dict[str, Any] | None) -> None:
        """Attach a worker's serialised span tree to the open span."""
        if not payload:
            return
        stack = self._stack()
        if not stack:
            return
        parent = stack[-1]
        if len(parent.children) >= MAX_CHILDREN:
            parent.dropped += 1
            return
        parent.children.append(Span.from_dict(payload))

    # -- root bookkeeping ----------------------------------------------

    def _finish_root(self, span: Span) -> None:
        self.last_root = span
        for sink in self._sinks:
            sink(span)


#: The process-wide tracer every instrumented layer imports.
TRACER = Tracer()
