"""Slow-query log: full span trees for queries over a latency threshold.

Hooked into the tracer as a root-span sink: whenever a sampled query's
root span finishes slower than ``REPRO_SLOW_QUERY_MS`` (default 100),
its entire span tree is captured into a bounded ring buffer — the
flight recorder you read *after* the latency spike, without having had
per-query logging on.

Only traced queries can be captured (the log sees root spans, and
unsampled queries never open one) — under sampling the log is a
representative slice, not a census.  Run with ``REPRO_TRACE_SAMPLE=1``
when hunting a specific regression.
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import Any

from repro.obs.trace import TRACER, Span

__all__ = ["SlowQueryLog", "SLOW_LOG"]

_ENV_THRESHOLD = "REPRO_SLOW_QUERY_MS"

#: Default capture threshold (milliseconds).
DEFAULT_THRESHOLD_MS = 100.0

#: Entries retained; older captures fall off the ring.
DEFAULT_CAPACITY = 64


def _env_threshold_ms() -> float:
    raw = os.environ.get(_ENV_THRESHOLD, "").strip()
    if not raw:
        return DEFAULT_THRESHOLD_MS
    try:
        return max(float(raw), 0.0)
    except ValueError:
        return DEFAULT_THRESHOLD_MS


class SlowQueryLog:
    """A bounded ring of span trees from over-threshold queries."""

    def __init__(
        self,
        threshold_ms: float | None = None,
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        self.threshold_ms = (
            _env_threshold_ms() if threshold_ms is None else threshold_ms
        )
        self._ring: deque[dict[str, Any]] = deque(maxlen=capacity)

    def observe(self, root: Span) -> None:
        """Root-span sink: capture the tree if it breached the threshold."""
        duration_ms = root.duration * 1000.0
        if duration_ms < self.threshold_ms:
            return
        self._ring.append(
            {
                "name": root.name,
                "duration_ms": duration_ms,
                "attrs": dict(root.attrs),
                "trace": root.to_dict(),
            }
        )

    def entries(self) -> list[dict[str, Any]]:
        """Captured entries, oldest first."""
        return list(self._ring)

    def clear(self) -> None:
        """Drop every captured entry."""
        self._ring.clear()

    def dump_json(self, indent: int | None = 2) -> str:
        """The log as a JSON document (for artifacts / ``repro-obs``)."""
        return json.dumps(self.entries(), indent=indent)

    def __len__(self) -> int:
        return len(self._ring)

    def __repr__(self) -> str:
        return (
            f"SlowQueryLog(threshold_ms={self.threshold_ms}, "
            f"entries={len(self._ring)})"
        )


#: The process-wide slow-query log, wired into the global tracer.
SLOW_LOG = SlowQueryLog()
TRACER.add_root_sink(SLOW_LOG.observe)
