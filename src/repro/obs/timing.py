"""Lightweight wall-clock timing helpers.

The one stopwatch primitive in the codebase — benchmarks accumulate
wall-clock through :class:`Timer`; everything finer-grained goes
through :mod:`repro.obs.trace` spans.  (Previously
``repro.stats.timing``; that path is a deprecated shim.)
"""

from __future__ import annotations

import time

__all__ = ["Timer"]


class Timer:
    """A context-manager stopwatch accumulating elapsed seconds.

    Can be re-entered; ``elapsed`` accumulates across uses, which suits
    per-workload CPU-time accounting::

        timer = Timer()
        for q in workload:
            with timer:
                run_query(q)
        print(timer.elapsed_ms / len(workload))
    """

    __slots__ = ("elapsed", "_start")

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._start is not None
        self.elapsed += time.perf_counter() - self._start
        self._start = None

    @property
    def elapsed_ms(self) -> float:
        """Accumulated time in milliseconds."""
        return self.elapsed * 1000.0

    def reset(self) -> None:
        """Zero the accumulated time."""
        self.elapsed = 0.0
