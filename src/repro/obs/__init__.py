"""Observability: tracing, unified metrics, and the slow-query log.

The paper's evaluation is an accounting exercise — page accesses,
graph-construction cost, query I/O — but the runtime's counters grew
up in three disconnected systems (:class:`~repro.runtime.stats.RuntimeStats`,
:class:`~repro.stats.counters.PageAccessCounter`,
:class:`~repro.serve.stats.ServeStats`).  This package unifies them:

- :mod:`repro.obs.trace` — a low-overhead :class:`Tracer` producing
  nested span trees for individual queries, sampled via
  ``REPRO_TRACE_SAMPLE`` and free (a few attribute lookups) when off.
  Worker-side spans ship back over the pool pipe protocol and the fork
  executor's result tuples and graft into the parent trace.
- :mod:`repro.obs.metrics` — :class:`MetricsRegistry`, one labelled
  hierarchical snapshot over every counter the runtime, index and
  serve layers tick, exportable as JSON and Prometheus text format.
- :mod:`repro.obs.slowlog` — a ring buffer capturing the full span
  tree of queries slower than ``REPRO_SLOW_QUERY_MS``.
- :mod:`repro.obs.timing` / :mod:`repro.obs.experiment` — the bench
  harness helpers (previously ``repro.stats.timing`` /
  ``repro.stats.experiment``; the old paths are deprecated shims).
"""

from repro.obs.experiment import ExperimentSeries, format_table
from repro.obs.metrics import MetricsRegistry
from repro.obs.slowlog import SLOW_LOG, SlowQueryLog
from repro.obs.timing import Timer
from repro.obs.trace import TRACER, Span, Tracer

__all__ = [
    "ExperimentSeries",
    "MetricsRegistry",
    "SLOW_LOG",
    "SlowQueryLog",
    "Span",
    "TRACER",
    "Timer",
    "Tracer",
    "format_table",
]
