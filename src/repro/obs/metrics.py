"""One labelled metrics registry over every counter the system ticks.

The runtime (:class:`~repro.runtime.stats.RuntimeStats`), the index
layer (per-tree :class:`~repro.stats.counters.PageAccessCounter`) and
the serving tier (:class:`~repro.serve.stats.ServeStats` with its
latency histograms) each grew their own snapshot dialect.
:class:`MetricsRegistry` registers them all as *sources* and renders
one hierarchical snapshot — exportable as JSON (the schema
``benchmarks/run_all.py --json`` embeds) or Prometheus text exposition
format (``repro-obs export --format prometheus``).

A source is ``(group, provider, label)``: ``provider()`` returns a
flat mapping of metric name to value, or — when ``label`` names a
label key — a mapping of label value to such a flat mapping (one
family per tree, per request kind...).  Providers are called at
snapshot time, so the registry is always live and registration is
free.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Mapping

__all__ = ["MetricsRegistry"]

Provider = Callable[[], Mapping[str, Any]]


def _prom_name(raw: str) -> str:
    """Sanitise a metric-name fragment for Prometheus."""
    out = []
    for ch in raw:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    name = "".join(out)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _prom_label_value(raw: str) -> str:
    return raw.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class MetricsRegistry:
    """A live registry of counter sources with JSON/Prometheus export."""

    def __init__(self) -> None:
        self._sources: list[tuple[str, Provider, str | None]] = []

    def register(
        self, group: str, provider: Provider, *, label: str | None = None
    ) -> None:
        """Add one source under ``group``.

        With ``label=None`` the provider returns ``{metric: value}``;
        with ``label="tree"`` (say) it returns
        ``{tree_name: {metric: value}}`` and the first nesting level
        becomes a Prometheus label instead of part of the metric name.
        """
        self._sources.append((group, provider, label))

    @property
    def groups(self) -> list[str]:
        """Registered group names, in registration order, deduplicated."""
        seen: list[str] = []
        for group, __, __label in self._sources:
            if group not in seen:
                seen.append(group)
        return seen

    # ------------------------------------------------------------ snapshot

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Every source's current values as one hierarchical dict."""
        doc: dict[str, dict[str, Any]] = {}
        for group, provider, __ in self._sources:
            data = provider()
            if data is None:
                continue
            doc.setdefault(group, {}).update(data)
        return doc

    def to_json(self, indent: int | None = 2) -> str:
        """The snapshot as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    # ---------------------------------------------------------- prometheus

    def to_prometheus(self, prefix: str = "repro") -> str:
        """The snapshot in Prometheus text exposition format.

        All metrics are exposed as gauges (the counters are externally
        resettable via ``reset_stats``, so ``counter`` semantics would
        lie); string values become ``*_info`` gauges carrying the
        string as a label.
        """
        samples: dict[str, list[tuple[dict[str, str], float]]] = {}
        for group, provider, label in self._sources:
            data = provider()
            if not data:
                continue
            base = f"{_prom_name(prefix)}_{_prom_name(group)}"
            if label is None:
                self._collect(samples, base, {}, data)
            else:
                for label_value, sub in data.items():
                    self._collect(
                        samples,
                        base,
                        {label: str(label_value)},
                        sub if isinstance(sub, Mapping) else {"value": sub},
                    )
        lines: list[str] = []
        for name in sorted(samples):
            lines.append(f"# TYPE {name} gauge")
            for labels, value in samples[name]:
                if labels:
                    inner = ",".join(
                        f'{_prom_name(k)}="{_prom_label_value(v)}"'
                        for k, v in sorted(labels.items())
                    )
                    lines.append(f"{name}{{{inner}}} {value:g}")
                else:
                    lines.append(f"{name} {value:g}")
        return "\n".join(lines) + "\n" if lines else ""

    @staticmethod
    def _collect(
        samples: dict[str, list[tuple[dict[str, str], float]]],
        base: str,
        labels: dict[str, str],
        data: Mapping[str, Any],
    ) -> None:
        for key, value in data.items():
            name = f"{base}_{_prom_name(key)}"
            if isinstance(value, bool):
                samples.setdefault(name, []).append((labels, 1.0 if value else 0.0))
            elif isinstance(value, (int, float)):
                samples.setdefault(name, []).append((labels, float(value)))
            elif isinstance(value, str):
                info_labels = dict(labels)
                info_labels[_prom_name(key)] = value
                samples.setdefault(f"{name}_info", []).append((info_labels, 1.0))
            elif isinstance(value, Mapping):
                MetricsRegistry._collect(samples, name, labels, value)
            # other types (lists...) are JSON-only and skipped here

    # -------------------------------------------------------- constructors

    @classmethod
    def for_database(cls, db: Any) -> "MetricsRegistry":
        """A registry over one :class:`~repro.core.engine.ObstacleDatabase`.

        Groups: ``runtime`` (the shared :class:`RuntimeStats`) and
        ``pages`` (per-tree page counters, labelled by ``tree``), plus
        ``pool`` when a persistent serving pool is up and ``journal``
        when the database is durable (write-ahead journal attached).
        """
        registry = cls()
        registry.register("runtime", db.runtime_stats)
        registry.register("pages", db.stats, label="tree")

        def pool_state() -> dict[str, int]:
            pool = getattr(db, "_serving_pool", None)
            if pool is None or getattr(pool, "_shut", True):
                return {}
            return {"workers": pool.workers, "alive": 1}

        def journal_state() -> dict[str, int | float]:
            journal = getattr(db, "_journal", None)
            if journal is None:
                return {}
            stats = db.runtime_stats()
            appended = stats["journal_bytes"]
            # Physical durable bytes written per byte of journaled
            # mutation: 1.0 while appends only grow the log, rising
            # with every compaction's base-snapshot rewrite (the
            # log-structured GC cost).
            total = appended + stats["compaction_bytes"]
            return {
                "attached": 1,
                "size_bytes": journal.size,
                "records": journal.record_count,
                "journal_appends": stats["journal_appends"],
                "journal_bytes": appended,
                "compactions": stats["compactions"],
                "compaction_bytes": stats["compaction_bytes"],
                "write_amplification": (
                    total / appended if appended else 0.0
                ),
            }

        registry.register("pool", pool_state)
        registry.register("journal", journal_state)
        return registry

    @classmethod
    def for_server(cls, server: Any) -> "MetricsRegistry":
        """A registry over a :class:`~repro.serve.server.QueryServer`:
        the database's groups plus ``serve`` (front-end counters) and
        ``serve_latency`` (per-kind histograms, labelled by ``kind``)."""
        registry = cls.for_database(server.db)
        stats = server.stats

        def serve_counters() -> dict[str, int]:
            return {
                "requests": stats.requests,
                "completed": stats.completed,
                "failed": stats.failed,
                "batches": stats.batches,
                "coalesced": stats.coalesced,
                "in_flight": stats.in_flight,
                "in_flight_peak": stats.in_flight_peak,
            }

        def latency() -> dict[str, dict[str, float]]:
            return {
                kind: hist.snapshot()
                for kind, hist in stats.histograms.items()
            }

        registry.register("serve", serve_counters)
        registry.register("serve_latency", latency, label="kind")
        return registry
