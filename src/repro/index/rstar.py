"""A full R*-tree [BKSS90] over the simulated page store.

Implements the complete dynamic behaviour the paper's experimental
setup relies on:

* **ChooseSubtree** — minimum overlap enlargement when descending into
  the target level (with the R* top-32 candidate cut-off), minimum area
  enlargement above it;
* **Split** — axis chosen by minimum margin sum over all distributions,
  distribution chosen by minimum overlap (ties by area);
* **Forced reinsert** — 30 % of the farthest entries of the first
  overflowing node per level are re-inserted ("close reinsert" order);
* **Deletion** — condense-tree with orphan re-insertion and root
  shrinking.

Node capacity is derived from a simulated page layout; the paper's
configuration (4 KB pages, 204 entries) is the default:
``(4096 - 16) // 20 == 204``.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

from repro.errors import QueryError, SpatialIndexError
from repro.geometry.circle import Circle
from repro.geometry.rect import Rect
from repro.index.node import Entry, Node
from repro.index.pagestore import LRUBuffer, PageStore
from repro.obs.trace import TRACER
from repro.stats.counters import PageAccessCounter

#: Cap on candidates examined by the minimum-overlap ChooseSubtree rule,
#: as recommended by the R* paper for large fanouts.
_CHOOSE_SUBTREE_CANDIDATES = 32


class RStarTree:
    """An R*-tree with counted, buffered page accesses.

    Parameters
    ----------
    page_size, entry_size, header_size:
        The simulated page layout; node capacity is
        ``(page_size - header_size) // entry_size`` unless
        ``max_entries`` overrides it.
    min_fill:
        Minimum node fill as a fraction of capacity (R* uses 40 %).
    reinsert_fraction:
        Fraction of entries evicted by forced reinsert (R* uses 30 %).
    buffer_fraction:
        LRU buffer size as a fraction of the tree's pages (paper: 10 %).
    name:
        Label used in statistics output.
    """

    def __init__(
        self,
        *,
        page_size: int = 4096,
        entry_size: int = 20,
        header_size: int = 16,
        max_entries: int | None = None,
        min_entries: int | None = None,
        min_fill: float = 0.4,
        reinsert_fraction: float = 0.3,
        buffer_fraction: float = 0.1,
        buffer_capacity: int | None = None,
        name: str = "rtree",
    ) -> None:
        if max_entries is None:
            max_entries = (page_size - header_size) // entry_size
        if max_entries < 4:
            raise SpatialIndexError(f"node capacity too small: {max_entries}")
        if min_entries is None:
            min_entries = max(2, int(max_entries * min_fill))
        if not 2 <= min_entries <= max_entries // 2:
            raise SpatialIndexError(
                f"min_entries must be in [2, M/2]; got m={min_entries}, M={max_entries}"
            )
        self.name = name
        self.max_entries = max_entries
        self.min_entries = min_entries
        self._reinsert_count = max(1, int(reinsert_fraction * (max_entries + 1)))
        self._store = PageStore()
        self.buffer = LRUBuffer(fraction=buffer_fraction, capacity=buffer_capacity)
        self.counter = PageAccessCounter()
        self._size = 0
        root = Node(self._store.allocate(), level=0)
        self._store.write(root)
        self._root_id = root.page_id

    # ------------------------------------------------------------------ basic
    @property
    def root_id(self) -> int:
        """Page id of the root node."""
        return self._root_id

    @property
    def size(self) -> int:
        """Number of data entries stored."""
        return self._size

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Number of levels (1 for a leaf-only tree)."""
        return self._store.read(self._root_id).level + 1

    @property
    def page_count(self) -> int:
        """Number of allocated pages."""
        return len(self._store)

    @property
    def next_page_id(self) -> int:
        """The page id the next allocation will hand out (persisted by
        snapshots so restored trees never reuse a retired id)."""
        return self._store.next_id

    def read_node(self, page_id: int) -> Node:
        """Fetch a node through the buffer, counting the access."""
        hit = self.buffer.access(page_id, len(self._store))
        self.counter.record_read(hit)
        TRACER.count("rtree.page_fetch")
        if not hit:
            TRACER.count("rtree.page_miss")
        return self._store.read(page_id)

    def reset_stats(self, *, clear_buffer: bool = False) -> None:
        """Zero the access counters; optionally cold-start the buffer."""
        self.counter.reset()
        if clear_buffer:
            self.buffer.clear()

    # ------------------------------------------------------------ persistence
    @property
    def reinsert_count(self) -> int:
        """Entries evicted per forced reinsert (derived from
        ``reinsert_fraction`` at construction; persisted by snapshots so
        a restored tree keeps the exact R* insert behaviour)."""
        return self._reinsert_count

    def pages(self) -> Iterator[Node]:
        """All allocated nodes in ascending page-id order, bypassing the
        buffer and counters (snapshot traffic is not simulated I/O)."""
        return self._store.nodes()

    def install_pages(
        self,
        nodes: Iterable[Node],
        *,
        root_id: int,
        next_id: int,
        size: int,
        reinsert_count: int | None = None,
    ) -> None:
        """Snapshot-restore hook: replace the tree's page file wholesale.

        ``nodes`` must describe a complete tree whose root lives at
        ``root_id``; ``size`` is the data-entry count and ``next_id``
        the next page id to allocate.  The buffer and counters are left
        untouched (restore them separately via
        :meth:`~repro.index.pagestore.LRUBuffer.load_pages` and the
        counter's public fields).  Page ids, levels and entry order are
        taken verbatim, so the restored tree is observationally
        identical to the one serialized — including the page-access
        sequence of any later query.
        """
        nodes = list(nodes)
        by_id = {node.page_id: node for node in nodes}
        if root_id not in by_id:
            raise SpatialIndexError(
                f"restored root page {root_id} is not among the pages"
            )
        self._store.restore(nodes, next_id)
        self._root_id = root_id
        self._size = size
        if reinsert_count is not None:
            if reinsert_count < 1:
                raise SpatialIndexError(
                    f"reinsert count must be >= 1, got {reinsert_count}"
                )
            self._reinsert_count = reinsert_count

    # ------------------------------------------------------------- maintenance
    def insert(self, data: Any, rect: Rect) -> None:
        """Insert a data payload with its MBR."""
        entry = Entry(rect, data=data)
        self._insert_entry(entry, 0, set())
        self._size += 1

    def delete(self, data: Any, rect: Rect) -> bool:
        """Remove one entry whose payload equals ``data`` and whose rect
        intersects ``rect``.  Returns ``True`` when an entry was removed."""
        path = self._find_leaf(self._root_id, data, rect, [])
        if path is None:
            return False
        leaf = path[-1]
        for i, e in enumerate(leaf.entries):
            if e.is_leaf_entry and e.data == data:
                del leaf.entries[i]
                break
        self._write_node(leaf)
        self._size -= 1
        self._condense(path)
        return True

    # ------------------------------------------------------------------ queries
    def search_rect(self, rect: Rect) -> list[Entry]:
        """All leaf entries whose MBR intersects ``rect``."""
        return list(self.iter_rect(rect))

    def iter_rect(self, rect: Rect) -> Iterator[Entry]:
        """Stream leaf entries whose MBR intersects ``rect``."""
        return self._iter_matching(lambda r: rect.intersects(r))

    def search_circle(self, circle: Circle) -> list[Entry]:
        """All leaf entries whose MBR intersects the disk.

        This is the *filter* step; non-rectangular payloads need
        refinement by the caller (paper Sec. 2.1).
        """
        if circle.radius < 0:
            raise QueryError("negative search radius")
        return list(self._iter_matching(circle.intersects_rect))

    def _iter_matching(self, predicate: Callable[[Rect], bool]) -> Iterator[Entry]:
        if self._size == 0:
            return
        stack = [self._root_id]
        while stack:
            node = self.read_node(stack.pop())
            for e in node.entries:
                if predicate(e.rect):
                    if node.is_leaf:
                        yield e
                    else:
                        stack.append(e.child)  # type: ignore[arg-type]

    def items(self) -> Iterator[tuple[Any, Rect]]:
        """All ``(data, rect)`` pairs, bypassing the buffer/counters."""
        stack = [self._root_id]
        while stack:
            node = self._store.read(stack.pop())
            for e in node.entries:
                if node.is_leaf:
                    yield e.data, e.rect
                else:
                    stack.append(e.child)  # type: ignore[arg-type]

    def mbr(self) -> Rect | None:
        """MBR of the whole dataset (``None`` when empty)."""
        if self._size == 0:
            return None
        return self._store.read(self._root_id).mbr()

    # -------------------------------------------------------------- invariants
    def check_invariants(self) -> None:
        """Raise :class:`SpatialIndexError` on any structural violation.

        Used heavily by the test suite after randomised workloads.
        """
        root = self._store.read(self._root_id)
        if not root.is_leaf and len(root.entries) < 2:
            raise SpatialIndexError("internal root must have >= 2 entries")
        count = self._check_subtree(self._root_id, root.level, is_root=True)
        if count != self._size:
            raise SpatialIndexError(
                f"size mismatch: counted {count}, recorded {self._size}"
            )

    def _check_subtree(self, page_id: int, expected_level: int, is_root: bool) -> int:
        node = self._store.read(page_id)
        if node.level != expected_level:
            raise SpatialIndexError(
                f"node {page_id}: level {node.level}, expected {expected_level}"
            )
        if not is_root and not (
            self.min_entries <= len(node.entries) <= self.max_entries
        ):
            raise SpatialIndexError(
                f"node {page_id}: fanout {len(node.entries)} out of "
                f"[{self.min_entries}, {self.max_entries}]"
            )
        if is_root and len(node.entries) > self.max_entries:
            raise SpatialIndexError(f"root overflow: {len(node.entries)}")
        if node.is_leaf:
            return len(node.entries)
        total = 0
        for e in node.entries:
            child = self._store.read(e.child)  # type: ignore[arg-type]
            if e.rect != child.mbr():
                raise SpatialIndexError(
                    f"node {page_id}: stale MBR for child {e.child}"
                )
            total += self._check_subtree(e.child, node.level - 1, False)  # type: ignore[arg-type]
        return total

    # ----------------------------------------------------------------- internal
    def _write_node(self, node: Node) -> None:
        self._store.write(node)
        self.counter.record_write()

    def _insert_entry(
        self, entry: Entry, target_level: int, reinserted_levels: set[int]
    ) -> None:
        path = self._choose_path(entry.rect, target_level)
        node = path[-1]
        node.entries.append(entry)
        self._write_node(node)
        self._handle_overflow_chain(path, reinserted_levels)

    def _choose_path(self, rect: Rect, target_level: int) -> list[Node]:
        """Descend from the root to a node at ``target_level``."""
        node = self._store.read(self._root_id)
        path = [node]
        while node.level > target_level:
            entry = self._choose_subtree(node, rect, target_level)
            node = self._store.read(entry.child)  # type: ignore[arg-type]
            path.append(node)
        return path

    def _choose_subtree(self, node: Node, rect: Rect, target_level: int) -> Entry:
        entries = node.entries
        if node.level == target_level + 1:
            # Descending into the target level: minimum overlap enlargement,
            # restricted to the best candidates by area enlargement.
            candidates = entries
            if len(entries) > _CHOOSE_SUBTREE_CANDIDATES:
                candidates = sorted(entries, key=lambda e: e.rect.enlargement(rect))[
                    :_CHOOSE_SUBTREE_CANDIDATES
                ]
            best = None
            best_key: tuple[float, float, float] | None = None
            for e in candidates:
                enlarged = e.rect.union(rect)
                overlap_delta = 0.0
                for other in entries:
                    if other is e:
                        continue
                    overlap_delta += enlarged.intersection_area(
                        other.rect
                    ) - e.rect.intersection_area(other.rect)
                key = (overlap_delta, e.rect.enlargement(rect), e.rect.area())
                if best_key is None or key < best_key:
                    best_key = key
                    best = e
            assert best is not None
            return best
        best = min(
            entries, key=lambda e: (e.rect.enlargement(rect), e.rect.area())
        )
        return best

    def _handle_overflow_chain(
        self, path: list[Node], reinserted_levels: set[int]
    ) -> None:
        depth = len(path) - 1
        while depth >= 0:
            node = path[depth]
            if len(node.entries) <= self.max_entries:
                self._refresh_parent_mbrs(path, depth)
                return
            is_root = node.page_id == self._root_id
            if not is_root and node.level not in reinserted_levels:
                reinserted_levels.add(node.level)
                removed = self._pick_reinsert_entries(node)
                self._write_node(node)
                self._refresh_parent_mbrs(path, depth)
                for e in removed:
                    self._insert_entry(e, node.level, reinserted_levels)
                return
            sibling = self._split_node(node)
            if is_root:
                self._grow_root(node, sibling)
                return
            parent = path[depth - 1]
            for pe in parent.entries:
                if pe.child == node.page_id:
                    pe.rect = node.mbr()
                    break
            parent.entries.append(Entry(sibling.mbr(), child=sibling.page_id))
            self._write_node(parent)
            depth -= 1

    def _refresh_parent_mbrs(self, path: list[Node], from_depth: int) -> None:
        """Tighten parent entry MBRs from ``from_depth`` up to the root."""
        for depth in range(from_depth, 0, -1):
            node = path[depth]
            parent = path[depth - 1]
            for pe in parent.entries:
                if pe.child == node.page_id:
                    new_mbr = node.mbr()
                    if pe.rect != new_mbr:
                        pe.rect = new_mbr
                        self._write_node(parent)
                    break

    def _pick_reinsert_entries(self, node: Node) -> list[Entry]:
        """Remove the farthest-from-center entries (forced reinsert)."""
        center = node.mbr().center()
        ranked = sorted(
            node.entries,
            key=lambda e: e.rect.center().distance_sq(center),
            reverse=True,
        )
        removed = ranked[: self._reinsert_count]
        keep = ranked[self._reinsert_count :]
        node.entries = keep
        # "Close reinsert": put back the closest of the removed ones first.
        removed.reverse()
        return removed

    def _split_node(self, node: Node) -> Node:
        """R* topological split; returns the freshly written sibling."""
        group_a, group_b = _rstar_split(
            node.entries, self.min_entries
        )
        node.entries = group_a
        self._write_node(node)
        sibling = Node(self._store.allocate(), node.level, group_b)
        self._write_node(sibling)
        return sibling

    def _grow_root(self, old_root: Node, sibling: Node) -> None:
        new_root = Node(self._store.allocate(), old_root.level + 1)
        new_root.entries = [
            Entry(old_root.mbr(), child=old_root.page_id),
            Entry(sibling.mbr(), child=sibling.page_id),
        ]
        self._store.write(new_root)
        self.counter.record_write()
        self._root_id = new_root.page_id

    # ---------------------------------------------------------------- deletion
    def _find_leaf(
        self, page_id: int, data: Any, rect: Rect, path: list[Node]
    ) -> list[Node] | None:
        node = self._store.read(page_id)
        path.append(node)
        if node.is_leaf:
            for e in node.entries:
                if e.data == data:
                    return path
        else:
            for e in node.entries:
                if e.rect.intersects(rect):
                    found = self._find_leaf(e.child, data, rect, path)  # type: ignore[arg-type]
                    if found is not None:
                        return found
        path.pop()
        return None

    def _condense(self, path: list[Node]) -> None:
        orphans: list[tuple[Entry, int]] = []
        for depth in range(len(path) - 1, 0, -1):
            node = path[depth]
            parent = path[depth - 1]
            if len(node.entries) < self.min_entries:
                parent.entries = [
                    e for e in parent.entries if e.child != node.page_id
                ]
                self._write_node(parent)
                orphans.extend((e, node.level) for e in node.entries)
                self.buffer.invalidate(node.page_id)
                self._store.free(node.page_id)
            else:
                for pe in parent.entries:
                    if pe.child == node.page_id:
                        pe.rect = node.mbr()
                        break
                self._write_node(parent)
        for entry, level in orphans:
            if entry.is_leaf_entry:
                self._insert_entry(entry, 0, set())
            else:
                self._insert_entry(entry, level, set())
        self._shrink_root()

    def _shrink_root(self) -> None:
        root = self._store.read(self._root_id)
        while not root.is_leaf and len(root.entries) == 1:
            child_id = root.entries[0].child
            self.buffer.invalidate(root.page_id)
            self._store.free(root.page_id)
            self._root_id = child_id  # type: ignore[assignment]
            root = self._store.read(self._root_id)


def _rstar_split(entries: list[Entry], m: int) -> tuple[list[Entry], list[Entry]]:
    """The R* split: choose axis by margin sum, distribution by overlap."""
    n = len(entries)
    best_axis_sorts: list[list[Entry]] | None = None
    best_margin = float("inf")
    for axis in ("x", "y"):
        if axis == "x":
            by_lower = sorted(entries, key=lambda e: (e.rect.minx, e.rect.maxx))
            by_upper = sorted(entries, key=lambda e: (e.rect.maxx, e.rect.minx))
        else:
            by_lower = sorted(entries, key=lambda e: (e.rect.miny, e.rect.maxy))
            by_upper = sorted(entries, key=lambda e: (e.rect.maxy, e.rect.miny))
        margin_sum = 0.0
        for ordering in (by_lower, by_upper):
            prefixes, suffixes = _prefix_suffix_mbrs(ordering)
            for k in range(m, n - m + 1):
                margin_sum += prefixes[k - 1].margin() + suffixes[k].margin()
        if margin_sum < best_margin:
            best_margin = margin_sum
            best_axis_sorts = [by_lower, by_upper]
    assert best_axis_sorts is not None
    best_split: tuple[list[Entry], list[Entry]] | None = None
    best_key: tuple[float, float] | None = None
    for ordering in best_axis_sorts:
        prefixes, suffixes = _prefix_suffix_mbrs(ordering)
        for k in range(m, n - m + 1):
            mbr_a = prefixes[k - 1]
            mbr_b = suffixes[k]
            key = (mbr_a.intersection_area(mbr_b), mbr_a.area() + mbr_b.area())
            if best_key is None or key < best_key:
                best_key = key
                best_split = (ordering[:k], ordering[k:])
    assert best_split is not None
    return best_split


def _prefix_suffix_mbrs(ordering: list[Entry]) -> tuple[list[Rect], list[Rect]]:
    """Prefix MBRs (index i covers entries [0..i]) and suffix MBRs
    (index i covers entries [i..n-1])."""
    n = len(ordering)
    prefixes: list[Rect] = [ordering[0].rect]
    for i in range(1, n):
        prefixes.append(prefixes[-1].union(ordering[i].rect))
    suffixes: list[Rect] = [None] * n  # type: ignore[list-item]
    suffixes[n - 1] = ordering[n - 1].rect
    for i in range(n - 2, -1, -1):
        suffixes[i] = suffixes[i + 1].union(ordering[i].rect)
    return prefixes, suffixes
