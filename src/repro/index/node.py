"""R-tree node and entry records."""

from __future__ import annotations

from typing import Any

from repro.errors import SpatialIndexError
from repro.geometry.rect import Rect


class Entry:
    """One slot of an R-tree node.

    Internal-node entries carry ``child`` (a page id) and the MBR of the
    child's subtree.  Leaf entries carry ``data`` (an arbitrary payload,
    e.g. a :class:`~repro.geometry.point.Point` or an obstacle record)
    and its MBR.
    """

    __slots__ = ("rect", "child", "data")

    def __init__(
        self, rect: Rect, child: int | None = None, data: Any = None
    ) -> None:
        if (child is None) == (data is None):
            raise SpatialIndexError("entry must have exactly one of child/data")
        self.rect = rect
        self.child = child
        self.data = data

    @property
    def is_leaf_entry(self) -> bool:
        """True for data-carrying entries."""
        return self.child is None

    def __repr__(self) -> str:
        if self.is_leaf_entry:
            return f"Entry(data={self.data!r}, rect={self.rect!r})"
        return f"Entry(child={self.child}, rect={self.rect!r})"


class Node:
    """An R-tree page: a level tag plus up to ``M`` entries.

    ``level`` is 0 for leaves and grows toward the root; this matches
    the R*-tree forced-reinsert bookkeeping, which is per level.
    """

    __slots__ = ("page_id", "level", "entries")

    def __init__(self, page_id: int, level: int, entries: list[Entry] | None = None):
        self.page_id = page_id
        self.level = level
        self.entries: list[Entry] = entries if entries is not None else []

    @property
    def is_leaf(self) -> bool:
        """True when this node stores data entries."""
        return self.level == 0

    def mbr(self) -> Rect:
        """The MBR of all entries (the rect this node's parent stores)."""
        if not self.entries:
            raise SpatialIndexError(f"node {self.page_id} has no entries")
        return Rect.union_all(e.rect for e in self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else f"level-{self.level}"
        return f"Node(page={self.page_id}, {kind}, {len(self.entries)} entries)"
