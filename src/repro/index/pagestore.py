"""Simulated page storage with a counting LRU buffer.

Physical I/O does not exist in this reproduction — what the paper
measures is the *number of page accesses* that survive an LRU buffer
sized at 10 % of each R-tree.  That number is a deterministic function
of the access sequence, so we reproduce it exactly: every node fetch
goes through :class:`LRUBuffer`, and misses are tallied by the tree's
:class:`repro.stats.PageAccessCounter`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.errors import SpatialIndexError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.index.node import Node


class LRUBuffer:
    """A least-recently-used page buffer that only tracks page ids.

    ``capacity`` may be a fixed page count or ``None``, in which case it
    is derived on demand as ``max(1, fraction * store_pages)`` — the
    paper's "10 % of each R-tree" policy, kept current as trees grow.
    """

    __slots__ = ("_fraction", "_fixed_capacity", "_pages")

    def __init__(self, fraction: float = 0.1, capacity: int | None = None) -> None:
        if capacity is not None and capacity < 1:
            raise SpatialIndexError(f"buffer capacity must be >= 1, got {capacity}")
        if not 0.0 < fraction <= 1.0:
            raise SpatialIndexError(f"buffer fraction must be in (0, 1], got {fraction}")
        self._fraction = fraction
        self._fixed_capacity = capacity
        self._pages: OrderedDict[int, None] = OrderedDict()

    @property
    def fraction(self) -> float:
        """The fraction of the store's pages the buffer may hold (used
        whenever no fixed capacity is pinned)."""
        return self._fraction

    @property
    def fixed_capacity(self) -> int | None:
        """The pinned page capacity, or ``None`` in fraction mode."""
        return self._fixed_capacity

    def capacity_for(self, store_pages: int) -> int:
        """Effective capacity given the current store size."""
        if self._fixed_capacity is not None:
            return self._fixed_capacity
        return max(1, int(self._fraction * store_pages))

    def set_capacity(self, capacity: int | None) -> None:
        """Pin the capacity to a page count (``None`` restores fraction mode)."""
        if capacity is not None and capacity < 1:
            raise SpatialIndexError(f"buffer capacity must be >= 1, got {capacity}")
        self._fixed_capacity = capacity
        self._evict_to(self.capacity_for(len(self._pages)))

    def access(self, page_id: int, store_pages: int) -> bool:
        """Touch a page; returns ``True`` on a buffer hit.

        Sequentially deterministic; also safe under the thread-mode
        batch executor, where several workers share one tree's buffer:
        a page observed present can be evicted by another worker before
        the LRU touch lands, which is absorbed as a miss-equivalent
        re-admit instead of a ``KeyError`` (counters may then be
        slightly off — parallel runs trade counter fidelity for
        wall-clock, as documented in :mod:`repro.runtime.executor`).
        """
        if page_id in self._pages:
            try:
                self._pages.move_to_end(page_id)
                return True
            except KeyError:  # concurrently evicted mid-access
                pass
        self._pages[page_id] = None
        self._evict_to(self.capacity_for(store_pages))
        return False

    def invalidate(self, page_id: int) -> None:
        """Drop a page from the buffer (on page deallocation)."""
        self._pages.pop(page_id, None)

    def page_ids(self) -> list[int]:
        """Resident page ids in LRU order (least recently used first).

        Together with :meth:`load_pages` this makes the buffer state
        serializable: a snapshot that restores the page-id order
        reproduces the exact hit/miss sequence the live buffer would
        have produced.
        """
        return list(self._pages)

    def load_pages(self, page_ids: Iterable[int]) -> None:
        """Snapshot-restore hook: set the resident set wholesale.

        ``page_ids`` must be in LRU order (as returned by
        :meth:`page_ids`); the previous buffer content is discarded.
        """
        self._pages = OrderedDict((pid, None) for pid in page_ids)

    def clear(self) -> None:
        """Empty the buffer (cold-start a workload)."""
        self._pages.clear()

    def _evict_to(self, capacity: int) -> None:
        while len(self._pages) > capacity:
            try:
                self._pages.popitem(last=False)
            except KeyError:  # concurrently drained by another worker
                break

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._pages


class PageStore:
    """An in-memory page-id -> node map standing in for a disk file."""

    __slots__ = ("_pages", "_next_id")

    def __init__(self) -> None:
        self._pages: dict[int, "Node"] = {}
        self._next_id = 0

    def allocate(self) -> int:
        """Reserve and return a fresh page id."""
        pid = self._next_id
        self._next_id += 1
        return pid

    def write(self, node: "Node") -> None:
        """Persist a node at its page id."""
        self._pages[node.page_id] = node

    def read(self, page_id: int) -> "Node":
        """Fetch the node stored at ``page_id``."""
        try:
            return self._pages[page_id]
        except KeyError:
            raise SpatialIndexError(f"page {page_id} does not exist") from None

    def free(self, page_id: int) -> None:
        """Deallocate a page."""
        self._pages.pop(page_id, None)

    @property
    def next_id(self) -> int:
        """The id the next :meth:`allocate` call will hand out."""
        return self._next_id

    def nodes(self) -> Iterator["Node"]:
        """All stored nodes in ascending page-id order, bypassing any
        buffer/counter accounting (serialization traffic is not
        simulated I/O)."""
        for page_id in sorted(self._pages):
            yield self._pages[page_id]

    def restore(self, nodes: Iterable["Node"], next_id: int) -> None:
        """Snapshot-restore hook: replace the page file wholesale.

        ``next_id`` must exceed every restored page id so later
        allocations never collide with restored pages.
        """
        pages = {node.page_id: node for node in nodes}
        if pages and next_id <= max(pages):
            raise SpatialIndexError(
                f"next page id {next_id} collides with restored page "
                f"{max(pages)}"
            )
        self._pages = pages
        self._next_id = next_id

    def __len__(self) -> int:
        return len(self._pages)

    def __iter__(self) -> Iterator[int]:
        return iter(self._pages)
