"""Sort-Tile-Recursive (STR) bulk loading.

Building a 100k-entry R*-tree by repeated insertion is needlessly slow
for benchmark setup.  STR packing produces a well-clustered tree in one
pass; a fill factor below 1.0 mimics the ~70 % average page utilisation
of dynamically built trees, so page counts (and therefore the paper's
buffer sizing and I/O numbers) stay comparable.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Sequence

from repro.errors import SpatialIndexError
from repro.geometry.rect import Rect
from repro.index.node import Entry, Node
from repro.index.rstar import RStarTree


def str_pack(
    tree: RStarTree,
    items: Iterable[tuple[Any, Rect]],
    fill: float = 0.7,
) -> RStarTree:
    """Bulk-load ``items`` (``(data, rect)`` pairs) into an empty tree.

    Returns the tree for chaining.  Raises if the tree is non-empty.
    """
    if len(tree) != 0:
        raise SpatialIndexError("str_pack requires an empty tree")
    if not 0.0 < fill <= 1.0:
        raise SpatialIndexError(f"fill factor must be in (0, 1], got {fill}")
    entries = [Entry(rect, data=data) for data, rect in items]
    if not entries:
        return tree
    capacity = max(tree.min_entries, int(tree.max_entries * fill))
    level = 0
    while True:
        nodes = _pack_level(tree, entries, level, capacity)
        if len(nodes) == 1:
            root = nodes[0]
            old_root = tree._store.read(tree._root_id)
            if old_root.page_id != root.page_id:
                tree.buffer.invalidate(old_root.page_id)
                tree._store.free(old_root.page_id)
            tree._root_id = root.page_id
            break
        entries = [Entry(n.mbr(), child=n.page_id) for n in nodes]
        level += 1
    tree._size = sum(1 for __ in tree.items())
    return tree


def _pack_level(
    tree: RStarTree, entries: Sequence[Entry], level: int, capacity: int
) -> list[Node]:
    """Tile one level: sort by x, slab, sort slabs by y, chunk into nodes."""
    n = len(entries)
    page_estimate = math.ceil(n / capacity)
    slab_count = max(1, math.ceil(math.sqrt(page_estimate)))
    slab_size = slab_count * capacity
    by_x = sorted(entries, key=lambda e: (e.rect.minx + e.rect.maxx))
    nodes: list[Node] = []
    for start in range(0, n, slab_size):
        slab = sorted(
            by_x[start : start + slab_size],
            key=lambda e: (e.rect.miny + e.rect.maxy),
        )
        for chunk_start in range(0, len(slab), capacity):
            chunk = slab[chunk_start : chunk_start + capacity]
            node = Node(tree._store.allocate(), level, list(chunk))
            tree._store.write(node)
            nodes.append(node)
    nodes = _fix_trailing_underflow(tree, nodes, capacity)
    return nodes


def _fix_trailing_underflow(
    tree: RStarTree, nodes: list[Node], capacity: int
) -> list[Node]:
    """Rebalance the final node of a level if it ended up under-full.

    STR can leave the last chunk with fewer than ``min_entries``
    entries; steal from its predecessor so R-tree invariants hold.
    """
    if len(nodes) < 2:
        return nodes
    last = nodes[-1]
    if len(last.entries) >= tree.min_entries:
        return nodes
    donor = nodes[-2]
    combined = donor.entries + last.entries
    if len(combined) <= tree.max_entries:
        # Merge the tail into the donor and drop the under-full page.
        donor.entries = combined
        tree._store.write(donor)
        tree._store.free(last.page_id)
        return nodes[:-1]
    half = len(combined) // 2
    half = max(tree.min_entries, min(half, len(combined) - tree.min_entries))
    donor.entries = combined[:half]
    last.entries = combined[half:]
    tree._store.write(donor)
    tree._store.write(last)
    return nodes
