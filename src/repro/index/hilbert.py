"""Hilbert space-filling-curve keys.

The ODJ algorithm (paper Sec. 5, Fig. 10) sorts the join "seeds" by
Hilbert order so that consecutive visibility-graph constructions touch
nearby obstacles, maximising buffer locality on the obstacle R-tree.
"""

from __future__ import annotations

from repro.errors import GeometryError
from repro.geometry.point import Point
from repro.geometry.rect import Rect

#: Default curve order: a 2^16 x 2^16 grid is far below float precision
#: for any realistic universe, so ties are negligible.
DEFAULT_ORDER = 16


def hilbert_index(x: int, y: int, order: int = DEFAULT_ORDER) -> int:
    """Map grid cell ``(x, y)`` to its distance along the Hilbert curve.

    ``x`` and ``y`` must lie in ``[0, 2**order)``.
    """
    side = 1 << order
    if not (0 <= x < side and 0 <= y < side):
        raise GeometryError(
            f"hilbert_index: ({x}, {y}) outside [0, {side}) grid"
        )
    d = 0
    s = side >> 1
    while s > 0:
        rx = 1 if (x & s) > 0 else 0
        ry = 1 if (y & s) > 0 else 0
        d += s * s * ((3 * rx) ^ ry)
        # Rotate the quadrant so the curve keeps its orientation.
        if ry == 0:
            if rx == 1:
                x = s - 1 - x
                y = s - 1 - y
            x, y = y, x
        s >>= 1
    return d


def order_for_cells(n_cells: int) -> int:
    """The smallest curve order whose ``2^order x 2^order`` grid has at
    least ``n_cells`` cells.

    Hilbert curves are defined on power-of-two grids, so a caller
    asking for "about ``n`` spatial partitions" (the sharded obstacle
    store) gets the tightest grid that can honour the request.
    """
    if n_cells < 1:
        raise GeometryError(f"order_for_cells: need >= 1 cell, got {n_cells}")
    order = 0
    while (1 << (2 * order)) < n_cells:
        order += 1
    return order


def hilbert_key(point: Point, universe: Rect, order: int = DEFAULT_ORDER) -> int:
    """Hilbert key of a point, discretised on a grid over ``universe``.

    Points outside the universe are clamped to its boundary.
    """
    side = 1 << order
    width = universe.width or 1.0
    height = universe.height or 1.0
    gx = int((point.x - universe.minx) / width * (side - 1))
    gy = int((point.y - universe.miny) / height * (side - 1))
    gx = max(0, min(side - 1, gx))
    gy = max(0, min(side - 1, gy))
    return hilbert_index(gx, gy, order)
