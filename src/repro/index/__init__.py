"""Disk-style R*-tree index substrate.

The paper assumes both entities and obstacles are indexed by R*-trees
[BKSS90] with 4 KB pages (204 entries per node) behind an LRU buffer
holding 10 % of each tree.  This subpackage reproduces that stack in
memory: an explicit page store, a counting LRU buffer, a full R*-tree
(ChooseSubtree, margin-driven split, forced reinsert, deletion) plus
STR bulk loading [see Leutenegger et al.] and Hilbert-curve keys used
by the ODJ seed ordering.
"""

from repro.index.pagestore import LRUBuffer, PageStore
from repro.index.node import Entry, Node
from repro.index.rstar import RStarTree
from repro.index.bulk import str_pack
from repro.index.hilbert import hilbert_index

__all__ = [
    "LRUBuffer",
    "PageStore",
    "Entry",
    "Node",
    "RStarTree",
    "str_pack",
    "hilbert_index",
]
