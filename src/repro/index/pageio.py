"""Node <-> page codec: R*-trees serialized page-per-record.

A tree is persisted exactly as the simulated disk file sees it: one
record per allocated page (page id, level, entries in slot order),
plus the structural metadata (root page, next free id, entry count),
the R* configuration (fanout bounds, forced-reinsert count), and the
live LRU-buffer state (resident page ids in recency order) with the
page-access counters.  Restoring replays none of the insert path — the
page image is installed wholesale — so the restored tree has the same
page ids, the same fanouts and the same buffer-miss behaviour on any
access sequence as the live tree it was taken from.

Leaf payloads are format-agnostic here: callers supply
``write_payload(writer, data)`` / ``read_payload(reader)`` codecs
(points for entity trees, obstacle-id references for obstacle trees),
keeping this module a pure index-layer concern.

Framing (endianness, checksums, error reporting) is inherited from
:mod:`repro.persist.codec`; this module only defines the record
layout.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.errors import DatasetError
from repro.geometry.rect import Rect
from repro.index.node import Entry, Node
from repro.index.rstar import RStarTree

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.persist.codec import BinaryReader, BinaryWriter

_LEAF = 1
_INTERNAL = 0


def write_tree(
    w: "BinaryWriter",
    tree: RStarTree,
    write_payload: Callable[["BinaryWriter", Any], None],
) -> None:
    """Serialize ``tree`` node-per-page through ``w``.

    ``write_payload`` encodes one leaf entry's ``data`` slot.
    """
    w.str_(tree.name)
    w.u32(tree.max_entries)
    w.u32(tree.min_entries)
    w.u32(tree.reinsert_count)
    w.f64(tree.buffer.fraction)
    fixed = tree.buffer.fixed_capacity
    w.i64(-1 if fixed is None else fixed)
    w.u64(tree.size)
    w.u64(tree.root_id)
    w.u64(tree.next_page_id)
    w.u64(tree.counter.reads)
    w.u64(tree.counter.misses)
    w.u64(tree.counter.writes)
    resident = tree.buffer.page_ids()
    w.u32(len(resident))
    for pid in resident:
        w.u64(pid)
    pages = list(tree.pages())
    w.u32(len(pages))
    for node in pages:
        w.u64(node.page_id)
        w.u32(node.level)
        w.u32(len(node.entries))
        for entry in node.entries:
            w.u8(_LEAF if entry.is_leaf_entry else _INTERNAL)
            rect = entry.rect
            w.f64(rect.minx)
            w.f64(rect.miny)
            w.f64(rect.maxx)
            w.f64(rect.maxy)
            if entry.is_leaf_entry:
                write_payload(w, entry.data)
            else:
                w.u64(entry.child)  # type: ignore[arg-type]


def _parse_tree(
    r: "BinaryReader",
    read_payload: Callable[["BinaryReader"], Any],
) -> dict[str, Any]:
    """Decode one tree record into its raw parts (single owner of the
    record layout — :func:`read_tree` builds a tree from the parts,
    :func:`read_tree_meta` keeps only the summary)."""
    parts: dict[str, Any] = {
        "name": r.str_(),
        "max_entries": r.u32(),
        "min_entries": r.u32(),
        "reinsert_count": r.u32(),
        "buffer_fraction": r.f64(),
        "fixed_capacity": r.i64(),
        "size": r.u64(),
        "root_id": r.u64(),
        "next_id": r.u64(),
        "reads": r.u64(),
        "misses": r.u64(),
        "writes": r.u64(),
    }
    parts["resident"] = [r.u64() for __ in range(r.u32())]
    nodes = []
    for __ in range(r.u32()):
        page_id = r.u64()
        level = r.u32()
        entries = []
        for __e in range(r.u32()):
            kind = r.u8()
            rect = Rect(r.f64(), r.f64(), r.f64(), r.f64())
            if kind == _LEAF:
                entries.append(Entry(rect, data=read_payload(r)))
            elif kind == _INTERNAL:
                entries.append(Entry(rect, child=r.u64()))
            else:
                raise DatasetError(
                    f"unknown entry kind {kind} at offset {r.offset} "
                    f"in tree {parts['name']!r}"
                )
        nodes.append(Node(page_id, level, entries))
    parts["nodes"] = nodes
    return parts


def read_tree(
    r: "BinaryReader",
    read_payload: Callable[["BinaryReader"], Any],
) -> RStarTree:
    """Decode one tree record written by :func:`write_tree`.

    The returned tree is observationally identical to the serialized
    one: page ids, node fanouts, buffer residency and access counters
    all round-trip.
    """
    parts = _parse_tree(r, read_payload)
    fixed = parts["fixed_capacity"]
    tree = RStarTree(
        max_entries=parts["max_entries"],
        min_entries=parts["min_entries"],
        buffer_fraction=parts["buffer_fraction"],
        buffer_capacity=None if fixed < 0 else fixed,
        name=parts["name"],
    )
    tree.install_pages(
        parts["nodes"],
        root_id=parts["root_id"],
        next_id=parts["next_id"],
        size=parts["size"],
        reinsert_count=parts["reinsert_count"],
    )
    tree.buffer.load_pages(parts["resident"])
    tree.counter.reads = parts["reads"]
    tree.counter.misses = parts["misses"]
    tree.counter.writes = parts["writes"]
    return tree


def read_tree_meta(
    r: "BinaryReader",
    read_payload: Callable[["BinaryReader"], Any],
) -> dict[str, int]:
    """Decode one tree record for its summary only (no tree built).

    ``read_payload`` may be a cheap skipper — the payloads are decoded
    and discarded.  Returns ``{"name", "size", "pages", "reads",
    "misses", "writes"}`` (the persisted page-access counters ride
    along); used by ``repro-snapshot info`` to walk a snapshot without
    assembling databases.
    """
    parts = _parse_tree(r, read_payload)
    return {
        "name": parts["name"],
        "size": parts["size"],
        "pages": len(parts["nodes"]),
        "reads": parts["reads"],
        "misses": parts["misses"],
        "writes": parts["writes"],
    }
