"""Synthetic workload generators.

`street_grid_obstacles` substitutes for the paper's LA street-MBR
dataset: thin, elongated, axis-aligned rectangles arranged on a
jittered street grid, with optional density hotspots so the spatial
distribution is non-uniform (like a real city).  Disjointness is
guaranteed by construction: street segments live strictly between grid
crossings, with margins wider than any street.

Entity and query-point samplers follow the obstacle distribution, as
the paper's experiments require: a random obstacle is chosen, then a
point on (or just off) its boundary; points never fall in any obstacle
interior.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import DatasetError
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect
from repro.model import Obstacle

#: Default data universe, matching the benchmarks' coordinate scale.
DEFAULT_UNIVERSE = Rect(0.0, 0.0, 10_000.0, 10_000.0)


def street_grid_obstacles(
    n: int,
    *,
    universe: Rect = DEFAULT_UNIVERSE,
    seed: int = 0,
    street_width: tuple[float, float] | None = None,
    hotspots: int = 3,
    hotspot_bias: float = 3.0,
) -> list[Obstacle]:
    """Generate ``n`` disjoint street-like rectangle obstacles.

    The universe is covered by a jittered grid; every cell contributes
    one horizontal and one vertical street-segment candidate, and ``n``
    candidates are kept with probability proportional to a hotspot
    density mixture (``hotspot_bias`` > 1 concentrates streets around
    ``hotspots`` random centers, mimicking a city core).
    """
    if n < 1:
        raise DatasetError(f"need n >= 1 obstacles, got {n}")
    rng = random.Random(seed)
    side_cells = max(2, math.ceil(math.sqrt(n / 2.0)) + 1)
    pitch_x = universe.width / side_cells
    pitch_y = universe.height / side_cells
    if street_width is None:
        w_min = 0.04 * min(pitch_x, pitch_y)
        w_max = 0.12 * min(pitch_x, pitch_y)
    else:
        w_min, w_max = street_width
    margin = w_max  # strictly wider than any half-street: disjointness
    xs = [universe.minx + i * pitch_x for i in range(side_cells + 1)]
    ys = [universe.miny + j * pitch_y for j in range(side_cells + 1)]

    centers = [
        Point(
            rng.uniform(universe.minx, universe.maxx),
            rng.uniform(universe.miny, universe.maxy),
        )
        for __ in range(max(0, hotspots))
    ]
    scale = 0.25 * math.hypot(universe.width, universe.height)

    def weight(px: float, py: float) -> float:
        if not centers:
            return 1.0
        best = min(math.hypot(px - c.x, py - c.y) for c in centers)
        return 1.0 + (hotspot_bias - 1.0) * math.exp(-((best / scale) ** 2))

    candidates: list[tuple[float, Rect]] = []
    for i in range(side_cells):
        for j in range(side_cells):
            x0, x1 = xs[i], xs[i + 1]
            y0, y1 = ys[j], ys[j + 1]
            w = rng.uniform(w_min, w_max)
            # Horizontal street along the cell's bottom line.
            hx0, hx1 = x0 + margin, x1 - margin
            if hx1 - hx0 > w:
                ly = y0 + rng.uniform(-0.2, 0.2) * w
                rect = Rect(hx0, ly, hx1 - rng.uniform(0, 0.3) * (hx1 - hx0), ly + w)
                rect = _clamp_into(rect, universe)
                candidates.append((weight(*rect.center().as_tuple()), rect))
            w = rng.uniform(w_min, w_max)
            # Vertical street along the cell's left line.
            vy0, vy1 = y0 + margin, y1 - margin
            if vy1 - vy0 > w:
                lx = x0 + rng.uniform(-0.2, 0.2) * w
                rect = Rect(lx, vy0, lx + w, vy1 - rng.uniform(0, 0.3) * (vy1 - vy0))
                rect = _clamp_into(rect, universe)
                candidates.append((weight(*rect.center().as_tuple()), rect))
    if len(candidates) < n:
        raise DatasetError(
            f"grid produced only {len(candidates)} candidate streets; "
            f"need {n} (universe too small for the requested density)"
        )
    # Weighted sample without replacement (exponential-sort trick).
    keyed = sorted(
        candidates, key=lambda wr: rng.expovariate(1.0) / wr[0]
    )
    chosen = [rect for __, rect in keyed[:n]]
    return [Obstacle(i, Polygon.from_rect(r)) for i, r in enumerate(chosen)]


def _clamp_into(rect: Rect, universe: Rect) -> Rect:
    """Shift a rect (unchanged size) so it lies inside the universe.

    Only jitter-sized displacements occur, which cannot re-introduce
    overlaps: streets are shifted back *toward* their grid line.
    """
    dx = dy = 0.0
    if rect.minx < universe.minx:
        dx = universe.minx - rect.minx
    elif rect.maxx > universe.maxx:
        dx = universe.maxx - rect.maxx
    if rect.miny < universe.miny:
        dy = universe.miny - rect.miny
    elif rect.maxy > universe.maxy:
        dy = universe.maxy - rect.maxy
    if dx == 0.0 and dy == 0.0:
        return rect
    return Rect(rect.minx + dx, rect.miny + dy, rect.maxx + dx, rect.maxy + dy)


def uniform_obstacles(
    n: int,
    *,
    universe: Rect = DEFAULT_UNIVERSE,
    seed: int = 0,
    size_range: tuple[float, float] | None = None,
    max_attempts_factor: int = 200,
) -> list[Obstacle]:
    """``n`` disjoint axis-aligned rectangles, uniformly placed.

    Uses rejection sampling with a coarse occupancy grid; raises
    :class:`DatasetError` if the requested density is unachievable.
    """
    if n < 1:
        raise DatasetError(f"need n >= 1 obstacles, got {n}")
    rng = random.Random(seed)
    if size_range is None:
        cell = math.sqrt(universe.area() / max(n, 1))
        size_range = (0.1 * cell, 0.5 * cell)
    lo, hi = size_range
    grid = _OccupancyGrid(universe, expected=n)
    rects: list[Rect] = []
    attempts = 0
    limit = max_attempts_factor * n
    gap = 0.05 * lo
    while len(rects) < n:
        attempts += 1
        if attempts > limit:
            raise DatasetError(
                f"placed only {len(rects)}/{n} disjoint rectangles after "
                f"{limit} attempts; lower the density"
            )
        w = rng.uniform(lo, hi)
        h = rng.uniform(lo, hi)
        x = rng.uniform(universe.minx, universe.maxx - w)
        y = rng.uniform(universe.miny, universe.maxy - h)
        rect = Rect(x, y, x + w, y + h)
        if not grid.intersects_any(rect.expanded(gap)):
            grid.add(rect)
            rects.append(rect)
    return [Obstacle(i, Polygon.from_rect(r)) for i, r in enumerate(rects)]


def clustered_obstacles(
    n: int,
    *,
    universe: Rect = DEFAULT_UNIVERSE,
    seed: int = 0,
    clusters: int = 5,
    spread: float = 0.08,
) -> list[Obstacle]:
    """``n`` disjoint rectangles around ``clusters`` Gaussian centers."""
    if n < 1:
        raise DatasetError(f"need n >= 1 obstacles, got {n}")
    if clusters < 1:
        raise DatasetError(f"need clusters >= 1, got {clusters}")
    rng = random.Random(seed)
    centers = [
        (
            rng.uniform(universe.minx, universe.maxx),
            rng.uniform(universe.miny, universe.maxy),
        )
        for __ in range(clusters)
    ]
    sigma_x = spread * universe.width
    sigma_y = spread * universe.height
    cell = math.sqrt(universe.area() / max(n, 1))
    lo, hi = 0.08 * cell, 0.35 * cell
    grid = _OccupancyGrid(universe, expected=n)
    rects: list[Rect] = []
    attempts = 0
    limit = 400 * n
    while len(rects) < n:
        attempts += 1
        if attempts > limit:
            raise DatasetError(
                f"placed only {len(rects)}/{n} clustered rectangles; "
                f"lower the density or spread"
            )
        cx, cy = centers[rng.randrange(clusters)]
        w = rng.uniform(lo, hi)
        h = rng.uniform(lo, hi)
        x = rng.gauss(cx, sigma_x) - w / 2.0
        y = rng.gauss(cy, sigma_y) - h / 2.0
        if x < universe.minx or y < universe.miny:
            continue
        if x + w > universe.maxx or y + h > universe.maxy:
            continue
        rect = Rect(x, y, x + w, y + h)
        if not grid.intersects_any(rect.expanded(0.05 * lo)):
            grid.add(rect)
            rects.append(rect)
    return [Obstacle(i, Polygon.from_rect(r)) for i, r in enumerate(rects)]


def entities_following_obstacles(
    n: int,
    obstacles: Sequence[Obstacle],
    *,
    seed: int = 0,
    on_boundary_fraction: float = 0.3,
    offset_fraction: float = 0.35,
) -> list[Point]:
    """``n`` entity points following the obstacle distribution.

    Each point is sampled on a random obstacle's boundary and, with
    probability ``1 - on_boundary_fraction``, pushed outward by up to
    ``offset_fraction`` of the obstacle's size.  Points inside any
    obstacle interior are rejected and re-drawn — matching the paper's
    setup where entities may lie on obstacle boundaries but never
    inside.
    """
    if n < 0:
        raise DatasetError(f"need n >= 0 entities, got {n}")
    if not obstacles:
        raise DatasetError("entity sampler needs at least one obstacle")
    rng = random.Random(seed)
    universe = Rect.union_all([o.mbr for o in obstacles]).expanded(1.0)
    grid = _OccupancyGrid(universe, expected=len(obstacles))
    for i, obs in enumerate(obstacles):
        grid.add(obs.mbr, payload=i)
    points: list[Point] = []
    while len(points) < n:
        obs = obstacles[rng.randrange(len(obstacles))]
        base = obs.polygon.boundary_point_at(rng.random())
        if rng.random() < on_boundary_fraction:
            candidate = base
        else:
            c = obs.polygon.centroid()
            dx, dy = base.x - c.x, base.y - c.y
            norm = math.hypot(dx, dy)
            if norm == 0.0:
                continue
            size = max(obs.mbr.width, obs.mbr.height)
            push = rng.uniform(0.0, offset_fraction) * size
            candidate = Point(base.x + dx / norm * push, base.y + dy / norm * push)
        if _inside_any(candidate, grid, obstacles):
            continue
        points.append(candidate)
    return points


def query_points(
    n: int,
    obstacles: Sequence[Obstacle],
    *,
    seed: int = 1,
) -> list[Point]:
    """``n`` query points following the obstacle distribution."""
    return entities_following_obstacles(
        n, obstacles, seed=seed, on_boundary_fraction=0.0, offset_fraction=0.5
    )


@dataclass
class Workload:
    """A complete experiment workload: obstacles, entity sets, queries."""

    obstacles: list[Obstacle]
    entity_sets: dict[str, list[Point]] = field(default_factory=dict)
    queries: list[Point] = field(default_factory=list)

    @property
    def universe(self) -> Rect:
        """MBR of the obstacle dataset."""
        return Rect.union_all([o.mbr for o in self.obstacles])


def make_workload(
    n_obstacles: int,
    entity_counts: dict[str, int],
    n_queries: int,
    *,
    seed: int = 0,
    universe: Rect = DEFAULT_UNIVERSE,
) -> Workload:
    """One-call workload builder used by the benchmarks.

    Obstacles use the street-grid generator; each entity set and the
    query workload follow the obstacle distribution with distinct
    per-set seeds derived from ``seed``.
    """
    obstacles = street_grid_obstacles(n_obstacles, universe=universe, seed=seed)
    entity_sets = {}
    for i, (name, count) in enumerate(sorted(entity_counts.items())):
        entity_sets[name] = entities_following_obstacles(
            count, obstacles, seed=seed * 1_000_003 + 17 * i + 1
        )
    queries = query_points(n_queries, obstacles, seed=seed * 999_983 + 7)
    return Workload(obstacles=obstacles, entity_sets=entity_sets, queries=queries)


def _inside_any(
    p: Point, grid: "_OccupancyGrid", obstacles: Sequence[Obstacle]
) -> bool:
    for idx in grid.candidates_at(p):
        if obstacles[idx].polygon.contains(p):
            return True
    return False


class _OccupancyGrid:
    """A coarse uniform grid over rectangle MBRs for overlap/containment
    rejection tests during generation."""

    def __init__(self, universe: Rect, expected: int) -> None:
        self._universe = universe
        side = max(1, int(math.sqrt(max(expected, 1))))
        self._nx = side
        self._ny = side
        self._cw = universe.width / side or 1.0
        self._ch = universe.height / side or 1.0
        self._cells: dict[tuple[int, int], list[tuple[Rect, int]]] = {}
        self._count = 0

    def _cell_span(self, rect: Rect) -> tuple[int, int, int, int]:
        i0 = int((rect.minx - self._universe.minx) / self._cw)
        i1 = int((rect.maxx - self._universe.minx) / self._cw)
        j0 = int((rect.miny - self._universe.miny) / self._ch)
        j1 = int((rect.maxy - self._universe.miny) / self._ch)
        clamp = lambda v, hi: max(0, min(hi - 1, v))  # noqa: E731
        return (
            clamp(i0, self._nx),
            clamp(i1, self._nx),
            clamp(j0, self._ny),
            clamp(j1, self._ny),
        )

    def add(self, rect: Rect, payload: int | None = None) -> None:
        tag = payload if payload is not None else self._count
        self._count += 1
        i0, i1, j0, j1 = self._cell_span(rect)
        for i in range(i0, i1 + 1):
            for j in range(j0, j1 + 1):
                self._cells.setdefault((i, j), []).append((rect, tag))

    def intersects_any(self, rect: Rect) -> bool:
        i0, i1, j0, j1 = self._cell_span(rect)
        for i in range(i0, i1 + 1):
            for j in range(j0, j1 + 1):
                for other, __ in self._cells.get((i, j), ()):
                    if rect.intersects(other):
                        return True
        return False

    def candidates_at(self, p: Point) -> list[int]:
        i0, i1, j0, j1 = self._cell_span(Rect.from_point(p))
        out = []
        for i in range(i0, i1 + 1):
            for j in range(j0, j1 + 1):
                for rect, tag in self._cells.get((i, j), ()):
                    if rect.contains_point(p):
                        out.append(tag)
        return out
