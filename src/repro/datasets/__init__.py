"""Workload generation and dataset I/O.

The paper's obstacle dataset (131,461 street MBRs of Los Angeles) is no
longer distributed; :func:`street_grid_obstacles` generates the closest
synthetic equivalent — disjoint, elongated, axis-aligned rectangles laid
out along a jittered street grid — and the entity/query samplers follow
the obstacle distribution exactly as the experimental setup describes
(entities may lie on obstacle boundaries, never in interiors).
"""

from repro.datasets.synthetic import (
    Workload,
    clustered_obstacles,
    entities_following_obstacles,
    make_workload,
    query_points,
    street_grid_obstacles,
    uniform_obstacles,
)
from repro.datasets.io import load_obstacles, load_points, save_obstacles, save_points

__all__ = [
    "Workload",
    "street_grid_obstacles",
    "uniform_obstacles",
    "clustered_obstacles",
    "entities_following_obstacles",
    "query_points",
    "make_workload",
    "save_obstacles",
    "load_obstacles",
    "save_points",
    "load_points",
]
