"""Plain-text dataset persistence.

Formats are deliberately simple and diff-friendly:

* points — one ``x y`` pair per line;
* obstacles — one polygon per line: ``oid x1 y1 x2 y2 ...``.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import DatasetError
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.model import Obstacle


def save_points(path: str | Path, points: Iterable[Point]) -> None:
    """Write points, one ``x y`` pair per line."""
    with open(path, "w", encoding="ascii") as fh:
        for p in points:
            fh.write(f"{p.x!r} {p.y!r}\n")


def load_points(path: str | Path) -> list[Point]:
    """Read points written by :func:`save_points`."""
    points = []
    with open(path, "r", encoding="ascii") as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 2:
                raise DatasetError(f"{path}:{line_no}: expected 'x y', got {line!r}")
            points.append(Point(float(parts[0]), float(parts[1])))
    return points


def content_hash(path: str | Path) -> str:
    """SHA-256 of a dataset file's bytes (lower-case hex).

    Snapshots (:mod:`repro.persist`) record dataset references by this
    hash — a reload verifies the *content*, so copying a file or
    touching its mtime never spoils a reference, while any edit does.
    """
    digest = hashlib.sha256()
    try:
        with open(path, "rb") as fh:
            for chunk in iter(lambda: fh.read(1 << 16), b""):
                digest.update(chunk)
    except OSError as exc:
        raise DatasetError(f"{path}: cannot hash dataset ({exc})") from None
    return digest.hexdigest()


def save_obstacles(path: str | Path, obstacles: Sequence[Obstacle]) -> None:
    """Write obstacles, one ``oid x1 y1 x2 y2 ...`` line per polygon."""
    with open(path, "w", encoding="ascii") as fh:
        for obs in obstacles:
            coords = " ".join(f"{v.x!r} {v.y!r}" for v in obs.polygon.vertices)
            fh.write(f"{obs.oid} {coords}\n")


def load_obstacles(path: str | Path) -> list[Obstacle]:
    """Read obstacles written by :func:`save_obstacles`."""
    obstacles = []
    with open(path, "r", encoding="ascii") as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 7 or len(parts) % 2 == 0:
                raise DatasetError(
                    f"{path}:{line_no}: expected 'oid x1 y1 x2 y2 x3 y3 ...'"
                )
            oid = int(parts[0])
            coords = [float(v) for v in parts[1:]]
            vertices = [
                Point(coords[i], coords[i + 1]) for i in range(0, len(coords), 2)
            ]
            obstacles.append(Obstacle(oid, Polygon(vertices)))
    return obstacles
