"""Metric-parameterized query skeletons.

Each function here is one of the paper's query shapes with the metric
abstracted behind :class:`~repro.runtime.metric.DistanceOracle`:

* :func:`metric_range` — Fig. 5 (OR) / trivial Euclidean range;
* :func:`metric_nearest`, :func:`iter_metric_nearest` — Fig. 9 (ONN)
  and the incremental variant;
* :func:`metric_distance_join` — Fig. 10 (ODJ) with seed reuse and
  Hilbert-ordered seeds;
* :func:`metric_closest_pairs`, :func:`iter_metric_closest_pairs` —
  Figs. 11-12 (OCP / iOCP);
* :func:`metric_semijoin` — the distance semi-join of Sec. 2.1.

Passing :class:`~repro.runtime.metric.EuclideanMetric` degenerates
every skeleton to its classical counterpart (the lower bound is tight,
so refinement terminates immediately); passing
:class:`~repro.runtime.metric.ObstructedMetric` yields the paper's
algorithms, with all graph work flowing through one shared
:class:`~repro.runtime.context.QueryContext`.

The structure of every skeleton is the paper's: an incremental
Euclidean stream supplies candidates in ascending lower-bound order, a
shrinking threshold (the current k-th metric distance) bounds how far
the stream must be drained, and losing candidates abort their exact
evaluation early via the ``bound`` parameter.
"""

from __future__ import annotations

from bisect import insort
from collections import defaultdict
from math import inf
from typing import Iterator

from repro.errors import QueryError
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.hilbert import hilbert_key
from repro.index.rstar import RStarTree
from repro.runtime.metric import DistanceOracle
from repro.runtime.skeletons import emit_in_metric_order

# The Euclidean candidate generators are imported lazily inside each
# skeleton: the euclidean iterators are themselves parameterizations of
# repro.runtime.skeletons, so a module-level import here would close an
# import cycle (euclidean -> runtime -> euclidean).


def metric_range(
    tree: RStarTree, metric: DistanceOracle, q: Point, e: float
) -> list[tuple[Point, float]]:
    """Entities within metric distance ``e`` of ``q`` (paper Fig. 5).

    The Euclidean filter produces the candidate superset; the metric's
    own refinement eliminates false hits.  Results are ``(entity, d)``
    pairs in ascending metric distance.
    """
    from repro.euclidean.range import entities_in_range

    if e < 0:
        raise QueryError(f"negative range: {e}")
    candidates = entities_in_range(tree, q, e)
    if not candidates:
        return []
    result = metric.range_refine(q, e, candidates)
    result.sort(key=lambda pair: pair[1])
    return result


def metric_nearest(
    tree: RStarTree,
    metric: DistanceOracle,
    q: Point,
    k: int,
    *,
    prune_bound: bool = True,
) -> list[tuple[Point, float]]:
    """The ``k`` entities with smallest metric distance from ``q``
    (paper Fig. 9).

    Returns ``(entity, d)`` pairs sorted by metric distance; fewer than
    ``k`` when the dataset is smaller.  Unreachable entities have
    distance ``inf`` and lose to any reachable one.
    ``prune_bound=False`` disables the early-exit optimisation (every
    candidate's distance is evaluated exactly, as in the paper's
    verbatim Fig. 9).
    """
    from repro.euclidean.nearest import IncrementalNearestNeighbors

    if k < 1:
        raise QueryError(f"k must be >= 1, got {k}")
    stream = IncrementalNearestNeighbors(tree, q)
    seeds: list[tuple[Point, float]] = []
    for p, d_e in stream:
        seeds.append((p, d_e))
        if len(seeds) == k:
            break
    if not seeds:
        return []
    # Initial field: the metric may pre-load state for the k-th
    # Euclidean radius (the obstructed metric builds its local graph
    # from the obstacles within it, paper Fig. 9).
    field = metric.field(q, radius=seeds[-1][1])
    result: list[tuple[float, Point]] = []
    # One batched evaluation for the whole seed set: the field
    # amortizes its revalidation and provisional Dijkstra across the
    # seeds (and the CSR engine vectorizes the last-leg minimisation).
    # Fields predating the batch protocol degrade to the scalar loop.
    seed_points = [p for p, __ in seeds]
    batch = getattr(field, "batch_eval", None)
    dists = (
        batch(seed_points)
        if batch is not None
        else [field.distance_to(p) for p in seed_points]
    )
    for p, d in zip(seed_points, dists):
        insort(result, (d, p))
    d_emax = result[k - 1][0] if len(result) >= k else inf
    for p, d_e in stream:
        if d_e > d_emax:
            break
        bound = d_emax if prune_bound else inf
        d = field.distance_to(p, bound=bound)
        if d < result[k - 1][0]:
            result.pop()
            insort(result, (d, p))
            d_emax = result[k - 1][0]
    return [(p, d) for d, p in result[:k]]


def iter_metric_nearest(
    tree: RStarTree, metric: DistanceOracle, q: Point
) -> Iterator[tuple[Point, float]]:
    """Incremental NN: ``(entity, d)`` in ascending metric distance,
    without a predefined ``k``.

    An entity whose metric distance is <= the lower bound of the most
    recently retrieved Euclidean neighbour can be emitted immediately:
    later neighbours have larger lower bounds — hence larger metric
    distances (the iOCP methodology of paper Sec. 6 applied to ONN).
    """
    from repro.euclidean.nearest import IncrementalNearestNeighbors

    stream = IncrementalNearestNeighbors(tree, q)
    field: list = []  # lazily bound on the first candidate

    def evaluate(p: Point, d_e: float) -> float:
        if not field:
            field.append(metric.field(q, radius=d_e))
        return field[0].distance_to(p)

    return emit_in_metric_order(stream, evaluate)


def metric_distance_join(
    tree_s: RStarTree,
    tree_t: RStarTree,
    metric: DistanceOracle,
    e: float,
    *,
    hilbert_order_seeds: bool = True,
    universe: Rect | None = None,
) -> list[tuple[Point, Point, float]]:
    """All pairs ``(s, t)`` with metric distance <= ``e`` (Fig. 10).

    An R-tree distance join produces the candidate pairs; the side
    with fewer distinct points provides "seeds", each refined with a
    single range refinement over its partners.  Seeds are processed in
    Hilbert order so consecutive obstacle retrievals touch nearby
    pages (``hilbert_order_seeds=False`` disables this, for the
    ablation benchmark).
    """
    from repro.euclidean.join import distance_join

    if e < 0:
        raise QueryError(f"negative join distance: {e}")
    candidate_pairs = distance_join(tree_s, tree_t, e)
    if not candidate_pairs:
        return []

    s_partners: dict[Point, list[Point]] = defaultdict(list)
    t_partners: dict[Point, list[Point]] = defaultdict(list)
    for s, t, __ in candidate_pairs:
        s_partners[s].append(t)
        t_partners[t].append(s)

    # Seed the side with fewer distinct points (paper's observation:
    # five pairs over two distinct s-values need only two graphs).
    seed_from_s = len(s_partners) <= len(t_partners)
    partners = s_partners if seed_from_s else t_partners
    seeds = list(partners)

    if hilbert_order_seeds:
        if universe is None:
            universe = Rect.from_points(seeds)
        seeds.sort(key=lambda p: hilbert_key(p, universe))

    result: list[tuple[Point, Point, float]] = []
    for seed in seeds:
        mates = partners[seed]
        for mate, d in metric.range_refine(seed, e, mates):
            if seed_from_s:
                result.append((seed, mate, d))
            else:
                result.append((mate, seed, d))
    return result


def metric_closest_pairs(
    tree_s: RStarTree,
    tree_t: RStarTree,
    metric: DistanceOracle,
    k: int,
) -> list[tuple[Point, Point, float]]:
    """The ``k`` pairs with smallest metric distance (Fig. 11).

    Returns ``(s, t, d)`` sorted by metric distance; fewer than ``k``
    when ``|S| * |T| < k``.  Exact evaluations are centred on the
    ``s`` side, so the metric's per-centre state (the obstructed
    metric's cached graphs) is reused across pairs sharing their
    first element.
    """
    from repro.euclidean.closest import IncrementalClosestPairs

    if k < 1:
        raise QueryError(f"k must be >= 1, got {k}")
    stream = IncrementalClosestPairs(tree_s, tree_t)
    result: list[tuple[float, Point, Point]] = []
    seeded = 0
    for s, t, __ in stream:
        d = metric.distance(t, s)
        insort(result, (d, s, t))
        seeded += 1
        if seeded == k:
            break
    if not result:
        return []
    d_emax = result[k - 1][0] if len(result) >= k else inf
    for s, t, d_e in stream:
        if d_e > d_emax:
            break
        d = metric.distance(t, s, bound=d_emax)
        if d < result[k - 1][0]:
            result.pop()
            insort(result, (d, s, t))
            d_emax = result[k - 1][0]
    return [(s, t, d) for d, s, t in result[:k]]


def iter_metric_closest_pairs(
    tree_s: RStarTree,
    tree_t: RStarTree,
    metric: DistanceOracle,
) -> Iterator[tuple[Point, Point, float]]:
    """Incremental closest pairs (paper Fig. 12): pairs in ascending
    metric distance, no ``k`` parameter — consume as many as needed.
    """
    from repro.euclidean.closest import IncrementalClosestPairs

    candidates = (
        ((s, t), d_e) for s, t, d_e in IncrementalClosestPairs(tree_s, tree_t)
    )
    evaluated = emit_in_metric_order(
        candidates, lambda pair, __: metric.distance(pair[1], pair[0])
    )
    return ((s, t, d) for (s, t), d in evaluated)


def metric_semijoin(
    tree_s: RStarTree,
    tree_t: RStarTree,
    metric: DistanceOracle,
    *,
    strategy: str = "cp",
) -> dict[Point, tuple[Point, float]]:
    """For each ``s`` in S, its metric nearest neighbour in T
    (Sec. 2.1's distance semi-join).

    ``strategy="nn"`` runs one NN query per ``s`` (all sharing the
    metric's context, so repeated source points hit the graph cache);
    ``strategy="cp"`` consumes the incremental closest-pair stream and
    keeps the first pair seen for each ``s``.
    """
    if strategy not in ("nn", "cp"):
        raise QueryError(f"unknown semijoin strategy {strategy!r}")
    if len(tree_s) == 0 or len(tree_t) == 0:
        return {}
    result: dict[Point, tuple[Point, float]] = {}
    if strategy == "nn":
        for s, __ in tree_s.items():
            if s in result:
                continue
            nn = metric_nearest(tree_t, metric, s, 1)
            if nn:
                result[s] = nn[0]
        return result
    remaining = {s for s, __ in tree_s.items()}
    for s, t, d in iter_metric_closest_pairs(tree_s, tree_t, metric):
        if s in remaining:
            remaining.discard(s)
            result[s] = (t, d)
            if not remaining:
                break
    return result
