"""Adaptive cache policy: learn the cache knobs from the query stream.

Every cache knob of the runtime — the spatial-key quantum
(``graph_cache_snap``), the LRU capacity, the per-cell guest admission
bound — is a constant that is only right for the workload it was tuned
on.  A commuter stream wants a snap quantum a few steps wide; a Zipf
hotspot wants cells the size of the whole hot disk; a uniform scatter
wants exact keys and a small cache.  This module makes the knobs
*observed* instead of guessed: an :class:`AdaptiveCachePolicy` watches
the live centre stream plus the cache's own hit/miss/repair counters
(the same :class:`~repro.runtime.stats.RuntimeStats` the metrics
registry exports) and periodically retunes the cache through
:meth:`~repro.runtime.cache.VisibilityGraphCache.configure`.

Correctness is not the policy's problem by construction: spatial-key
reuse is guarded by the coverage disk (see
:meth:`~repro.runtime.context.QueryContext.entry_for`), so any snap
quantum — including a terrible one — yields bit-identical answers.
The policy only moves *performance*: which centres share a graph, how
many graphs are retained, how many guests a hot graph admits.

The estimator is deliberately small (windowed order statistics and
EWMAs, no training loop):

* **Snap quantum** — the median nearest-neighbour displacement over
  the most recent slice of the sliding window, scaled by
  ``snap_factor``.  A stream with spatial locality (commuters,
  hotspots, crowds) has a small median displacement and gets cells
  several displacements wide; a stream without locality (uniform
  scatter) has displacements on the order of the observed spread and
  gets exact keys (snap ``0``).  Deciding from the recent slice, not
  the full window, is what makes regime changes (a flash crowd
  forming) take effect within a handful of lookups instead of a full
  window turnover.
* **Capacity** — twice the number of distinct snapped cells in the
  window, clamped to ``[base capacity, max_capacity]``: enough room
  that the working set never self-evicts, never less than the
  configured floor.
* **Guest bound** — per-cell EWMA of lookup share; a cell that
  concentrates the stream (a flash crowd) gets ``hot_guest_factor``
  times the default guest bound so the crowd's distinct positions stay
  resident in the shared graph.

Decisions are damped (a retune needs a >25 % relative change) so the
cache is not re-keyed on every estimator wobble, and every applied
change is booked in ``RuntimeStats``
(``policy_adjustments`` / ``policy_snap`` / ``policy_capacity``) and
traced (``policy.adjust`` spans) so a trace or metrics export shows
what the policy did and when.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from statistics import median
from typing import TYPE_CHECKING, Hashable

from repro.errors import DatasetError
from repro.obs.trace import TRACER

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.runtime.cache import CachedGraph, VisibilityGraphCache
    from repro.runtime.stats import RuntimeStats

#: Environment knob selecting the policy for every
#: :class:`~repro.core.engine.ObstacleDatabase` that is not given one
#: explicitly.
POLICY_ENV = "REPRO_CACHE_POLICY"


class CachePolicy:
    """The static (identity) policy: observe nothing, adjust nothing.

    This is the default and the historical behaviour — the cache keeps
    whatever ``snap`` / capacity it was constructed with, and every
    entry admits the default number of guests.  It also defines the
    interface the runtime calls:

    * :meth:`attach` — wires the policy to one context's cache + stats
      (called once from ``QueryContext.__init__``);
    * :meth:`observe` — one lookup centre, called on every
      ``entry_for`` before the cache is consulted;
    * :meth:`guest_limit` — the per-entry guest admission bound;
    * :meth:`spawn` — a fresh policy of the same kind for a worker
      context (workers adapt to *their* slice of the stream
      independently; no estimator state is shipped).
    """

    name = "static"

    def attach(
        self, cache: "VisibilityGraphCache", stats: "RuntimeStats"
    ) -> None:
        """Wire the policy to one context's cache and stats."""
        self.cache = cache
        self.stats = stats

    def observe(self, center) -> None:
        """Feed one lookup centre to the estimator (no-op here)."""

    def guest_limit(self, entry: "CachedGraph", default: int) -> int:
        """The guest admission bound for ``entry`` (the default here)."""
        return default

    def spawn(self) -> "CachePolicy":
        """A fresh, unattached policy of the same kind."""
        return type(self)()


class AdaptiveCachePolicy(CachePolicy):
    """Windowed-quantile/EWMA tuner for snap, capacity, and admission.

    Parameters
    ----------
    window:
        Sliding window length (recent lookup centres the estimator
        sees).
    adjust_every:
        Lookups between adjustment passes.
    snap_factor:
        Cell size as a multiple of the median nearest-neighbour
        displacement.
    locality_fraction:
        Minimum share of recent displacements that must fall inside a
        candidate cell for snapping to engage at all; below it the
        stream has no usable locality and exact keys win.
    max_capacity:
        Upper clamp for the learned LRU capacity.
    hot_guest_factor / hot_share:
        A cell whose EWMA share of lookups exceeds ``hot_share`` gets
        ``hot_guest_factor`` times the default guest bound.
    """

    name = "adaptive"

    def __init__(
        self,
        *,
        window: int = 48,
        adjust_every: int = 8,
        snap_factor: float = 12.0,
        locality_fraction: float = 0.6,
        max_capacity: int = 512,
        hot_guest_factor: int = 4,
        hot_share: float = 0.25,
    ) -> None:
        if window < 2:
            raise DatasetError(f"policy window must be >= 2, got {window}")
        if adjust_every < 1:
            raise DatasetError(
                f"adjust_every must be >= 1, got {adjust_every}"
            )
        self.window = window
        self.adjust_every = adjust_every
        self.snap_factor = snap_factor
        self.locality_fraction = locality_fraction
        self.max_capacity = max_capacity
        self.hot_guest_factor = hot_guest_factor
        self.hot_share = hot_share
        self._centers: list = []  # ring buffer of recent centres
        self._displacements: list[float] = []  # parallel ring buffer
        self._head = 0
        #: Long-run bounding box of every centre ever observed — the
        #: snap cap scales with the workload's full extent, not the
        #: current window's (a flash crowd collapses the window to the
        #: crowd's box; the cap must not collapse with it).
        self._bounds: list[float] | None = None  # [minx, miny, maxx, maxy]
        self._since_adjust = 0
        self._base_capacity: int | None = None
        #: cell key -> EWMA of that cell's share of recent lookups.
        self._cell_share: OrderedDict[Hashable, float] = OrderedDict()

    def spawn(self) -> "AdaptiveCachePolicy":
        """A parameter-identical policy with fresh estimator state."""
        return AdaptiveCachePolicy(
            window=self.window,
            adjust_every=self.adjust_every,
            snap_factor=self.snap_factor,
            locality_fraction=self.locality_fraction,
            max_capacity=self.max_capacity,
            hot_guest_factor=self.hot_guest_factor,
            hot_share=self.hot_share,
        )

    def attach(
        self, cache: "VisibilityGraphCache", stats: "RuntimeStats"
    ) -> None:
        """Wire up the cache and remember its configured capacity as
        the floor the learned capacity never drops below."""
        super().attach(cache, stats)
        self._base_capacity = cache.capacity

    # ------------------------------------------------------------ observation
    def observe(self, center) -> None:
        """One lookup centre: update the displacement window and the
        per-cell EWMA, and run an adjustment pass every
        ``adjust_every`` lookups."""
        # Nearest-neighbour displacement against the *current* window
        # (min over the window, not just the previous centre, so R
        # interleaved commuter clients still measure the per-client
        # step rather than the client-to-client hop).
        if self._centers:
            d = min(center.distance(c) for c in self._centers)
        else:
            d = 0.0
        if len(self._centers) < self.window:
            self._centers.append(center)
            self._displacements.append(d)
        else:
            self._centers[self._head] = center
            self._displacements[self._head] = d
            self._head = (self._head + 1) % self.window
        if self._bounds is None:
            self._bounds = [center.x, center.y, center.x, center.y]
        else:
            b = self._bounds
            b[0] = min(b[0], center.x)
            b[1] = min(b[1], center.y)
            b[2] = max(b[2], center.x)
            b[3] = max(b[3], center.y)
        self._update_cell_share(center)
        self._since_adjust += 1
        if self._since_adjust >= self.adjust_every:
            self._since_adjust = 0
            self._adjust()

    def _update_cell_share(self, center) -> None:
        """EWMA per-cell lookup share under the *current* snap (exact
        keys degrade to per-centre shares, which never cross
        ``hot_share`` for a jittering stream — hot admission only
        matters once snapping has engaged)."""
        alpha = 2.0 / (self.window + 1)
        key = self.cache.key_for(center)
        for k in list(self._cell_share):
            decayed = self._cell_share[k] * (1.0 - alpha)
            if decayed < alpha / 8:  # forget cold cells
                del self._cell_share[k]
            else:
                self._cell_share[k] = decayed
        self._cell_share[key] = self._cell_share.get(key, 0.0) + alpha

    # ------------------------------------------------------------- adjustment
    def _spread(self) -> float:
        if self._bounds is None:
            return 0.0
        minx, miny, maxx, maxy = self._bounds
        return max(maxx - minx, maxy - miny)

    def _recent_displacements(self, k: int) -> list[float]:
        """The last ``k`` displacements, most recent first."""
        n = len(self._displacements)
        if n < self.window:
            return self._displacements[-k:]
        return [
            self._displacements[(self._head - 1 - j) % self.window]
            for j in range(min(k, n))
        ]

    def _candidate_snap(self) -> float:
        """The snap quantum the recent stream argues for (0 = exact).

        Decisions use the most recent third of the window (at least 8
        samples): the displacement distribution is what changes when
        the workload changes regime, and waiting for the full window
        to turn over would cost a window's worth of exact-key misses
        on every transition.
        """
        recent = self._recent_displacements(max(8, self.window // 3))
        nonzero = [d for d in recent if d > 0.0]
        if len(nonzero) < 6:
            return self.cache.snap  # too little signal: hold
        spread = self._spread()
        if spread <= 0.0:
            return self.cache.snap
        candidate = self.snap_factor * median(nonzero)
        # Cells are never wider than a small fraction of the long-run
        # spread — beyond that, "sharing" means covering most of the
        # universe from one centre.  (A capped cell can still win:
        # the locality test below decides.)
        candidate = min(candidate, 0.05 * spread)
        inside = sum(1 for d in recent if d <= candidate)
        if inside < self.locality_fraction * len(recent):
            return 0.0  # no locality: exact keys
        return candidate

    def _candidate_capacity(self) -> int:
        base = self._base_capacity or self.cache.capacity
        snap = self.cache.snap
        if snap > 0:
            cells = {
                (round(c.x / snap), round(c.y / snap))
                for c in self._centers
            }
            distinct = len(cells)
        else:
            distinct = len(set(self._centers))
        return max(base, min(self.max_capacity, 2 * distinct))

    def _adjust(self) -> None:
        new_snap = self._candidate_snap()
        old_snap = self.cache.snap
        snap_arg = None
        if new_snap != old_snap:
            lo, hi = sorted((new_snap, old_snap))
            # Damping: re-keying the cache is not free, so a retune
            # needs either a zero/non-zero flip or a >25 % move.
            if lo == 0.0 or (hi - lo) / hi > 0.25:
                snap_arg = new_snap
        new_capacity = self._candidate_capacity()
        capacity_arg = (
            new_capacity if new_capacity != self.cache.capacity else None
        )
        if snap_arg is None and capacity_arg is None:
            return
        with TRACER.span(
            "policy.adjust",
            snap=snap_arg if snap_arg is not None else old_snap,
            capacity=(
                capacity_arg
                if capacity_arg is not None
                else self.cache.capacity
            ),
        ):
            self.cache.configure(snap=snap_arg, capacity=capacity_arg)
        self.stats.policy_adjustments += 1
        TRACER.count("policy.adjust")
        if snap_arg is not None:
            self.stats.policy_snap += 1
            self._cell_share.clear()  # shares were per old-snap cell
        if capacity_arg is not None:
            self.stats.policy_capacity += 1

    # -------------------------------------------------------------- admission
    def guest_limit(self, entry: "CachedGraph", default: int) -> int:
        """``hot_guest_factor`` times the default bound for entries in
        hot cells (EWMA share >= ``hot_share``), the default elsewhere."""
        key = self.cache.key_for(entry.center)
        if self._cell_share.get(key, 0.0) >= self.hot_share:
            return default * self.hot_guest_factor
        return default


_POLICIES = {
    "static": CachePolicy,
    "adaptive": AdaptiveCachePolicy,
}


def resolve_cache_policy(
    spec: "str | CachePolicy | None" = None,
) -> CachePolicy:
    """The policy instance ``spec`` names.

    ``None`` reads the ``REPRO_CACHE_POLICY`` environment variable
    (empty/unset = static); a string is looked up by name; a
    :class:`CachePolicy` instance passes through unchanged.  Unknown
    names raise :class:`~repro.errors.DatasetError` naming the valid
    choices — fail fast, not fall back.
    """
    if isinstance(spec, CachePolicy):
        return spec
    if spec is None:
        spec = os.environ.get(POLICY_ENV, "") or "static"
    try:
        factory = _POLICIES[spec]
    except KeyError:
        raise DatasetError(
            f"unknown cache policy {spec!r}: expected one of "
            f"{', '.join(sorted(_POLICIES))} (set {POLICY_ENV} or pass "
            f"cache_policy=)"
        ) from None
    return factory()
