"""The parallel batch execution engine.

A batch workload is a list of independent query points evaluated
against a frozen obstacle version — exactly the shape a worker pool
parallelizes: split the (deduplicated) query list into contiguous
chunks, give every worker a *private* :class:`~repro.runtime.context.
QueryContext` over the shared obstacle source (private graph cache,
private :class:`~repro.runtime.stats.RuntimeStats`), run the chunks
concurrently, and merge the worker stats into the parent context on
join.  Result order is preserved by reassembling chunks by offset.

Worker count
    ``workers`` argument, else the ``REPRO_BATCH_WORKERS`` environment
    variable, else 0.  Values of 0 or 1 mean sequential execution —
    the batch entry points in :mod:`repro.runtime.batch` keep their
    single-context fast path and never construct an executor pool.

Execution mode
    ``mode`` argument, else ``REPRO_BATCH_MODE``, else ``auto``:

    ``fork``
        One OS process per worker (``multiprocessing`` fork context).
        CPython's GIL serializes the pure-python sweep/Dijkstra work
        that dominates obstructed queries, so true wall-clock speedup
        needs processes.  The pool is forked per batch, so children
        see the parent's current trees copy-on-write and nothing needs
        pickling except the results and the per-worker stats
        snapshots.  Per-tree simulated page counters ticked inside the
        children are shipped back as name-keyed deltas alongside the
        runtime stats and added onto the parent's trees on join, so
        page-access benchmarks account fork-mode work exactly like
        sequential work.
    ``thread``
        A ``ThreadPoolExecutor``.  Shares all counters and buffers and
        has no fork cost, but only overlaps work while the GIL is
        released — useful mainly where fork is unavailable.
    ``auto``
        ``fork`` where the platform supports it, else ``thread``.

Pool kind
    Orthogonal to the mode: ``REPRO_BATCH_POOL`` (or the ``pool=``
    argument of the :class:`~repro.core.engine.ObstacleDatabase` batch
    methods) selects between ``fork`` — this module's fork/thread
    per-batch pool — and ``persistent``, the long-lived
    snapshot-warm-started worker pool of :mod:`repro.serve.pool` that
    amortizes fork and cold-graph-build cost across batches.  The
    free-standing batch functions always use the per-batch pool; the
    persistent kind is engaged by the database facade, which owns the
    pool's lifecycle.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

from repro.errors import QueryError
from repro.obs.trace import TRACER
from repro.runtime.stats import RuntimeStats

#: Environment variable supplying the default worker count.
WORKERS_ENV = "REPRO_BATCH_WORKERS"

#: Environment variable supplying the default execution mode.
MODE_ENV = "REPRO_BATCH_MODE"

#: Environment variable supplying the default batch pool kind.
POOL_ENV = "REPRO_BATCH_POOL"

_MODES = ("auto", "thread", "fork")

_POOL_KINDS = ("fork", "persistent")

Q = TypeVar("Q")
R = TypeVar("R")


def resolve_workers(workers: int | None = None) -> int:
    """The effective worker count: argument, env, or 0 (sequential)."""
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            return 0
        try:
            workers = int(raw)
        except ValueError:
            raise QueryError(
                f"invalid {WORKERS_ENV}={raw!r}: expected an integer"
            ) from None
    if workers < 0:
        raise QueryError(f"worker count must be >= 0, got {workers}")
    return workers


def fork_available() -> bool:
    """True when the fork start method exists on this platform."""
    import multiprocessing

    return "fork" in multiprocessing.get_all_start_methods()


def resolve_mode(mode: str | None = None) -> str:
    """The effective execution mode: argument, env, or ``auto``."""
    if mode is None:
        mode = os.environ.get(MODE_ENV, "").strip() or "auto"
    if mode not in _MODES:
        raise QueryError(
            f"unknown batch mode {mode!r} (expected one of {_MODES})"
        )
    if mode == "auto":
        return "fork" if fork_available() else "thread"
    return mode


def resolve_pool_kind(pool: str | None = None) -> str:
    """The effective batch pool kind: argument, env, or ``fork``.

    ``fork`` is the per-batch :class:`BatchExecutor` pool (the
    historical behaviour); ``persistent`` routes database batches with
    ``workers >= 2`` through the long-lived snapshot-warm-started
    :class:`~repro.serve.pool.PersistentWorkerPool`.
    """
    if pool is None:
        pool = os.environ.get(POOL_ENV, "").strip() or "fork"
    if pool not in _POOL_KINDS:
        raise QueryError(
            f"unknown batch pool kind {pool!r} (expected one of {_POOL_KINDS})"
        )
    return pool


def _chunk_ranges(n: int, parts: int) -> list[tuple[int, int]]:
    """``parts`` contiguous, balanced ``(start, stop)`` ranges over ``n``."""
    size, extra = divmod(n, parts)
    ranges = []
    start = 0
    for i in range(parts):
        stop = start + size + (1 if i < extra else 0)
        if stop > start:
            ranges.append((start, stop))
        start = stop
    return ranges


class _ForkTask:
    """The per-batch state fork children inherit (never pickled)."""

    __slots__ = ("metric", "queries", "evaluate", "trees", "trace")

    def __init__(self, metric, queries, evaluate, trees, trace) -> None:
        self.metric = metric
        self.queries = queries
        self.evaluate = evaluate
        self.trees = trees
        self.trace = trace


_FORK_TASK: _ForkTask | None = None

#: Serializes concurrent fork-mode batches in one process: the task
#: state travels to the children through a module global set between
#: lock acquisition and pool fork, so two parent threads forking at
#: once would otherwise race on it (and oversubscribe the cores).
_FORK_LOCK = threading.Lock()


def _run_chunk_fork(chunk: tuple[int, int]):
    """Executed inside a forked worker: evaluate one chunk over a
    private context spawned from the inherited task state."""
    task = _FORK_TASK
    assert task is not None, "fork worker started without task state"
    return _evaluate_chunk(
        task.metric,
        task.queries,
        task.evaluate,
        chunk,
        trees=task.trees,
        trace=task.trace,
    )


def _task_trees(metric, trees) -> list:
    """The trees whose page counters a fork batch must account: the
    caller-supplied ones (entity trees) plus every tree of the
    metric's obstacle source, deduplicated by name."""
    seen: dict[str, object] = {}
    for tree in trees or ():
        seen.setdefault(tree.name, tree)
    context = getattr(metric, "context", None)
    source = getattr(context, "source", None)
    if source is not None:
        for tree in source.trees():
            seen.setdefault(tree.name, tree)
    return list(seen.values())


def _evaluate_chunk(
    metric,
    queries: Sequence[Q],
    evaluate,
    chunk: tuple[int, int],
    *,
    trees: "Sequence | None" = None,
    trace: bool = False,
):
    # In fork mode the children tick copy-on-write copies of the
    # parent's page counters; snapshot a baseline so the reply can
    # carry exact per-tree deltas for the parent to add back.  Thread
    # mode passes trees=None: counters are shared, nothing is lost.
    baselines = None
    if trees:
        baselines = {
            tree.name: (tree.counter.reads, tree.counter.misses, tree.counter.writes)
            for tree in trees
        }
    worker_metric = metric.spawn()
    start, stop = chunk
    span = None
    if trace:
        # The parent made the sampling decision; the worker traces
        # unconditionally under a detached root and ships the tree
        # back in the reply for the parent to graft.
        TRACER.reset_thread()
        span = TRACER.detached("batch.worker", start=start, stop=stop)
    if span is not None:
        with span:
            results = [
                evaluate(worker_metric, queries[i]) for i in range(start, stop)
            ]
    else:
        results = [
            evaluate(worker_metric, queries[i]) for i in range(start, stop)
        ]
    context = getattr(worker_metric, "context", None)
    stats = context.stats.snapshot() if context is not None else None
    pages = None
    if trees and baselines is not None:
        pages = {}
        for tree in trees:
            r0, m0, w0 = baselines[tree.name]
            c = tree.counter
            delta = (c.reads - r0, c.misses - m0, c.writes - w0)
            if any(delta):
                pages[tree.name] = delta
    return start, results, stats, pages, span.to_dict() if span else None


class BatchExecutor:
    """A worker pool evaluating independent queries over spawned metrics.

    The executor is construction-cheap: pools are created per
    :meth:`run` call (fork mode *must* fork per batch so children see
    the current obstacle trees).  ``workers <= 1`` executors report
    :attr:`parallel` as ``False`` and refuse to run — callers keep
    their sequential path, which shares one context and its memo.
    """

    def __init__(
        self, workers: int | None = None, mode: str | None = None
    ) -> None:
        self.workers = resolve_workers(workers)
        self.mode = resolve_mode(mode)

    @property
    def parallel(self) -> bool:
        """True when this executor would actually fan out."""
        return self.workers > 1

    def run(
        self,
        metric,
        queries: Sequence[Q],
        evaluate: Callable[[object, Q], R],
        *,
        stats: RuntimeStats | None = None,
        trees: "Sequence | None" = None,
    ) -> list[R]:
        """``[evaluate(worker_metric, q) for q in queries]``, in order.

        ``metric`` must support ``spawn()`` (an independent equivalent
        metric); each worker evaluates its chunk against its own spawn.
        Worker runtime stats are merged into ``stats`` when given.
        ``trees`` lists extra trees (beyond the metric's obstacle
        source) whose simulated page counters fork workers must ship
        back — in fork mode their deltas are added onto the parent's
        counters on join.
        """
        if not self.parallel:
            raise QueryError("BatchExecutor.run needs >= 2 workers")
        n = len(queries)
        chunks = _chunk_ranges(n, min(self.workers, n))
        tracked = _task_trees(metric, trees) if self.mode == "fork" else []
        # The sampling decision is the parent's: when a span is open
        # here, every worker traces its chunk and the subtrees are
        # grafted back below (one merged tree per batch).
        trace = TRACER.tracing()
        if self.mode == "fork":
            parts = self._run_fork(
                metric, queries, evaluate, chunks, tracked, trace
            )
        else:
            parts = self._run_thread(metric, queries, evaluate, chunks, trace)
        by_name = {tree.name: tree for tree in tracked}
        results: list[R] = [None] * n  # type: ignore[list-item]
        for start, chunk_results, worker_stats, worker_pages, span_doc in parts:
            results[start : start + len(chunk_results)] = chunk_results
            if stats is not None and worker_stats is not None:
                stats.merge(worker_stats)
            for name, (reads, misses, writes) in (worker_pages or {}).items():
                counter = by_name[name].counter
                counter.reads += reads
                counter.misses += misses
                counter.writes += writes
            TRACER.graft(span_doc)
        return results

    def _run_thread(self, metric, queries, evaluate, chunks, trace=False):
        with ThreadPoolExecutor(max_workers=len(chunks)) as pool:
            futures = [
                pool.submit(
                    _evaluate_chunk,
                    metric,
                    queries,
                    evaluate,
                    chunk,
                    trace=trace,
                )
                for chunk in chunks
            ]
            return [f.result() for f in futures]

    def _run_fork(self, metric, queries, evaluate, chunks, trees, trace=False):
        import multiprocessing

        global _FORK_TASK
        if _FORK_TASK is not None:  # pragma: no cover - nested batches
            # A forked child running a batch of its own must not
            # re-fork over the parent's task state (children are born
            # with _FORK_TASK set, and never touch the lock).
            return self._run_thread(metric, queries, evaluate, chunks, trace)
        with _FORK_LOCK:
            _FORK_TASK = _ForkTask(metric, queries, evaluate, trees, trace)
            try:
                ctx = multiprocessing.get_context("fork")
                with ctx.Pool(processes=len(chunks)) as pool:
                    return pool.map(_run_chunk_fork, chunks)
            finally:
                _FORK_TASK = None

    def __repr__(self) -> str:
        return f"BatchExecutor(workers={self.workers}, mode={self.mode!r})"
