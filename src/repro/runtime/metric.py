"""The distance-metric abstraction of the query runtime.

The paper's six obstructed query types are the classical Euclidean
queries with ``d_E`` replaced by the obstructed distance ``d_O`` — and
the pruning in every algorithm rests on one fact, ``d_E <= d_O``
(Euclidean lower bound).  :class:`DistanceOracle` captures exactly the
operations the shared query skeletons (:mod:`repro.runtime.queries`)
need; :class:`EuclideanMetric` and :class:`ObstructedMetric` are the
two implementations, which makes the ``euclidean`` query functions and
the ``core`` obstructed ones parameterizations of the *same* code.

A metric's ``field(q)`` answers many ``distance(p, q)`` evaluations
against a fixed ``q`` cheaply (ONN's inner loop); ``range_refine``
turns a Euclidean candidate superset into the exact in-range result
(OR's elimination step, also reused per seed by ODJ).
"""

from __future__ import annotations

from math import inf
from typing import Iterable, Protocol, runtime_checkable

from repro.core.distance import ObstacleSource
from repro.geometry.point import Point


@runtime_checkable
class DistanceField(Protocol):
    """Distances from one fixed source point to arbitrary targets."""

    def distance_to(self, p: Point, *, bound: float = inf) -> float:
        """Distance from the field's source to ``p``; may return any
        value above ``bound`` once the true distance is known to
        exceed it."""

    def batch_eval(
        self, points: "list[Point]", *, bound: float = inf
    ) -> list[float]:
        """Distances to every point of ``points`` (same per-candidate
        semantics as :meth:`distance_to`, amortizing shared state —
        one revalidation, one provisional field — over the batch)."""


@runtime_checkable
class DistanceOracle(Protocol):
    """The metric interface shared by every query skeleton."""

    def distance(self, p: Point, q: Point, *, bound: float = inf) -> float:
        """The metric distance ``d(p, q)`` (exact up to ``bound``)."""

    def lower_bound(self, p: Point, q: Point) -> float:
        """A cheap lower bound on ``distance(p, q)`` (here: ``d_E``)."""

    def field(self, q: Point, *, radius: float = 0.0) -> DistanceField:
        """A reusable distance field rooted at ``q``."""

    def range_refine(
        self, q: Point, e: float, candidates: Iterable[Point]
    ) -> list[tuple[Point, float]]:
        """Exact ``(p, d(p, q))`` pairs for the candidates within ``e``.

        ``candidates`` is a superset of the answer obtained by the
        Euclidean lower-bound filter."""


class _EuclideanField:
    """Trivial field: the metric distance is closed-form."""

    __slots__ = ("_q",)

    def __init__(self, q: Point) -> None:
        self._q = q

    def distance_to(self, p: Point, *, bound: float = inf) -> float:
        return self._q.distance(p)

    def batch_eval(
        self, points: "list[Point]", *, bound: float = inf
    ) -> list[float]:
        q = self._q
        return [q.distance(p) for p in points]


class EuclideanMetric:
    """``d(p, q) = d_E(p, q)`` — the degenerate, obstacle-free oracle.

    Plugged into the shared skeletons it reproduces the classical
    algorithms exactly: the lower bound equals the distance, so every
    refinement loop terminates after the seed phase.
    """

    def distance(self, p: Point, q: Point, *, bound: float = inf) -> float:
        """The Euclidean distance (``bound`` is irrelevant: exact is free)."""
        return p.distance(q)

    def spawn(self) -> "EuclideanMetric":
        """An independent equivalent metric (stateless: itself)."""
        return self

    def lower_bound(self, p: Point, q: Point) -> float:
        """Euclidean distance — the bound is tight."""
        return p.distance(q)

    def field(self, q: Point, *, radius: float = 0.0) -> _EuclideanField:
        """A closed-form field rooted at ``q``."""
        return _EuclideanField(q)

    def range_refine(
        self, q: Point, e: float, candidates: Iterable[Point]
    ) -> list[tuple[Point, float]]:
        """Candidates are already the answer; sort by distance."""
        pairs = sorted((q.distance(p), p) for p in candidates)
        return [(p, d) for d, p in pairs if d <= e]


class ObstructedMetric:
    """``d(p, q) = d_O(p, q)`` over a shared :class:`QueryContext`.

    All graph construction, caching, and Fig. 8 iteration live in the
    context; the metric is the adapter that exposes them through the
    :class:`DistanceOracle` interface the query skeletons consume.
    """

    def __init__(self, context: "QueryContext") -> None:
        self.context = context

    @classmethod
    def over(cls, source: ObstacleSource, **kwargs: object) -> "ObstructedMetric":
        """A metric with a fresh private context over ``source``."""
        from repro.runtime.context import QueryContext

        return cls(QueryContext(source, **kwargs))  # type: ignore[arg-type]

    def distance(self, p: Point, q: Point, *, bound: float = inf) -> float:
        """Obstructed distance via the context's cached graphs (Fig. 8)."""
        return self.context.distance(p, q, bound=bound)

    def spawn(self) -> "ObstructedMetric":
        """An independent metric over the same obstacle source.

        Used by the parallel batch executor: each worker gets its own
        context (private graph cache and stats) so concurrent query
        evaluation never contends on mutable runtime state.
        """
        return ObstructedMetric(self.context.spawn())

    def lower_bound(self, p: Point, q: Point) -> float:
        """``d_E`` — the paper's Euclidean lower-bound property."""
        return p.distance(q)

    def field(self, q: Point, *, radius: float = 0.0) -> DistanceField:
        """A :class:`~repro.core.distance.SourceDistanceField` over the
        cached graph for ``q``."""
        return self.context.field_for(q, radius)

    def range_refine(
        self, q: Point, e: float, candidates: Iterable[Point]
    ) -> list[tuple[Point, float]]:
        """Fig. 5's elimination: one batched distance field rooted at
        ``q``, covering radius ``e``.

        Each candidate's distance is the last-leg minimisation over its
        visible anchors — exact because a shortest path never turns at
        a free point, so it leaves the candidate straight toward some
        graph node — evaluated in one :meth:`DistanceField.batch_eval`
        call.  Unlike the pre-field formulation (one bounded expansion
        with every candidate inserted as a transient entity, see
        :func:`~repro.runtime.skeletons.bounded_expansion`), candidates
        never enter the cached graph, so the field's provisional
        Dijkstra is reusable across calls at the same centre.
        """
        uniq = list(dict.fromkeys(candidates))
        if not uniq:
            return []
        field = self.context.field_for(q, e)
        dists = field.batch_eval(uniq, bound=e)
        return [(p, d) for p, d in zip(uniq, dists) if d <= e]


def resolve_metric(
    obstacle_source: ObstacleSource,
    context: "QueryContext | None" = None,
    *,
    cache_size: int = 64,
) -> ObstructedMetric:
    """The obstructed metric for a query entry point.

    With an explicit ``context`` the caller shares state across
    queries; otherwise a private context is created (the seed
    behaviour: independent queries).
    """
    if context is not None:
        return ObstructedMetric(context)
    return ObstructedMetric.over(obstacle_source, cache_size=cache_size)
