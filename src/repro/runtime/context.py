"""`QueryContext` — the shared execution state of the query runtime.

Every obstructed query in the paper runs the same machinery: retrieve
relevant obstacles from the R*-tree, grow a local visibility graph,
run shortest-path computations over it (Fig. 8).  The seed code
re-instantiated that machinery per query (and per
``obstructed_distance`` call); a :class:`QueryContext` owns it once —
the obstacle source, the versioned LRU graph cache, and the stats
hooks — so consecutive queries amortize each other's work:

* graphs are keyed by expansion centre and reused across query types
  (a ``distance`` call primes the graph a later ``nearest`` uses);
  with a positive ``snap`` quantum the key is spatial, so
  near-duplicate centres (moving queries, dense batches) share one
  graph through the coverage guard of :meth:`entry_for`;
* each graph tracks its obstacle *coverage radius*, so Fig. 8's
  iterative range enlargement skips retrievals that cannot surface
  anything new;
* dynamic obstacle updates are routed repair-first: the context
  subscribes to the source's mutation feed and patches affected cached
  graphs in place (``add_obstacle`` on insert, ``remove_obstacle``'s
  local re-sweep on delete), falling back to version-based lazy
  invalidation (and a rebuild at next lookup) only when repair is not
  possible.
"""

from __future__ import annotations

from math import inf

from repro.core.distance import ObstacleSource, SourceDistanceField
from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.model import Obstacle
from repro.obs.trace import TRACER
from repro.runtime.cache import CachedGraph, VisibilityGraphCache
from repro.runtime.policy import CachePolicy, resolve_cache_policy
from repro.runtime.sharding import stamp_for, stamp_is_stale
from repro.runtime.stats import RuntimeStats
from repro.visibility.graph import VisibilityGraph
from repro.visibility.kernel.backend import VisibilityBackend, resolve_backend
from repro.visibility.shortest_path import shortest_path_dist


#: Above this node count an in-place delete-repair (an O(pairs) python
#: re-sweep) costs more than the from-scratch rebuild it replaces, so
#: the affected entry is discarded instead (rebuild-fallback at its
#: next lookup).
DELETE_REPAIR_NODE_LIMIT = 256

#: Maximum off-centre query positions retained per cached graph as
#: persistent free points (spatial keys); the oldest guest is evicted
#: beyond this, bounding the shared graph's growth under a jittering
#: (e.g. GPS-noise) centre stream.
GUEST_LIMIT = 64


class QueryContext:
    """Shared obstacle source + graph cache + stats for many queries.

    Parameters
    ----------
    source:
        The obstacle source (an
        :class:`~repro.core.source.ObstacleIndex`, a composite, or any
        :class:`~repro.core.distance.ObstacleSource`).  If it exposes a
        ``version`` attribute, cached graphs are invalidated whenever
        the version moves (see
        :meth:`repro.core.engine.ObstacleDatabase.insert_obstacle`);
        if it additionally exposes ``subscribe``, mutations are
        repaired in place instead (repair-first, rebuild-fallback).
    cache_size:
        LRU capacity of the visibility-graph cache.
    snap:
        Spatial-key quantum of the cache (0 = exact centre keys; a
        positive value lets near-duplicate centres share graphs, see
        :class:`~repro.runtime.cache.VisibilityGraphCache`).
    stats:
        Optional shared counters (one per database, by default).
    backend:
        The visibility backend every graph built by this context uses
        (a name — ``"python-sweep"``, ``"numpy-kernel"``, ``"naive"``
        — or an instance).  ``None`` auto-picks: the
        ``REPRO_VISIBILITY_BACKEND`` environment variable when set,
        else the numpy kernel when numpy is importable.  The resolved
        backend shares this context's stats, so ``sweeps_run`` /
        ``sweep_events`` / ``sweep_seconds`` account all sweep work.
    policy:
        The cache policy (a name — ``"static"``, ``"adaptive"`` — or a
        :class:`~repro.runtime.policy.CachePolicy` instance).  ``None``
        reads ``REPRO_CACHE_POLICY``, defaulting to static.  The
        adaptive policy observes every lookup centre and retunes the
        cache's snap quantum / capacity / guest admission online;
        answers are bit-identical under any policy (reuse stays behind
        the coverage guard — the policy only moves keys and capacity).
    """

    def __init__(
        self,
        source: ObstacleSource,
        *,
        cache_size: int = 64,
        snap: float = 0.0,
        stats: RuntimeStats | None = None,
        backend: "str | VisibilityBackend | None" = None,
        policy: "str | CachePolicy | None" = None,
    ) -> None:
        self.source = source
        self.stats = stats if stats is not None else RuntimeStats()
        self.backend = resolve_backend(backend, stats=self.stats)
        self.stats.backend = self.backend.name
        self.cache = VisibilityGraphCache(
            cache_size, snap=snap, stats=self.stats
        )
        self.policy = resolve_cache_policy(policy)
        self.policy.attach(self.cache, self.stats)
        #: Entry ids (by identity) whose stamps were fresh at the last
        #: ``pre-`` mutation notification — the only entries the
        #: matching post-notification may repair-and-re-stamp — plus
        #: the affected-entry list itself, stashed so the synchronous
        #: post pass need not recompute the shard fan-in.
        self._repairable: frozenset[int] = frozenset()
        self._pre_affected: list[CachedGraph] | None = None
        subscribe = getattr(source, "subscribe", None)
        if subscribe is not None:
            subscribe(self._on_obstacle_mutation)

    # ------------------------------------------------------------- versioning
    @property
    def version(self) -> int:
        """The obstacle source's current version (0 for static sources)."""
        return getattr(self.source, "version", 0)

    def invalidate(self) -> None:
        """Drop every cached graph (e.g. after swapping the source)."""
        self.cache.clear()

    def spawn(self, *, stats: RuntimeStats | None = None) -> "QueryContext":
        """An independent context over the same obstacle source.

        The parallel batch executor gives each worker one: same source
        and backend *kind*, but a private graph cache, private stats
        (merged into the parent's on join), and a private policy of the
        same kind (each worker adapts to its own slice of the stream),
        so workers never contend on mutable runtime state.
        """
        from repro.visibility.kernel.backend import available_backends

        backend = (
            self.backend.name
            if self.backend.name in available_backends()
            else self.backend
        )
        return QueryContext(
            self.source,
            cache_size=self.cache.capacity,
            snap=self.cache.snap,
            stats=stats,
            backend=backend,
            policy=self.policy.spawn(),
        )

    # --------------------------------------------------------- repair plumbing
    def _disk_shards(
        self, center: Point, radius: float
    ) -> "frozenset[int] | None":
        """The shard keys of every grid cell the disk touches, or
        ``None`` for unsharded sources.

        Deliberately *geometric* (grid cells, not occupied shards): a
        later insert that creates a brand-new shard inside the disk
        still reaches the entry through this registration.
        """
        grid = getattr(self.source, "grid", None)
        if grid is None:
            return None
        return frozenset(
            grid.key(cx, cy) for cx, cy in grid.cells_for_disk(center, radius)
        )

    def _on_obstacle_mutation(self, kind: str, obstacle: Obstacle) -> None:
        """Repair-first maintenance of the cached graphs around one
        source mutation (the source's feed calls this synchronously,
        once just before the mutation is applied — ``pre-insert`` /
        ``pre-delete`` — and once just after).

        With a sharded source only the entries registered under the
        mutation's shard footprint are visited — O(affected), not
        O(cache size); monolithic sources carry one global version, so
        every entry needs at least a stamp refresh and the scan is the
        whole cache.

        The ``pre-`` pass records which affected entries are fresh
        against the *pre-mutation* versions: only those are patched in
        place and re-stamped by the post pass.  An entry already stale
        at that point missed a mutation applied behind the feed's back
        (e.g. a direct shard edit); applying just this mutation and
        taking a fresh stamp would silently absorb the missed one, so
        such entries are discarded instead (rebuild at next lookup).
        """
        if kind in ("pre-insert", "pre-delete"):
            affected = self._affected_entries(obstacle)
            self._pre_affected = affected
            self._repairable = frozenset(
                id(entry)
                for entry in affected
                if not stamp_is_stale(entry.version, self.version)
            )
            return
        # Nothing can touch the cache between the synchronous pre and
        # post passes, so the pre pass's fan-in is reused verbatim
        # (recomputed only for sources that fire no ``pre-`` events).
        affected = self._pre_affected
        self._pre_affected = None
        if affected is None:
            affected = self._affected_entries(obstacle)
        repairable = self._repairable
        self._repairable = frozenset()
        for entry in affected:
            if id(entry) in repairable:
                self._repair_entry(entry, kind, obstacle)
            else:
                self.cache.discard(entry)

    def _affected_entries(self, obstacle: Obstacle) -> "list[CachedGraph]":
        """The cached entries a mutation of ``obstacle`` can affect:
        those registered under its shard footprint, or the whole cache
        for monolithic (single-version) sources."""
        keys_for = getattr(self.source, "keys_for_obstacle", None)
        if keys_for is not None:
            return self.cache.entries_for_shards(keys_for(obstacle))
        return self.cache.entries()

    def _repair_entry(
        self, entry: CachedGraph, kind: str, obstacle: Obstacle
    ) -> None:
        """Patch one cached graph in place for a single mutation, then
        refresh its version stamp; on failure discard the entry so the
        next lookup rebuilds (rebuild-fallback).

        The caller guarantees the entry was fresh immediately before
        this mutation (the ``pre-`` notification pass), so the patched
        graph plus the fresh stamp describe exactly the current
        obstacle set."""
        graph = entry.graph
        try:
            with TRACER.span("graph.repair", kind=kind):
                if kind == "delete":
                    if (
                        graph.has_obstacle(obstacle.oid)
                        and graph.node_count > DELETE_REPAIR_NODE_LIMIT
                    ):
                        # The local re-sweep would cost more than a
                        # fresh build of a graph this size: fall back
                        # to rebuild.
                        self.cache.discard(entry)
                        return
                    if graph.remove_obstacle(obstacle.oid):
                        self.stats.graph_cache_repairs += 1
                        TRACER.count("graph_cache.repair")
                else:
                    disk = Circle(entry.center, entry.covered)
                    # Same filter/refinement as obstacles_in_range:
                    # only an obstacle intersecting the coverage disk
                    # enters the graph, keeping repair identical to a
                    # from-scratch rebuild over the same disk.
                    if disk.intersects_polygon(obstacle.polygon) and (
                        graph.add_obstacle(obstacle)
                    ):
                        self.stats.graph_cache_repairs += 1
                        TRACER.count("graph_cache.repair")
        except Exception:
            self.cache.discard(entry)
            return
        # No shard re-registration here: repairs change neither the
        # entry's centre nor its coverage radius, and the registry is
        # purely geometric in those two (ensure_coverage refreshes it
        # when the disk actually grows).
        entry.version = stamp_for(self.source, entry.center, entry.covered)

    def admit_restored(self, entry: CachedGraph) -> None:
        """Re-admit a snapshot-restored cache entry (warm start).

        The entry enters the cache under its spatial key and is
        registered with the shard admission registry for the grid cells
        its coverage disk touches — exactly as a freshly built entry
        would be — so later queries reuse it and later mutations reach
        it through the same repair-first fan-in.  Call in LRU order
        (least recently used first) to reproduce the serialized
        eviction order.
        """
        self.cache.put(
            entry, shards=self._disk_shards(entry.center, entry.covered)
        )

    # ------------------------------------------------------------ graph reuse
    def entry_for(self, center: Point, radius: float = 0.0) -> CachedGraph:
        """The cached graph serving ``center``, covering ``radius``.

        On a miss the graph is built from the obstacles intersecting
        the disk ``(center, radius)``.  A hit may return an entry whose
        own centre differs from ``center`` (spatial keys): reuse is
        then guarded by coverage — the entry is valid only once its
        coverage disk contains ``disk(center, radius)``, so an
        under-covered entry is topped up around its *own* centre by the
        widened radius (extend-and-promote) before being served, and
        ``center`` is added to the shared graph as a free point.
        """
        self.policy.observe(center)
        entry = self.cache.get(center, self.version)
        if entry is None:
            with TRACER.span("graph.build", radius=radius) as span:
                # Stamp before retrieving: the stamp must never
                # post-date the obstacle set the graph is built from.
                stamp = stamp_for(self.source, center, radius)
                obstacles = (
                    self.source.obstacles_in_range(center, radius)
                    if radius > 0
                    else []
                )
                span.set_attr("obstacles", len(obstacles))
                graph = VisibilityGraph.build(
                    [center], obstacles, method=self.backend
                )
            self.stats.graph_builds += 1
            entry = CachedGraph(graph, center, radius, stamp)
            self.cache.put(entry, shards=self._disk_shards(center, radius))
            return entry
        required = self.required_radius(entry, center, radius)
        if required > entry.covered:
            if entry.center != center:
                self.stats.graph_cache_promotions += 1
            self.ensure_coverage(entry, required)
        if entry.center != center:
            self._admit_guest(entry, center)
        return entry

    def _admit_guest(self, entry: CachedGraph, center: Point) -> None:
        """Make an off-centre ``center`` a node of the entry's shared
        graph: one sweep now, zero builds for every later query at this
        centre.  Guests are retained insertion-ordered up to
        :data:`GUEST_LIMIT` (the policy may widen the bound for hot
        cells); beyond it the oldest is deleted again, so a jittering
        centre stream cannot grow the graph unboundedly.
        """
        graph = entry.graph
        if graph.add_entity(center):
            entry.guests[center] = None
        elif center in entry.guests:
            # Refresh recency so a re-visited centre is evicted last.
            del entry.guests[center]
            entry.guests[center] = None
        limit = self.policy.guest_limit(entry, GUEST_LIMIT)
        while len(entry.guests) > limit:
            oldest = next(iter(entry.guests))
            del entry.guests[oldest]
            if oldest != center:
                graph.delete_entity(oldest)

    @staticmethod
    def required_radius(
        entry: CachedGraph, center: Point, radius: float
    ) -> float:
        """The coverage radius around the *entry's* centre that
        guarantees ``disk(center, radius)`` is covered (the spatial
        reuse guard: centre offset widens the requirement)."""
        if center == entry.center:
            return radius
        return entry.center.distance(center) + radius

    def cover(self, entry: CachedGraph, center: Point, radius: float) -> bool:
        """:meth:`ensure_coverage` for a disk around an arbitrary
        ``center`` (possibly off the entry's own centre)."""
        return self.ensure_coverage(
            entry, self.required_radius(entry, center, radius)
        )

    def ensure_coverage(self, entry: CachedGraph, radius: float) -> bool:
        """Guarantee all obstacles within ``radius`` of the entry's centre
        are in its graph, *against the current obstacle version*.

        Returns ``True`` when the graph's obstacle set actually changed
        — exactly the "new obstacles appeared" signal Fig. 8's fixpoint
        iteration terminates on.  When the requested radius is already
        covered (and the version unchanged), no retrieval is performed
        at all.

        Holders of a live entry (a distance field mid-iteration) may
        outlive a dynamic obstacle update; mutations routed through the
        source's feed repair the entry in place, but mutations applied
        behind the runtime's back (direct tree edits) only move the
        version, so staleness is re-checked here: on version drift the
        graph is rebuilt in place over the current obstacle set
        (covering at least its previous radius), keeping every held
        reference valid and fresh.
        """
        if stamp_is_stale(entry.version, self.version):
            # In-place refresh of a held entry: booked as a rebuild,
            # not as a cache invalidation (the entry is never dropped)
            # nor a fresh build.
            radius = max(radius, entry.covered)
            stamp = stamp_for(self.source, entry.center, radius)
            obstacles = (
                self.source.obstacles_in_range(entry.center, radius)
                if radius > 0
                else []
            )
            with TRACER.span(
                "graph.rebuild", radius=radius, obstacles=len(obstacles)
            ):
                entry.graph.rebuild(obstacles)
            self.stats.graph_rebuilds += 1
            entry.version = stamp
            entry.covered = radius
            self.cache.refresh_shards(
                entry, self._disk_shards(entry.center, radius)
            )
            return True
        if radius <= entry.covered:
            return False
        self.stats.coverage_expansions += 1
        with TRACER.span("graph.expand", radius=radius):
            retrieved = self.source.obstacles_in_range(entry.center, radius)
            graph = entry.graph
            added = False
            for obs in retrieved:
                if graph.add_obstacle(obs):
                    self.stats.obstacles_added += 1
                    added = True
        extend = getattr(entry.version, "extend", None)
        if extend is not None:
            # Per-shard stamps absorb the newly touched shards (at
            # their just-retrieved versions) as the disk grows.
            extend(radius)
        entry.covered = radius
        self.cache.refresh_shards(entry, self._disk_shards(entry.center, radius))
        return added

    # ----------------------------------------------------------- evaluations
    def distance(self, p: Point, q: Point, *, bound: float = inf) -> float:
        """Obstructed distance ``d_O(p, q)`` (paper Fig. 8).

        The graph is cached per ``q`` (the expansion centre); ``p`` is
        added as a transient entity and removed afterwards so the
        cached graph stays lean.  ``bound`` enables threshold pruning:
        iteration stops once the provisional lower bound exceeds it.
        """
        self.stats.distance_calls += 1
        TRACER.count("context.distance_call")
        if p == q:
            return 0.0
        entry = self.entry_for(q, p.distance(q))
        graph = entry.graph
        added = graph.add_entity(p)
        try:
            d = shortest_path_dist(graph, p, q)
            while d <= bound:
                if not self.cover(entry, q, d):
                    break
                d = shortest_path_dist(graph, p, q)
        finally:
            if added:
                graph.delete_entity(p)
        return d

    def field_for(self, q: Point, radius: float = 0.0) -> SourceDistanceField:
        """A distance field from ``q`` over the cached graph for ``q``.

        The field's Fig. 8 enlargement is routed through
        :meth:`cover`, so repeated fields over the same centre (or a
        near-duplicate one, with spatial keys) skip redundant obstacle
        retrievals.  The engine — compiled CSR arrays or the dict
        reference path — is resolved per call from
        ``REPRO_FIELD_ENGINE`` (see :mod:`repro.runtime.field`).
        """
        from repro.runtime.field import make_distance_field

        with TRACER.span("field.build", radius=radius):
            entry = self.entry_for(q, radius)
        self.stats.field_builds += 1
        readmit = (
            (lambda: self._admit_guest(entry, q))
            if q != entry.center
            else None
        )
        return make_distance_field(
            entry.graph,
            q,
            self.source,
            grow=lambda r: self.cover(entry, q, r),
            readmit=readmit,
            stats=self.stats,
        )
