"""`QueryContext` — the shared execution state of the query runtime.

Every obstructed query in the paper runs the same machinery: retrieve
relevant obstacles from the R*-tree, grow a local visibility graph,
run shortest-path computations over it (Fig. 8).  The seed code
re-instantiated that machinery per query (and per
``obstructed_distance`` call); a :class:`QueryContext` owns it once —
the obstacle source, the versioned LRU graph cache, and the stats
hooks — so consecutive queries amortize each other's work:

* graphs are keyed by expansion centre and reused across query types
  (a ``distance`` call primes the graph a later ``nearest`` uses);
* each graph tracks its obstacle *coverage radius*, so Fig. 8's
  iterative range enlargement skips retrievals that cannot surface
  anything new;
* dynamic obstacle updates bump the source's version, and stale graphs
  are discarded lazily at the next lookup.
"""

from __future__ import annotations

from math import inf

from repro.core.distance import ObstacleSource, SourceDistanceField
from repro.geometry.point import Point
from repro.runtime.cache import CachedGraph, VisibilityGraphCache
from repro.runtime.sharding import stamp_for, stamp_is_stale
from repro.runtime.stats import RuntimeStats
from repro.visibility.graph import VisibilityGraph
from repro.visibility.kernel.backend import VisibilityBackend, resolve_backend
from repro.visibility.shortest_path import shortest_path_dist


class QueryContext:
    """Shared obstacle source + graph cache + stats for many queries.

    Parameters
    ----------
    source:
        The obstacle source (an
        :class:`~repro.core.source.ObstacleIndex`, a composite, or any
        :class:`~repro.core.distance.ObstacleSource`).  If it exposes a
        ``version`` attribute, cached graphs are invalidated whenever
        the version moves (see
        :meth:`repro.core.engine.ObstacleDatabase.insert_obstacle`).
    cache_size:
        LRU capacity of the visibility-graph cache.
    stats:
        Optional shared counters (one per database, by default).
    backend:
        The visibility backend every graph built by this context uses
        (a name — ``"python-sweep"``, ``"numpy-kernel"``, ``"naive"``
        — or an instance).  ``None`` auto-picks: the
        ``REPRO_VISIBILITY_BACKEND`` environment variable when set,
        else the numpy kernel when numpy is importable.  The resolved
        backend shares this context's stats, so ``sweeps_run`` /
        ``sweep_events`` / ``sweep_seconds`` account all sweep work.
    """

    def __init__(
        self,
        source: ObstacleSource,
        *,
        cache_size: int = 64,
        stats: RuntimeStats | None = None,
        backend: "str | VisibilityBackend | None" = None,
    ) -> None:
        self.source = source
        self.stats = stats if stats is not None else RuntimeStats()
        self.backend = resolve_backend(backend, stats=self.stats)
        self.stats.backend = self.backend.name
        self.cache = VisibilityGraphCache(cache_size, stats=self.stats)

    # ------------------------------------------------------------- versioning
    @property
    def version(self) -> int:
        """The obstacle source's current version (0 for static sources)."""
        return getattr(self.source, "version", 0)

    def invalidate(self) -> None:
        """Drop every cached graph (e.g. after swapping the source)."""
        self.cache.clear()

    def spawn(self, *, stats: RuntimeStats | None = None) -> "QueryContext":
        """An independent context over the same obstacle source.

        The parallel batch executor gives each worker one: same source
        and backend *kind*, but a private graph cache and private stats
        (merged into the parent's on join), so workers never contend on
        mutable runtime state.
        """
        from repro.visibility.kernel.backend import available_backends

        backend = (
            self.backend.name
            if self.backend.name in available_backends()
            else self.backend
        )
        return QueryContext(
            self.source,
            cache_size=self.cache.capacity,
            stats=stats,
            backend=backend,
        )

    # ------------------------------------------------------------ graph reuse
    def entry_for(self, center: Point, radius: float = 0.0) -> CachedGraph:
        """The cached graph expanded around ``center``, covering ``radius``.

        On a miss the graph is built from the obstacles intersecting
        the disk ``(center, radius)``; on a hit whose coverage is
        smaller than ``radius`` the graph is topped up incrementally.
        """
        entry = self.cache.get(center, self.version)
        if entry is None:
            # Stamp before retrieving: the stamp must never post-date
            # the obstacle set the graph is built from.
            stamp = stamp_for(self.source, center, radius)
            obstacles = (
                self.source.obstacles_in_range(center, radius)
                if radius > 0
                else []
            )
            graph = VisibilityGraph.build(
                [center], obstacles, method=self.backend
            )
            self.stats.graph_builds += 1
            entry = CachedGraph(graph, center, radius, stamp)
            self.cache.put(entry)
        elif radius > entry.covered:
            self.ensure_coverage(entry, radius)
        return entry

    def ensure_coverage(self, entry: CachedGraph, radius: float) -> bool:
        """Guarantee all obstacles within ``radius`` of the entry's centre
        are in its graph, *against the current obstacle version*.

        Returns ``True`` when the graph's obstacle set actually changed
        — exactly the "new obstacles appeared" signal Fig. 8's fixpoint
        iteration terminates on.  When the requested radius is already
        covered (and the version unchanged), no retrieval is performed
        at all.

        Holders of a live entry (a distance field mid-iteration) may
        outlive a dynamic obstacle update; the cache would drop the
        stale entry at its next lookup, but a held reference bypasses
        the cache, so staleness is re-checked here: on version drift
        the graph is rebuilt in place over the current obstacle set
        (covering at least its previous radius), keeping every held
        reference valid and fresh.
        """
        if stamp_is_stale(entry.version, self.version):
            # In-place refresh of a held entry: booked as a rebuild,
            # not as a cache invalidation (the entry is never dropped)
            # nor a fresh build.
            radius = max(radius, entry.covered)
            stamp = stamp_for(self.source, entry.center, radius)
            obstacles = (
                self.source.obstacles_in_range(entry.center, radius)
                if radius > 0
                else []
            )
            entry.graph.rebuild(obstacles)
            self.stats.graph_rebuilds += 1
            entry.version = stamp
            entry.covered = radius
            return True
        if radius <= entry.covered:
            return False
        self.stats.coverage_expansions += 1
        retrieved = self.source.obstacles_in_range(entry.center, radius)
        graph = entry.graph
        added = False
        for obs in retrieved:
            if graph.add_obstacle(obs):
                self.stats.obstacles_added += 1
                added = True
        extend = getattr(entry.version, "extend", None)
        if extend is not None:
            # Per-shard stamps absorb the newly touched shards (at
            # their just-retrieved versions) as the disk grows.
            extend(radius)
        entry.covered = radius
        return added

    # ----------------------------------------------------------- evaluations
    def distance(self, p: Point, q: Point, *, bound: float = inf) -> float:
        """Obstructed distance ``d_O(p, q)`` (paper Fig. 8).

        The graph is cached per ``q`` (the expansion centre); ``p`` is
        added as a transient entity and removed afterwards so the
        cached graph stays lean.  ``bound`` enables threshold pruning:
        iteration stops once the provisional lower bound exceeds it.
        """
        self.stats.distance_calls += 1
        if p == q:
            return 0.0
        entry = self.entry_for(q, p.distance(q))
        graph = entry.graph
        added = graph.add_entity(p)
        try:
            d = shortest_path_dist(graph, p, q)
            while d <= bound:
                if not self.ensure_coverage(entry, d):
                    break
                d = shortest_path_dist(graph, p, q)
        finally:
            if added:
                graph.delete_entity(p)
        return d

    def field_for(self, q: Point, radius: float = 0.0) -> SourceDistanceField:
        """A distance field from ``q`` over the cached graph for ``q``.

        The field's Fig. 8 enlargement is routed through
        :meth:`ensure_coverage`, so repeated fields over the same
        centre skip redundant obstacle retrievals.
        """
        entry = self.entry_for(q, radius)
        self.stats.field_builds += 1
        return SourceDistanceField(
            entry.graph,
            q,
            self.source,
            grow=lambda r: self.ensure_coverage(entry, r),
        )
