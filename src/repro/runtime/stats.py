"""Counters for the shared query runtime.

One :class:`RuntimeStats` instance travels with a
:class:`~repro.runtime.context.QueryContext`; every layer of the
runtime (graph cache, coverage growth, distance evaluations, the
visibility backend's sweep kernel) ticks its counters, so a benchmark
or test can ask "how many visibility graphs were actually built?" or
"how many rotational sweeps did that cost, on which backend?" the same
way the R-tree layer already answers "how many pages were read?".
"""

from __future__ import annotations


class RuntimeStats:
    """Mutable counters describing runtime work since the last reset.

    All fields are integer counters except ``sweep_seconds`` (a float,
    the cumulative wall-clock time inside the visibility backend) and
    ``backend`` (the name of the visibility backend ticking the sweep
    counters — ``""`` until a context selects one; preserved across
    :meth:`reset` since it describes configuration, not work done).
    """

    __slots__ = (
        "graph_builds",
        "graph_rebuilds",
        "graph_cache_hits",
        "graph_cache_misses",
        "graph_cache_evictions",
        "graph_cache_invalidations",
        "graph_cache_repairs",
        "graph_cache_promotions",
        "coverage_expansions",
        "obstacles_added",
        "distance_calls",
        "field_builds",
        "field_freezes",
        "field_batch_evals",
        "batch_memo_hits",
        "parallel_batches",
        "pool_batches",
        "policy_adjustments",
        "policy_snap",
        "policy_capacity",
        "journal_appends",
        "journal_bytes",
        "compactions",
        "compaction_bytes",
        "sweeps_run",
        "sweep_events",
        "sweep_seconds",
        "backend",
    )

    def __init__(self) -> None:
        self.backend = ""
        self.reset()

    def reset(self) -> None:
        """Zero every counter (the ``backend`` label is kept)."""
        self.graph_builds = 0
        self.graph_rebuilds = 0
        self.graph_cache_hits = 0
        self.graph_cache_misses = 0
        self.graph_cache_evictions = 0
        self.graph_cache_invalidations = 0
        self.graph_cache_repairs = 0
        self.graph_cache_promotions = 0
        self.coverage_expansions = 0
        self.obstacles_added = 0
        self.distance_calls = 0
        self.field_builds = 0
        self.field_freezes = 0
        self.field_batch_evals = 0
        self.batch_memo_hits = 0
        self.parallel_batches = 0
        self.pool_batches = 0
        self.policy_adjustments = 0
        self.policy_snap = 0
        self.policy_capacity = 0
        self.journal_appends = 0
        self.journal_bytes = 0
        self.compactions = 0
        self.compaction_bytes = 0
        self.sweeps_run = 0
        self.sweep_events = 0
        self.sweep_seconds = 0.0

    def snapshot(self) -> dict[str, int | float | str]:
        """The current counter values as a plain dict."""
        return {name: getattr(self, name) for name in self.__slots__}

    def merge(self, other: "RuntimeStats | dict[str, int | float | str]") -> None:
        """Fold another instance's (or snapshot's) counters into this one.

        The parallel batch executor gives each worker a private
        ``RuntimeStats`` and merges them here on join, so the parent
        context's counters account all work regardless of worker
        count.  The ``backend`` label is configuration, not work, and
        is left untouched.

        A dict snapshot must carry *every* counter: a missing key
        raises instead of silently dropping that counter's worker-side
        work (the pipe protocol and the fork executor always ship full
        snapshots; a partial dict means a producer forgot a counter
        added later).
        """
        snapshot = other.snapshot() if isinstance(other, RuntimeStats) else other
        missing = [
            name
            for name in self.__slots__
            if name != "backend" and name not in snapshot
        ]
        if missing:
            raise ValueError(
                f"incomplete RuntimeStats snapshot: missing counter(s) "
                f"{', '.join(missing)} — every merge source must report "
                f"all of __slots__"
            )
        for name in self.__slots__:
            if name == "backend":
                continue
            value = snapshot[name]
            if value:
                setattr(self, name, getattr(self, name) + value)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.snapshot().items())
        return f"RuntimeStats({inner})"
