"""The persistent, versioned visibility-graph cache.

Local visibility graphs are the expensive artefact of every obstructed
query: each one costs obstacle R-tree retrievals plus one rotational
sweep per node.  The paper reuses the graph *within* one query (Fig. 8
grows ``G'`` in place); this cache extends the reuse *across* queries:
graphs are keyed by their expansion centre (the ``q`` of Fig. 8's
range retrievals), retained under a true LRU policy, and stamped with
the obstacle-set version so dynamic obstacle updates invalidate them
lazily instead of eagerly rebuilding.

Each entry also records the *coverage radius* — the largest disk
around the centre whose obstacles are guaranteed present — so a later
query with a larger reach tops the graph up incrementally rather than
rebuilding from scratch, and a query whose reach is already covered
skips the obstacle retrieval entirely.

Two admission refinements sit on top of the plain LRU:

* **Spatial keys** (``snap``): with a positive snapping quantum, cache
  keys are grid cells instead of exact centre coordinates, so a query
  whose centre falls in the cell of an existing entry *shares* that
  entry's graph (moving queries, dense batch workloads).  Correctness
  stays with the caller: the runtime only reuses an off-centre entry
  after guaranteeing the required disk is inside the entry's coverage
  disk (extend-and-promote, see
  :meth:`repro.runtime.context.QueryContext.entry_for`).
* **Shard-aware admission**: entries can be registered under the shard
  keys their coverage disk touches, so a shard mutation reaches exactly
  the entries that could be affected (``entries_for_shards``) instead
  of scanning the whole cache.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Iterable

from repro.geometry.point import Point
from repro.obs.trace import TRACER
from repro.runtime.sharding import stamp_is_stale
from repro.runtime.stats import RuntimeStats
from repro.visibility.graph import VisibilityGraph


class CachedGraph:
    """One cache entry: a graph plus its provenance.

    ``covered`` is the radius around ``center`` up to which *all*
    obstacles are known to be in the graph; ``version`` is the obstacle
    source's version at build time — a plain integer for monolithic
    sources, or a per-shard
    :class:`~repro.runtime.sharding.ShardVersionStamp` for sharded
    ones (then only mutations in shards the graph actually touched
    make the entry stale).
    """

    __slots__ = ("graph", "center", "covered", "version", "guests")

    def __init__(
        self,
        graph: VisibilityGraph,
        center: Point,
        covered: float,
        version: "int | object",
    ) -> None:
        self.graph = graph
        self.center = center
        self.covered = covered
        self.version = version
        #: Off-centre query positions admitted into the shared graph as
        #: free points (spatial keys), insertion-ordered — bounded by
        #: the runtime so a jittering centre cannot grow the graph
        #: without limit.
        self.guests: dict[Point, None] = {}

    def __repr__(self) -> str:
        return (
            f"CachedGraph(center={self.center!r}, covered={self.covered:g}, "
            f"version={self.version}, nodes={self.graph.node_count})"
        )


class VisibilityGraphCache:
    """A true LRU over :class:`CachedGraph` entries, shared across queries.

    Lookups ``get(center, version)`` return ``None`` both on a plain
    miss and when the stored entry was built against an older obstacle
    version (the stale entry is dropped on the spot).  Hits move the
    entry to the most-recently-used position — unlike the seed's FIFO
    eviction, a graph that keeps being useful is never the one evicted.

    ``snap`` is the spatial-key quantum: ``0`` (the default) keys
    entries by exact centre point; a positive value keys them by the
    grid cell of side ``snap`` containing the centre, so near-duplicate
    centres share one entry.  At most one entry lives per cell — a
    second centre in an occupied cell is served the resident entry (a
    *spatial* hit) rather than admitted alongside it.
    """

    def __init__(
        self,
        capacity: int = 64,
        *,
        snap: float = 0.0,
        stats: RuntimeStats | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        if snap < 0:
            raise ValueError(f"snap quantum must be >= 0, got {snap}")
        self._capacity = capacity
        self._snap = snap
        self._entries: OrderedDict[Hashable, CachedGraph] = OrderedDict()
        #: shard key -> cache keys of the entries registered under it.
        self._by_shard: dict[int, set[Hashable]] = {}
        #: cache key -> shard keys the entry is registered under.
        self._entry_shards: dict[Hashable, frozenset[int]] = {}
        self.stats = stats if stats is not None else RuntimeStats()

    @property
    def capacity(self) -> int:
        """Maximum number of retained graphs."""
        return self._capacity

    @property
    def snap(self) -> float:
        """The spatial-key quantum (0 = exact centre keys)."""
        return self._snap

    def configure(
        self, *, snap: float | None = None, capacity: int | None = None
    ) -> bool:
        """Retune the spatial-key quantum and/or LRU capacity in place.

        The adaptive cache policy's actuator: answers never depend on
        the key scheme (reuse stays behind the caller's coverage
        guard), so retuning is always safe — it only moves *which*
        entries share a key and how many are retained.

        A snap change re-keys every stored entry in LRU order.  Two
        entries colliding under the new quantum keep the more recently
        used one (the loser is booked as an eviction, exactly like a
        capacity overflow); shard registrations follow the surviving
        entries to their new keys.  A capacity shrink evicts the LRU
        tail immediately.  Returns ``True`` when anything changed.
        """
        changed = False
        if capacity is not None and capacity != self._capacity:
            if capacity < 1:
                raise ValueError(
                    f"cache capacity must be >= 1, got {capacity}"
                )
            self._capacity = capacity
            while len(self._entries) > self._capacity:
                victim, __ = self._entries.popitem(last=False)
                self._unregister_shards(victim)
                self.stats.graph_cache_evictions += 1
            changed = True
        if snap is not None and snap != self._snap:
            if snap < 0:
                raise ValueError(f"snap quantum must be >= 0, got {snap}")
            old = list(self._entries.items())
            old_shards = self._entry_shards
            self._snap = snap
            self._entries = OrderedDict()
            self._by_shard = {}
            self._entry_shards = {}
            for old_key, entry in old:  # LRU order: later wins collisions
                key = self.key_for(entry.center)
                if key in self._entries:
                    self._unregister_shards(key)
                    self.stats.graph_cache_evictions += 1
                self._entries[key] = entry
                self._entries.move_to_end(key)
                self._register_shards(key, old_shards.get(old_key))
            changed = True
        return changed

    def key_for(self, center: Point) -> Hashable:
        """The cache key ``center`` maps to (the centre itself with
        exact keys, its grid cell with a positive ``snap``)."""
        if self._snap <= 0:
            return center
        snap = self._snap
        return (round(center.x / snap), round(center.y / snap))

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, center: Point) -> bool:
        return self.key_for(center) in self._entries

    def get(self, center: Point, version: int) -> CachedGraph | None:
        """The live entry for ``center``, or ``None``.

        With spatial keys the returned entry's ``center`` may differ
        from the argument (a near-duplicate centre sharing the cell);
        callers needing disk coverage around the *argument* must widen
        their radius by the centre offset (the runtime's
        ``entry_for`` / ``cover`` do).  A version mismatch counts as an
        invalidation *and* a miss; the stale entry is evicted
        immediately so it can never be consulted again.
        """
        key = self.key_for(center)
        entry = self._entries.get(key)
        if entry is None:
            self.stats.graph_cache_misses += 1
            TRACER.count("graph_cache.miss")
            return None
        if stamp_is_stale(entry.version, version):
            self._remove(key)
            self.stats.graph_cache_invalidations += 1
            self.stats.graph_cache_misses += 1
            TRACER.count("graph_cache.invalidation")
            TRACER.count("graph_cache.miss")
            return None
        self._entries.move_to_end(key)
        self.stats.graph_cache_hits += 1
        TRACER.count("graph_cache.hit")
        return entry

    def put(
        self, entry: CachedGraph, *, shards: Iterable[int] | None = None
    ) -> None:
        """Insert (or refresh) an entry, evicting the LRU tail on overflow.

        ``shards`` registers the entry under the shard keys its
        coverage disk touches (see :meth:`entries_for_shards`); pass
        ``None`` for monolithic sources.
        """
        key = self.key_for(entry.center)
        if key in self._entries:
            self._unregister_shards(key)
        self._entries[key] = entry
        self._entries.move_to_end(key)
        self._register_shards(key, shards)
        while len(self._entries) > self._capacity:
            victim, __ = self._entries.popitem(last=False)
            self._unregister_shards(victim)
            self.stats.graph_cache_evictions += 1

    def discard(self, entry: CachedGraph) -> bool:
        """Drop ``entry`` (by identity) if it is currently stored.

        The runtime's rebuild-fallback: when an in-place repair is not
        possible the entry is discarded so the next lookup rebuilds.
        Booked as an invalidation.
        """
        key = self.key_for(entry.center)
        if self._entries.get(key) is not entry:
            return False
        self._remove(key)
        self.stats.graph_cache_invalidations += 1
        return True

    def refresh_shards(
        self, entry: CachedGraph, shards: Iterable[int] | None
    ) -> None:
        """Re-register a stored entry's shard keys (after its coverage
        disk grew or its stamp was refreshed).  A no-op for entries not
        currently stored (held references)."""
        key = self.key_for(entry.center)
        if self._entries.get(key) is not entry:
            return
        self._unregister_shards(key)
        self._register_shards(key, shards)

    def entries(self) -> list[CachedGraph]:
        """Every stored entry, in LRU order."""
        return list(self._entries.values())

    def entries_for_shards(self, shards: Iterable[int]) -> list[CachedGraph]:
        """The entries registered under any of the given shard keys.

        This is the mutation fan-in: a shard mutation repairs or drops
        exactly these entries — O(affected), not O(cache size).
        """
        keys: set[Hashable] = set()
        for shard in shards:
            keys.update(self._by_shard.get(shard, ()))
        return [self._entries[k] for k in keys if k in self._entries]

    def shard_keys(self) -> dict[int, int]:
        """Shard key -> number of registered entries (introspection;
        rim-shard rebalancing migrates keys by re-``put``-ing entries
        with their new shard sets)."""
        return {shard: len(keys) for shard, keys in self._by_shard.items()}

    def keys(self) -> list[Point]:
        """Entry centres in LRU order (least recently used first)."""
        return [entry.center for entry in self._entries.values()]

    def clear(self) -> None:
        """Drop every cached graph."""
        self._entries.clear()
        self._by_shard.clear()
        self._entry_shards.clear()

    # ------------------------------------------------------------- internals
    def _remove(self, key: Hashable) -> None:
        del self._entries[key]
        self._unregister_shards(key)

    def _register_shards(
        self, key: Hashable, shards: Iterable[int] | None
    ) -> None:
        if shards is None:
            return
        shard_set = frozenset(shards)
        self._entry_shards[key] = shard_set
        for shard in shard_set:
            self._by_shard.setdefault(shard, set()).add(key)

    def _unregister_shards(self, key: Hashable) -> None:
        shard_set = self._entry_shards.pop(key, None)
        if shard_set is None:
            return
        for shard in shard_set:
            keys = self._by_shard.get(shard)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._by_shard[shard]
