"""The persistent, versioned visibility-graph cache.

Local visibility graphs are the expensive artefact of every obstructed
query: each one costs obstacle R-tree retrievals plus one rotational
sweep per node.  The paper reuses the graph *within* one query (Fig. 8
grows ``G'`` in place); this cache extends the reuse *across* queries:
graphs are keyed by their expansion centre (the ``q`` of Fig. 8's
range retrievals), retained under a true LRU policy, and stamped with
the obstacle-set version so dynamic obstacle updates invalidate them
lazily instead of eagerly rebuilding.

Each entry also records the *coverage radius* — the largest disk
around the centre whose obstacles are guaranteed present — so a later
query with a larger reach tops the graph up incrementally rather than
rebuilding from scratch, and a query whose reach is already covered
skips the obstacle retrieval entirely.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.geometry.point import Point
from repro.runtime.sharding import stamp_is_stale
from repro.runtime.stats import RuntimeStats
from repro.visibility.graph import VisibilityGraph


class CachedGraph:
    """One cache entry: a graph plus its provenance.

    ``covered`` is the radius around ``center`` up to which *all*
    obstacles are known to be in the graph; ``version`` is the obstacle
    source's version at build time — a plain integer for monolithic
    sources, or a per-shard
    :class:`~repro.runtime.sharding.ShardVersionStamp` for sharded
    ones (then only mutations in shards the graph actually touched
    make the entry stale).
    """

    __slots__ = ("graph", "center", "covered", "version")

    def __init__(
        self,
        graph: VisibilityGraph,
        center: Point,
        covered: float,
        version: "int | object",
    ) -> None:
        self.graph = graph
        self.center = center
        self.covered = covered
        self.version = version

    def __repr__(self) -> str:
        return (
            f"CachedGraph(center={self.center!r}, covered={self.covered:g}, "
            f"version={self.version}, nodes={self.graph.node_count})"
        )


class VisibilityGraphCache:
    """A true LRU over :class:`CachedGraph` entries, shared across queries.

    Lookups ``get(center, version)`` return ``None`` both on a plain
    miss and when the stored entry was built against an older obstacle
    version (the stale entry is dropped on the spot).  Hits move the
    entry to the most-recently-used position — unlike the seed's FIFO
    eviction, a graph that keeps being useful is never the one evicted.
    """

    def __init__(
        self, capacity: int = 64, *, stats: RuntimeStats | None = None
    ) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._entries: OrderedDict[Point, CachedGraph] = OrderedDict()
        self.stats = stats if stats is not None else RuntimeStats()

    @property
    def capacity(self) -> int:
        """Maximum number of retained graphs."""
        return self._capacity

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, center: Point) -> bool:
        return center in self._entries

    def get(self, center: Point, version: int) -> CachedGraph | None:
        """The live entry for ``center``, or ``None``.

        A version mismatch counts as an invalidation *and* a miss; the
        stale entry is evicted immediately so it can never be consulted
        again.
        """
        entry = self._entries.get(center)
        if entry is None:
            self.stats.graph_cache_misses += 1
            return None
        if stamp_is_stale(entry.version, version):
            del self._entries[center]
            self.stats.graph_cache_invalidations += 1
            self.stats.graph_cache_misses += 1
            return None
        self._entries.move_to_end(center)
        self.stats.graph_cache_hits += 1
        return entry

    def put(self, entry: CachedGraph) -> None:
        """Insert (or refresh) an entry, evicting the LRU tail on overflow."""
        self._entries[entry.center] = entry
        self._entries.move_to_end(entry.center)
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)
            self.stats.graph_cache_evictions += 1

    def keys(self) -> list[Point]:
        """Centres in LRU order (least recently used first)."""
        return list(self._entries)

    def clear(self) -> None:
        """Drop every cached graph."""
        self._entries.clear()
