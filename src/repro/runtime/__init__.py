"""The unified query runtime.

All six obstructed query types of the paper share one machinery —
R*-tree retrieval feeding an incrementally grown local visibility
graph.  This package owns that machinery once, instead of per query:

* :class:`~repro.runtime.context.QueryContext` — the shared execution
  state: obstacle source, persistent versioned LRU graph cache
  (:class:`~repro.runtime.cache.VisibilityGraphCache`), and
  :class:`~repro.runtime.stats.RuntimeStats` hooks;
* :class:`~repro.runtime.metric.DistanceOracle` — the metric
  abstraction, with :class:`~repro.runtime.metric.ObstructedMetric`
  and :class:`~repro.runtime.metric.EuclideanMetric` implementations;
* :mod:`~repro.runtime.queries` — metric-parameterized query
  skeletons (range / nearest / join / closest pairs / semi-join), of
  which both the ``euclidean`` and ``core`` query functions are thin
  parameterizations;
* :mod:`~repro.runtime.skeletons` — the generic best-first traversal
  and the shared bounded-Dijkstra expansion;
* :mod:`~repro.runtime.batch` — batch entry points amortizing one
  context across many query points;
* :mod:`~repro.runtime.executor` — the parallel batch engine: a
  worker pool (``REPRO_BATCH_WORKERS`` / ``REPRO_BATCH_MODE``)
  evaluating independent query points over per-worker contexts;
* :mod:`~repro.runtime.sharding` — the spatial shard grid and the
  per-shard version stamps backing
  :class:`~repro.core.source.ShardedObstacleIndex`;
* :mod:`~repro.runtime.policy` — cache tuning policies: the static
  default and :class:`~repro.runtime.policy.AdaptiveCachePolicy`,
  which learns the snap quantum / LRU capacity / guest admission from
  the observed centre stream (``REPRO_CACHE_POLICY=adaptive``).
"""

from repro.runtime.batch import batch_distance, batch_nearest, batch_range
from repro.runtime.cache import CachedGraph, VisibilityGraphCache
from repro.runtime.context import QueryContext
from repro.runtime.executor import (
    BatchExecutor,
    resolve_mode,
    resolve_workers,
)
from repro.runtime.metric import (
    DistanceField,
    DistanceOracle,
    EuclideanMetric,
    ObstructedMetric,
    resolve_metric,
)
from repro.runtime.policy import (
    AdaptiveCachePolicy,
    CachePolicy,
    resolve_cache_policy,
)
from repro.runtime.queries import (
    iter_metric_closest_pairs,
    iter_metric_nearest,
    metric_closest_pairs,
    metric_distance_join,
    metric_nearest,
    metric_range,
    metric_semijoin,
)
from repro.runtime.sharding import ShardGrid, ShardVersionStamp
from repro.runtime.skeletons import (
    best_first,
    bounded_expansion,
    emit_in_metric_order,
    take,
)
from repro.runtime.stats import RuntimeStats

__all__ = [
    "QueryContext",
    "RuntimeStats",
    "VisibilityGraphCache",
    "CachedGraph",
    "CachePolicy",
    "AdaptiveCachePolicy",
    "resolve_cache_policy",
    "DistanceOracle",
    "DistanceField",
    "EuclideanMetric",
    "ObstructedMetric",
    "resolve_metric",
    "metric_range",
    "metric_nearest",
    "iter_metric_nearest",
    "metric_distance_join",
    "metric_closest_pairs",
    "iter_metric_closest_pairs",
    "metric_semijoin",
    "batch_nearest",
    "batch_range",
    "batch_distance",
    "BatchExecutor",
    "resolve_workers",
    "resolve_mode",
    "ShardGrid",
    "ShardVersionStamp",
    "best_first",
    "bounded_expansion",
    "emit_in_metric_order",
    "take",
]
