"""Distance-field engine selection (``REPRO_FIELD_ENGINE``).

Two engines produce :class:`~repro.core.distance.SourceDistanceField`
semantics:

* ``csr`` (default whenever numpy imports) — the compiled engine:
  provisional evaluation runs over the graph's frozen CSR arrays
  (:mod:`repro.visibility.csr`) with per-source distance fields cached
  across queries, and the last-leg minimisation over visible anchors
  is one vectorized numpy expression;
* ``python`` — the original dict-adjacency path, kept as the reference
  fallback.

The engines are bit-identical by construction: identical edge weights,
identical IEEE float64 arithmetic in the same order
(``Point.distance`` and the vectorized ``sqrt(dx*dx + dy*dy)`` are the
same correctly-rounded operations), the same
:func:`~repro.visibility.sweep.visible_from` anchor sets, and the same
``obstacle_revision`` snapshot discipline for the provisional field —
the CSR engine pins the freeze taken at its first evaluation and
answers post-snapshot free points through the same live-adjacency
memoization the dict engine uses.
"""

from __future__ import annotations

import os
from math import inf
from typing import Callable

from repro.core.distance import ObstacleSource, SourceDistanceField
from repro.errors import QueryError
from repro.geometry.point import Point
from repro.visibility.graph import VisibilityGraph

try:  # pragma: no cover - exercised via resolve_field_engine
    import numpy as np
except ImportError:  # pragma: no cover - numpy is baked into the image
    np = None  # type: ignore[assignment]

#: Environment variable selecting the engine: ``csr``, ``python``, or
#: ``auto``/unset (csr when numpy imports, python otherwise).
FIELD_ENGINE_ENV = "REPRO_FIELD_ENGINE"


def resolve_field_engine(name: "str | None" = None) -> str:
    """The effective engine name (``"csr"`` or ``"python"``).

    ``None`` consults :data:`FIELD_ENGINE_ENV` (read per call, so tests
    and pool workers can flip engines without rebuilding contexts).
    An explicit ``csr`` without numpy is a configuration error, not a
    silent fallback.
    """
    if name is None:
        name = os.environ.get(FIELD_ENGINE_ENV, "")
    name = name.strip().lower()
    if name in ("", "auto"):
        return "csr" if np is not None else "python"
    if name not in ("csr", "python"):
        raise QueryError(
            f"unknown field engine {name!r} (expected csr, python, or auto)"
        )
    if name == "csr" and np is None:
        raise QueryError("REPRO_FIELD_ENGINE=csr requires numpy")
    return name


class CSRSourceDistanceField(SourceDistanceField):
    """`SourceDistanceField` with provisional evaluation over frozen CSR.

    Only :meth:`_provisional` changes: the full-Dijkstra field is an
    ``np.float64`` array from the graph's shared
    :class:`~repro.visibility.csr.CSRGraph` (cached per source node, so
    warm repeat queries skip the Dijkstra entirely), node lookups are
    int indexing, and non-node candidates take a vectorized last leg
    over their visible anchors.  The enlargement loop, bound handling,
    and batching all come from the base class.

    Snapshot discipline mirrors the base class exactly: the freeze in
    use is pinned at the first evaluation and replaced only when
    ``obstacle_revision`` moves; free points admitted to the graph
    after the pin (guest admissions bump only the *structure* revision)
    are answered through their live adjacency and memoized in an
    overlay — the same values the dict engine memoizes into its field.
    """

    def __init__(
        self,
        graph: VisibilityGraph,
        source_point: Point,
        source: ObstacleSource,
        *,
        grow: Callable[[float], bool] | None = None,
        readmit: Callable[[], None] | None = None,
        stats: "object | None" = None,
    ) -> None:
        super().__init__(
            graph, source_point, source, grow=grow, readmit=readmit,
            stats=stats,
        )
        self._csr = None
        self._dist = None
        self._overlay: dict[Point, float] = {}

    def _provisional(self, p: Point) -> float:
        from repro.visibility.csr import frozen

        if p == self._q:
            return 0.0
        if not self._graph.has_node(self._q):
            if self._readmit is not None:
                self._readmit()
            else:
                self._graph.add_entity(self._q)
        revision = self._graph.obstacle_revision
        if self._dist is None or self._field_revision != revision:
            csr = frozen(self._graph, stats=self._stats)
            self._dist = csr.field(csr.index[self._q])
            self._csr = csr
            self._overlay = {}
            self._field_revision = revision
        csr = self._csr
        dist = self._dist
        idx = csr.index.get(p)
        if idx is not None:
            return float(dist[idx])
        if self._graph.has_node(p):
            # p joined the graph after the pinned freeze (free-point
            # admission: structure moved, obstacle revision did not).
            # Same live-adjacency answer as the dict engine, memoized
            # in the overlay (discarded with the pin on any revision
            # bump).
            cached = self._overlay.get(p)
            if cached is not None:
                return cached
            best = inf
            for v, w in self._graph.neighbors(p).items():
                vi = csr.index.get(v)
                dv = self._overlay.get(v) if vi is None else float(dist[vi])
                if dv is not None and dv + w < best:
                    best = dv + w
            self._overlay[p] = best
            return best
        best = inf
        ai, euc, extras = csr.anchors_for(p, self._graph)
        if len(ai):
            legs = dist[ai] + euc
            best = float(legs.min())
        if extras is not None:
            for v in extras:
                dv = self._overlay.get(v)
                if dv is not None:
                    candidate = dv + v.distance(p)
                    if candidate < best:
                        best = candidate
        return best


def make_distance_field(
    graph: VisibilityGraph,
    source_point: Point,
    source: ObstacleSource,
    *,
    grow: Callable[[float], bool] | None = None,
    readmit: Callable[[], None] | None = None,
    stats: "object | None" = None,
    engine: "str | None" = None,
) -> SourceDistanceField:
    """A distance field using the resolved engine.

    The runtime's :meth:`~repro.runtime.context.QueryContext.field_for`
    routes every field through here; ``engine=None`` re-reads the
    environment so a worker inheriting ``REPRO_FIELD_ENGINE`` honours
    it without any plumbing.
    """
    if resolve_field_engine(engine) == "csr":
        return CSRSourceDistanceField(
            graph, source_point, source, grow=grow, readmit=readmit,
            stats=stats,
        )
    return SourceDistanceField(
        graph, source_point, source, grow=grow, readmit=readmit, stats=stats
    )
